#!/usr/bin/env sh
# The offline CI gate, in named stages with per-stage wall-clock timing.
#
#   ./ci.sh         full gate: build, test, all-targets, bench-regression,
#                   wco, soak, out-of-core, metrics, subscribe, docs, fmt,
#                   clippy
#   ./ci.sh quick   build + tests only (the tier-1 inner loop)
#
# Everything runs with no network and no registry. The bench-regression
# stage re-runs every micro-bench with the quick budgets, collects
# medians into target/bench-current.jsonl (FLOWMOTIF_BENCH_JSON), and
# fails on any >1.5x median regression against the committed
# BENCH_baseline.json (see `bench_gate --help`; re-seed intentional
# changes with its `bless` mode).
set -eu

MODE="${1:-full}"

stage() {
  _name="$1"
  shift
  echo "==> stage: ${_name}"
  _t0=$(date +%s)
  "$@"
  echo "==> stage ${_name}: ok ($(($(date +%s) - _t0))s)"
}

stage_build() {
  cargo build --release --offline
}

stage_test() {
  cargo test -q --offline --workspace
}

stage_all_targets() {
  # Benches and experiment binaries must at least compile.
  cargo build --offline --workspace --all-targets
}

stage_bench_regression() {
  # Bench smoke + regression gate: every micro-bench must *run* with the
  # quick budgets (so bench bit-rot fails the gate), and the recorded
  # medians must stay within 1.5x of the committed baseline. The sweep
  # runs twice and the gate judges each bench by its fastest median
  # (best-of-N, same fold `bless` applies), so a one-off scheduler
  # hiccup in either sweep cannot fail the gate. Two benches double as
  # hard assertions: `alloc_profile` runs under a counting global
  # allocator and panics if the steady-state search performs any heap
  # allocation per match, and `skewed_scan` panics if hub splitting
  # stops making the modelled 8-worker schedule >= 2x faster than the
  # legacy block schedule.
  rm -f target/bench-current.jsonl
  FLOWMOTIF_BENCH_JSON="$PWD/target/bench-current.jsonl" \
    cargo bench --offline -p flowmotif-bench --benches -- --quick
  FLOWMOTIF_BENCH_JSON="$PWD/target/bench-current.jsonl" \
    cargo bench --offline -p flowmotif-bench --benches -- --quick
  cargo run --release --offline -p flowmotif-bench --bin bench_gate -- \
    check BENCH_baseline.json target/bench-current.jsonl
}

stage_wco() {
  # Worst-case-optimal P1 gate: `benches/wco.rs` builds a hub-skewed
  # pinwheel graph and asserts in-process that cardinality-ordered
  # extension (propose from the smallest candidate list, gallop the
  # rest) beats fixed-order extension by >= 3x wall-clock, and that
  # both orders enumerate the bit-identical structural match stream.
  # The quick sweep above already runs it; this stage re-runs it with
  # the full measurement budgets so the margin assertion judges stable
  # medians, not 10ms samples.
  cargo bench --offline -p flowmotif-bench --bench wco
}

stage_soak() {
  # Serve v2 capacity gate: `benches/soak.rs` holds 120 simultaneously
  # open connections on a worker config whose thread-per-connection
  # predecessor capped at 10, and asserts a repeated count answered by
  # the epoch-keyed result cache is >= 10x faster end-to-end than the
  # same query with the cache disabled. The quick sweep above already
  # runs it; this stage re-runs it with the full measurement budgets so
  # the margin assertions judge stable medians.
  cargo bench --offline -p flowmotif-bench --bench soak
}

stage_out_of_core() {
  # End-to-end out-of-core path on this machine: generate a synthetic
  # dataset, compile it into a packed segment (forcing a multi-run
  # external sort with a tiny sort buffer), and require the mapped
  # `--packed` search to produce byte-identical output to the in-memory
  # backend for both the enumeration and top-k pipelines. The memory
  # side of the story is enforced by `benches/out_of_core.rs` in the
  # bench-regression stage above: it runs the packed search under an
  # allocator-enforced heap budget 4x smaller than the segment and
  # feeds its timings through `bench_gate` like every other bench.
  _fm="target/release/flowmotif"
  _dir="target/out_of_core_ci"
  rm -rf "${_dir}"
  mkdir -p "${_dir}"
  "${_fm}" generate --dataset bitcoin --scale 1.0 --seed 7 --out "${_dir}/edges.txt"
  "${_fm}" pack "${_dir}/edges.txt" --out "${_dir}/seg" --run-records 1024
  "${_fm}" find "${_dir}/edges.txt" --motif "M(3,3)" --delta 3600 --phi 5 >"${_dir}/find-mem.txt"
  "${_fm}" find "${_dir}/seg" --packed --motif "M(3,3)" --delta 3600 --phi 5 >"${_dir}/find-packed.txt"
  cmp "${_dir}/find-mem.txt" "${_dir}/find-packed.txt"
  "${_fm}" topk "${_dir}/edges.txt" --motif "M(3,2)" --delta 3600 --k 5 >"${_dir}/topk-mem.txt"
  "${_fm}" topk "${_dir}/seg" --packed --motif "M(3,2)" --delta 3600 --k 5 >"${_dir}/topk-packed.txt"
  cmp "${_dir}/topk-mem.txt" "${_dir}/topk-packed.txt"
}

stage_metrics() {
  # End-to-end observability path: serve on a private port, drive a few
  # requests through the client, fetch the exposition text with the
  # `metrics` subcommand, and assert both the Prometheus framing and the
  # key per-tier series (serve counters + histogram, engine gauges,
  # process-wide stream and storage series) came back over the wire.
  _fm="target/release/flowmotif"
  _dir="target/metrics_ci"
  _port=$(( 20000 + ($$ % 20000) ))
  rm -rf "${_dir}"
  mkdir -p "${_dir}"
  "${_fm}" serve --port "${_port}" --slow-query-ms 1000 >"${_dir}/serve.log" 2>&1 &
  _pid=$!
  _i=0
  until printf 'ping\nquit\n' | "${_fm}" client --port "${_port}" >/dev/null 2>&1; do
    _i=$((_i + 1))
    if [ "${_i}" -ge 50 ]; then
      kill "${_pid}" 2>/dev/null || true
      echo "metrics: server never came up on port ${_port}"
      return 1
    fi
    sleep 0.1
  done
  printf 'add 0 1 10 5\nadd 1 2 12 4\npublish\ncount M(3,2) 10 0\nquery M(3,2) 10 0\nquit\n' \
    | "${_fm}" client --port "${_port}" >"${_dir}/client.log"
  "${_fm}" metrics --port "${_port}" >"${_dir}/metrics.txt"
  kill "${_pid}" 2>/dev/null || true
  grep -q '^# TYPE flowmotif_serve_requests_total counter$' "${_dir}/metrics.txt"
  grep -q '^flowmotif_serve_requests_total{verb="query"} 1$' "${_dir}/metrics.txt"
  grep -q '^# TYPE flowmotif_serve_request_duration_seconds histogram$' "${_dir}/metrics.txt"
  grep -q '^flowmotif_serve_request_duration_seconds_count{verb="count"} 1$' "${_dir}/metrics.txt"
  grep -q '^flowmotif_engine_epoch 1$' "${_dir}/metrics.txt"
  grep -q '^flowmotif_stream_publishes_total ' "${_dir}/metrics.txt"
  grep -q '^flowmotif_storage_segment_mapped_bytes ' "${_dir}/metrics.txt"
}

stage_subscribe() {
  # End-to-end standing-query path: serve on a private port, register a
  # standing subscription over the wire, stream appends from a second
  # client session, and require the pushed EVENT lines to agree with a
  # batch re-query of the same motif over the final graph.
  _fm="target/release/flowmotif"
  _dir="target/subscribe_ci"
  _port=$(( 21000 + ($$ % 20000) ))
  rm -rf "${_dir}"
  mkdir -p "${_dir}"
  "${_fm}" serve --port "${_port}" >"${_dir}/serve.log" 2>&1 &
  _pid=$!
  _i=0
  until printf 'ping\nquit\n' | "${_fm}" client --port "${_port}" >/dev/null 2>&1; do
    _i=$((_i + 1))
    if [ "${_i}" -ge 50 ]; then
      kill "${_pid}" 2>/dev/null || true
      echo "subscribe: server never came up on port ${_port}"
      return 1
    fi
    sleep 0.1
  done
  # The subscriber exits on its own after --limit 2 events.
  "${_fm}" subscribe --port "${_port}" --motif 'M(3,2)' --delta 10 --limit 2 \
    >"${_dir}/events.txt" 2>&1 &
  _sub=$!
  _i=0
  until "${_fm}" metrics --port "${_port}" 2>/dev/null \
      | grep -q '^flowmotif_serve_subscriptions_active 1$'; do
    _i=$((_i + 1))
    if [ "${_i}" -ge 50 ]; then
      kill "${_sub}" "${_pid}" 2>/dev/null || true
      echo "subscribe: subscription never registered"
      return 1
    fi
    sleep 0.1
  done
  # Two disjoint 2-hop chains: each completion is one pushed instance.
  printf 'add 0 1 1 2\nadd 1 2 2 3\nadd 3 4 20 1\nadd 4 5 21 2\nquit\n' \
    | "${_fm}" client --port "${_port}" >"${_dir}/client.log"
  _i=0
  while kill -0 "${_sub}" 2>/dev/null; do
    _i=$((_i + 1))
    if [ "${_i}" -ge 100 ]; then
      kill "${_sub}" "${_pid}" 2>/dev/null || true
      echo "subscribe: subscriber never received its 2 events"
      return 1
    fi
    sleep 0.1
  done
  wait "${_sub}"
  printf 'publish\nquery M(3,2) 10 0\nquit\n' \
    | "${_fm}" client --port "${_port}" >"${_dir}/query.log"
  kill "${_pid}" 2>/dev/null || true
  grep -q '^EVENT id=1 match=0-1-2 flow=2 first=1 last=2 size=2$' "${_dir}/events.txt"
  grep '^EVENT ' "${_dir}/events.txt" | sed 's/.*match=\([^ ]*\).*/\1/' | sort >"${_dir}/pushed.txt"
  grep '^DATA nodes=' "${_dir}/query.log" | sed 's/.*nodes=\([^ ]*\).*/\1/' | sort >"${_dir}/batch.txt"
  [ -s "${_dir}/pushed.txt" ]
  cmp "${_dir}/pushed.txt" "${_dir}/batch.txt"
}

stage_docs() {
  # rustdoc must build warning-free and every doctest must pass, so the
  # documented examples cannot drift from the API.
  RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps
  cargo test -q --offline --workspace --doc
}

stage_fmt() {
  cargo fmt --check
}

stage_clippy() {
  # `redundant_clone` (nursery, allow-by-default) is denied on top of
  # warnings: the zero-allocation P2 pipeline only stays zero-allocation
  # if stray clones never creep back into the hot paths.
  cargo clippy --offline --workspace --all-targets -- \
    -D warnings -D clippy::redundant_clone
}

stage build stage_build
stage test stage_test
if [ "$MODE" = "quick" ]; then
  echo "==> quick mode: skipping all-targets, bench-regression, docs, fmt, clippy"
  exit 0
fi
stage all-targets stage_all_targets
stage bench-regression stage_bench_regression
stage wco stage_wco
stage soak stage_soak
stage out-of-core stage_out_of_core
stage metrics stage_metrics
stage subscribe stage_subscribe
stage docs stage_docs
stage fmt stage_fmt
stage clippy stage_clippy
echo "==> all stages ok"
