#!/usr/bin/env sh
# Tier-1 gate plus lint gates. Run from the repo root.
set -eux

# The workspace must build and test with no network and no registry.
cargo build --release --offline
cargo test -q --offline --workspace

# Benches and experiment binaries must at least compile.
cargo build --offline --workspace --all-targets

# Bench smoke: every micro-bench (including streaming.rs) must *run*
# with the quick budgets, so bench bit-rot fails the gate.
cargo bench --offline -p flowmotif-bench --benches -- --quick

# Docs gate: rustdoc must build warning-free (broken intra-doc links,
# missing docs, …) and every doctest must pass, so the documented
# examples cannot drift from the API.
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps
cargo test -q --offline --workspace --doc

# Style gates.
cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings
