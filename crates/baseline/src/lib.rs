//! The join-based baseline of paper §6.2.1.
//!
//! The algorithm builds motif instances bottom-up by relational joins:
//!
//! 1. For every edge `(u, v)` of the time-series graph, materialise all
//!    *quintuples* `(u, v, ts, te, f)` — contiguous element runs whose
//!    span is at most `δ`, with their aggregated flow.
//! 2. Join quintuples of consecutive motif edges on vertex consistency
//!    (`c_k`'s target = `c_{k+1}`'s source in the motif mapping), strict
//!    temporal order (`c_k.te < c_{k+1}.ts`) and overall span
//!    (`c_{k+1}.te − c_1.ts ≤ δ`), level by level, materialising every
//!    intermediate sub-motif instance; cycle-closing edges additionally
//!    check that the mapped vertices agree (paper's "additional condition"
//!    for motifs like M(3,3)).
//! 3. Assembled candidates are filtered to *maximal* instances so the
//!    output is identical to the two-phase algorithm's.
//!
//! The paper reports this baseline at roughly 2× the runtime of the
//! two-phase algorithm because of the redundant intermediate results; our
//! reproduction exhibits the same shape (see `flowmotif-bench`,
//! experiment F8).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod join;
pub mod quintuple;

pub use join::{join_enumerate, JoinStats};
pub use quintuple::{build_quintuples, Quintuple};
