//! Steps 2–3 of the join baseline: level-by-level joins of quintuples
//! into sub-motif instances, then maximality filtering.

use crate::quintuple::{build_quintuples, Quintuple};
use flowmotif_core::validate::check_instance_maximal;
use flowmotif_core::{EdgeSet, Motif, MotifInstance, StructuralMatch};
use flowmotif_graph::{NodeId, TimeSeriesGraph, Timestamp};

/// Counters describing a join run; `intermediate_per_level[k]` is the
/// number of sub-motif instances materialised after joining `k + 1` motif
/// edges — the "large number of intermediate results" the paper attributes
/// the baseline's slowness to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Total quintuples materialised in step 1.
    pub quintuples: u64,
    /// Materialised sub-instances after each join level.
    pub intermediate_per_level: Vec<u64>,
    /// Full-motif candidates before maximality filtering.
    pub candidates: u64,
    /// Candidates surviving the maximality filter (== the two-phase
    /// algorithm's output size).
    pub maximal: u64,
}

const UNASSIGNED: NodeId = NodeId::MAX;

/// A sub-motif instance: quintuples for the first `k` motif edges plus the
/// partial vertex mapping.
#[derive(Debug, Clone)]
struct Partial {
    /// Motif-vertex -> graph-vertex mapping (`UNASSIGNED` when not yet
    /// mapped).
    nodes: Vec<NodeId>,
    /// Chosen quintuple per joined motif edge.
    quints: Vec<Quintuple>,
    first_ts: Timestamp,
    last_te: Timestamp,
}

/// Runs the full join baseline, returning the same maximal instances as
/// `flowmotif_core::enumerate_all` (grouping differs: results are flat).
pub fn join_enumerate(
    g: &TimeSeriesGraph,
    motif: &Motif,
) -> (Vec<(StructuralMatch, MotifInstance)>, JoinStats) {
    let mut stats = JoinStats::default();
    let walk = motif.path().walk();
    let m = motif.num_edges();
    let n_labels = motif.num_nodes();

    // Step 1: quintuples for every G_T pair.
    let per_pair: Vec<Vec<Quintuple>> = (0..g.num_pairs() as u32)
        .map(|p| build_quintuples(p, g.series(p), motif.delta(), motif.phi()))
        .collect();
    stats.quintuples = per_pair.iter().map(|v| v.len() as u64).sum();

    // Level 1: every quintuple of every pair seeds a partial.
    let mut level: Vec<Partial> = Vec::new();
    for (p, quints) in per_pair.iter().enumerate() {
        let (u, v) = g.pair(p as u32);
        for &q in quints {
            let mut nodes = vec![UNASSIGNED; n_labels];
            nodes[walk[0] as usize] = u;
            nodes[walk[1] as usize] = v;
            level.push(Partial { nodes, quints: vec![q], first_ts: q.ts, last_te: q.te });
        }
    }
    stats.intermediate_per_level.push(level.len() as u64);

    // Levels 2..m: merge-join with the next motif edge's quintuples.
    for k in 1..m {
        let src_label = walk[k] as usize;
        let tgt_label = walk[k + 1] as usize;
        let mut next_level: Vec<Partial> = Vec::new();
        for partial in &level {
            let src = partial.nodes[src_label];
            debug_assert_ne!(src, UNASSIGNED, "walk is connected");
            let tgt = partial.nodes[tgt_label];
            if tgt != UNASSIGNED {
                // Cycle-closing (or revisiting) edge: the pair is fixed.
                if let Some(p) = g.pair_id(src, tgt) {
                    extend(partial, &per_pair[p as usize], motif, tgt_label, tgt, &mut next_level);
                }
            } else {
                for (p, v) in g.out_pairs(src) {
                    if partial.nodes.contains(&v) {
                        continue; // injectivity
                    }
                    extend(partial, &per_pair[p as usize], motif, tgt_label, v, &mut next_level);
                }
            }
        }
        stats.intermediate_per_level.push(next_level.len() as u64);
        level = next_level;
    }

    // Step 3: assemble and filter to maximal instances.
    stats.candidates = level.len() as u64;
    let mut out = Vec::new();
    for partial in level {
        let edge_sets: Vec<EdgeSet> = partial
            .quints
            .iter()
            .map(|q| EdgeSet { pair: q.pair, start: q.start, end: q.end })
            .collect();
        let flow = partial.quints.iter().map(|q| q.flow).fold(f64::INFINITY, f64::min);
        let inst = MotifInstance {
            edge_sets,
            flow,
            first_time: partial.first_ts,
            last_time: partial.last_te,
        };
        if check_instance_maximal(g, motif, &inst).is_err() {
            continue;
        }
        let sm = StructuralMatch {
            nodes: partial.nodes,
            pairs: partial.quints.iter().map(|q| q.pair).collect(),
        };
        out.push((sm, inst));
    }
    stats.maximal = out.len() as u64;
    (out, stats)
}

/// Joins one partial with every compatible quintuple on pair `p`.
fn extend(
    partial: &Partial,
    quints: &[Quintuple],
    motif: &Motif,
    tgt_label: usize,
    tgt: NodeId,
    next_level: &mut Vec<Partial>,
) {
    // Quintuples are sorted by ts; skip those not strictly after the
    // partial's last element (the merge-join's temporal condition).
    let from = quints.partition_point(|q| q.ts <= partial.last_te);
    for &q in &quints[from..] {
        if q.te - partial.first_ts > motif.delta() {
            continue; // span violated; later quintuples may still fit (ts asc, te varies)
        }
        let mut nodes = partial.nodes.clone();
        nodes[tgt_label] = tgt;
        let mut qs = Vec::with_capacity(partial.quints.len() + 1);
        qs.extend_from_slice(&partial.quints);
        qs.push(q);
        next_level.push(Partial { nodes, quints: qs, first_ts: partial.first_ts, last_te: q.te });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmotif_core::{catalog, enumerate_all};
    use flowmotif_graph::GraphBuilder;

    fn fig5() -> TimeSeriesGraph {
        let mut b = GraphBuilder::new();
        b.extend_interactions([
            (0u32, 1u32, 13i64, 5.0),
            (0, 1, 15, 7.0),
            (2, 0, 10, 10.0),
            (3, 2, 1, 2.0),
            (3, 2, 3, 5.0),
            (3, 0, 11, 10.0),
            (1, 2, 18, 20.0),
            (2, 3, 19, 5.0),
            (2, 3, 21, 4.0),
            (1, 3, 23, 7.0),
        ]);
        b.build_time_series_graph()
    }

    fn normalized(mut v: Vec<(StructuralMatch, MotifInstance)>) -> Vec<String> {
        let mut out: Vec<String> =
            v.drain(..).map(|(sm, i)| format!("{:?}|{:?}", sm.pairs, i.edge_sets)).collect();
        out.sort();
        out
    }

    #[test]
    fn join_matches_two_phase_on_fig5() {
        let g = fig5();
        for (name, phi) in [("M(3,3)", 7.0), ("M(3,3)", 0.0), ("M(3,2)", 0.0), ("M(4,3)", 2.0)] {
            let motif = catalog::by_name(name, 10, phi).unwrap();
            let (two_phase, _) = enumerate_all(&g, &motif);
            let flat: Vec<_> = two_phase
                .into_iter()
                .flat_map(|(sm, is)| is.into_iter().map(move |i| (sm.clone(), i)))
                .collect();
            let (joined, stats) = join_enumerate(&g, &motif);
            assert_eq!(normalized(joined), normalized(flat), "{name} phi={phi}");
            assert!(stats.quintuples > 0);
        }
    }

    #[test]
    fn join_materialises_intermediates() {
        let g = fig5();
        let motif = catalog::by_name("M(4,3)", 10, 0.0).unwrap();
        let (_, stats) = join_enumerate(&g, &motif);
        assert_eq!(stats.intermediate_per_level.len(), 3);
        // Level 1 holds every quintuple: far more than final results.
        assert!(stats.intermediate_per_level[0] >= stats.maximal);
        assert!(stats.candidates >= stats.maximal);
    }

    #[test]
    fn join_on_empty_graph() {
        let g = GraphBuilder::new().build_time_series_graph();
        let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let (out, stats) = join_enumerate(&g, &motif);
        assert!(out.is_empty());
        assert_eq!(stats.quintuples, 0);
    }

    #[test]
    fn cycle_closure_is_enforced() {
        // A path 0 -> 1 -> 2 without the closing edge: M(3,3) joins must
        // die at the last level.
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 1i64, 1.0), (1, 2, 2, 1.0)]);
        let g = b.build_time_series_graph();
        let motif = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        let (out, stats) = join_enumerate(&g, &motif);
        assert!(out.is_empty());
        assert!(stats.intermediate_per_level[1] > 0, "two-edge sub-instances exist");
        assert_eq!(stats.intermediate_per_level[2], 0);
    }
}
