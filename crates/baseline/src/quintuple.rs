//! Step 1 of the join baseline: per-edge interval quintuples.

use flowmotif_graph::{Flow, InteractionSeries, PairId, Timestamp};

/// One `(u, v, ts, te, f)` tuple of the baseline: a contiguous run of
/// elements on a `G_T` pair spanning at most `δ`, with aggregated flow.
/// `u, v` are implied by `pair`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quintuple {
    /// The `G_T` pair the run lives on.
    pub pair: PairId,
    /// Element index range `[start, end)` in the pair's series.
    pub start: u32,
    /// One past the last element index.
    pub end: u32,
    /// Timestamp of the first element (`ts`).
    pub ts: Timestamp,
    /// Timestamp of the last element (`te`).
    pub te: Timestamp,
    /// Aggregated flow of the run (`f`).
    pub flow: Flow,
}

/// Builds every quintuple of one pair's series: all contiguous element
/// runs whose span is at most `delta` and whose flow is at least `phi`
/// (runs failing `ϕ` can never instantiate a motif edge, so the baseline
/// drops them here, mirroring the paper's per-edge preprocessing).
pub fn build_quintuples(
    pair: PairId,
    series: &InteractionSeries,
    delta: Timestamp,
    phi: Flow,
) -> Vec<Quintuple> {
    let mut out = Vec::new();
    let n = series.len();
    for i in 0..n {
        let ts = series.time(i);
        for j in i..n {
            let te = series.time(j);
            if te - ts > delta {
                break;
            }
            let flow = series.flow_of_range(i..j + 1);
            if flow >= phi {
                out.push(Quintuple { pair, start: i as u32, end: (j + 1) as u32, ts, te, flow });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> InteractionSeries {
        [(10i64, 5.0), (13, 2.0), (15, 3.0), (18, 7.0)].into_iter().collect()
    }

    #[test]
    fn all_runs_within_delta() {
        let q = build_quintuples(0, &series(), 5, 0.0);
        // Runs: [10],[10-13],[10-15],[13],[13-15],[13-18],[15],[15-18],[18]
        assert_eq!(q.len(), 9);
        assert!(q.iter().all(|x| x.te - x.ts <= 5));
        // [10..18] spans 8 > 5: absent.
        assert!(!q.iter().any(|x| x.ts == 10 && x.te == 18));
    }

    #[test]
    fn flows_are_aggregated() {
        let q = build_quintuples(0, &series(), 5, 0.0);
        let run = q.iter().find(|x| x.ts == 10 && x.te == 15).unwrap();
        assert_eq!(run.flow, 10.0);
        assert_eq!(run.start, 0);
        assert_eq!(run.end, 3);
    }

    #[test]
    fn phi_filters_runs() {
        let q = build_quintuples(0, &series(), 5, 5.0);
        // Surviving: [10](5), [10-13](7), [10-15](10), [13-15](5),
        // [13-18](12), [15-18](10), [18](7).
        assert_eq!(q.len(), 7);
        assert!(q.iter().all(|x| x.flow >= 5.0));
    }

    #[test]
    fn delta_zero_gives_singletons() {
        let q = build_quintuples(0, &series(), 0, 0.0);
        assert_eq!(q.len(), 4);
        assert!(q.iter().all(|x| x.ts == x.te));
    }

    #[test]
    fn empty_series_gives_no_quintuples() {
        let s = InteractionSeries::default();
        assert!(build_quintuples(0, &s, 10, 0.0).is_empty());
    }
}
