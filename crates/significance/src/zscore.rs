//! The randomization experiment itself: real vs permuted instance counts,
//! z-scores, empirical p-values, box-plot summaries.

use crate::stats::{mean, population_std_dev, FiveNumberSummary};
use flowmotif_core::enumerate::{
    enumerate_in_match_reusing, CountSink, EnumerationScratch, SearchOptions, SearchStats,
};
use flowmotif_core::{find_structural_matches, Motif, StructuralMatch};
use flowmotif_datasets::permute_flows;
use flowmotif_graph::{TemporalMultigraph, TimeSeriesGraph};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Parameters of the randomization experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignificanceConfig {
    /// Number of randomized replicas (the paper uses 20).
    pub num_replicas: usize,
    /// Base RNG seed; replica `i` uses `seed + i`.
    pub seed: u64,
    /// Worker threads for the replica counts (0 = all cores). Replicas
    /// are embarrassingly parallel — each is seeded independently — so
    /// results are identical at any thread count.
    pub threads: usize,
}

impl Default for SignificanceConfig {
    fn default() -> Self {
        Self { num_replicas: 20, seed: 0xF10F, threads: 1 }
    }
}

/// Significance verdict for one motif on one dataset (one bar of Fig. 14).
#[derive(Debug, Clone, PartialEq)]
pub struct MotifSignificance {
    /// Motif display name.
    pub motif: String,
    /// Instances in the real network (`r_M`).
    pub real_count: u64,
    /// Instances in each randomized replica.
    pub random_counts: Vec<u64>,
    /// Mean of `random_counts` (`µ_M`).
    pub random_mean: f64,
    /// Population std-dev of `random_counts` (`σ_M`).
    pub random_std: f64,
    /// `z_M = (r_M − µ_M) / σ_M`; infinite σ=0 cases are reported as the
    /// sign of the numerator times `f64::INFINITY`, or 0 when both vanish.
    pub z_score: f64,
    /// Empirical p-value: fraction of replicas with a count `>=` the real
    /// one (the paper reports 0 everywhere).
    pub p_value: f64,
    /// Box-plot summary of the replica counts.
    pub box_plot: FiveNumberSummary,
}

flowmotif_util::impl_to_json!(MotifSignificance {
    motif,
    real_count,
    random_counts,
    random_mean,
    random_std,
    z_score,
    p_value,
    box_plot,
});

fn count_with_matches(g: &TimeSeriesGraph, motif: &Motif, matches: &[StructuralMatch]) -> u64 {
    let mut sink = CountSink::default();
    let mut stats = SearchStats::default();
    let mut scratch = EnumerationScratch::default();
    for sm in matches {
        enumerate_in_match_reusing(
            g,
            motif,
            sm,
            SearchOptions::default(),
            &mut sink,
            &mut stats,
            &mut scratch,
        );
    }
    sink.count
}

/// Counts instances in each flow-permuted replica. Replicas shard over
/// worker threads through a shared atomic counter (the
/// `flowmotif_core::parallel` pattern); replica `i` always uses
/// `seed + i`, so the counts are independent of the thread count.
fn replica_counts(
    real: &TemporalMultigraph,
    motif: &Motif,
    matches: &[StructuralMatch],
    cfg: SignificanceConfig,
) -> Vec<u64> {
    let count_one = |i: usize| {
        let replica = permute_flows(real, cfg.seed + i as u64);
        let replica_ts: TimeSeriesGraph = (&replica).into();
        count_with_matches(&replica_ts, motif, matches)
    };
    let workers = if cfg.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        cfg.threads
    }
    .min(cfg.num_replicas.max(1));
    if workers <= 1 {
        return (0..cfg.num_replicas).map(count_one).collect();
    }
    let next = AtomicUsize::new(0);
    let mut counts = vec![0u64; cfg.num_replicas];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let count_one = &count_one;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cfg.num_replicas {
                            break;
                        }
                        local.push((i, count_one(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, c) in h.join().expect("replica worker panicked") {
                counts[i] = c;
            }
        }
    });
    counts
}

/// Assesses one motif: counts instances in the real graph and in
/// `cfg.num_replicas` flow-permuted replicas, reusing the structural
/// matches (valid because the null model fixes structure and timestamps).
pub fn assess_motif(
    real: &TemporalMultigraph,
    motif: &Motif,
    cfg: SignificanceConfig,
) -> MotifSignificance {
    let real_ts: TimeSeriesGraph = real.into();
    let matches = find_structural_matches(&real_ts, motif.path());
    let real_count = count_with_matches(&real_ts, motif, &matches);
    let random_counts = replica_counts(real, motif, &matches, cfg);

    let counts_f: Vec<f64> = random_counts.iter().map(|&c| c as f64).collect();
    let mu = mean(&counts_f);
    let sigma = population_std_dev(&counts_f);
    let diff = real_count as f64 - mu;
    let z_score = if sigma > 0.0 {
        diff / sigma
    } else if diff == 0.0 {
        0.0
    } else {
        diff.signum() * f64::INFINITY
    };
    let p_value = if random_counts.is_empty() {
        1.0
    } else {
        random_counts.iter().filter(|&&c| c >= real_count).count() as f64
            / random_counts.len() as f64
    };
    MotifSignificance {
        motif: motif.name(),
        real_count,
        box_plot: FiveNumberSummary::of(&counts_f),
        random_counts,
        random_mean: mu,
        random_std: sigma,
        z_score,
        p_value,
    }
}

/// Assesses a batch of motifs (one dataset panel of Fig. 14).
pub fn assess_motifs(
    real: &TemporalMultigraph,
    motifs: &[Motif],
    cfg: SignificanceConfig,
) -> Vec<MotifSignificance> {
    motifs.iter().map(|m| assess_motif(real, m, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmotif_core::catalog;
    use flowmotif_datasets::Dataset;
    use flowmotif_graph::GraphBuilder;

    #[test]
    fn structured_flows_are_significant() {
        // Build a network where high flows are *concentrated* on chains:
        // many 0->a->b chains with flow exactly 10, plus background pairs
        // with flow 1. Permuting flows scatters the 10s, so far fewer
        // chains clear ϕ=10.
        let mut b = GraphBuilder::new();
        let mut t = 0i64;
        for i in 0..30u32 {
            let a = 100 + 2 * i;
            b.add_interaction(a, a + 1, t, 10.0);
            b.add_interaction(a + 1, 900 + i, t + 1, 10.0);
            t += 1000; // chains are isolated in time
        }
        // Background noise: lots of low-flow pairs, never forming chains.
        for i in 0..200u32 {
            b.add_interaction(2000 + i, 3000 + i, t + i as i64 * 7, 1.0);
        }
        let mg: TemporalMultigraph = b.build_multigraph();
        let motif = catalog::by_name("M(3,2)", 10, 10.0).unwrap();
        let cfg = SignificanceConfig { num_replicas: 10, seed: 7, threads: 1 };
        let sig = assess_motif(&mg, &motif, cfg);
        assert_eq!(sig.real_count, 30);
        assert!(sig.random_mean < sig.real_count as f64, "{sig:?}");
        assert!(sig.z_score > 3.0, "z={}", sig.z_score);
        assert_eq!(sig.p_value, 0.0);
        assert!(sig.box_plot.max < sig.real_count as f64);
    }

    #[test]
    fn phi_zero_is_invariant_under_permutation() {
        // With ϕ=0 the flow values are irrelevant: every replica count
        // equals the real count and z = 0.
        let mg = Dataset::Passenger.generate_multigraph(0.1, 5);
        let motif = catalog::by_name("M(3,2)", 900, 0.0).unwrap();
        let cfg = SignificanceConfig { num_replicas: 5, seed: 11, threads: 1 };
        let sig = assess_motif(&mg, &motif, cfg);
        assert!(sig.random_counts.iter().all(|&c| c == sig.real_count));
        assert_eq!(sig.z_score, 0.0);
        assert_eq!(sig.p_value, 1.0);
    }

    #[test]
    fn assess_motifs_covers_all_inputs() {
        let mg = Dataset::Passenger.generate_multigraph(0.1, 5);
        let motifs: Vec<_> =
            ["M(3,2)", "M(3,3)"].iter().map(|n| catalog::by_name(n, 900, 2.0).unwrap()).collect();
        let cfg = SignificanceConfig { num_replicas: 3, seed: 1, threads: 2 };
        let out = assess_motifs(&mg, &motifs, cfg);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].motif, "M(3,2)");
        assert_eq!(out[0].random_counts.len(), 3);
    }

    #[test]
    fn parallel_replicas_match_serial() {
        let mg = Dataset::Passenger.generate_multigraph(0.1, 13);
        let motif = catalog::by_name("M(3,2)", 900, 3.0).unwrap();
        let serial =
            assess_motif(&mg, &motif, SignificanceConfig { num_replicas: 7, seed: 21, threads: 1 });
        for threads in [2, 3, 0] {
            let par = assess_motif(
                &mg,
                &motif,
                SignificanceConfig { num_replicas: 7, seed: 21, threads },
            );
            assert_eq!(par.random_counts, serial.random_counts, "threads={threads}");
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let mg = Dataset::Passenger.generate_multigraph(0.08, 2);
        let motif = catalog::by_name("M(3,2)", 900, 2.0).unwrap();
        let cfg = SignificanceConfig { num_replicas: 4, seed: 3, threads: 0 };
        let a = assess_motif(&mg, &motif, cfg);
        let b = assess_motif(&mg, &motif, cfg);
        assert_eq!(a, b);
    }
}
