//! Descriptive statistics for the randomization experiment.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation (the paper's σ over the 20 replicas).
pub fn population_std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Linear-interpolation quantile of a sorted slice, `q` in `[0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Five-number summary backing the box plots of Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumberSummary {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

flowmotif_util::impl_to_json!(FiveNumberSummary { min, q1, median, q3, max });

impl FiveNumberSummary {
    /// Computes the summary of the given samples.
    pub fn of(xs: &[f64]) -> Self {
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Self {
            min: sorted.first().copied().unwrap_or(0.0),
            q1: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q3: quantile(&sorted, 0.75),
            max: sorted.last().copied().unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0, 6.0]), 4.0);
        assert_eq!(population_std_dev(&[5.0, 5.0, 5.0]), 0.0);
        // Population σ of {2,4,4,4,5,5,7,9} is 2.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((population_std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert_eq!(quantile(&xs, 0.25), 1.75);
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn five_number_summary() {
        let s = FiveNumberSummary::of(&[9.0, 1.0, 5.0, 3.0, 7.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.q1, 3.0);
        assert_eq!(s.q3, 7.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn quantile_range_checked() {
        quantile(&[1.0], 1.5);
    }
}
