//! Statistical significance of flow motifs (paper §6.3, Fig. 14).
//!
//! For each motif, the number of instances in the real network is compared
//! against the counts in `N` randomized replicas produced by the
//! flow-permutation null model (structure and timestamps fixed, flow
//! values shuffled). A motif is significant when the real count lies far
//! above the randomized distribution; the paper reports z-scores and
//! box plots, plus the empirical p-value.
//!
//! Because the null model preserves structure *and* timestamps, phase P1
//! is computed once and reused for every replica — only the flow-dependent
//! phase P2 reruns (the paper makes the same observation: "all structural
//! matches of G will also appear in G_r").

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod stats;
pub mod zscore;

pub use stats::{mean, population_std_dev, quantile, FiveNumberSummary};
pub use zscore::{assess_motif, assess_motifs, MotifSignificance, SignificanceConfig};
