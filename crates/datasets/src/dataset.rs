//! The three evaluation datasets of the paper (§6.1, Table 3), as
//! synthetic stand-ins with matching shape parameters.

use crate::config::{FlowDistribution, GeneratorConfig};
use crate::generate::generate;
use flowmotif_graph::{TemporalMultigraph, TimeSeriesGraph};

/// One of the paper's three evaluation networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Bitcoin user graph: sparse, heavy-tailed degrees, rare parallel
    /// edges (~1.4 per pair), wide flow distribution (avg 4.845 BTC).
    Bitcoin,
    /// Facebook interaction network: sparse, ~4 parallel edges per pair,
    /// 30-second-bucketed timestamps, small integer flows (avg ~3).
    Facebook,
    /// NYC taxi passenger-flow network: 289 zones, dense, ~3 parallel
    /// edges per pair, small passenger counts (avg ~1.9).
    Passenger,
}

impl Dataset {
    /// All three datasets, in the paper's order.
    pub const ALL: [Dataset; 3] = [Dataset::Bitcoin, Dataset::Facebook, Dataset::Passenger];

    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Bitcoin => "Bitcoin",
            Dataset::Facebook => "Facebook",
            Dataset::Passenger => "Passenger",
        }
    }

    /// The paper's default duration constraint `δ` for this dataset
    /// (§6.2: 600 s, 600 s, 900 s).
    pub fn default_delta(&self) -> i64 {
        match self {
            Dataset::Bitcoin | Dataset::Facebook => 600,
            Dataset::Passenger => 900,
        }
    }

    /// The paper's default flow constraint `ϕ` (§6.2: 5, 3, 2).
    pub fn default_phi(&self) -> f64 {
        match self {
            Dataset::Bitcoin => 5.0,
            Dataset::Facebook => 3.0,
            Dataset::Passenger => 2.0,
        }
    }

    /// The `δ` sweep of Fig. 9 for this dataset.
    pub fn delta_sweep(&self) -> Vec<i64> {
        match self {
            Dataset::Bitcoin | Dataset::Facebook => vec![200, 400, 600, 800, 1000],
            Dataset::Passenger => vec![300, 600, 900, 1200, 1500],
        }
    }

    /// The `ϕ` sweep of Fig. 10 for this dataset.
    pub fn phi_sweep(&self) -> Vec<f64> {
        match self {
            Dataset::Bitcoin => vec![5.0, 10.0, 15.0, 20.0, 25.0],
            Dataset::Facebook => vec![3.0, 5.0, 7.0, 9.0, 11.0],
            Dataset::Passenger => vec![1.0, 2.0, 3.0, 4.0, 5.0],
        }
    }

    /// Generator shape at `scale = 1.0` (laptop-sized; see `DESIGN.md` for
    /// the mapping from the paper's Table 3).
    pub fn config(&self) -> GeneratorConfig {
        match self {
            Dataset::Bitcoin => GeneratorConfig {
                num_nodes: 2500,
                num_pairs: 5000,
                mean_edges_per_pair: 1.4,
                time_span: 2_500,
                time_granularity: 1,
                node_skew: 1.6,
                closure_bias: 0.25,
                propagation: 0.7,
                propagation_window: 1_200,
                // mean ≈ 4.8, median 3.5 — wide like BTC amounts.
                flow: FlowDistribution::LogNormal { mu: 3.5f64.ln(), sigma: 0.8 },
            },
            Dataset::Facebook => GeneratorConfig {
                num_nodes: 1200,
                num_pairs: 4500,
                mean_edges_per_pair: 4.0,
                time_span: 5_000,
                time_granularity: 30,
                node_skew: 1.4,
                closure_bias: 0.20,
                propagation: 0.5,
                propagation_window: 1_200,
                // 1 + Poisson(2): mean 3 like the paper's per-bucket counts.
                flow: FlowDistribution::SmallCount { lambda: 2.0 },
            },
            Dataset::Passenger => GeneratorConfig {
                num_nodes: 289, // the paper's actual zone count
                num_pairs: 1500,
                mean_edges_per_pair: 2.8,
                time_span: 4_500,
                time_granularity: 1,
                node_skew: 1.2,
                closure_bias: 0.08,
                propagation: 0.6,
                propagation_window: 1_800,
                // 1 + Poisson(0.93): mean 1.93 passengers.
                flow: FlowDistribution::SmallCount { lambda: 0.93 },
            },
        }
    }

    /// Generates the multigraph at the given scale (1.0 = defaults).
    pub fn generate_multigraph(&self, scale: f64, seed: u64) -> TemporalMultigraph {
        generate(&self.config().scaled(scale), seed)
    }

    /// Generates the merged time-series graph at the given scale.
    pub fn generate(&self, scale: f64, seed: u64) -> TimeSeriesGraph {
        (&self.generate_multigraph(scale, seed)).into()
    }

    /// The time-prefix sample labels and fractions of §6.2.4:
    /// B1–B5 cover 1/2/4/6/9 of 9 months, F1–F5 cover 1/2/3/4/6 of 6
    /// months, T1–T4 cover 8/16/24/31 of 31 days.
    pub fn prefix_fractions(&self) -> Vec<(String, f64)> {
        let (letter, parts, total): (&str, &[u32], f64) = match self {
            Dataset::Bitcoin => ("B", &[1, 2, 4, 6, 9], 9.0),
            Dataset::Facebook => ("F", &[1, 2, 3, 4, 6], 6.0),
            Dataset::Passenger => ("T", &[8, 16, 24, 31], 31.0),
        };
        parts
            .iter()
            .enumerate()
            .map(|(i, &p)| (format!("{letter}{}", i + 1), p as f64 / total))
            .collect()
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Dataset {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_lowercase().as_str() {
            "bitcoin" | "btc" | "b" => Ok(Dataset::Bitcoin),
            "facebook" | "fb" | "f" => Ok(Dataset::Facebook),
            "passenger" | "taxi" | "t" | "p" => Ok(Dataset::Passenger),
            other => Err(format!("unknown dataset `{other}` (bitcoin|facebook|passenger)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmotif_graph::GraphStats;

    #[test]
    fn defaults_match_paper_section_6_2() {
        assert_eq!(Dataset::Bitcoin.default_delta(), 600);
        assert_eq!(Dataset::Facebook.default_delta(), 600);
        assert_eq!(Dataset::Passenger.default_delta(), 900);
        assert_eq!(Dataset::Bitcoin.default_phi(), 5.0);
        assert_eq!(Dataset::Facebook.default_phi(), 3.0);
        assert_eq!(Dataset::Passenger.default_phi(), 2.0);
    }

    #[test]
    fn generated_shapes_track_table3_ratios() {
        for d in Dataset::ALL {
            let g = d.generate(0.5, 42);
            let s = GraphStats::of(&g);
            let cfg = d.config();
            let want_mult = cfg.mean_edges_per_pair;
            assert!(
                (s.avg_edges_per_pair - want_mult).abs() / want_mult < 0.15,
                "{d}: multiplicity {} vs {want_mult}",
                s.avg_edges_per_pair
            );
            let want_flow = cfg.flow.mean();
            assert!(
                (s.avg_flow_per_edge - want_flow).abs() / want_flow < 0.15,
                "{d}: flow {} vs {want_flow}",
                s.avg_flow_per_edge
            );
        }
    }

    #[test]
    fn facebook_times_are_bucketed() {
        let g = Dataset::Facebook.generate_multigraph(0.3, 1);
        assert!(g.interactions().iter().all(|i| i.time % 30 == 0));
    }

    #[test]
    fn passenger_is_densest() {
        let density = |d: Dataset| {
            let s = GraphStats::of(&d.generate(1.0, 9));
            s.num_connected_pairs as f64 / (s.num_nodes as f64 * (s.num_nodes - 1) as f64)
        };
        let p = density(Dataset::Passenger);
        assert!(p > density(Dataset::Bitcoin) * 5.0);
        assert!(p > density(Dataset::Facebook));
    }

    #[test]
    fn prefix_fraction_labels() {
        let b = Dataset::Bitcoin.prefix_fractions();
        assert_eq!(b.len(), 5);
        assert_eq!(b[0].0, "B1");
        assert_eq!(b[4], ("B5".to_string(), 1.0));
        let t = Dataset::Passenger.prefix_fractions();
        assert_eq!(t.len(), 4);
        assert!((t[0].1 - 8.0 / 31.0).abs() < 1e-12);
    }

    #[test]
    fn dataset_parsing() {
        assert_eq!("bitcoin".parse::<Dataset>().unwrap(), Dataset::Bitcoin);
        assert_eq!("FB".parse::<Dataset>().unwrap(), Dataset::Facebook);
        assert_eq!("taxi".parse::<Dataset>().unwrap(), Dataset::Passenger);
        assert!("mars".parse::<Dataset>().is_err());
    }
}
