//! The flow-permutation null model of paper §6.3.
//!
//! From `G(V, E)` derive `G_r(V, E)`: identical vertices, edges, and
//! timestamps; the multiset of flow values is randomly permuted across the
//! edges. Structural matches and (δ-only) temporal instances are exactly
//! preserved; only which of them clear the `ϕ` constraint changes — that
//! is what the significance experiment measures.

use crate::rng::shuffle;
use flowmotif_graph::TemporalMultigraph;
use flowmotif_util::rng::SeedableRng;
use flowmotif_util::rng::StdRng;

/// Permutes the flow values of `g` in place, deterministically in `seed`.
pub fn permute_flows_in_place(g: &mut TemporalMultigraph, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flows: Vec<f64> = g.interactions().iter().map(|i| i.flow).collect();
    shuffle(&mut rng, &mut flows);
    for (i, f) in g.interactions_mut().iter_mut().zip(flows) {
        i.flow = f;
    }
}

/// Returns a flow-permuted copy of `g` (the randomized dataset `G_r`).
pub fn permute_flows(g: &TemporalMultigraph, seed: u64) -> TemporalMultigraph {
    let mut out = g.clone();
    permute_flows_in_place(&mut out, seed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn sorted_flows(g: &TemporalMultigraph) -> Vec<u64> {
        let mut v: Vec<u64> = g.interactions().iter().map(|i| i.flow.to_bits()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn permutation_preserves_structure_and_flow_multiset() {
        let g = Dataset::Bitcoin.generate_multigraph(0.1, 3);
        let r = permute_flows(&g, 99);
        assert_eq!(g.num_interactions(), r.num_interactions());
        assert_eq!(g.num_nodes(), r.num_nodes());
        // Same (from, to, time) skeleton in the same order.
        for (a, b) in g.interactions().iter().zip(r.interactions()) {
            assert_eq!((a.from, a.to, a.time), (b.from, b.to, b.time));
        }
        // Same flow multiset, different assignment.
        assert_eq!(sorted_flows(&g), sorted_flows(&r));
        assert!(
            g.interactions().iter().zip(r.interactions()).any(|(a, b)| a.flow != b.flow),
            "permutation should move at least one flow"
        );
    }

    #[test]
    fn permutation_is_deterministic_per_seed() {
        let g = Dataset::Passenger.generate_multigraph(0.2, 3);
        let a = permute_flows(&g, 1);
        let b = permute_flows(&g, 1);
        assert_eq!(a.interactions(), b.interactions());
        let c = permute_flows(&g, 2);
        assert_ne!(a.interactions(), c.interactions());
    }
}
