//! Generator configuration: the shape parameters of a synthetic
//! interaction network.

/// Distribution of per-interaction flow values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowDistribution {
    /// `exp(N(mu, sigma))` — wide positive distribution, like bitcoin
    /// transaction amounts (Table 3: avg 4.845).
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Std-dev of the underlying normal.
        sigma: f64,
    },
    /// `1 + Poisson(lambda)` — small positive integers, like per-interval
    /// interaction counts (Facebook, avg 3.014) or passenger counts
    /// (Passenger, avg 1.933).
    SmallCount {
        /// Poisson rate; the mean flow is `1 + lambda`.
        lambda: f64,
    },
    /// Uniform in `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
}

impl FlowDistribution {
    /// Expected value of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            FlowDistribution::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            FlowDistribution::SmallCount { lambda } => 1.0 + lambda,
            FlowDistribution::Uniform { lo, hi } => (lo + hi) / 2.0,
        }
    }
}

/// Shape parameters of a synthetic interaction network.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of vertices.
    pub num_nodes: usize,
    /// Number of distinct connected pairs (`|E_T|`).
    pub num_pairs: usize,
    /// Mean parallel-edge multiplicity (`|E| / |E_T|`).
    pub mean_edges_per_pair: f64,
    /// Timestamps are drawn uniformly from `[0, time_span)`.
    pub time_span: i64,
    /// Timestamps are rounded down to multiples of this (Facebook uses 30,
    /// matching the paper's 30-second aggregation buckets; others use 1).
    pub time_granularity: i64,
    /// Endpoint skew: 1.0 = uniform endpoints, larger = heavier-tailed
    /// degree distribution.
    pub node_skew: f64,
    /// Fraction of pairs created by triadic closure — picking an existing
    /// two-hop path `u -> v -> w` and adding `w -> u`. Real interaction
    /// networks are heavily clustered (the paper finds cyclic motifs
    /// over-represented in Bitcoin, §6.3); pure random endpoint sampling
    /// yields almost no directed cycles.
    pub closure_bias: f64,
    /// Probability that an interaction *forwards* flow its source recently
    /// received instead of drawing a fresh amount. This models the flow
    /// conservation of real interaction networks — the paper's §6.3
    /// explanation for motif significance is that "flow is not arbitrarily
    /// generated or consumed at the vertices, but transferred from one
    /// node to another". Without it, flows are i.i.d. and the permutation
    /// null model is indistinguishable from the real data (z ≈ 0).
    pub propagation: f64,
    /// Half-life (in time units) of a node's received-flow balance for the
    /// propagation mechanism; inflow older than a few half-lives no longer
    /// influences outgoing amounts.
    pub propagation_window: i64,
    /// Per-interaction flow distribution.
    pub flow: FlowDistribution,
}

impl GeneratorConfig {
    /// Expected number of interactions.
    pub fn expected_interactions(&self) -> usize {
        (self.num_pairs as f64 * self.mean_edges_per_pair) as usize
    }

    /// Returns a copy with node/pair counts multiplied by `scale`
    /// (time span and per-pair multiplicity are preserved, so temporal
    /// density per pair — the driver of per-match work — is unchanged).
    pub fn scaled(&self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        Self {
            num_nodes: ((self.num_nodes as f64 * scale) as usize).max(3),
            num_pairs: ((self.num_pairs as f64 * scale) as usize).max(2),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_means() {
        let ln = FlowDistribution::LogNormal { mu: 3.5f64.ln(), sigma: 0.8 };
        assert!((ln.mean() - 4.82).abs() < 0.05);
        assert_eq!(FlowDistribution::SmallCount { lambda: 2.0 }.mean(), 3.0);
        assert_eq!(FlowDistribution::Uniform { lo: 1.0, hi: 3.0 }.mean(), 2.0);
    }

    #[test]
    fn scaling_preserves_density_parameters() {
        let c = GeneratorConfig {
            num_nodes: 1000,
            num_pairs: 4000,
            mean_edges_per_pair: 2.0,
            time_span: 10_000,
            time_granularity: 1,
            node_skew: 1.5,
            closure_bias: 0.1,
            propagation: 0.0,
            propagation_window: 0,
            flow: FlowDistribution::Uniform { lo: 1.0, hi: 2.0 },
        };
        let s = c.scaled(0.5);
        assert_eq!(s.num_nodes, 500);
        assert_eq!(s.num_pairs, 2000);
        assert_eq!(s.time_span, 10_000);
        assert_eq!(s.mean_edges_per_pair, 2.0);
        assert_eq!(c.expected_interactions(), 8000);
        assert_eq!(s.expected_interactions(), 4000);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        let c = GeneratorConfig {
            num_nodes: 10,
            num_pairs: 10,
            mean_edges_per_pair: 1.0,
            time_span: 100,
            time_granularity: 1,
            node_skew: 1.0,
            closure_bias: 0.0,
            propagation: 0.0,
            propagation_window: 0,
            flow: FlowDistribution::Uniform { lo: 1.0, hi: 2.0 },
        };
        c.scaled(0.0);
    }
}
