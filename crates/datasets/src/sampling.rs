//! Time-prefix samples for the scalability experiment (paper §6.2.4).
//!
//! Each sample keeps the interactions whose timestamp falls within a
//! prefix of the dataset's covered period — B1..B5 for Bitcoin (1, 2, 4,
//! 6, 9 of 9 months), F1..F5 for Facebook, T1..T4 for Passenger.

use flowmotif_graph::{TemporalMultigraph, TimeSeriesGraph};

/// One labelled time-prefix sample.
#[derive(Debug, Clone)]
pub struct PrefixSample {
    /// Label, e.g. `B3`.
    pub label: String,
    /// Fraction of the full period covered.
    pub fraction: f64,
    /// The sampled graph.
    pub graph: TimeSeriesGraph,
    /// Interactions in the sample.
    pub num_interactions: usize,
}

/// Cuts `g` into labelled time-prefix samples. `fractions` pairs labels
/// with period fractions in `(0, 1]` (see
/// [`crate::Dataset::prefix_fractions`]).
pub fn time_prefix_samples(
    g: &TemporalMultigraph,
    fractions: &[(String, f64)],
) -> Vec<PrefixSample> {
    let Some((t0, t1)) = g.time_span() else {
        return Vec::new();
    };
    fractions
        .iter()
        .map(|(label, frac)| {
            let cutoff = t0 + ((t1 - t0) as f64 * frac).round() as i64;
            let mut sub = g.clone();
            sub.retain_time_prefix(cutoff);
            let num_interactions = sub.num_interactions();
            PrefixSample {
                label: label.clone(),
                fraction: *frac,
                graph: (&sub).into(),
                num_interactions,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    #[test]
    fn samples_grow_monotonically() {
        let g = Dataset::Facebook.generate_multigraph(0.2, 5);
        let samples = time_prefix_samples(&g, &Dataset::Facebook.prefix_fractions());
        assert_eq!(samples.len(), 5);
        for w in samples.windows(2) {
            assert!(w[0].num_interactions <= w[1].num_interactions);
        }
        // The final sample is the full dataset.
        assert_eq!(samples.last().unwrap().num_interactions, g.num_interactions());
        // Early samples are strict subsets.
        assert!(samples[0].num_interactions < g.num_interactions());
        // Sizes are roughly proportional to the fraction (uniform times).
        let s0 = &samples[0];
        let expected = g.num_interactions() as f64 * s0.fraction;
        assert!((s0.num_interactions as f64 - expected).abs() / expected < 0.2);
    }

    #[test]
    fn empty_graph_yields_no_samples() {
        let g = TemporalMultigraph::new();
        assert!(time_prefix_samples(&g, &[("X".into(), 0.5)]).is_empty());
    }
}
