//! Small sampling helpers built on `rand` (no `rand_distr` dependency:
//! the handful of distributions we need are a few lines each).

use flowmotif_util::rng::RngExt;
use flowmotif_util::rng::StdRng;

/// Standard normal via Box–Muller.
pub fn normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Log-normal with the given parameters of the underlying normal.
pub fn log_normal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * normal(rng)).exp()
}

/// Poisson via Knuth's method (fine for the small λ used here).
pub fn poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // guard against pathological λ
        }
    }
}

/// Heavy-tailed node index in `0..n`: `floor(n · u^skew)`. `skew = 1`
/// is uniform; larger values concentrate mass on low indices, giving the
/// power-law-ish degree distributions of real interaction networks.
pub fn skewed_index(rng: &mut StdRng, n: usize, skew: f64) -> usize {
    debug_assert!(n > 0);
    let u: f64 = rng.random();
    ((n as f64) * u.powf(skew)).min(n as f64 - 1.0) as usize
}

/// In-place Fisher–Yates shuffle.
pub fn shuffle<T>(rng: &mut StdRng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmotif_util::rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_mean_and_variance() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn log_normal_is_positive_with_expected_mean() {
        let mut r = rng();
        let n = 20_000;
        let (mu, sigma) = (3.5f64.ln(), 0.8);
        let xs: Vec<f64> = (0..n).map(|_| log_normal(&mut r, mu, sigma)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / n as f64;
        let expected = (mu + sigma * sigma / 2.0).exp(); // ≈ 4.82
        assert!((mean - expected).abs() / expected < 0.1, "mean {mean} vs {expected}");
    }

    #[test]
    fn poisson_mean() {
        let mut r = rng();
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut r, 3.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn skewed_index_is_skewed_and_in_range() {
        let mut r = rng();
        let n = 1000;
        let samples: Vec<usize> = (0..20_000).map(|_| skewed_index(&mut r, n, 2.5)).collect();
        assert!(samples.iter().all(|&i| i < n));
        let low = samples.iter().filter(|&&i| i < n / 10).count();
        // With skew 2.5, P(index < n/10) = (0.1)^(1/2.5) ≈ 0.40.
        assert!(low as f64 / 20_000.0 > 0.3, "low fraction {}", low as f64 / 20_000.0);
    }

    #[test]
    fn skewed_index_uniform_when_skew_is_one() {
        let mut r = rng();
        let n = 100;
        let samples: Vec<usize> = (0..20_000).map(|_| skewed_index(&mut r, n, 1.0)).collect();
        let low = samples.iter().filter(|&&i| i < n / 2).count();
        assert!((low as f64 / 20_000.0 - 0.5).abs() < 0.03);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = rng();
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut r, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should change order");
    }
}
