//! The core generator: samples a pair set with skewed endpoints, then
//! populates each pair with timestamped, flow-weighted interactions.

use crate::config::{FlowDistribution, GeneratorConfig};
use crate::rng::{log_normal, poisson, skewed_index};
use flowmotif_graph::{Interaction, TemporalMultigraph};
use flowmotif_util::rng::StdRng;
use flowmotif_util::rng::{RngExt, SeedableRng};
use flowmotif_util::FxHashSet;

fn sample_flow(rng: &mut StdRng, dist: FlowDistribution) -> f64 {
    match dist {
        FlowDistribution::LogNormal { mu, sigma } => log_normal(rng, mu, sigma).max(1e-6),
        FlowDistribution::SmallCount { lambda } => 1.0 + poisson(rng, lambda) as f64,
        FlowDistribution::Uniform { lo, hi } => rng.random_range(lo..hi).max(1e-6),
    }
}

/// Generates a temporal multigraph with the given shape. Deterministic in
/// `seed`.
pub fn generate(config: &GeneratorConfig, seed: u64) -> TemporalMultigraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.num_nodes.max(2);
    let max_pairs = n * (n - 1);
    let target_pairs = config.num_pairs.min(max_pairs);

    // Distinct directed pairs with skewed endpoints. Bounded rejection
    // sampling: very dense targets fall back to scanning.
    let mut pairs: FxHashSet<(u32, u32)> =
        FxHashSet::with_capacity_and_hasher(target_pairs, Default::default());
    let closure_target = (target_pairs as f64 * config.closure_bias.clamp(0.0, 1.0)) as usize;
    let base_target = target_pairs - closure_target;
    let mut pair_vec: Vec<(u32, u32)> = Vec::with_capacity(target_pairs);
    let mut out_adj: flowmotif_util::FxHashMap<u32, Vec<u32>> =
        flowmotif_util::FxHashMap::default();
    let push_pair = |pairs: &mut FxHashSet<(u32, u32)>,
                     pair_vec: &mut Vec<(u32, u32)>,
                     out_adj: &mut flowmotif_util::FxHashMap<u32, Vec<u32>>,
                     u: u32,
                     v: u32| {
        if u != v && pairs.insert((u, v)) {
            pair_vec.push((u, v));
            out_adj.entry(u).or_default().push(v);
            true
        } else {
            false
        }
    };
    let mut attempts = 0usize;
    let attempt_budget = target_pairs.saturating_mul(50) + 1000;
    while pairs.len() < base_target && attempts < attempt_budget {
        attempts += 1;
        let u = skewed_index(&mut rng, n, config.node_skew) as u32;
        let v = skewed_index(&mut rng, n, config.node_skew) as u32;
        push_pair(&mut pairs, &mut pair_vec, &mut out_adj, u, v);
    }
    // Triadic closure: close random two-hop paths u -> v -> w with w -> u,
    // seeding directed cycles like the clustering of real networks.
    attempts = 0;
    while pairs.len() < target_pairs && attempts < attempt_budget && !pair_vec.is_empty() {
        attempts += 1;
        let (u, v) = pair_vec[rng.random_range(0..pair_vec.len())];
        let Some(next) = out_adj.get(&v) else { continue };
        if next.is_empty() {
            continue;
        }
        let w = next[rng.random_range(0..next.len())];
        push_pair(&mut pairs, &mut pair_vec, &mut out_adj, w, u);
    }
    // Top up with random pairs if closure stalled (e.g. tiny graphs).
    attempts = 0;
    while pairs.len() < target_pairs && attempts < attempt_budget {
        attempts += 1;
        let u = skewed_index(&mut rng, n, config.node_skew) as u32;
        let v = skewed_index(&mut rng, n, config.node_skew) as u32;
        push_pair(&mut pairs, &mut pair_vec, &mut out_adj, u, v);
    }
    if pairs.len() < target_pairs {
        // Dense fallback: deterministic scan over all ordered pairs.
        'outer: for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u != v {
                    pairs.insert((u, v));
                    if pairs.len() >= target_pairs {
                        break 'outer;
                    }
                }
            }
        }
    }
    let mut pair_list: Vec<(u32, u32)> = pairs.into_iter().collect();
    pair_list.sort_unstable();

    // Interactions per pair, timestamps uniform over the span (rounded to
    // the configured granularity), flows from the configured distribution.
    let mut g = TemporalMultigraph::with_capacity(n, config.expected_interactions());
    let extra = (config.mean_edges_per_pair - 1.0).max(0.0);
    for (u, v) in pair_list {
        let count = 1 + poisson(&mut rng, extra);
        for _ in 0..count {
            let t_raw = rng.random_range(0..config.time_span.max(1));
            let t = (t_raw / config.time_granularity.max(1)) * config.time_granularity.max(1);
            let f = sample_flow(&mut rng, config.flow);
            g.push(Interaction::new(u, v, t, f));
        }
    }
    propagate_flows(config, &mut rng, &mut g);
    g
}

/// The flow-conservation pass: replays the interactions in time order,
/// letting each node accumulate a decaying balance of received flow; with
/// probability `config.propagation` an outgoing interaction *forwards* a
/// chunk of that balance instead of a freshly sampled amount.
///
/// This is what makes flow motifs statistically significant in the
/// synthetic data, exactly as in real networks (paper §6.3: flow "is
/// transferred from one node to another", not generated independently).
fn propagate_flows(config: &GeneratorConfig, rng: &mut StdRng, g: &mut TemporalMultigraph) {
    if config.propagation <= 0.0 {
        return;
    }
    let halflife = config.propagation_window.max(1) as f64;
    let mean_flow = config.flow.mean();
    let round_to_count = matches!(config.flow, FlowDistribution::SmallCount { .. });
    let interactions = g.interactions_mut();
    let mut order: Vec<usize> = (0..interactions.len()).collect();
    order.sort_by_key(|&i| interactions[i].time);

    // (decayed balance, last update time) per node.
    let mut balances: flowmotif_util::FxHashMap<u32, (f64, i64)> =
        flowmotif_util::FxHashMap::default();
    let decayed = |balances: &flowmotif_util::FxHashMap<u32, (f64, i64)>, node: u32, now: i64| {
        let (b, last) = balances.get(&node).copied().unwrap_or((0.0, now));
        b * 0.5f64.powf((now - last).max(0) as f64 / halflife)
    };
    for i in order {
        let (from, to, t) = (interactions[i].from, interactions[i].to, interactions[i].time);
        let src_balance = decayed(&balances, from, t);
        let mut flow = interactions[i].flow;
        if src_balance > 0.5 * mean_flow && rng.random::<f64>() < config.propagation {
            // Forward 50-95% of the recently received flow.
            flow = src_balance * rng.random_range(0.5..0.95);
            if round_to_count {
                flow = flow.round().max(1.0);
            }
            balances.insert(from, ((src_balance - flow).max(0.0), t));
        } else {
            balances.insert(from, (src_balance, t));
        }
        interactions[i].flow = flow;
        let dst_balance = decayed(&balances, to, t);
        balances.insert(to, (dst_balance + flow, t));
    }

    // Forwarded balances compound, inflating the mean; rescale so the
    // Table-3 "avg flow per edge" shape target still holds. Rescaling
    // preserves the path correlations the pass created.
    let actual_mean =
        interactions.iter().map(|i| i.flow).sum::<f64>() / interactions.len().max(1) as f64;
    if actual_mean > 0.0 {
        let scale = mean_flow / actual_mean;
        for i in interactions.iter_mut() {
            i.flow *= scale;
            if round_to_count {
                i.flow = i.flow.round().max(1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmotif_graph::{GraphStats, TimeSeriesGraph};

    fn base_config() -> GeneratorConfig {
        GeneratorConfig {
            num_nodes: 300,
            num_pairs: 900,
            mean_edges_per_pair: 2.0,
            time_span: 10_000,
            time_granularity: 1,
            node_skew: 1.5,
            closure_bias: 0.1,
            propagation: 0.0,
            propagation_window: 0,
            flow: FlowDistribution::SmallCount { lambda: 1.0 },
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let c = base_config();
        let a = generate(&c, 7);
        let b = generate(&c, 7);
        assert_eq!(a.interactions(), b.interactions());
        let c2 = generate(&c, 8);
        assert_ne!(a.interactions(), c2.interactions());
    }

    #[test]
    fn shape_matches_config() {
        let c = base_config();
        let g = generate(&c, 1);
        let ts: TimeSeriesGraph = (&g).into();
        let s = GraphStats::of(&ts);
        assert_eq!(s.num_connected_pairs, 900);
        // Multiplicity ≈ 2 (Poisson noise allowed).
        assert!((s.avg_edges_per_pair - 2.0).abs() < 0.2, "{}", s.avg_edges_per_pair);
        // Mean flow ≈ 2.
        assert!((s.avg_flow_per_edge - 2.0).abs() < 0.2, "{}", s.avg_flow_per_edge);
        assert!(s.time_max.unwrap() < 10_000);
        assert!(s.time_min.unwrap() >= 0);
    }

    #[test]
    fn granularity_buckets_timestamps() {
        let mut c = base_config();
        c.time_granularity = 30;
        let g = generate(&c, 3);
        assert!(g.interactions().iter().all(|i| i.time % 30 == 0));
    }

    #[test]
    fn dense_fallback_covers_small_graphs() {
        let c = GeneratorConfig {
            num_nodes: 5,
            num_pairs: 20, // == all ordered pairs
            mean_edges_per_pair: 1.0,
            time_span: 100,
            time_granularity: 1,
            node_skew: 3.0, // heavy skew would never hit all pairs by sampling
            closure_bias: 0.0,
            propagation: 0.0,
            propagation_window: 0,
            flow: FlowDistribution::Uniform { lo: 1.0, hi: 2.0 },
        };
        let g = generate(&c, 5);
        let ts: TimeSeriesGraph = (&g).into();
        assert_eq!(ts.num_pairs(), 20);
    }

    #[test]
    fn pair_target_is_capped_at_complete_graph() {
        let c = GeneratorConfig {
            num_nodes: 4,
            num_pairs: 1000,
            mean_edges_per_pair: 1.0,
            time_span: 100,
            time_granularity: 1,
            node_skew: 1.0,
            closure_bias: 0.0,
            propagation: 0.0,
            propagation_window: 0,
            flow: FlowDistribution::Uniform { lo: 1.0, hi: 2.0 },
        };
        let g = generate(&c, 5);
        let ts: TimeSeriesGraph = (&g).into();
        assert_eq!(ts.num_pairs(), 12);
    }

    #[test]
    fn flows_are_positive() {
        for flow in [
            FlowDistribution::LogNormal { mu: 0.0, sigma: 1.5 },
            FlowDistribution::SmallCount { lambda: 0.9 },
            FlowDistribution::Uniform { lo: 0.5, hi: 9.0 },
        ] {
            let mut c = base_config();
            c.flow = flow;
            let g = generate(&c, 11);
            assert!(g.interactions().iter().all(|i| i.flow > 0.0));
        }
    }

    #[test]
    fn skew_creates_hubs() {
        let mut c = base_config();
        c.node_skew = 2.5;
        c.num_pairs = 2000;
        let g = generate(&c, 13);
        let ts: TimeSeriesGraph = (&g).into();
        let s = GraphStats::of(&ts);
        // A heavy-tailed graph has a hub far above the mean degree.
        let mean_deg = s.num_connected_pairs as f64 / s.num_nodes as f64;
        assert!(s.max_out_degree as f64 > 3.0 * mean_deg);
    }
}
