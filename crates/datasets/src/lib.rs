//! Synthetic workloads for the flow-motif experiments.
//!
//! The paper evaluates on three proprietary datasets (a bitcoin user
//! graph, a Facebook interaction network, and NYC yellow-taxi passenger
//! flows). None are redistributable, so this crate generates synthetic
//! networks that reproduce the *shape* parameters the paper reports in
//! Table 3 and §6.1 — degree skew, parallel-edge multiplicity, flow
//! distribution, density — at laptop scale. Time spans are compressed so
//! that the expected number of interactions per `δ`-window is in the
//! regime where the paper's instance counts arise at the paper's default
//! `δ` values (see `DESIGN.md`, Substitutions).
//!
//! Also here: the flow-permutation null model of §6.3 and the time-prefix
//! samples (B1–B5 / F1–F5 / T1–T4) of §6.2.4.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod dataset;
pub mod generate;
pub mod permute;
pub mod rng;
pub mod sampling;

pub use config::{FlowDistribution, GeneratorConfig};
pub use dataset::Dataset;
pub use generate::generate;
pub use permute::permute_flows;
pub use sampling::{time_prefix_samples, PrefixSample};
