//! Minimal JSON value model and serialization.
//!
//! The CLI's `--json` output and the experiment binaries' `--json` dumps
//! are the only JSON producers in the workspace, so instead of `serde` +
//! `serde_json` this module provides a small [`Json`] tree, the [`ToJson`]
//! conversion trait, and compact/pretty writers. Public result types
//! implement `ToJson` by hand (see the [`crate::impl_to_json!`] helper);
//! ad-hoc objects are built with the [`crate::json!`] macro.

use std::fmt;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any integer (covers `u64` and `i64` without loss).
    Int(i128),
    /// A floating-point number. Non-finite values serialize as `null`,
    /// matching `serde_json`'s behaviour.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    // Rust's float Display is already a valid JSON number.
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        f.write_str(&s)
    }
}

/// Serializes any [`ToJson`] value compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string()
}

/// Serializes any [`ToJson`] value with two-space indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    let mut s = String::new();
    value.to_json().write(&mut s, Some(2), 0);
    s
}

/// Conversion into a [`Json`] tree — the workspace's stand-in for
/// `serde::Serialize`.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
    )*};
}

impl_tojson_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    /// Tuples serialize as two-element arrays, as `serde` does.
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

/// Builds a [`Json`] value with a `serde_json::json!`-like syntax:
/// `json!({"key": expr, ...})`, `json!([a, b])`, or `json!(expr)` where
/// every expression implements [`ToJson`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::json::Json::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::json::Json::Array(vec![ $( $crate::json::ToJson::to_json(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::json::Json::Object(vec![
            $( (($key).to_string(), $crate::json::ToJson::to_json(&$val)) ),*
        ])
    };
    ($e:expr) => { $crate::json::ToJson::to_json(&$e) };
}

/// Implements [`ToJson`] for a struct by listing its fields:
/// `impl_to_json!(GraphStats { num_nodes, num_interactions, ... });`
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Object(vec![
                    $( (
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    ) ),+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(json!(true).to_string(), "true");
        assert_eq!(json!(42u64).to_string(), "42");
        assert_eq!(json!(-7i64).to_string(), "-7");
        assert_eq!(json!(1.5).to_string(), "1.5");
        assert_eq!(json!(f64::INFINITY).to_string(), "null");
        assert_eq!(json!("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn string_escaping() {
        let s = "a\"b\\c\nd\te\u{1}";
        assert_eq!(json!(s).to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn containers_serialize() {
        assert_eq!(json!(vec![1u32, 2, 3]).to_string(), "[1,2,3]");
        assert_eq!(json!(Option::<u32>::None).to_string(), "null");
        assert_eq!(json!(Some(5u32)).to_string(), "5");
        assert_eq!(json!(("a", 1u32)).to_string(), "[\"a\",1]");
    }

    #[test]
    fn object_macro_and_get() {
        let v = json!({"name": "M(3,3)", "count": 7u64, "nested": json!([1u8])});
        assert_eq!(v.to_string(), "{\"name\":\"M(3,3)\",\"count\":7,\"nested\":[1]}");
        assert_eq!(v.get("count"), Some(&Json::Int(7)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({"a": 1u8, "b": json!([2u8])});
        let s = to_string_pretty(&v);
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
        assert_eq!(to_string_pretty(&Json::Array(vec![])), "[]");
    }

    #[test]
    fn impl_to_json_macro_works() {
        struct P {
            x: u32,
            y: Option<f64>,
        }
        crate::impl_to_json!(P { x, y });
        let p = P { x: 3, y: None };
        assert_eq!(to_string(&p), "{\"x\":3,\"y\":null}");
    }
}
