//! Self-contained seedable random number generation.
//!
//! The workspace builds fully offline, so instead of the `rand` crate this
//! module provides the small surface the rest of the workspace needs:
//! [`StdRng`] (a xoshiro256++ generator), [`SeedableRng::seed_from_u64`],
//! and the [`RngExt`] extension trait with `random::<T>()` and
//! `random_range(..)`. Determinism is part of the contract: the same seed
//! always yields the same stream, across platforms and releases within the
//! same major version (dataset generation and `--seed` reproducibility
//! depend on it).

/// Types that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit output interface.
pub trait RngCore {
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;
}

/// The workspace's default generator: xoshiro256++, seeded via SplitMix64.
///
/// Fast, tiny, and statistically solid for simulation workloads (it is the
/// same family `rand`'s small RNGs use). Not cryptographically secure —
/// nothing in this workspace needs that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to fill xoshiro state
        // from a small seed (avoids the all-zero state by construction).
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Values samplable uniformly over their whole domain (`rng.random::<T>()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with full 53-bit mantissa resolution.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable into a `T` (`rng.random_range(lo..hi)`).
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` via Lemire's multiply-shift reduction.
/// The modulo bias is < span / 2^64 — irrelevant for simulation use.
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Full-domain range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        // Rounding in the affine map can land exactly on `end` (e.g. when
        // `end - start` underflows resolution); clamp below the exclusive
        // bound to honour the half-open contract.
        let v = self.start + (self.end - self.start) * f64::sample(rng);
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

/// Convenience sampling methods, mirroring the call surface the workspace
/// uses (`random`, `random_range`, `random_bool`).
pub trait RngExt: RngCore {
    /// Uniform value over `T`'s domain (`[0, 1)` for floats).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in the given range.
    #[inline]
    fn random_range<T, Rng: SampleRange<T>>(&mut self, range: Rng) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_are_in_range_and_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&b| b));
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.random_range(0usize..=9)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn signed_and_float_ranges() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.random_range(-50i64..50);
            assert!((-50..50).contains(&x));
            let y = r.random_range(0.5f64..0.95);
            assert!((0.5..0.95).contains(&y));
        }
    }

    #[test]
    fn float_range_never_returns_the_exclusive_bound() {
        // A range of one ULP maximises the rounding pressure on the
        // affine map: without clamping, the top samples round to `end`.
        let mut r = StdRng::seed_from_u64(6);
        let (lo, hi) = (1.0f64, 1.0 + f64::EPSILON);
        for _ in 0..10_000 {
            let x = r.random_range(lo..hi);
            assert!(lo <= x && x < hi, "{x}");
        }
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.1));
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut r = StdRng::seed_from_u64(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            match r.random_range(0usize..=1) {
                0 => lo_seen = true,
                1 => hi_seen = true,
                _ => unreachable!(),
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
