//! Dependency-free utility layer for the flowmotif workspace.
//!
//! The build environment is fully offline (no crates-io registry), so the
//! handful of external crates the original code leaned on are replaced by
//! small local implementations:
//!
//! * [`rng`] — a seedable xoshiro256++ generator with the `StdRng` /
//!   `SeedableRng` / `RngExt` call surface (replaces `rand`).
//! * [`hash`] — `FxHashMap` / `FxHashSet` over the rustc hash function
//!   (replaces `rustc_hash`).
//! * [`mod@json`] — a minimal JSON tree + `ToJson` trait + `json!` macro
//!   (replaces `serde` / `serde_json` for the CLI's output paths).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hash;
pub mod json;
pub mod rng;

pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use json::{to_string, to_string_pretty, Json, ToJson};
pub use rng::{RngCore, RngExt, SampleRange, SeedableRng, Standard, StdRng};
