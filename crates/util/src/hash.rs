//! `FxHash` — the rustc hash function, re-implemented locally so the
//! workspace has no external dependency. It is a simple multiply-rotate
//! mix: extremely fast for the small integer keys (node ids, pair ids,
//! `(u32, u32)` tuples) that dominate this workspace, at the cost of not
//! being DoS-resistant (fine: all keys are internal).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc `FxHasher`: word-at-a-time rotate-xor-multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i + 1), i as u64 * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(10, 11)), Some(&20));
        let mut s: FxHashSet<u32> = FxHashSet::with_capacity_and_hasher(16, Default::default());
        assert!(s.insert(5));
        assert!(!s.insert(5));
    }

    #[test]
    fn equal_keys_hash_equal() {
        use std::hash::BuildHasher;
        let build = BuildHasherDefault::<FxHasher>::default();
        let hash_of = |k: &(u32, u32)| build.hash_one(k);
        assert_eq!(hash_of(&(1, 2)), hash_of(&(1, 2)));
        assert_ne!(hash_of(&(1, 2)), hash_of(&(2, 1)));
    }

    #[test]
    fn byte_slices_of_different_length_differ() {
        let mut a = FxHasher::default();
        a.write(b"abcdefgh_tail");
        let mut b = FxHasher::default();
        b.write(b"abcdefgh_tali");
        assert_ne!(a.finish(), b.finish());
    }
}
