//! Streaming ingestion and a resident query engine for flow motif search.
//!
//! The paper studies *interaction networks* — inherently temporal edge
//! streams — but the batch pipeline requires every interaction up front
//! (`GraphBuilder::build_time_series_graph`) and re-runs phase P1+P2 from
//! scratch per invocation. This crate opens the long-running-service
//! workload instead:
//!
//! * [`IncrementalGraph`] accepts out-of-order edge appends and maintains
//!   the per-pair sorted [`flowmotif_graph::InteractionSeries`] (and its
//!   prefix sums) incrementally: in-order events append in O(1), stragglers
//!   buffer in a small unsorted per-pair tail that is merged on read or on
//!   an explicit [`IncrementalGraph::compact`].
//! * [`SlidingWindow`] is an eviction policy: interactions older than a
//!   configurable horizon behind the stream watermark are dropped in
//!   amortized batches, keeping graph statistics consistent.
//! * [`QueryEngine`] is the session API — ingest once, then answer
//!   repeated two-phase motif searches restricted to a
//!   [`flowmotif_graph::TimeWindow`], *borrowing* the resident graph
//!   (`flowmotif_core::enumerate_window_with_sink`) instead of rebuilding
//!   it per query.
//! * [`SnapshotEngine`] adds concurrent readers on top: ingestion keeps
//!   appending under a writer lock while queries run against cheap,
//!   immutable, epoch-stamped [`Snapshot`]s of the compacted graph —
//!   the substrate of the `flowmotif-serve` network front-end.
//!
//! ```
//! use flowmotif_core::catalog;
//! use flowmotif_stream::QueryEngine;
//!
//! let mut engine = QueryEngine::new();
//! engine.ingest([(0u32, 1u32, 10i64, 5.0), (1, 2, 12, 4.0)]).unwrap();
//! let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
//! assert_eq!(engine.count(&motif, None).0, 1);
//! // Keep streaming; the engine updates state instead of rebuilding.
//! engine.ingest([(2u32, 0u32, 14i64, 3.0)]).unwrap();
//! let cycle = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
//! assert_eq!(engine.count(&cycle, None).0, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod epoch;
pub mod incremental;
pub mod metrics;
pub mod snapshot;
pub mod standing;
pub mod window;

pub use engine::{EngineStats, QueryEngine, QueryResult};
pub use epoch::{EpochEngine, EpochSnapshot};
pub use incremental::IncrementalGraph;
pub use snapshot::{PublishReport, Snapshot, SnapshotEngine};
pub use standing::{StandingEvent, StandingQueries, StandingQuery};
pub use window::SlidingWindow;
