//! Epoch publishing over a sealed segment: the out-of-core counterpart
//! of [`crate::SnapshotEngine`].
//!
//! [`SnapshotEngine`](crate::SnapshotEngine) keeps the whole resident
//! graph in RAM and pays an O(pairs) structural clone per publish. The
//! [`EpochEngine`] instead anchors every epoch on a **sealed immutable
//! segment file** (see [`flowmotif_graph::segment`]) and keeps only the
//! stream's tail in RAM:
//!
//! * the **base** is a memory-mapped [`SegmentStore`] — shareable
//!   read-only across processes, never copied, never walked at publish
//!   time;
//! * the **delta** is a per-pair accumulator of everything appended
//!   since the base was sealed (plus, for touched base pairs, a copy of
//!   their base events, maintaining the [`OverlayStore`]
//!   full-merged-series invariant);
//! * a **publish** builds a small [`TimeSeriesGraph`] from the delta
//!   and composes it with the shared base into an epoch-stamped
//!   [`EpochSnapshot`] — **O(delta)** work, independent of how many
//!   pairs the base holds;
//! * a **reseal** streams base ∪ delta through a
//!   [`SegmentWriter`] into a fresh
//!   segment (atomically replacing `graph.seg` — live maps of the old
//!   file stay valid) and resets the delta, bounding delta growth
//!   without ever holding the merged graph in memory.
//!
//! Eviction is not supported on this engine: sealed segments are
//! immutable by design. Bound retention by resealing from a filtered
//! source instead.

use crate::engine::{EngineStats, QueryResult};
use crate::snapshot::PublishReport;
use crate::standing::{StandingEvent, StandingQueries};
use flowmotif_core::{
    enumerate_window_with_sink_scratch, enumerate_with_sink_scratch, CollectSink, CountSink,
    ExtensionOrder, Motif, SearchOptions, SearchScratch, SearchStats, TraceSink,
};
use flowmotif_graph::{
    Event, Flow, GraphError, GraphStore, NodeId, OverlayStore, SegmentStore, SegmentWriter,
    TimeSeriesGraph, TimeWindow, Timestamp,
};
use flowmotif_util::FxHashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// An immutable epoch view: the shared sealed segment plus the delta
/// frozen at publish time, queryable exactly like a
/// [`Snapshot`](crate::Snapshot).
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    store: Arc<OverlayStore>,
    epoch: u64,
    stats: EngineStats,
    opts: SearchOptions,
}

impl EpochSnapshot {
    /// The publish sequence number (0 = the freshly opened base).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Engine statistics frozen at publish time.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The composite segment+delta graph; all core search drivers run
    /// on it directly.
    pub fn graph(&self) -> &OverlayStore {
        &self.store
    }

    /// Two-phase motif search over this epoch, restricted to `bounds`
    /// when given. Takes `&self`: any number of threads may search one
    /// epoch concurrently.
    pub fn query(&self, motif: &Motif, bounds: Option<TimeWindow>) -> QueryResult {
        self.query_with(motif, bounds, &mut SearchScratch::default())
    }

    /// [`EpochSnapshot::query`] running out of a caller-provided search
    /// arena (see [`crate::Snapshot::query_with`]).
    pub fn query_with(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
    ) -> QueryResult {
        self.query_traced(motif, bounds, scratch, None)
    }

    /// [`EpochSnapshot::query_with`] with a per-query [`TraceSink`]
    /// layered over the engine's search options (see
    /// [`crate::Snapshot::query_traced`]).
    pub fn query_traced(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
        trace: Option<&'static dyn TraceSink>,
    ) -> QueryResult {
        self.query_ordered(motif, bounds, scratch, trace, None)
    }

    /// [`EpochSnapshot::query_traced`] with a per-query P1
    /// [`ExtensionOrder`] override (see [`crate::Snapshot::query_ordered`]).
    pub fn query_ordered(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
        trace: Option<&'static dyn TraceSink>,
        order: Option<ExtensionOrder>,
    ) -> QueryResult {
        let mut opts = self.opts.with_trace(trace);
        if let Some(o) = order {
            opts = opts.with_extension_order(o);
        }
        let g = &*self.store;
        let mut sink = CollectSink::default();
        let stats = match bounds {
            Some(w) => enumerate_window_with_sink_scratch(g, motif, w, opts, &mut sink, scratch),
            None => enumerate_with_sink_scratch(g, motif, opts, &mut sink, scratch),
        };
        QueryResult { groups: sink.groups, stats }
    }

    /// Counts maximal instances without materialising them.
    pub fn count(&self, motif: &Motif, bounds: Option<TimeWindow>) -> (u64, SearchStats) {
        self.count_with(motif, bounds, &mut SearchScratch::default())
    }

    /// [`EpochSnapshot::count`] running out of a caller-provided arena.
    pub fn count_with(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
    ) -> (u64, SearchStats) {
        self.count_traced(motif, bounds, scratch, None)
    }

    /// [`EpochSnapshot::count_with`] with a per-query [`TraceSink`] (see
    /// [`crate::Snapshot::query_traced`]).
    pub fn count_traced(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
        trace: Option<&'static dyn TraceSink>,
    ) -> (u64, SearchStats) {
        self.count_ordered(motif, bounds, scratch, trace, None)
    }

    /// [`EpochSnapshot::count_traced`] with a per-query P1
    /// [`ExtensionOrder`] override (see [`crate::Snapshot::query_ordered`]).
    pub fn count_ordered(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
        trace: Option<&'static dyn TraceSink>,
        order: Option<ExtensionOrder>,
    ) -> (u64, SearchStats) {
        let mut opts = self.opts.with_trace(trace);
        if let Some(o) = order {
            opts = opts.with_extension_order(o);
        }
        let g = &*self.store;
        let mut sink = CountSink::default();
        let stats = match bounds {
            Some(w) => enumerate_window_with_sink_scratch(g, motif, w, opts, &mut sink, scratch),
            None => enumerate_with_sink_scratch(g, motif, opts, &mut sink, scratch),
        };
        (sink.count, stats)
    }
}

/// One pair's delta accumulator.
#[derive(Debug)]
struct PendingSeries {
    /// Full merged events: a copy of the pair's base events (when the
    /// pair exists in the base) followed by the appended tail.
    events: Vec<Event>,
    /// How many of `events` came from the base (0 for new pairs).
    from_base: usize,
}

/// State under the writer lock.
#[derive(Debug)]
struct EpochWriter {
    base: Arc<SegmentStore>,
    pending: FxHashMap<(NodeId, NodeId), PendingSeries>,
    /// Appended (delta-only) events currently pending.
    delta_events: usize,
    /// Pairs touched since the last non-no-op publish.
    dirty: flowmotif_util::FxHashSet<(NodeId, NodeId)>,
    num_nodes: usize,
    watermark: Option<Timestamp>,
    /// Lifetime appends through this engine.
    appended: u64,
    /// `appended` at the last publish; equal means publish is a no-op.
    published_appended: u64,
    epoch: u64,
}

impl EpochWriter {
    /// Validates and buffers one interaction into the delta accumulator.
    fn push_edge(&mut self, u: NodeId, v: NodeId, t: Timestamp, f: Flow) -> Result<(), GraphError> {
        if !(f.is_finite() && f > 0.0) {
            return Err(GraphError::InvalidFlow { flow: f, from: u as u64, to: v as u64 });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u as u64));
        }
        {
            let EpochWriter { base, pending, .. } = self;
            // First touch: seed with the pair's base events so the
            // overlay can serve the pair from the delta alone.
            let entry = pending.entry((u, v)).or_insert_with(|| {
                let events = if (u as usize) < base.num_nodes() {
                    base.pair_id(u, v).map(|p| base.series(p).events().to_vec()).unwrap_or_default()
                } else {
                    Vec::new()
                };
                PendingSeries { from_base: events.len(), events }
            });
            entry.events.push(Event::new(t, f));
        }
        self.dirty.insert((u, v));
        self.delta_events += 1;
        self.appended += 1;
        self.num_nodes = self.num_nodes.max(u.max(v) as usize + 1);
        self.watermark = Some(self.watermark.map_or(t, |wm| wm.max(t)));
        Ok(())
    }

    fn stats(&self) -> EngineStats {
        let new_pairs = self.pending.values().filter(|p| p.from_base == 0).count();
        EngineStats {
            interactions: self.base.num_interactions() + self.delta_events,
            pairs: self.base.num_pairs() + new_pairs,
            watermark: self.watermark,
            floor: None,
            appended: self.appended,
            evicted: 0,
        }
    }
}

/// A streaming engine whose epochs are sealed segments plus an in-RAM
/// delta overlay (see the module docs).
///
/// All methods take `&self`; share it as an `Arc<EpochEngine>` between
/// an ingesting thread and any number of query threads — the same shape
/// as [`SnapshotEngine`](crate::SnapshotEngine), minus eviction.
#[derive(Debug)]
pub struct EpochEngine {
    dir: PathBuf,
    writer: Mutex<EpochWriter>,
    published: RwLock<Arc<EpochSnapshot>>,
    publish_every: usize,
    opts: SearchOptions,
    last_publish: Mutex<PublishReport>,
    /// Readiness hook fired after every epoch install (see
    /// [`EpochEngine::set_publish_hook`]).
    publish_hook: crate::snapshot::PublishHookSlot,
}

impl EpochEngine {
    /// Opens the packed segment directory `dir` (as produced by
    /// `flowmotif pack` or a previous [`EpochEngine::reseal`]) and
    /// publishes its contents as epoch 0.
    pub fn open(dir: &Path) -> Result<Self, GraphError> {
        let base = Arc::new(SegmentStore::open(dir)?);
        let opts = SearchOptions::default();
        let writer = EpochWriter {
            num_nodes: base.num_nodes(),
            watermark: base.time_span().map(|(_, hi)| hi),
            base: Arc::clone(&base),
            pending: FxHashMap::default(),
            delta_events: 0,
            dirty: Default::default(),
            appended: 0,
            published_appended: 0,
            epoch: 0,
        };
        let snapshot = Arc::new(EpochSnapshot {
            stats: writer.stats(),
            store: Arc::new(OverlayStore::new(base, TimeSeriesGraph::default())),
            epoch: 0,
            opts,
        });
        Ok(Self {
            dir: dir.to_path_buf(),
            writer: Mutex::new(writer),
            published: RwLock::new(snapshot),
            publish_every: 0,
            opts,
            last_publish: Mutex::new(PublishReport::default()),
            publish_hook: Default::default(),
        })
    }

    /// Registers a callback invoked with the new epoch number every time
    /// an epoch is installed (explicit [`EpochEngine::publish`],
    /// auto-publish, or [`EpochEngine::reseal`]). At most one hook is
    /// kept; a second call replaces the first. The hook may run while
    /// the writer lock is held, so it must be cheap and must not call
    /// back into the engine — serve uses it to nudge its event loop.
    pub fn set_publish_hook(&self, hook: impl Fn(u64) + Send + Sync + 'static) {
        self.publish_hook.set(hook);
    }

    /// Overrides the [`SearchOptions`] used by every epoch query,
    /// including the already-published epoch 0.
    pub fn search_options(mut self, opts: SearchOptions) -> Self {
        self.opts = opts;
        {
            let mut slot = self.published.write().unwrap();
            let mut snap = (**slot).clone();
            snap.opts = opts;
            *slot = Arc::new(snap);
        }
        self
    }

    /// Auto-publishes once `n` appends accumulate since the last publish
    /// (0 disables; batches publish once at the end, like
    /// [`SnapshotEngine::publish_every`](crate::SnapshotEngine::publish_every)).
    pub fn publish_every(mut self, n: usize) -> Self {
        self.publish_every = n;
        self
    }

    /// Appends one interaction (validated like the in-memory engines)
    /// and returns the stream watermark after it. Auto-publishes when
    /// due.
    pub fn append(
        &self,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        flow: Flow,
    ) -> Result<Timestamp, GraphError> {
        self.ingest([(from, to, time, flow)])?;
        Ok(self.writer.lock().unwrap().watermark.unwrap_or(time))
    }

    /// Appends a batch; returns how many were appended. Fails on the
    /// first invalid interaction (earlier ones stay applied).
    /// Auto-publishes at most once, after the whole batch.
    pub fn ingest<I>(&self, batch: I) -> Result<usize, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId, Timestamp, Flow)>,
    {
        let mut w = self.writer.lock().unwrap();
        let mut n = 0usize;
        let r: Result<(), GraphError> = (|| {
            for (u, v, t, f) in batch {
                w.push_edge(u, v, t, f)?;
                n += 1;
            }
            Ok(())
        })();
        let due = self.publish_every > 0
            && (w.appended - w.published_appended) as usize >= self.publish_every;
        if due {
            self.publish_locked(&mut w);
        }
        r.map(|()| n)
    }

    /// Registers a standing query in `subs`, seeded from the *writer*
    /// state (base ∪ current delta), so subsequent
    /// [`EpochEngine::append_standing`] deltas line up exactly with the
    /// stream. Returns the subscription id.
    pub fn subscribe_standing(
        &self,
        subs: &mut StandingQueries,
        motif: Motif,
        bounds: Option<TimeWindow>,
    ) -> u64 {
        let w = self.writer.lock().unwrap();
        let overlay = OverlayStore::new(Arc::clone(&w.base), self.delta_graph(&w));
        subs.subscribe(&overlay, motif, bounds)
    }

    /// [`EpochEngine::append`] that additionally delta-evaluates the
    /// standing queries in `subs` against a transient base ∪ delta
    /// overlay built under the writer lock, pushing every instance
    /// entering a standing result set onto `out`.
    ///
    /// Sealed segments never evict, and a [`EpochEngine::reseal`] merges
    /// data-identically (base ∪ delta before ≡ new base after), so
    /// appends are the only change standing queries ever see here. Note
    /// the transient overlay costs O(delta) per call; reseal
    /// periodically to keep the delta small.
    pub fn append_standing(
        &self,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        flow: Flow,
        subs: &mut StandingQueries,
        out: &mut Vec<StandingEvent>,
    ) -> Result<Timestamp, GraphError> {
        let mut w = self.writer.lock().unwrap();
        w.push_edge(from, to, time, flow)?;
        if !subs.is_empty() {
            let overlay = OverlayStore::new(Arc::clone(&w.base), self.delta_graph(&w));
            subs.on_append(&overlay, from, to, time, out);
        }
        let due = self.publish_every > 0
            && (w.appended - w.published_appended) as usize >= self.publish_every;
        if due {
            self.publish_locked(&mut w);
        }
        Ok(w.watermark.unwrap_or(time))
    }

    /// Publishes the current base+delta as a new epoch and returns its
    /// number; a no-op returning the current epoch when nothing was
    /// appended since the last publish. Cost is O(delta) — the sealed
    /// base is shared by `Arc`, never walked or copied.
    pub fn publish(&self) -> u64 {
        let mut w = self.writer.lock().unwrap();
        self.publish_locked(&mut w)
    }

    fn publish_locked(&self, w: &mut EpochWriter) -> u64 {
        if w.appended == w.published_appended {
            return w.epoch;
        }
        let started = Instant::now();
        w.epoch += 1;
        w.published_appended = w.appended;
        let dirty_pairs = w.dirty.len();
        w.dirty.clear();
        let delta = self.delta_graph(w);
        let snapshot = Arc::new(EpochSnapshot {
            store: Arc::new(OverlayStore::new(Arc::clone(&w.base), delta)),
            epoch: w.epoch,
            stats: w.stats(),
            opts: self.opts,
        });
        *self.published.write().unwrap() = snapshot;
        let report = PublishReport { epoch: w.epoch, dirty_pairs, duration: started.elapsed() };
        crate::metrics::record_publish(report.epoch, report.dirty_pairs, report.duration);
        *self.last_publish.lock().unwrap() = report;
        self.publish_hook.fire(w.epoch);
        w.epoch
    }

    /// The delta as a small standalone graph — O(delta) to build.
    fn delta_graph(&self, w: &EpochWriter) -> TimeSeriesGraph {
        let pairs: Vec<_> = w.pending.iter().map(|(&k, p)| (k, p.events.clone())).collect();
        TimeSeriesGraph::from_pair_events(w.num_nodes, pairs)
    }

    /// Merges base ∪ delta into a fresh sealed segment (streamed through
    /// a [`SegmentWriter`], atomically replacing the directory's
    /// `graph.seg`; epochs already published keep their old map), resets
    /// the delta, and publishes the new base. Returns the new epoch.
    pub fn reseal(&self) -> Result<u64, GraphError> {
        let mut w = self.writer.lock().unwrap();
        if w.pending.is_empty() {
            return Ok(w.epoch); // no delta: the base is already sealed
        }
        let started = Instant::now();
        let overlay = OverlayStore::new(Arc::clone(&w.base), self.delta_graph(&w));
        let mut writer = SegmentWriter::create(&self.dir, w.num_nodes, overlay.time_span())?;
        let mut failed: Result<(), GraphError> = Ok(());
        overlay.for_each_merged_series(|u, v, s| {
            if failed.is_err() {
                return;
            }
            failed = (|| {
                writer.begin_pair(u, v)?;
                for e in s.events() {
                    writer.push_event(e.time, e.flow)?;
                }
                Ok(())
            })();
        });
        failed?;
        writer.finish()?;
        w.base = Arc::new(SegmentStore::open(&self.dir)?);
        w.pending.clear();
        w.delta_events = 0;
        w.dirty.clear();
        w.epoch += 1;
        w.published_appended = w.appended;
        let snapshot = Arc::new(EpochSnapshot {
            store: Arc::new(OverlayStore::new(Arc::clone(&w.base), TimeSeriesGraph::default())),
            epoch: w.epoch,
            stats: w.stats(),
            opts: self.opts,
        });
        *self.published.write().unwrap() = snapshot;
        crate::metrics::record_reseal(started.elapsed());
        self.publish_hook.fire(w.epoch);
        Ok(w.epoch)
    }

    /// Cost telemetry of the most recent publish.
    pub fn publish_report(&self) -> PublishReport {
        *self.last_publish.lock().unwrap()
    }

    /// Live writer-side statistics (includes not-yet-published appends).
    pub fn stats(&self) -> EngineStats {
        self.writer.lock().unwrap().stats()
    }

    /// The currently published epoch snapshot (one `RwLock` read + `Arc`
    /// clone; stays valid however far the stream advances).
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.published.read().unwrap())
    }

    /// Epoch of the currently published snapshot.
    pub fn published_epoch(&self) -> u64 {
        self.published.read().unwrap().epoch
    }
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EpochSnapshot>();
    assert_send_sync::<EpochEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use flowmotif_core::catalog;
    use flowmotif_graph::{segment::write_segment, GraphBuilder};

    const FIG2: [(NodeId, NodeId, Timestamp, Flow); 10] = [
        (3, 2, 1, 2.0),
        (3, 2, 3, 5.0),
        (2, 0, 10, 10.0),
        (3, 0, 11, 10.0),
        (0, 1, 13, 5.0),
        (0, 1, 15, 7.0),
        (1, 2, 18, 20.0),
        (2, 3, 19, 5.0),
        (2, 3, 21, 4.0),
        (1, 3, 23, 7.0),
    ];

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "flowmotif-epoch-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn sealed(tag: &str, edges: &[(NodeId, NodeId, Timestamp, Flow)]) -> std::path::PathBuf {
        let mut b = GraphBuilder::new();
        b.extend_interactions(edges.iter().copied());
        let dir = tmp_dir(tag);
        write_segment(&b.build_time_series_graph(), &dir).unwrap();
        dir
    }

    #[test]
    fn epoch_zero_serves_the_sealed_base() {
        let dir = sealed("base", &FIG2);
        let engine = EpochEngine::open(&dir).unwrap();
        let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();
        let snap = engine.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.count(&motif, None).0, 1);
        assert_eq!(snap.stats().interactions, 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_surface_at_publish_and_match_the_batch_graph() {
        // Seal the first half, stream the second, and compare every
        // epoch query against an in-memory graph of the full prefix.
        let dir = sealed("stream", &FIG2[..5]);
        let engine = EpochEngine::open(&dir).unwrap();
        let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();
        assert_eq!(engine.snapshot().count(&motif, None).0, 0, "half the graph: no cycle yet");

        for (i, &(u, v, t, f)) in FIG2[5..].iter().enumerate() {
            engine.append(u, v, t, f).unwrap();
            engine.publish();
            let mut b = GraphBuilder::new();
            b.extend_interactions(FIG2[..5 + i + 1].iter().copied());
            let want = b.build_time_series_graph();
            let snap = engine.snapshot();
            assert_eq!(snap.epoch(), i as u64 + 1);
            assert_eq!(
                snap.count(&motif, None),
                flowmotif_core::count_instances(&want, &motif),
                "after {} streamed edges",
                i + 1
            );
            assert_eq!(snap.stats().interactions, 5 + i + 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn publish_is_noop_without_appends_and_cost_scales_with_delta() {
        let dir = sealed("noop", &FIG2);
        let engine = EpochEngine::open(&dir).unwrap();
        assert_eq!(engine.publish(), 0, "no appends: no new epoch");
        engine.append(0, 2, 30, 1.0).unwrap();
        assert_eq!(engine.publish(), 1);
        assert_eq!(engine.publish(), 1);
        let report = engine.publish_report();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.dirty_pairs, 1, "one pair touched since the last publish");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn old_epochs_survive_a_reseal() {
        let dir = sealed("reseal", &FIG2[..5]);
        let engine = EpochEngine::open(&dir).unwrap();
        engine.ingest(FIG2[5..].iter().copied()).unwrap();
        engine.publish();
        let before = engine.snapshot();
        assert_eq!(before.stats().interactions, 10);

        let epoch = engine.reseal().unwrap();
        assert!(epoch > before.epoch());
        let after = engine.snapshot();
        assert_eq!(after.graph().delta_interactions(), 0, "reseal folds the delta into the base");
        assert_eq!(after.stats().interactions, 10);

        // The resealed segment answers exactly like the old overlay, and
        // the pre-reseal snapshot still works (its map pins the old
        // inode even though graph.seg was replaced).
        let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();
        assert_eq!(after.count(&motif, None).0, 1);
        assert_eq!(before.count(&motif, None).0, 1);

        // And the directory reopens cold to the merged graph.
        let reopened = EpochEngine::open(&dir).unwrap();
        assert_eq!(reopened.snapshot().stats().interactions, 10);
        assert_eq!(reopened.snapshot().count(&motif, None).0, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_publish_and_validation() {
        let dir = sealed("auto", &FIG2[..5]);
        let engine = EpochEngine::open(&dir).unwrap().publish_every(2);
        engine.append(0, 2, 30, 1.0).unwrap();
        assert_eq!(engine.published_epoch(), 0);
        engine.append(0, 2, 31, 1.0).unwrap();
        assert_eq!(engine.published_epoch(), 1);
        assert!(engine.append(0, 0, 32, 1.0).is_err(), "self loop");
        assert!(engine.append(0, 1, 33, -1.0).is_err(), "non-positive flow");
        assert!(engine.append(0, 1, 33, f64::NAN).is_err(), "non-finite flow");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
