//! Sliding-window retention policy for the streaming engine.

use flowmotif_graph::Timestamp;

/// Keeps only the interactions at most a fixed horizon behind the stream
/// watermark.
///
/// The horizon bound is **inclusive**: the eviction floor is
/// `watermark − horizon` and eviction removes interactions with
/// `time < floor`, so an interaction *exactly* `horizon` behind the
/// watermark is retained. Equivalently, at a watermark `w` the retained
/// span is the closed interval `[w − horizon, w]` — `horizon + 1`
/// distinct timestamps on an integer clock (see the
/// `horizon_bound_is_inclusive` regression test).
///
/// The policy is *amortized*: the eviction floor only advances once it has
/// moved by at least `slack` (default `horizon / 8`, at least 1), so a
/// steady stream triggers one O(window) eviction sweep per slack-widths of
/// progress instead of one per append. Between sweeps, up to `slack`
/// timestamps of expired interactions may still be resident. Late events
/// older than the current floor are admitted and survive until the floor
/// passes them again — eviction is a retention bound, not an ingestion
/// filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlidingWindow {
    horizon: Timestamp,
    slack: Timestamp,
    floor: Option<Timestamp>,
}

impl SlidingWindow {
    /// A window keeping interactions with `time >= watermark - horizon`,
    /// with the default eviction slack of `max(horizon / 8, 1)`.
    ///
    /// # Panics
    /// Panics if `horizon < 0`.
    pub fn new(horizon: Timestamp) -> Self {
        Self::with_slack(horizon, (horizon / 8).max(1))
    }

    /// A window with an explicit eviction slack: the floor advances (and
    /// an eviction sweep is requested) only after it would move by at
    /// least `slack`.
    ///
    /// # Panics
    /// Panics if `horizon < 0` or `slack < 1`.
    pub fn with_slack(horizon: Timestamp, slack: Timestamp) -> Self {
        assert!(horizon >= 0, "horizon must be non-negative");
        assert!(slack >= 1, "slack must be positive");
        Self { horizon, slack, floor: None }
    }

    /// The retention horizon.
    pub fn horizon(&self) -> Timestamp {
        self.horizon
    }

    /// The current eviction floor: every interaction with `time < floor`
    /// has been handed to eviction. `None` until the first advance.
    pub fn floor(&self) -> Option<Timestamp> {
        self.floor
    }

    /// Observes the stream watermark; returns `Some(new_floor)` when the
    /// caller should evict interactions older than `new_floor`.
    pub fn advance(&mut self, watermark: Timestamp) -> Option<Timestamp> {
        let target = watermark.saturating_sub(self.horizon);
        match self.floor {
            Some(f) if target.saturating_sub(f) < self.slack => None,
            None if target == Timestamp::MIN => None,
            _ => {
                self.floor = Some(target);
                Some(target)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_advances_in_slack_steps() {
        let mut w = SlidingWindow::with_slack(100, 10);
        assert_eq!(w.advance(50), Some(-50));
        // Watermark creeping forward: no new sweep until slack is covered.
        assert_eq!(w.advance(55), None);
        assert_eq!(w.advance(59), None);
        assert_eq!(w.advance(60), Some(-40));
        assert_eq!(w.floor(), Some(-40));
        // A big jump advances immediately.
        assert_eq!(w.advance(1000), Some(900));
    }

    #[test]
    fn default_slack_scales_with_horizon() {
        let mut w = SlidingWindow::new(800);
        assert_eq!(w.horizon(), 800);
        assert_eq!(w.advance(1000), Some(200));
        assert_eq!(w.advance(1099), None, "less than horizon/8 = 100 progress");
        assert_eq!(w.advance(1100), Some(300));
    }

    #[test]
    fn zero_horizon_keeps_only_the_watermark() {
        let mut w = SlidingWindow::new(0);
        assert_eq!(w.advance(5), Some(5));
        assert_eq!(w.advance(5), None);
        assert_eq!(w.advance(6), Some(6));
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn negative_horizon_panics() {
        let _ = SlidingWindow::new(-1);
    }

    /// Regression test pinning the documented retention semantics: the
    /// horizon bound is *inclusive*. An interaction exactly `horizon`
    /// behind the watermark survives eviction; one time unit older is
    /// dropped.
    #[test]
    fn horizon_bound_is_inclusive() {
        // Policy level: the floor equals `watermark - horizon`, and the
        // eviction contract ("evict `time < floor`") keeps `time == floor`.
        let mut w = SlidingWindow::with_slack(10, 1);
        assert_eq!(w.advance(25), Some(15), "floor = watermark - horizon");

        // Engine level, end to end through `evict_before`.
        let mut engine = crate::QueryEngine::new().with_window(SlidingWindow::with_slack(10, 1));
        engine.try_append(0, 1, 14, 1.0).unwrap(); // horizon + 1 behind: evicted
        engine.try_append(0, 2, 15, 1.0).unwrap(); // exactly horizon behind: kept
        engine.try_append(0, 3, 25, 1.0).unwrap(); // the watermark itself
        let s = engine.stats();
        assert_eq!(s.floor, Some(15));
        assert_eq!(s.evicted, 1, "only the t=14 interaction is outside [15, 25]");
        assert_eq!(engine.graph().time_span(), Some((15, 25)));
    }
}
