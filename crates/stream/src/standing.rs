//! Standing motif queries: per-append delta evaluation feeding a push
//! notification stream.
//!
//! A [`StandingQueries`] set holds any number of registered motif
//! subscriptions, each backed by a [`flowmotif_core::DeltaContext`] that
//! mirrors what a full re-query would return. After every appended
//! interaction (and after every eviction batch) the owning engine calls
//! [`StandingQueries::on_append`] / [`StandingQueries::on_evicted`] with
//! the *current* graph; each subscription refreshes exactly the
//! structural matches the change can have affected and reports every
//! instance entering its result set as a [`StandingEvent`].
//!
//! The set owns one shared [`SearchScratch`] arena, so the steady state —
//! an append that changes no subscription's result — runs without heap
//! allocations (the property the `alloc_profile` bench gates).

use flowmotif_core::{
    DeltaContext, DeltaInstance, DeltaStats, Motif, SearchOptions, SearchScratch, SearchStats,
};
use flowmotif_graph::{Flow, GraphStore, NodeId, TimeWindow, Timestamp};

/// One pushed notification: an instance that just entered the standing
/// result set of subscription `subscription`.
#[derive(Debug, Clone, PartialEq)]
pub struct StandingEvent {
    /// The subscription that produced the event.
    pub subscription: u64,
    /// The structural match's vertex walk, rendered `a-b-c-…`.
    pub nodes: String,
    /// Instance flow `f(G_I)`.
    pub flow: Flow,
    /// Timestamp of the instance's temporally first element.
    pub first_time: Timestamp,
    /// Timestamp of the instance's temporally last element.
    pub last_time: Timestamp,
    /// Total interactions aggregated across the instance's edge-sets.
    pub interactions: u32,
}

impl StandingEvent {
    fn new(subscription: u64, key: &[NodeId], di: &DeltaInstance) -> Self {
        let mut nodes = String::with_capacity(key.len() * 3);
        for (i, n) in key.iter().enumerate() {
            if i > 0 {
                nodes.push('-');
            }
            nodes.push_str(&n.to_string());
        }
        Self {
            subscription,
            nodes,
            flow: di.flow,
            first_time: di.first_time,
            last_time: di.last_time,
            interactions: di.edges.iter().map(|e| e.count).sum(),
        }
    }
}

impl std::fmt::Display for StandingEvent {
    /// The wire payload of an `EVENT` push line (without the prefix).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "id={} match={} flow={} first={} last={} size={}",
            self.subscription,
            self.nodes,
            self.flow,
            self.first_time,
            self.last_time,
            self.interactions
        )
    }
}

/// One registered subscription: the motif, optional window bounds, and
/// the delta-maintained result set.
#[derive(Debug)]
pub struct StandingQuery {
    id: u64,
    motif: Motif,
    bounds: Option<TimeWindow>,
    ctx: DeltaContext,
    stats: SearchStats,
    delta: DeltaStats,
}

impl StandingQuery {
    /// The subscription id assigned at registration.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The subscribed motif.
    pub fn motif(&self) -> &Motif {
        &self.motif
    }

    /// The subscription's window bounds (`None` = everything retained).
    pub fn bounds(&self) -> Option<TimeWindow> {
        self.bounds
    }

    /// Instances currently in the standing result set.
    pub fn num_instances(&self) -> usize {
        self.ctx.num_instances()
    }

    /// Visits every instance in the standing result set, with the walk
    /// nodes of the structural match it belongs to.
    pub fn for_each_instance(&self, f: impl FnMut(&[NodeId], &DeltaInstance)) {
        self.ctx.for_each_instance(f);
    }

    /// Accumulated delta-evaluation counters since registration.
    pub fn delta_stats(&self) -> DeltaStats {
        self.delta
    }

    /// Accumulated search counters (P2 sweeps) since registration.
    pub fn search_stats(&self) -> SearchStats {
        self.stats
    }
}

/// The set of standing queries an engine evaluates on every mutation.
#[derive(Debug, Default)]
pub struct StandingQueries {
    queries: Vec<StandingQuery>,
    scratch: SearchScratch,
    opts: SearchOptions,
    next_id: u64,
}

impl StandingQueries {
    /// An empty set using default [`SearchOptions`].
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty set evaluating with `opts` (e.g. the engine's A/B index
    /// toggle) — keep it consistent with the options the engine's own
    /// queries use so delta ≡ re-query holds bit-for-bit.
    pub fn with_options(opts: SearchOptions) -> Self {
        Self { opts, ..Self::default() }
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether no subscription is registered (engines skip delta
    /// evaluation entirely then).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterates the registered subscriptions.
    pub fn iter(&self) -> impl Iterator<Item = &StandingQuery> {
        self.queries.iter()
    }

    /// The subscription with id `id`, if registered.
    pub fn get(&self, id: u64) -> Option<&StandingQuery> {
        self.queries.iter().find(|q| q.id == id)
    }

    /// Registers a standing query, seeding its result set with a full
    /// re-query of `g` (no events are emitted for pre-existing
    /// instances: subscribers see changes from *now on*). Returns the
    /// assigned subscription id.
    pub fn subscribe<G: GraphStore>(
        &mut self,
        g: &G,
        motif: Motif,
        bounds: Option<TimeWindow>,
    ) -> u64 {
        self.next_id += 1;
        let id = self.next_id;
        let mut q = StandingQuery {
            id,
            motif,
            bounds,
            ctx: DeltaContext::new(),
            stats: SearchStats::default(),
            delta: DeltaStats::default(),
        };
        q.ctx.seed(g, &q.motif, q.bounds, self.opts, &mut self.scratch, &mut q.stats);
        self.queries.push(q);
        id
    }

    /// Removes subscription `id`; returns whether it was registered.
    pub fn unsubscribe(&mut self, id: u64) -> bool {
        let before = self.queries.len();
        self.queries.retain(|q| q.id != id);
        self.queries.len() < before
    }

    /// Delta-evaluates every subscription against `g` — which must
    /// already contain the appended `(from, to, time)` interaction —
    /// pushing one [`StandingEvent`] per instance entering a result set.
    pub fn on_append<G: GraphStore>(
        &mut self,
        g: &G,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        out: &mut Vec<StandingEvent>,
    ) {
        let Self { queries, scratch, opts, .. } = self;
        for q in queries.iter_mut() {
            let id = q.id;
            let ds = q.ctx.on_append(
                g,
                &q.motif,
                q.bounds,
                *opts,
                from,
                to,
                time,
                scratch,
                &mut q.stats,
                |key, di| out.push(StandingEvent::new(id, key, di)),
            );
            q.delta.merge(&ds);
        }
    }

    /// Delta-evaluates every subscription after events were evicted from
    /// the `drained` pairs (post-eviction graph `g`), pushing instances
    /// that *became* maximal through the eviction.
    pub fn on_evicted<G: GraphStore>(
        &mut self,
        g: &G,
        drained: &[(NodeId, NodeId)],
        out: &mut Vec<StandingEvent>,
    ) {
        if drained.is_empty() {
            return;
        }
        let Self { queries, scratch, opts, .. } = self;
        for q in queries.iter_mut() {
            let id = q.id;
            let ds = q.ctx.on_pairs_evicted(
                g,
                &q.motif,
                q.bounds,
                *opts,
                drained,
                scratch,
                &mut q.stats,
                |key, di| out.push(StandingEvent::new(id, key, di)),
            );
            q.delta.merge(&ds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmotif_core::catalog;
    use flowmotif_graph::GraphBuilder;

    #[test]
    fn subscribe_seeds_silently_then_appends_emit() {
        let mut subs = StandingQueries::new();
        let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();

        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 1i64, 2.0), (1, 2, 2, 3.0)]);
        let g = b.build_time_series_graph();
        let id = subs.subscribe(&g, motif, None);
        assert_eq!(id, 1);
        assert_eq!(subs.get(id).unwrap().num_instances(), 1, "seeded, not emitted");

        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 1i64, 2.0), (1, 2, 2, 3.0), (2, 3, 3, 4.0)]);
        let g = b.build_time_series_graph();
        let mut out = Vec::new();
        subs.on_append(&g, 2, 3, 3, &mut out);
        assert_eq!(out.len(), 1, "the new 1->2->3 chain instance");
        assert_eq!(out[0].subscription, id);
        assert_eq!(out[0].nodes, "1-2-3");
        assert_eq!(out[0].to_string(), "id=1 match=1-2-3 flow=3 first=2 last=3 size=2");
        assert_eq!(subs.get(id).unwrap().num_instances(), 2);
    }

    #[test]
    fn unsubscribe_stops_evaluation() {
        let mut subs = StandingQueries::new();
        let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let g = GraphBuilder::new().build_time_series_graph();
        let id = subs.subscribe(&g, motif, None);
        assert!(subs.unsubscribe(id));
        assert!(!subs.unsubscribe(id), "second unsubscribe is a no-op");
        assert!(subs.is_empty());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut subs = StandingQueries::new();
        let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let g = GraphBuilder::new().build_time_series_graph();
        let a = subs.subscribe(&g, motif.clone(), None);
        subs.unsubscribe(a);
        let b = subs.subscribe(&g, motif, None);
        assert!(b > a);
    }
}
