//! The resident query session: ingest a stream once, answer many motif
//! queries.

use crate::incremental::IncrementalGraph;
use crate::window::SlidingWindow;
use flowmotif_core::{
    enumerate_window_with_sink_scratch, enumerate_with_sink_scratch, CollectSink, CountSink, Motif,
    MotifInstance, SearchOptions, SearchScratch, SearchStats, StructuralMatch,
};
use flowmotif_graph::{Flow, GraphError, NodeId, TimeSeriesGraph, TimeWindow, Timestamp};

/// A long-lived motif-search session over a live interaction stream.
///
/// The engine owns an [`IncrementalGraph`] and, optionally, a
/// [`SlidingWindow`] retention policy. Queries borrow the resident graph:
/// repeated searches over a quiescent stream touch no per-pair state at
/// all, and after `k` new appends only the dirty pairs pay a merge.
#[derive(Debug, Default, Clone)]
pub struct QueryEngine {
    graph: IncrementalGraph,
    window: Option<SlidingWindow>,
    /// Interactions evicted by the window policy since the last
    /// consolidation; drives amortized auto-compaction.
    evicted_since_compact: usize,
    /// Search tuning applied to every query (notably the active-index
    /// A/B toggle).
    opts: SearchOptions,
    /// The search arena reused across queries: after the first query on
    /// a session, the whole P1→P2 pipeline runs without heap
    /// allocations per match (see `flowmotif_core::SearchScratch`).
    scratch: SearchScratch,
}

/// Outcome of one [`QueryEngine::query`] call.
///
/// Matches and instances index into the resident graph *as of this
/// query*: interpret them (`walk_nodes`, `display`, `EdgeSet::events`)
/// against [`QueryEngine::graph`] **before** further appends, evictions
/// or compactions — any mutation that adds or removes a pair remaps
/// `PairId`s and silently invalidates older results.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Maximal instances grouped per structural match, in discovery order.
    pub groups: Vec<(StructuralMatch, Vec<MotifInstance>)>,
    /// Search counters of this query.
    pub stats: SearchStats,
}

impl QueryResult {
    /// Total number of instances across all groups.
    pub fn num_instances(&self) -> usize {
        self.groups.iter().map(|(_, v)| v.len()).sum()
    }
}

/// A point-in-time description of the engine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Interactions currently held (resident + buffered).
    pub interactions: usize,
    /// Connected pairs currently indexed (including evicted-empty ones).
    pub pairs: usize,
    /// Largest timestamp appended so far.
    pub watermark: Option<Timestamp>,
    /// Current eviction floor of the sliding window, if any.
    pub floor: Option<Timestamp>,
    /// Interactions appended over the engine's lifetime.
    pub appended: u64,
    /// Interactions evicted over the engine's lifetime.
    pub evicted: u64,
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "interactions={} pairs={} watermark={} floor={} appended={} evicted={}",
            self.interactions,
            self.pairs,
            self.watermark.map_or_else(|| "-".into(), |t| t.to_string()),
            self.floor.map_or_else(|| "-".into(), |t| t.to_string()),
            self.appended,
            self.evicted,
        )
    }
}

impl QueryEngine {
    /// An engine that retains the whole stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a sliding-window retention policy: interactions falling
    /// behind the window horizon are evicted as the watermark advances.
    pub fn with_window(mut self, window: SlidingWindow) -> Self {
        self.window = Some(window);
        self
    }

    /// Permits self-loop interactions (off by default).
    pub fn allow_self_loops(mut self, allow: bool) -> Self {
        self.graph = self.graph.allow_self_loops(allow);
        self
    }

    /// Overrides the [`SearchOptions`] applied to every query — e.g.
    /// `use_active_index: false` to A/B the origin index off.
    pub fn search_options(mut self, opts: SearchOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The search options applied to queries.
    pub fn options(&self) -> SearchOptions {
        self.opts
    }

    /// Appends one interaction and applies the retention policy.
    pub fn try_append(
        &mut self,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        flow: Flow,
    ) -> Result<(), GraphError> {
        self.graph.try_append(from, to, time, flow)?;
        if let (Some(policy), Some(watermark)) = (&mut self.window, self.graph.watermark()) {
            if let Some(floor) = policy.advance(watermark) {
                let dropped = self.graph.evict_before(floor);
                self.note_evicted(dropped);
            }
        }
        Ok(())
    }

    /// [`QueryEngine::try_append`] that additionally records into
    /// `drained` every `(u, v)` pair the sliding-window policy evicted
    /// events from as a side effect of this append — the hook standing
    /// queries use to rescan affected matches.
    pub fn try_append_collect(
        &mut self,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        flow: Flow,
        drained: &mut Vec<(NodeId, NodeId)>,
    ) -> Result<(), GraphError> {
        self.graph.try_append(from, to, time, flow)?;
        if let (Some(policy), Some(watermark)) = (&mut self.window, self.graph.watermark()) {
            if let Some(floor) = policy.advance(watermark) {
                let dropped = self.graph.evict_before_collect(floor, drained);
                self.note_evicted(dropped);
            }
        }
        Ok(())
    }

    /// Emptied pairs linger in the CSR index after eviction and would
    /// slowly poison phase P1; consolidate once the evicted volume rivals
    /// the resident volume, which keeps the compaction cost amortized
    /// O(1) per append.
    fn note_evicted(&mut self, dropped: usize) {
        self.evicted_since_compact += dropped;
        if self.evicted_since_compact > 1024.max(self.graph.num_interactions() / 2) {
            self.compact();
        }
    }

    /// Appends a batch of `(from, to, time, flow)` interactions; returns
    /// how many were appended. Fails on the first invalid interaction
    /// (earlier ones stay applied).
    pub fn ingest<I>(&mut self, batch: I) -> Result<usize, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId, Timestamp, Flow)>,
    {
        let mut n = 0;
        for (u, v, t, f) in batch {
            self.try_append(u, v, t, f)?;
            n += 1;
        }
        Ok(n)
    }

    /// Answers a two-phase motif search over the resident graph,
    /// restricted to `bounds` when given (`None` searches everything
    /// currently retained). Instances match a batch
    /// `GraphBuilder` rebuild + search over the retained (and
    /// window-restricted) interactions exactly. The result's indices are
    /// only meaningful against the current graph — see [`QueryResult`]
    /// for the invalidation contract.
    pub fn query(&mut self, motif: &Motif, bounds: Option<TimeWindow>) -> QueryResult {
        let opts = self.opts;
        let scratch = &mut self.scratch;
        let g = self.graph.graph();
        let mut sink = CollectSink::default();
        let stats = match bounds {
            Some(w) => enumerate_window_with_sink_scratch(g, motif, w, opts, &mut sink, scratch),
            None => enumerate_with_sink_scratch(g, motif, opts, &mut sink, scratch),
        };
        QueryResult { groups: sink.groups, stats }
    }

    /// Counts maximal instances without materialising them. Steady-state
    /// counting over a quiescent stream is allocation-free: the search
    /// arena is owned by the engine and reused across queries.
    pub fn count(&mut self, motif: &Motif, bounds: Option<TimeWindow>) -> (u64, SearchStats) {
        let opts = self.opts;
        let scratch = &mut self.scratch;
        let g = self.graph.graph();
        let mut sink = CountSink::default();
        let stats = match bounds {
            Some(w) => enumerate_window_with_sink_scratch(g, motif, w, opts, &mut sink, scratch),
            None => enumerate_with_sink_scratch(g, motif, opts, &mut sink, scratch),
        };
        (sink.count, stats)
    }

    /// Borrows the resident time-series graph (folding buffers in first),
    /// e.g. to run top-k or analytics drivers directly.
    pub fn graph(&mut self) -> &TimeSeriesGraph {
        self.graph.graph()
    }

    /// Manually drops interactions older than `floor`; returns how many
    /// were dropped. Independent of the sliding-window policy, but feeds
    /// the same amortized auto-compaction.
    pub fn evict_before(&mut self, floor: Timestamp) -> usize {
        let dropped = self.graph.evict_before(floor);
        self.note_evicted(dropped);
        dropped
    }

    /// [`QueryEngine::evict_before`] that additionally records the
    /// drained `(u, v)` pairs (see [`QueryEngine::try_append_collect`]).
    pub fn evict_before_collect(
        &mut self,
        floor: Timestamp,
        drained: &mut Vec<(NodeId, NodeId)>,
    ) -> usize {
        let dropped = self.graph.evict_before_collect(floor, drained);
        self.note_evicted(dropped);
        dropped
    }

    /// Consolidates the resident graph (merges buffers, drops emptied
    /// pairs).
    pub fn compact(&mut self) {
        self.graph.compact();
        self.evicted_since_compact = 0;
    }

    /// Distinct node pairs whose series changed since the last
    /// [`QueryEngine::clear_dirty`] — the dirty set a copy-on-write
    /// snapshot publish pays for.
    pub fn dirty_pairs(&self) -> usize {
        self.graph.touched_pairs()
    }

    /// Resets the dirty-pair accounting (the snapshot engine calls this
    /// as part of each publish).
    pub fn clear_dirty(&mut self) {
        self.graph.clear_touched();
    }

    /// Current engine statistics.
    pub fn stats(&self) -> EngineStats {
        let (appended, evicted) = self.graph.totals();
        EngineStats {
            interactions: self.graph.num_interactions(),
            pairs: self.graph.num_pairs(),
            watermark: self.graph.watermark(),
            floor: self.window.as_ref().and_then(|w| w.floor()),
            appended,
            evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmotif_core::catalog;

    /// The paper's Fig. 2 bitcoin example, streamed in timestamp order.
    const FIG2: [(NodeId, NodeId, Timestamp, Flow); 10] = [
        (3, 2, 1, 2.0),
        (3, 2, 3, 5.0),
        (2, 0, 10, 10.0),
        (3, 0, 11, 10.0),
        (0, 1, 13, 5.0),
        (0, 1, 15, 7.0),
        (1, 2, 18, 20.0),
        (2, 3, 19, 5.0),
        (2, 3, 21, 4.0),
        (1, 3, 23, 7.0),
    ];

    #[test]
    fn streamed_fig2_reproduces_the_fig4_instance() {
        let mut engine = QueryEngine::new();
        engine.ingest(FIG2).unwrap();
        let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();
        let res = engine.query(&motif, None);
        assert_eq!(res.num_instances(), 1);
        let g = engine.graph();
        let (sm, insts) = &res.groups[0];
        assert_eq!(sm.walk_nodes(g), vec![2, 0, 1, 2]);
        assert_eq!(
            insts[0].display(g),
            "[e1 <- {(10, 10)}, e2 <- {(13, 5), (15, 7)}, e3 <- {(18, 20)}]"
        );
    }

    #[test]
    fn interleaved_ingest_and_query_sessions() {
        let mut engine = QueryEngine::new();
        let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();
        engine.ingest(FIG2[..6].iter().copied()).unwrap();
        assert_eq!(engine.count(&motif, None).0, 0, "cycle not closed yet");
        engine.ingest(FIG2[6..].iter().copied()).unwrap();
        assert_eq!(engine.count(&motif, None).0, 1);
        // Repeated queries on the quiescent stream are stable.
        assert_eq!(engine.count(&motif, None).0, 1);
        // Window-restricted query excludes the instance's first element.
        assert_eq!(engine.count(&motif, Some(TimeWindow::new(11, 23))).0, 0);
        assert_eq!(engine.count(&motif, Some(TimeWindow::new(10, 18))).0, 1);
    }

    #[test]
    fn sliding_window_evicts_and_stats_report_it() {
        let mut engine = QueryEngine::new().with_window(SlidingWindow::with_slack(10, 1));
        engine.ingest(FIG2).unwrap();
        let s = engine.stats();
        assert_eq!(s.appended, 10);
        assert!(s.evicted > 0, "{s}");
        assert_eq!(s.floor, Some(13), "watermark 23 - horizon 10");
        assert_eq!(s.interactions as u64 + s.evicted, s.appended);
        // Everything retained is within the horizon.
        let g = engine.graph();
        let (lo, hi) = g.time_span().unwrap();
        assert!(lo >= 13 && hi == 23);
        // The Fig. 4 instance needed t=10; it is gone now.
        let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();
        assert_eq!(engine.count(&motif, None).0, 0);
        let display = engine.stats().to_string();
        assert!(display.contains("watermark=23"), "{display}");
    }

    #[test]
    fn invalid_append_is_rejected() {
        let mut engine = QueryEngine::new();
        assert!(engine.try_append(0, 0, 1, 1.0).is_err());
        assert!(engine.try_append(0, 1, 1, -1.0).is_err());
        assert_eq!(engine.stats().appended, 0);
        let mut engine = QueryEngine::new().allow_self_loops(true);
        assert!(engine.try_append(0, 0, 1, 1.0).is_ok());
    }
}
