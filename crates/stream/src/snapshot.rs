//! Concurrent reads during live ingestion: an epoch/snapshot layer over
//! the resident [`QueryEngine`].
//!
//! The single-threaded engine answers queries by *borrowing* its mutable
//! graph, so a long search blocks every append (and vice versa). This
//! module decouples the two:
//!
//! * a **writer side** — the [`QueryEngine`] behind a mutex — absorbs
//!   appends and evictions exactly as before;
//! * a **reader side** — an `Arc`-swapped [`Snapshot`] holding a
//!   compacted, immutable [`TimeSeriesGraph`] — serves any number of
//!   concurrent searches without taking the writer lock at all.
//!
//! [`SnapshotEngine::publish`] bridges them: it folds the writer's
//! buffered tails in (`compact`), clones the consolidated CSR into a
//! fresh [`Snapshot`] stamped with a monotonically increasing *epoch*,
//! and swaps it into the published slot. Readers that already hold a
//! snapshot keep it alive through its `Arc` — publishing never
//! invalidates an in-progress query, it only makes newer data visible to
//! the *next* [`SnapshotEngine::snapshot`] call.
//!
//! # Publish cost model (copy-on-write)
//!
//! Per-pair series storage is `Arc`-shared
//! ([`flowmotif_graph::InteractionSeries`] is copy-on-write), so the
//! "clone" a publish performs is **O(pairs + nodes)** pointer/offset
//! copies — *no* interaction data moves at publish time. The deep copies
//! happen lazily instead: the first writer-side mutation of a pair whose
//! series is still shared with a published snapshot detaches just that
//! series. Summed over a publish interval the copying is therefore
//! **O(dirty)** — proportional to the pairs actually touched since the
//! previous publish (reported per publish by
//! [`SnapshotEngine::publish_report`]) — never O(resident interactions).
//!
//! The writer lock is held only for the compaction fold and the cheap
//! structural clone; the new [`Snapshot`] is assembled and swapped into
//! the published slot *after* the lock is released, so concurrent
//! appends are never stalled behind snapshot assembly. Readers pay one
//! `RwLock` read + `Arc` clone per snapshot acquisition and then run
//! lock-free. Publishing on a quiescent stream is a no-op. Batching
//! appends between publishes — see [`SnapshotEngine::publish_every`] —
//! amortizes the per-publish O(pairs) floor the same way the incremental
//! graph amortizes tail merges.

use crate::engine::{EngineStats, QueryResult};
use crate::standing::{StandingEvent, StandingQueries};
use crate::window::SlidingWindow;
use crate::QueryEngine;
use flowmotif_core::{
    enumerate_window_with_sink_scratch, enumerate_with_sink_scratch, CollectSink, CountSink,
    ExtensionOrder, Motif, SearchOptions, SearchScratch, SearchStats, TraceSink,
};
use flowmotif_graph::{Flow, GraphError, NodeId, TimeSeriesGraph, TimeWindow, Timestamp};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// An immutable point-in-time view of the stream, cheap to share across
/// threads and safe to query while ingestion continues.
///
/// Snapshots are produced by [`SnapshotEngine::publish`] and handed out
/// by [`SnapshotEngine::snapshot`]; each carries the *epoch* at which it
/// was published, so results can be attributed to an exact stream
/// prefix.
#[derive(Debug, Clone)]
pub struct Snapshot {
    graph: Arc<TimeSeriesGraph>,
    epoch: u64,
    stats: EngineStats,
    opts: SearchOptions,
}

impl Snapshot {
    /// The publish sequence number of this snapshot (0 = the empty
    /// snapshot every engine starts with).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Engine statistics frozen at publish time.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The immutable compacted graph; all core search drivers (top-k,
    /// census, analytics, …) can run on it directly.
    pub fn graph(&self) -> &TimeSeriesGraph {
        &self.graph
    }

    /// Two-phase motif search over the snapshot, restricted to `bounds`
    /// when given. Unlike [`QueryEngine::query`] this takes `&self`: any
    /// number of threads may search one snapshot concurrently.
    pub fn query(&self, motif: &Motif, bounds: Option<TimeWindow>) -> QueryResult {
        self.query_with(motif, bounds, &mut SearchScratch::default())
    }

    /// [`Snapshot::query`] running out of a caller-provided search
    /// arena. Snapshots are immutable and queried by `&self`, so the
    /// scratch cannot live here — each reader (e.g. a server session)
    /// owns one and reuses it across queries and snapshot epochs,
    /// keeping the steady-state query path free of per-match heap
    /// allocations.
    pub fn query_with(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
    ) -> QueryResult {
        self.query_traced(motif, bounds, scratch, None)
    }

    /// [`Snapshot::query_with`] with a per-query [`TraceSink`] layered
    /// over the engine's search options — the hook behind the serve
    /// tier's slow-query logging and per-stage profiling.
    pub fn query_traced(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
        trace: Option<&'static dyn TraceSink>,
    ) -> QueryResult {
        self.query_ordered(motif, bounds, scratch, trace, None)
    }

    /// [`Snapshot::query_traced`] with a per-query P1
    /// [`ExtensionOrder`] override (`None` keeps the engine default) —
    /// the hook behind the serve protocol's `order=` query option.
    pub fn query_ordered(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
        trace: Option<&'static dyn TraceSink>,
        order: Option<ExtensionOrder>,
    ) -> QueryResult {
        let mut opts = self.opts.with_trace(trace);
        if let Some(o) = order {
            opts = opts.with_extension_order(o);
        }
        let mut sink = CollectSink::default();
        let stats = match bounds {
            Some(w) => {
                enumerate_window_with_sink_scratch(&self.graph, motif, w, opts, &mut sink, scratch)
            }
            None => enumerate_with_sink_scratch(&self.graph, motif, opts, &mut sink, scratch),
        };
        QueryResult { groups: sink.groups, stats }
    }

    /// Counts maximal instances without materialising them.
    pub fn count(&self, motif: &Motif, bounds: Option<TimeWindow>) -> (u64, SearchStats) {
        self.count_with(motif, bounds, &mut SearchScratch::default())
    }

    /// [`Snapshot::count`] running out of a caller-provided search arena
    /// (see [`Snapshot::query_with`]).
    pub fn count_with(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
    ) -> (u64, SearchStats) {
        self.count_traced(motif, bounds, scratch, None)
    }

    /// [`Snapshot::count_with`] with a per-query [`TraceSink`] (see
    /// [`Snapshot::query_traced`]).
    pub fn count_traced(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
        trace: Option<&'static dyn TraceSink>,
    ) -> (u64, SearchStats) {
        self.count_ordered(motif, bounds, scratch, trace, None)
    }

    /// [`Snapshot::count_traced`] with a per-query P1
    /// [`ExtensionOrder`] override (see [`Snapshot::query_ordered`]).
    pub fn count_ordered(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
        trace: Option<&'static dyn TraceSink>,
        order: Option<ExtensionOrder>,
    ) -> (u64, SearchStats) {
        let mut opts = self.opts.with_trace(trace);
        if let Some(o) = order {
            opts = opts.with_extension_order(o);
        }
        let mut sink = CountSink::default();
        let stats = match bounds {
            Some(w) => {
                enumerate_window_with_sink_scratch(&self.graph, motif, w, opts, &mut sink, scratch)
            }
            None => enumerate_with_sink_scratch(&self.graph, motif, opts, &mut sink, scratch),
        };
        (sink.count, stats)
    }
}

/// Telemetry of the most recent non-no-op publish: what it cost and how
/// much of the graph was actually dirty. Exposed over the wire by the
/// `stats` request of `flowmotif-serve`, so operators can watch publish
/// cost track the dirty set instead of the resident size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishReport {
    /// Epoch the report describes (0 = no publish has happened yet).
    pub epoch: u64,
    /// Distinct node pairs appended to or evicted from since the
    /// previous publish.
    pub dirty_pairs: usize,
    /// Wall-clock duration of the publish (compaction fold + structural
    /// clone + snapshot assembly + swap).
    pub duration: Duration,
}

/// State owned by the writer lock: the resident engine plus the epoch
/// counter and the watermark of the last publish.
#[derive(Debug)]
struct WriterState {
    engine: QueryEngine,
    epoch: u64,
    /// `(appended, evicted)` lifetime totals at the last publish; a
    /// publish with unchanged totals is a no-op.
    published_totals: (u64, u64),
}

/// A [`QueryEngine`] that supports concurrent readers via epoch-stamped
/// snapshots.
///
/// All methods take `&self`; share the engine as an `Arc<SnapshotEngine>`
/// between one (or more, serialised by the writer mutex) ingesting
/// thread and any number of query threads.
///
/// ```
/// use flowmotif_core::catalog;
/// use flowmotif_stream::SnapshotEngine;
/// use std::sync::Arc;
///
/// let engine = Arc::new(SnapshotEngine::new());
/// engine.ingest([(0u32, 1u32, 10i64, 5.0), (1, 2, 12, 4.0)]).unwrap();
/// engine.publish();
///
/// // A snapshot is immutable: appends racing with the search below
/// // cannot affect its result.
/// let snap = engine.snapshot();
/// let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
/// let reader = std::thread::spawn(move || snap.count(&motif, None).0);
/// engine.ingest([(2u32, 3u32, 14i64, 3.0)]).unwrap();
/// assert_eq!(reader.join().unwrap(), 1);
///
/// // The new edge becomes visible at the next publish.
/// let epoch = engine.publish();
/// assert_eq!(engine.snapshot().epoch(), epoch);
/// assert_eq!(engine.snapshot().stats().appended, 3);
/// ```
#[derive(Debug)]
pub struct SnapshotEngine {
    writer: Mutex<WriterState>,
    published: RwLock<Arc<Snapshot>>,
    /// Auto-publish after this many appends since the last publish
    /// (0 = only on explicit [`SnapshotEngine::publish`] calls).
    publish_every: usize,
    /// Search tuning copied into every published snapshot.
    opts: SearchOptions,
    /// Telemetry of the last completed publish.
    last_publish: Mutex<PublishReport>,
    /// Readiness hook fired after every epoch install (see
    /// [`SnapshotEngine::set_publish_hook`]).
    publish_hook: PublishHookSlot,
}

/// The callback shape a [`PublishHookSlot`] stores.
type PublishHook = Arc<dyn Fn(u64) + Send + Sync>;

/// A registered publish-notification callback (see
/// [`SnapshotEngine::set_publish_hook`]). Wrapped so engines stay
/// `Debug` despite holding a closure.
#[derive(Default)]
pub(crate) struct PublishHookSlot(Mutex<Option<PublishHook>>);

impl std::fmt::Debug for PublishHookSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let set = self.0.lock().map(|g| g.is_some()).unwrap_or(false);
        f.debug_tuple("PublishHookSlot").field(&set).finish()
    }
}

impl PublishHookSlot {
    pub(crate) fn set(&self, hook: impl Fn(u64) + Send + Sync + 'static) {
        *self.0.lock().unwrap() = Some(Arc::new(hook));
    }

    /// Invokes the hook with the epoch that was just installed. The hook
    /// may run while an engine writer lock is held, so it must be cheap
    /// and must not call back into the engine.
    pub(crate) fn fire(&self, epoch: u64) {
        let hook = self.0.lock().unwrap().clone();
        if let Some(hook) = hook {
            hook(epoch);
        }
    }
}

impl Default for SnapshotEngine {
    fn default() -> Self {
        Self::with_engine(QueryEngine::new())
    }
}

impl SnapshotEngine {
    /// An engine that retains the whole stream and publishes only on
    /// explicit [`SnapshotEngine::publish`] calls.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing (possibly pre-loaded) [`QueryEngine`]. Epoch 0
    /// is published immediately from its current contents.
    pub fn with_engine(mut engine: QueryEngine) -> Self {
        engine.compact();
        engine.clear_dirty();
        let stats = engine.stats();
        let opts = engine.options();
        let snapshot =
            Arc::new(Snapshot { graph: Arc::new(engine.graph().clone()), epoch: 0, stats, opts });
        Self {
            writer: Mutex::new(WriterState {
                engine,
                epoch: 0,
                published_totals: (stats.appended, stats.evicted),
            }),
            published: RwLock::new(snapshot),
            publish_every: 0,
            opts,
            last_publish: Mutex::new(PublishReport::default()),
            publish_hook: PublishHookSlot::default(),
        }
    }

    /// Registers a callback fired after every epoch install (explicit
    /// [`SnapshotEngine::publish`] and `publish_every` auto-publishes
    /// alike) with the freshly installed epoch. The serve tier uses it
    /// as a readiness notification: event loops keep a lock-free copy of
    /// the current epoch for cache keying instead of polling the engine.
    /// The hook runs outside every engine lock; at most one is
    /// registered (later calls replace it).
    pub fn set_publish_hook(&self, hook: impl Fn(u64) + Send + Sync + 'static) {
        self.publish_hook.set(hook);
    }

    /// Overrides the [`SearchOptions`] used by every snapshot query
    /// (notably `use_active_index: false` for A/B runs). Applies to the
    /// already-published epoch-0 snapshot and to every later publish.
    pub fn search_options(mut self, opts: SearchOptions) -> Self {
        self.opts = opts;
        {
            let mut slot = self.published.write().unwrap();
            let mut snap = (**slot).clone();
            snap.opts = opts;
            *slot = Arc::new(snap);
        }
        self
    }

    /// Installs a sliding-window retention policy on the writer side
    /// (see [`QueryEngine::with_window`]).
    pub fn with_window(self, window: SlidingWindow) -> Self {
        {
            let mut w = self.writer.lock().unwrap();
            let engine = std::mem::take(&mut w.engine).with_window(window);
            w.engine = engine;
        }
        self
    }

    /// Permits self-loop interactions (off by default).
    pub fn allow_self_loops(self, allow: bool) -> Self {
        {
            let mut w = self.writer.lock().unwrap();
            let engine = std::mem::take(&mut w.engine).allow_self_loops(allow);
            w.engine = engine;
        }
        self
    }

    /// Auto-publishes a fresh snapshot once `n` appends have accumulated
    /// since the last publish (0 disables auto-publish). The check runs
    /// at the end of each [`SnapshotEngine::append`] / ingest batch, so a
    /// large `ingest` publishes once, not once per `n` edges.
    pub fn publish_every(mut self, n: usize) -> Self {
        self.publish_every = n;
        self
    }

    /// Appends one interaction and returns the stream watermark after it
    /// (computed under the same writer lock, so it is exactly this
    /// append's view even with other writers racing). Auto-publishes
    /// when due.
    pub fn append(
        &self,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        flow: Flow,
    ) -> Result<Timestamp, GraphError> {
        let (watermark, prepared) = {
            let mut w = self.writer.lock().unwrap();
            w.engine.try_append(from, to, time, flow)?;
            let watermark = w.engine.stats().watermark.unwrap_or(time);
            (watermark, self.maybe_prepare(&mut w))
        };
        if let Some(p) = prepared {
            self.install(p);
        }
        Ok(watermark)
    }

    /// Appends a batch; returns how many were appended. Fails on the
    /// first invalid interaction (earlier ones stay applied).
    /// Auto-publishes at most once, after the whole batch.
    pub fn ingest<I>(&self, batch: I) -> Result<usize, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId, Timestamp, Flow)>,
    {
        let (r, prepared) = {
            let mut w = self.writer.lock().unwrap();
            let mut n = 0;
            let r: Result<(), GraphError> = (|| {
                for (u, v, t, f) in batch {
                    w.engine.try_append(u, v, t, f)?;
                    n += 1;
                }
                Ok(())
            })();
            (r.map(|()| n), self.maybe_prepare(&mut w))
        };
        if let Some(p) = prepared {
            self.install(p);
        }
        r
    }

    /// Drops interactions older than `floor` on the writer side; the
    /// published snapshot keeps serving the old view until the next
    /// publish. Returns how many were dropped.
    pub fn evict_before(&self, floor: Timestamp) -> usize {
        self.writer.lock().unwrap().engine.evict_before(floor)
    }

    /// Registers a standing query in `subs`, seeded from the *writer*
    /// state (not the published snapshot), so subsequent
    /// [`SnapshotEngine::append_standing`] deltas line up exactly with
    /// the stream — no append can fall between the seed and the first
    /// delta. Returns the subscription id.
    pub fn subscribe_standing(
        &self,
        subs: &mut StandingQueries,
        motif: Motif,
        bounds: Option<TimeWindow>,
    ) -> u64 {
        let mut w = self.writer.lock().unwrap();
        let g = w.engine.graph();
        subs.subscribe(g, motif, bounds)
    }

    /// [`SnapshotEngine::append`] that additionally delta-evaluates the
    /// standing queries in `subs` under the same writer lock: every
    /// instance entering a standing result set — through the new edge
    /// itself or through the sliding-window eviction it triggered — is
    /// pushed onto `out`. With `subs` empty this costs one extra branch
    /// over a plain append.
    pub fn append_standing(
        &self,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        flow: Flow,
        subs: &mut StandingQueries,
        out: &mut Vec<StandingEvent>,
    ) -> Result<Timestamp, GraphError> {
        let (watermark, prepared) = {
            let mut w = self.writer.lock().unwrap();
            if subs.is_empty() {
                w.engine.try_append(from, to, time, flow)?;
            } else {
                let mut drained = Vec::new();
                w.engine.try_append_collect(from, to, time, flow, &mut drained)?;
                let g = w.engine.graph();
                subs.on_append(g, from, to, time, out);
                subs.on_evicted(g, &drained, out);
            }
            let watermark = w.engine.stats().watermark.unwrap_or(time);
            (watermark, self.maybe_prepare(&mut w))
        };
        if let Some(p) = prepared {
            self.install(p);
        }
        Ok(watermark)
    }

    /// [`SnapshotEngine::evict_before`] that additionally delta-evaluates
    /// the standing queries in `subs` against the post-eviction writer
    /// graph (instances can *become* maximal when their superset loses
    /// events). Returns how many interactions were dropped.
    pub fn evict_standing(
        &self,
        floor: Timestamp,
        subs: &mut StandingQueries,
        out: &mut Vec<StandingEvent>,
    ) -> usize {
        let mut w = self.writer.lock().unwrap();
        if subs.is_empty() {
            return w.engine.evict_before(floor);
        }
        let mut drained = Vec::new();
        let dropped = w.engine.evict_before_collect(floor, &mut drained);
        if !drained.is_empty() {
            let g = w.engine.graph();
            subs.on_evicted(g, &drained, out);
        }
        dropped
    }

    /// Consolidates the writer-side graph (see [`QueryEngine::compact`]).
    pub fn compact(&self) {
        self.writer.lock().unwrap().engine.compact();
    }

    /// Publishes the current writer state as a new immutable snapshot and
    /// returns its epoch. When nothing was appended or evicted since the
    /// last publish this is a no-op returning the current epoch — so
    /// polling publishers are cheap on a quiescent stream.
    ///
    /// Only the compaction fold and the O(pairs) structural clone run
    /// under the writer lock; snapshot assembly and the published-slot
    /// swap happen after it is released, so ingestion never waits on
    /// them.
    ///
    /// Read-your-publish guarantee: when this returns epoch `e`, the
    /// published slot already holds epoch `>= e` — even when `e` was
    /// claimed by a racing publish whose install had not yet landed.
    pub fn publish(&self) -> u64 {
        let epoch = {
            let mut w = self.writer.lock().unwrap();
            match self.prepare_publish(&mut w) {
                Ok(p) => {
                    drop(w);
                    return self.install(p);
                }
                Err(current_epoch) => current_epoch,
            }
        };
        // Nothing to publish, but `epoch` may have been claimed by a
        // concurrent publish that is between its prepare and install
        // (the window spans a handful of instructions and no user
        // code); a caller issuing a query right after we return must
        // see it. Wait it out.
        while self.published_epoch() < epoch {
            std::thread::yield_now();
        }
        epoch
    }

    /// Cost telemetry of the most recent publish (see [`PublishReport`]).
    pub fn publish_report(&self) -> PublishReport {
        *self.last_publish.lock().unwrap()
    }

    /// Live writer-side statistics (includes not-yet-published appends).
    pub fn stats(&self) -> EngineStats {
        self.writer.lock().unwrap().engine.stats()
    }

    /// The currently published snapshot. Cheap: one `RwLock` read and an
    /// `Arc` clone; the returned snapshot stays valid (and unchanged)
    /// however far the stream advances.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.published.read().unwrap())
    }

    /// Epoch of the currently published snapshot.
    pub fn published_epoch(&self) -> u64 {
        self.published.read().unwrap().epoch
    }

    fn maybe_prepare(&self, w: &mut WriterState) -> Option<PreparedPublish> {
        if self.publish_every == 0 {
            return None;
        }
        let (appended, _) = w.engine.stats().totals();
        if (appended - w.published_totals.0) as usize >= self.publish_every {
            self.prepare_publish(w).ok()
        } else {
            None
        }
    }

    /// The under-the-writer-lock half of a publish: folds buffers in,
    /// claims the next epoch and takes the O(pairs) copy-on-write
    /// structural clone. `Err` carries the current epoch when nothing
    /// changed since the last publish (no-op). The expensive-looking part
    /// — none of the interaction data — was already paid incrementally by
    /// the writer's own copy-on-write mutations.
    fn prepare_publish(&self, w: &mut WriterState) -> Result<PreparedPublish, u64> {
        let totals = w.engine.stats().totals();
        if totals == w.published_totals {
            return Err(w.epoch);
        }
        let started = Instant::now();
        // Fold tails and drop evicted-empty pairs so the snapshot is a
        // dense CSR. The clone below shares every series' storage with
        // the writer (detached lazily, pair by pair, as the writer
        // mutates on).
        w.engine.compact();
        w.epoch += 1;
        w.published_totals = totals;
        let dirty_pairs = w.engine.dirty_pairs();
        w.engine.clear_dirty();
        Ok(PreparedPublish {
            graph: w.engine.graph().clone(),
            epoch: w.epoch,
            stats: w.engine.stats(),
            dirty_pairs,
            started,
        })
    }

    /// The outside-the-writer-lock half: wraps the prepared state into an
    /// `Arc<Snapshot>` and swaps it into the published slot. Concurrent
    /// publishes may install out of order; the epoch guard keeps the slot
    /// monotone.
    fn install(&self, p: PreparedPublish) -> u64 {
        let snapshot = Arc::new(Snapshot {
            graph: Arc::new(p.graph),
            epoch: p.epoch,
            stats: p.stats,
            opts: self.opts,
        });
        {
            let mut slot = self.published.write().unwrap();
            if snapshot.epoch > slot.epoch {
                *slot = snapshot;
            }
        }
        let report = PublishReport {
            epoch: p.epoch,
            dirty_pairs: p.dirty_pairs,
            duration: p.started.elapsed(),
        };
        crate::metrics::record_publish(report.epoch, report.dirty_pairs, report.duration);
        {
            let mut last = self.last_publish.lock().unwrap();
            if report.epoch >= last.epoch {
                *last = report;
            }
        }
        self.publish_hook.fire(p.epoch);
        p.epoch
    }
}

/// Everything a publish captured under the writer lock, waiting to be
/// wrapped and swapped in outside it.
#[derive(Debug)]
struct PreparedPublish {
    graph: TimeSeriesGraph,
    epoch: u64,
    stats: EngineStats,
    dirty_pairs: usize,
    started: Instant,
}

impl EngineStats {
    /// Lifetime `(appended, evicted)` totals — the pair that decides
    /// whether a publish would produce a new epoch.
    pub fn totals(&self) -> (u64, u64) {
        (self.appended, self.evicted)
    }
}

// The whole point of this module: prove at compile time that snapshots
// and the engine may cross threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot>();
    assert_send_sync::<SnapshotEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use flowmotif_core::{catalog, enumerate_all, enumerate_all_in_window};
    use flowmotif_graph::GraphBuilder;
    use std::sync::atomic::{AtomicBool, Ordering};

    const FIG2: [(NodeId, NodeId, Timestamp, Flow); 10] = [
        (3, 2, 1, 2.0),
        (3, 2, 3, 5.0),
        (2, 0, 10, 10.0),
        (3, 0, 11, 10.0),
        (0, 1, 13, 5.0),
        (0, 1, 15, 7.0),
        (1, 2, 18, 20.0),
        (2, 3, 19, 5.0),
        (2, 3, 21, 4.0),
        (1, 3, 23, 7.0),
    ];

    #[test]
    fn snapshots_are_immutable_and_epoch_stamped() {
        let engine = SnapshotEngine::new();
        let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();

        let empty = engine.snapshot();
        assert_eq!(empty.epoch(), 0);
        assert_eq!(empty.count(&motif, None).0, 0);

        engine.ingest(FIG2).unwrap();
        // Not yet published: readers still see the empty graph.
        assert_eq!(engine.snapshot().epoch(), 0);
        assert_eq!(engine.snapshot().count(&motif, None).0, 0);
        assert_eq!(engine.stats().appended, 10, "writer side is live");

        let e = engine.publish();
        assert_eq!(e, 1);
        let snap = engine.snapshot();
        assert_eq!(snap.count(&motif, None).0, 1);
        // The old snapshot is untouched by the publish.
        assert_eq!(empty.count(&motif, None).0, 0);
        // Publishing with no new data is a no-op.
        assert_eq!(engine.publish(), 1);
        assert_eq!(engine.published_epoch(), 1);
    }

    #[test]
    fn snapshot_query_matches_batch_rebuild() {
        let engine = SnapshotEngine::new();
        engine.ingest(FIG2).unwrap();
        engine.publish();
        let snap = engine.snapshot();

        let mut b = GraphBuilder::new();
        b.extend_interactions(FIG2);
        let batch = b.build_time_series_graph();

        let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();
        for bounds in [None, Some(TimeWindow::new(10, 18)), Some(TimeWindow::new(11, 23))] {
            let got = snap.query(&motif, bounds);
            let expect = match bounds {
                Some(w) => enumerate_all_in_window(&batch, &motif, w).0,
                None => enumerate_all(&batch, &motif).0,
            };
            assert_eq!(got.groups.len(), expect.len(), "{bounds:?}");
            for ((gsm, gi), (esm, ei)) in got.groups.iter().zip(&expect) {
                assert_eq!(gsm.walk_nodes(snap.graph()), esm.walk_nodes(&batch));
                let gd: Vec<_> = gi.iter().map(|i| i.display(snap.graph())).collect();
                let ed: Vec<_> = ei.iter().map(|i| i.display(&batch)).collect();
                assert_eq!(gd, ed);
            }
        }
    }

    #[test]
    fn auto_publish_after_n_appends() {
        let engine = SnapshotEngine::new().publish_every(4);
        for (i, &(u, v, t, f)) in FIG2.iter().enumerate() {
            engine.append(u, v, t, f).unwrap();
            assert_eq!(engine.published_epoch(), ((i + 1) / 4) as u64, "after {} appends", i + 1);
        }
        // A batch ingest publishes once at the end, not every 4 edges.
        let engine = SnapshotEngine::new().publish_every(4);
        engine.ingest(FIG2).unwrap();
        assert_eq!(engine.published_epoch(), 1);
        assert_eq!(engine.snapshot().stats().appended, 10);
    }

    #[test]
    fn eviction_surfaces_at_next_publish() {
        let engine = SnapshotEngine::new().with_window(SlidingWindow::with_slack(10, 1));
        engine.ingest(FIG2).unwrap();
        engine.publish();
        let snap = engine.snapshot();
        // The sliding window evicted everything before t=13.
        assert_eq!(snap.stats().floor, Some(13));
        assert!(snap.graph().time_span().unwrap().0 >= 13);
        // Manual eviction is writer-side only until published.
        let before = engine.snapshot().graph().num_interactions();
        engine.evict_before(20);
        assert_eq!(engine.snapshot().graph().num_interactions(), before);
        engine.publish();
        assert!(engine.snapshot().graph().num_interactions() < before);
    }

    #[test]
    fn with_engine_publishes_preloaded_contents_as_epoch_zero() {
        let mut inner = QueryEngine::new();
        inner.ingest(FIG2).unwrap();
        let engine = SnapshotEngine::with_engine(inner);
        let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();
        let snap = engine.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.count(&motif, None).0, 1);
        // No changes since construction: publish is a no-op.
        assert_eq!(engine.publish(), 0);
    }

    #[test]
    fn publish_shares_untouched_series_with_the_previous_snapshot() {
        // Structural proof of the O(dirty) publish: pairs not touched
        // between two publishes share their series storage across the two
        // snapshots (no data was copied for them); only the dirty pair's
        // series was detached.
        let engine = SnapshotEngine::new();
        engine.ingest([(0u32, 1u32, 10i64, 1.0), (1, 2, 11, 1.0), (2, 3, 12, 1.0)]).unwrap();
        engine.publish();
        let snap1 = engine.snapshot();

        engine.append(1, 2, 20, 2.0).unwrap(); // dirty: only (1, 2)
        engine.publish();
        let snap2 = engine.snapshot();
        assert_eq!(engine.publish_report().dirty_pairs, 1);

        for (u, v) in [(0u32, 1u32), (2, 3)] {
            let p1 = snap1.graph().pair_id(u, v).unwrap();
            let p2 = snap2.graph().pair_id(u, v).unwrap();
            assert!(
                snap1.graph().series(p1).shares_storage_with(snap2.graph().series(p2)),
                "untouched pair ({u}, {v}) must be structurally shared"
            );
        }
        let p1 = snap1.graph().pair_id(1, 2).unwrap();
        let p2 = snap2.graph().pair_id(1, 2).unwrap();
        assert!(
            !snap1.graph().series(p1).shares_storage_with(snap2.graph().series(p2)),
            "the dirty pair must have been detached"
        );
        // And the old snapshot still shows the old data.
        assert_eq!(snap1.graph().series(p1).len(), 1);
        assert_eq!(snap2.graph().series(p2).len(), 2);
    }

    #[test]
    fn publish_report_tracks_dirty_pairs_and_epoch() {
        let engine = SnapshotEngine::new();
        assert_eq!(engine.publish_report(), PublishReport::default());
        engine.ingest(FIG2).unwrap();
        engine.publish();
        let r = engine.publish_report();
        assert_eq!(r.epoch, 1);
        assert_eq!(r.dirty_pairs, 7, "FIG2 touches 7 distinct pairs");
        // Quiescent publish is a no-op: the report is unchanged.
        engine.publish();
        assert_eq!(engine.publish_report(), r);
        // Eviction dirties the pairs it drains.
        engine.evict_before(12);
        engine.publish();
        let r = engine.publish_report();
        assert_eq!(r.epoch, 2);
        assert_eq!(r.dirty_pairs, 3, "(3,2) x2, (2,0), (3,0) lose events; 3 pairs");
    }

    #[test]
    fn cow_publish_beats_a_deep_copy_of_the_resident_graph() {
        // The whole point of the rework: publishing with a small dirty
        // set must cost less than deep-copying the resident interactions
        // (the old per-publish price). Compared on the same machine in
        // the same process, with a wide margin expected (O(pairs) vs
        // O(interactions)), so the assertion is robust.
        const PAIRS: u32 = 2_000;
        const EVENTS_PER_PAIR: i64 = 50;
        let engine = SnapshotEngine::new();
        engine
            .ingest((0..PAIRS as i64 * EVENTS_PER_PAIR).map(|i| {
                let p = (i % PAIRS as i64) as u32;
                (p, PAIRS + 1, i, 1.0)
            }))
            .unwrap();
        engine.publish();

        let rounds = 20;
        let mut t = 1_000_000i64;
        let publish_start = Instant::now();
        for _ in 0..rounds {
            for p in 0..10u32 {
                engine.append(p, PAIRS + 1, t, 1.0).unwrap();
                t += 1;
            }
            engine.publish();
            assert_eq!(engine.publish_report().dirty_pairs, 10);
        }
        let publish_total = publish_start.elapsed();

        let snap = engine.snapshot();
        let deep_start = Instant::now();
        for _ in 0..rounds {
            let copied: Vec<_> = snap
                .graph()
                .all_series()
                .iter()
                .map(|s| {
                    flowmotif_graph::InteractionSeries::from_sorted_events(s.events().to_vec())
                })
                .collect();
            assert_eq!(copied.len(), PAIRS as usize);
            std::hint::black_box(copied);
        }
        let deep_total = deep_start.elapsed();

        assert!(
            publish_total < deep_total,
            "COW publish ({publish_total:?}) must beat a deep copy ({deep_total:?})"
        );
    }

    #[test]
    fn writers_stay_available_during_large_publishes() {
        // Appends race a publisher hammering a ~100k-interaction resident
        // graph. With assembly outside the critical section and the
        // structural clone O(pairs), no single append may stall for
        // anything near a full deep-copy publish. The bound is generous
        // (CI machines vary); it exists to catch an O(resident)
        // under-lock regression, which would cost orders of magnitude
        // more than an append.
        let engine = Arc::new(SnapshotEngine::new());
        engine.ingest((0..100_000i64).map(|i| ((i % 500) as u32, 501u32, i, 1.0))).unwrap();
        engine.publish();

        let stop = Arc::new(AtomicBool::new(false));
        let publisher = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut published = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    engine.publish();
                    published += 1;
                    // Let the appender at the (unfair) writer mutex
                    // between publishes: the test measures publish cost,
                    // not lock barging.
                    std::thread::yield_now();
                }
                published
            })
        };
        let mut worst = Duration::ZERO;
        for i in 0..2_000i64 {
            let t0 = Instant::now();
            engine.append((i % 500) as u32, 501, 200_000 + i, 1.0).unwrap();
            worst = worst.max(t0.elapsed());
        }
        stop.store(true, Ordering::Relaxed);
        let published = publisher.join().unwrap();
        assert!(published > 0, "the publisher must have raced the writer");
        assert!(
            worst < Duration::from_millis(500),
            "an append stalled {worst:?} behind publishing"
        );
    }

    #[test]
    fn publish_return_is_always_visible_to_the_caller() {
        // Read-your-publish under contention: whenever publish() returns
        // epoch e — including the no-op path racing another publisher's
        // prepare/install window — the published slot must already hold
        // an epoch >= e, so an immediate follow-up query cannot miss
        // data the caller was just told is published.
        let engine = Arc::new(SnapshotEngine::new().publish_every(1));
        let threads: Vec<_> = (0..4)
            .map(|k| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    for i in 0..500i64 {
                        // Auto-publishing appends keep prepare/install
                        // windows open while peers call publish().
                        engine.append(k, 100 + k, i, 1.0).unwrap();
                        let e = engine.publish();
                        assert!(
                            engine.published_epoch() >= e,
                            "publish returned {e} but the slot lags"
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn search_options_propagate_to_snapshots() {
        let opts = SearchOptions::default().with_use_active_index(false);
        let engine = SnapshotEngine::new().search_options(opts);
        engine.ingest(FIG2).unwrap();
        engine.publish();
        let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();
        // Identical answers with the index off (epoch 0 and the fresh one).
        assert_eq!(engine.snapshot().count(&motif, Some(TimeWindow::new(0, 30))).0, 1);
        let indexed = SnapshotEngine::new();
        indexed.ingest(FIG2).unwrap();
        indexed.publish();
        assert_eq!(
            engine.snapshot().count(&motif, Some(TimeWindow::new(0, 30))),
            indexed.snapshot().count(&motif, Some(TimeWindow::new(0, 30))),
        );
    }

    #[test]
    fn concurrent_readers_never_see_torn_state() {
        // Readers hammer snapshots while a writer appends and publishes;
        // every observed snapshot must be internally consistent (its
        // stats match its graph).
        let engine = std::sync::Arc::new(SnapshotEngine::new());
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let engine = std::sync::Arc::clone(&engine);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = engine.snapshot();
                        assert_eq!(
                            snap.graph().num_interactions() as u64,
                            snap.stats().appended - snap.stats().evicted,
                            "epoch {}",
                            snap.epoch()
                        );
                        seen = seen.max(snap.epoch());
                    }
                    seen
                })
            })
            .collect();
        for i in 0..200i64 {
            engine.append(0, 1 + (i % 7) as u32, i, 1.0).unwrap();
            if i % 10 == 0 {
                engine.publish();
            }
        }
        engine.publish();
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(engine.published_epoch(), 21);
    }
}
