//! Concurrent reads during live ingestion: an epoch/snapshot layer over
//! the resident [`QueryEngine`].
//!
//! The single-threaded engine answers queries by *borrowing* its mutable
//! graph, so a long search blocks every append (and vice versa). This
//! module decouples the two:
//!
//! * a **writer side** — the [`QueryEngine`] behind a mutex — absorbs
//!   appends and evictions exactly as before;
//! * a **reader side** — an `Arc`-swapped [`Snapshot`] holding a
//!   compacted, immutable [`TimeSeriesGraph`] — serves any number of
//!   concurrent searches without taking the writer lock at all.
//!
//! [`SnapshotEngine::publish`] bridges them: it folds the writer's
//! buffered tails in (`compact`), clones the consolidated CSR into a
//! fresh [`Snapshot`] stamped with a monotonically increasing *epoch*,
//! and swaps it into the published slot. Readers that already hold a
//! snapshot keep it alive through its `Arc` — publishing never
//! invalidates an in-progress query, it only makes newer data visible to
//! the *next* [`SnapshotEngine::snapshot`] call.
//!
//! The cost model: readers pay one `RwLock` read + `Arc` clone per
//! snapshot acquisition and then run lock-free; the writer pays an
//! `O(resident)` graph clone per publish (skipped entirely when nothing
//! changed since the last publish). Batching appends between publishes —
//! see [`SnapshotEngine::publish_every`] — amortizes that clone the same
//! way the incremental graph amortizes tail merges.

use crate::engine::{EngineStats, QueryResult};
use crate::window::SlidingWindow;
use crate::QueryEngine;
use flowmotif_core::{
    count_instances, count_instances_in_window, enumerate_all, enumerate_all_in_window, Motif,
    SearchStats,
};
use flowmotif_graph::{Flow, GraphError, NodeId, TimeSeriesGraph, TimeWindow, Timestamp};
use std::sync::{Arc, Mutex, RwLock};

/// An immutable point-in-time view of the stream, cheap to share across
/// threads and safe to query while ingestion continues.
///
/// Snapshots are produced by [`SnapshotEngine::publish`] and handed out
/// by [`SnapshotEngine::snapshot`]; each carries the *epoch* at which it
/// was published, so results can be attributed to an exact stream
/// prefix.
#[derive(Debug, Clone)]
pub struct Snapshot {
    graph: Arc<TimeSeriesGraph>,
    epoch: u64,
    stats: EngineStats,
}

impl Snapshot {
    /// The publish sequence number of this snapshot (0 = the empty
    /// snapshot every engine starts with).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Engine statistics frozen at publish time.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The immutable compacted graph; all core search drivers (top-k,
    /// census, analytics, …) can run on it directly.
    pub fn graph(&self) -> &TimeSeriesGraph {
        &self.graph
    }

    /// Two-phase motif search over the snapshot, restricted to `bounds`
    /// when given. Unlike [`QueryEngine::query`] this takes `&self`: any
    /// number of threads may search one snapshot concurrently.
    pub fn query(&self, motif: &Motif, bounds: Option<TimeWindow>) -> QueryResult {
        let (groups, stats) = match bounds {
            Some(w) => enumerate_all_in_window(&self.graph, motif, w),
            None => enumerate_all(&self.graph, motif),
        };
        QueryResult { groups, stats }
    }

    /// Counts maximal instances without materialising them.
    pub fn count(&self, motif: &Motif, bounds: Option<TimeWindow>) -> (u64, SearchStats) {
        match bounds {
            Some(w) => count_instances_in_window(&self.graph, motif, w),
            None => count_instances(&self.graph, motif),
        }
    }
}

/// State owned by the writer lock: the resident engine plus the epoch
/// counter and the watermark of the last publish.
#[derive(Debug)]
struct WriterState {
    engine: QueryEngine,
    epoch: u64,
    /// `(appended, evicted)` lifetime totals at the last publish; a
    /// publish with unchanged totals is a no-op.
    published_totals: (u64, u64),
}

/// A [`QueryEngine`] that supports concurrent readers via epoch-stamped
/// snapshots.
///
/// All methods take `&self`; share the engine as an `Arc<SnapshotEngine>`
/// between one (or more, serialised by the writer mutex) ingesting
/// thread and any number of query threads.
///
/// ```
/// use flowmotif_core::catalog;
/// use flowmotif_stream::SnapshotEngine;
/// use std::sync::Arc;
///
/// let engine = Arc::new(SnapshotEngine::new());
/// engine.ingest([(0u32, 1u32, 10i64, 5.0), (1, 2, 12, 4.0)]).unwrap();
/// engine.publish();
///
/// // A snapshot is immutable: appends racing with the search below
/// // cannot affect its result.
/// let snap = engine.snapshot();
/// let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
/// let reader = std::thread::spawn(move || snap.count(&motif, None).0);
/// engine.ingest([(2u32, 3u32, 14i64, 3.0)]).unwrap();
/// assert_eq!(reader.join().unwrap(), 1);
///
/// // The new edge becomes visible at the next publish.
/// let epoch = engine.publish();
/// assert_eq!(engine.snapshot().epoch(), epoch);
/// assert_eq!(engine.snapshot().stats().appended, 3);
/// ```
#[derive(Debug)]
pub struct SnapshotEngine {
    writer: Mutex<WriterState>,
    published: RwLock<Arc<Snapshot>>,
    /// Auto-publish after this many appends since the last publish
    /// (0 = only on explicit [`SnapshotEngine::publish`] calls).
    publish_every: usize,
}

impl Default for SnapshotEngine {
    fn default() -> Self {
        Self::with_engine(QueryEngine::new())
    }
}

impl SnapshotEngine {
    /// An engine that retains the whole stream and publishes only on
    /// explicit [`SnapshotEngine::publish`] calls.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing (possibly pre-loaded) [`QueryEngine`]. Epoch 0
    /// is published immediately from its current contents.
    pub fn with_engine(mut engine: QueryEngine) -> Self {
        engine.compact();
        let stats = engine.stats();
        let snapshot =
            Arc::new(Snapshot { graph: Arc::new(engine.graph().clone()), epoch: 0, stats });
        Self {
            writer: Mutex::new(WriterState {
                engine,
                epoch: 0,
                published_totals: (stats.appended, stats.evicted),
            }),
            published: RwLock::new(snapshot),
            publish_every: 0,
        }
    }

    /// Installs a sliding-window retention policy on the writer side
    /// (see [`QueryEngine::with_window`]).
    pub fn with_window(self, window: SlidingWindow) -> Self {
        {
            let mut w = self.writer.lock().unwrap();
            let engine = std::mem::take(&mut w.engine).with_window(window);
            w.engine = engine;
        }
        self
    }

    /// Permits self-loop interactions (off by default).
    pub fn allow_self_loops(self, allow: bool) -> Self {
        {
            let mut w = self.writer.lock().unwrap();
            let engine = std::mem::take(&mut w.engine).allow_self_loops(allow);
            w.engine = engine;
        }
        self
    }

    /// Auto-publishes a fresh snapshot once `n` appends have accumulated
    /// since the last publish (0 disables auto-publish). The check runs
    /// at the end of each [`SnapshotEngine::append`] / ingest batch, so a
    /// large `ingest` publishes once, not once per `n` edges.
    pub fn publish_every(mut self, n: usize) -> Self {
        self.publish_every = n;
        self
    }

    /// Appends one interaction and returns the stream watermark after it
    /// (computed under the same writer lock, so it is exactly this
    /// append's view even with other writers racing). Auto-publishes
    /// when due.
    pub fn append(
        &self,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        flow: Flow,
    ) -> Result<Timestamp, GraphError> {
        let mut w = self.writer.lock().unwrap();
        w.engine.try_append(from, to, time, flow)?;
        let watermark = w.engine.stats().watermark.unwrap_or(time);
        self.maybe_publish(&mut w);
        Ok(watermark)
    }

    /// Appends a batch; returns how many were appended. Fails on the
    /// first invalid interaction (earlier ones stay applied).
    /// Auto-publishes at most once, after the whole batch.
    pub fn ingest<I>(&self, batch: I) -> Result<usize, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId, Timestamp, Flow)>,
    {
        let mut w = self.writer.lock().unwrap();
        let mut n = 0;
        let r: Result<(), GraphError> = (|| {
            for (u, v, t, f) in batch {
                w.engine.try_append(u, v, t, f)?;
                n += 1;
            }
            Ok(())
        })();
        self.maybe_publish(&mut w);
        r.map(|()| n)
    }

    /// Drops interactions older than `floor` on the writer side; the
    /// published snapshot keeps serving the old view until the next
    /// publish. Returns how many were dropped.
    pub fn evict_before(&self, floor: Timestamp) -> usize {
        self.writer.lock().unwrap().engine.evict_before(floor)
    }

    /// Consolidates the writer-side graph (see [`QueryEngine::compact`]).
    pub fn compact(&self) {
        self.writer.lock().unwrap().engine.compact();
    }

    /// Publishes the current writer state as a new immutable snapshot and
    /// returns its epoch. When nothing was appended or evicted since the
    /// last publish this is a no-op returning the current epoch — so
    /// polling publishers are cheap on a quiescent stream.
    pub fn publish(&self) -> u64 {
        let mut w = self.writer.lock().unwrap();
        self.publish_locked(&mut w)
    }

    /// Live writer-side statistics (includes not-yet-published appends).
    pub fn stats(&self) -> EngineStats {
        self.writer.lock().unwrap().engine.stats()
    }

    /// The currently published snapshot. Cheap: one `RwLock` read and an
    /// `Arc` clone; the returned snapshot stays valid (and unchanged)
    /// however far the stream advances.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.published.read().unwrap())
    }

    /// Epoch of the currently published snapshot.
    pub fn published_epoch(&self) -> u64 {
        self.published.read().unwrap().epoch
    }

    fn maybe_publish(&self, w: &mut WriterState) {
        if self.publish_every == 0 {
            return;
        }
        let (appended, _) = w.engine.stats().totals();
        if (appended - w.published_totals.0) as usize >= self.publish_every {
            self.publish_locked(w);
        }
    }

    fn publish_locked(&self, w: &mut WriterState) -> u64 {
        let totals = w.engine.stats().totals();
        if totals == w.published_totals {
            return w.epoch;
        }
        // Fold tails and drop evicted-empty pairs so the snapshot is a
        // dense CSR, then clone it out. The clone runs under the writer
        // lock (publishes are serialised with appends) but readers are
        // only blocked for the final pointer swap below.
        w.engine.compact();
        w.epoch += 1;
        w.published_totals = totals;
        let snapshot = Arc::new(Snapshot {
            graph: Arc::new(w.engine.graph().clone()),
            epoch: w.epoch,
            stats: w.engine.stats(),
        });
        *self.published.write().unwrap() = snapshot;
        w.epoch
    }
}

impl EngineStats {
    /// Lifetime `(appended, evicted)` totals — the pair that decides
    /// whether a publish would produce a new epoch.
    pub fn totals(&self) -> (u64, u64) {
        (self.appended, self.evicted)
    }
}

// The whole point of this module: prove at compile time that snapshots
// and the engine may cross threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot>();
    assert_send_sync::<SnapshotEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use flowmotif_core::catalog;
    use flowmotif_graph::GraphBuilder;
    use std::sync::atomic::{AtomicBool, Ordering};

    const FIG2: [(NodeId, NodeId, Timestamp, Flow); 10] = [
        (3, 2, 1, 2.0),
        (3, 2, 3, 5.0),
        (2, 0, 10, 10.0),
        (3, 0, 11, 10.0),
        (0, 1, 13, 5.0),
        (0, 1, 15, 7.0),
        (1, 2, 18, 20.0),
        (2, 3, 19, 5.0),
        (2, 3, 21, 4.0),
        (1, 3, 23, 7.0),
    ];

    #[test]
    fn snapshots_are_immutable_and_epoch_stamped() {
        let engine = SnapshotEngine::new();
        let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();

        let empty = engine.snapshot();
        assert_eq!(empty.epoch(), 0);
        assert_eq!(empty.count(&motif, None).0, 0);

        engine.ingest(FIG2).unwrap();
        // Not yet published: readers still see the empty graph.
        assert_eq!(engine.snapshot().epoch(), 0);
        assert_eq!(engine.snapshot().count(&motif, None).0, 0);
        assert_eq!(engine.stats().appended, 10, "writer side is live");

        let e = engine.publish();
        assert_eq!(e, 1);
        let snap = engine.snapshot();
        assert_eq!(snap.count(&motif, None).0, 1);
        // The old snapshot is untouched by the publish.
        assert_eq!(empty.count(&motif, None).0, 0);
        // Publishing with no new data is a no-op.
        assert_eq!(engine.publish(), 1);
        assert_eq!(engine.published_epoch(), 1);
    }

    #[test]
    fn snapshot_query_matches_batch_rebuild() {
        let engine = SnapshotEngine::new();
        engine.ingest(FIG2).unwrap();
        engine.publish();
        let snap = engine.snapshot();

        let mut b = GraphBuilder::new();
        b.extend_interactions(FIG2);
        let batch = b.build_time_series_graph();

        let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();
        for bounds in [None, Some(TimeWindow::new(10, 18)), Some(TimeWindow::new(11, 23))] {
            let got = snap.query(&motif, bounds);
            let expect = match bounds {
                Some(w) => enumerate_all_in_window(&batch, &motif, w).0,
                None => enumerate_all(&batch, &motif).0,
            };
            assert_eq!(got.groups.len(), expect.len(), "{bounds:?}");
            for ((gsm, gi), (esm, ei)) in got.groups.iter().zip(&expect) {
                assert_eq!(gsm.walk_nodes(snap.graph()), esm.walk_nodes(&batch));
                let gd: Vec<_> = gi.iter().map(|i| i.display(snap.graph())).collect();
                let ed: Vec<_> = ei.iter().map(|i| i.display(&batch)).collect();
                assert_eq!(gd, ed);
            }
        }
    }

    #[test]
    fn auto_publish_after_n_appends() {
        let engine = SnapshotEngine::new().publish_every(4);
        for (i, &(u, v, t, f)) in FIG2.iter().enumerate() {
            engine.append(u, v, t, f).unwrap();
            assert_eq!(engine.published_epoch(), ((i + 1) / 4) as u64, "after {} appends", i + 1);
        }
        // A batch ingest publishes once at the end, not every 4 edges.
        let engine = SnapshotEngine::new().publish_every(4);
        engine.ingest(FIG2).unwrap();
        assert_eq!(engine.published_epoch(), 1);
        assert_eq!(engine.snapshot().stats().appended, 10);
    }

    #[test]
    fn eviction_surfaces_at_next_publish() {
        let engine = SnapshotEngine::new().with_window(SlidingWindow::with_slack(10, 1));
        engine.ingest(FIG2).unwrap();
        engine.publish();
        let snap = engine.snapshot();
        // The sliding window evicted everything before t=13.
        assert_eq!(snap.stats().floor, Some(13));
        assert!(snap.graph().time_span().unwrap().0 >= 13);
        // Manual eviction is writer-side only until published.
        let before = engine.snapshot().graph().num_interactions();
        engine.evict_before(20);
        assert_eq!(engine.snapshot().graph().num_interactions(), before);
        engine.publish();
        assert!(engine.snapshot().graph().num_interactions() < before);
    }

    #[test]
    fn with_engine_publishes_preloaded_contents_as_epoch_zero() {
        let mut inner = QueryEngine::new();
        inner.ingest(FIG2).unwrap();
        let engine = SnapshotEngine::with_engine(inner);
        let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();
        let snap = engine.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.count(&motif, None).0, 1);
        // No changes since construction: publish is a no-op.
        assert_eq!(engine.publish(), 0);
    }

    #[test]
    fn concurrent_readers_never_see_torn_state() {
        // Readers hammer snapshots while a writer appends and publishes;
        // every observed snapshot must be internally consistent (its
        // stats match its graph).
        let engine = std::sync::Arc::new(SnapshotEngine::new());
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let engine = std::sync::Arc::clone(&engine);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = engine.snapshot();
                        assert_eq!(
                            snap.graph().num_interactions() as u64,
                            snap.stats().appended - snap.stats().evicted,
                            "epoch {}",
                            snap.epoch()
                        );
                        seen = seen.max(snap.epoch());
                    }
                    seen
                })
            })
            .collect();
        for i in 0..200i64 {
            engine.append(0, 1 + (i % 7) as u32, i, 1.0).unwrap();
            if i % 10 == 0 {
                engine.publish();
            }
        }
        engine.publish();
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(engine.published_epoch(), 21);
    }
}
