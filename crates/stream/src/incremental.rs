//! The incrementally maintained time-series graph behind the streaming
//! engine.
//!
//! The resident [`TimeSeriesGraph`] holds the sorted per-pair series (with
//! prefix sums). Appends take one of three paths:
//!
//! * **in-order fast path** — the event lands at or after the tail of its
//!   pair's series and nothing is buffered: O(1) append straight into the
//!   resident series;
//! * **tail buffer** — the event is out of order (or the pair already has a
//!   buffered tail): it joins a small per-pair unsorted tail, merged into
//!   the sorted series on read or on [`IncrementalGraph::compact`];
//! * **pending pair** — the `(u, v)` pair is new: its events buffer in a
//!   side table until the next read, when the CSR index is extended once
//!   for all new pairs together.
//!
//! The amortized cost of a read after `k` buffered events on a pair with
//! `n` resident events is `O(k log k + n)` (tail sort + one merge), versus
//! `O((n + k) log (n + k))` plus full graph reconstruction for a batch
//! rebuild.

use flowmotif_graph::{
    Event, Flow, GraphError, InteractionSeries, NodeId, PairId, TimeSeriesGraph, Timestamp,
};
use flowmotif_util::{FxHashMap, FxHashSet};

/// A time-series graph that accepts out-of-order edge appends and window
/// evictions while staying ready for two-phase motif search.
#[derive(Debug, Default, Clone)]
pub struct IncrementalGraph {
    /// Resident sorted state; search borrows this directly.
    graph: TimeSeriesGraph,
    /// O(1) pair lookup, kept in sync with `graph.pairs()`.
    pair_ids: FxHashMap<(NodeId, NodeId), PairId>,
    /// Unsorted straggler buffer per resident pair (parallel to pairs).
    tails: Vec<Vec<Event>>,
    /// Pairs with a non-empty tail, pushed on first insert — so a fold
    /// touches only dirty pairs, not all of `tails`.
    dirty: Vec<PairId>,
    /// Total events across all tails.
    tail_len: usize,
    /// Events on pairs not yet in the CSR index.
    pending: FxHashMap<(NodeId, NodeId), Vec<Event>>,
    /// Total events in `pending`.
    pending_len: usize,
    /// Largest timestamp ever appended.
    watermark: Option<Timestamp>,
    /// Total interactions appended over the graph's lifetime.
    appended: u64,
    /// Total interactions evicted over the graph's lifetime.
    evicted: u64,
    /// Node pairs whose series changed (append or eviction) since the
    /// last [`IncrementalGraph::clear_touched`] — the dirty set behind
    /// the snapshot engine's O(dirty) publish accounting. Keyed by
    /// `(u, v)` so it survives `PairId` remaps (compaction).
    touched: FxHashSet<(NodeId, NodeId)>,
    allow_self_loops: bool,
}

impl IncrementalGraph {
    /// Creates an empty incremental graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Permits `u -> u` interactions (off by default, matching
    /// [`flowmotif_graph::GraphBuilder`]).
    pub fn allow_self_loops(mut self, allow: bool) -> Self {
        self.allow_self_loops = allow;
        self
    }

    /// Appends one interaction; panics on invalid input (see
    /// [`IncrementalGraph::try_append`] for the checked variant).
    pub fn append(&mut self, from: NodeId, to: NodeId, time: Timestamp, flow: Flow) {
        self.try_append(from, to, time, flow).expect("invalid interaction");
    }

    /// Appends one interaction, validating flow positivity and self-loops
    /// exactly like `GraphBuilder::try_add_interaction`.
    pub fn try_append(
        &mut self,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        flow: Flow,
    ) -> Result<(), GraphError> {
        if !(flow.is_finite() && flow > 0.0) {
            return Err(GraphError::InvalidFlow { flow, from: from as u64, to: to as u64 });
        }
        if from == to && !self.allow_self_loops {
            return Err(GraphError::SelfLoop(from as u64));
        }
        self.watermark = Some(self.watermark.map_or(time, |w| w.max(time)));
        self.appended += 1;
        self.touched.insert((from, to));
        let e = Event::new(time, flow);
        match self.pair_ids.get(&(from, to)) {
            Some(&p) => {
                let tail = &mut self.tails[p as usize];
                let series = self.graph.series(p);
                if tail.is_empty() && series.events().last().is_none_or(|l| l.time <= time) {
                    self.graph.append_in_order(p, e);
                } else {
                    if tail.is_empty() {
                        self.dirty.push(p);
                    }
                    tail.push(e);
                    self.tail_len += 1;
                }
            }
            None => {
                self.pending.entry((from, to)).or_default().push(e);
                self.pending_len += 1;
            }
        }
        Ok(())
    }

    /// Number of interactions currently held (resident + buffered).
    pub fn num_interactions(&self) -> usize {
        self.graph.num_interactions() + self.tail_len + self.pending_len
    }

    /// Number of distinct connected pairs currently held (resident +
    /// pending). Pairs emptied by eviction still count until
    /// [`IncrementalGraph::compact`].
    pub fn num_pairs(&self) -> usize {
        self.graph.num_pairs() + self.pending.len()
    }

    /// Largest timestamp appended so far (`None` before the first append).
    pub fn watermark(&self) -> Option<Timestamp> {
        self.watermark
    }

    /// Lifetime totals: `(appended, evicted)`.
    pub fn totals(&self) -> (u64, u64) {
        (self.appended, self.evicted)
    }

    /// Whether buffered state exists that a read would first fold in.
    pub fn is_dirty(&self) -> bool {
        self.tail_len > 0 || self.pending_len > 0
    }

    /// Folds buffered tails and pending pairs into the resident graph and
    /// borrows it. Clean reads are free; after `k` buffered appends the
    /// fold costs `O(k log k)` plus one merge pass per dirty pair.
    pub fn graph(&mut self) -> &TimeSeriesGraph {
        self.merge_tails();
        self.integrate_pending();
        &self.graph
    }

    /// Drops every interaction with `time < floor` (including buffered
    /// ones); returns how many were dropped. Emptied pairs keep their
    /// `PairId` until [`IncrementalGraph::compact`], which physically
    /// removes them.
    pub fn evict_before(&mut self, floor: Timestamp) -> usize {
        self.evict_before_inner(floor, |_| {})
    }

    /// [`IncrementalGraph::evict_before`] that additionally records every
    /// `(u, v)` pair that lost at least one event into `drained`
    /// (deduplicated, sorted) — the hook standing queries use to rescan
    /// exactly the affected matches.
    pub fn evict_before_collect(
        &mut self,
        floor: Timestamp,
        drained: &mut Vec<(NodeId, NodeId)>,
    ) -> usize {
        let start = drained.len();
        let removed = self.evict_before_inner(floor, |pair| drained.push(pair));
        drained[start..].sort_unstable();
        drained.dedup();
        removed
    }

    fn evict_before_inner(
        &mut self,
        floor: Timestamp,
        mut on_drained: impl FnMut((NodeId, NodeId)),
    ) -> usize {
        let touched = &mut self.touched;
        let mut removed = self.graph.evict_before_with(floor, |pair, _| {
            touched.insert(pair);
            on_drained(pair);
        });
        for (p, tail) in self.tails.iter_mut().enumerate() {
            let before = tail.len();
            tail.retain(|e| e.time >= floor);
            if tail.len() < before {
                removed += before - tail.len();
                let pair = self.graph.pair(p as PairId);
                self.touched.insert(pair);
                on_drained(pair);
            }
        }
        self.tail_len = self.tails.iter().map(Vec::len).sum();
        for (&pair, events) in self.pending.iter_mut() {
            let before = events.len();
            events.retain(|e| e.time >= floor);
            if events.len() < before {
                removed += before - events.len();
                self.touched.insert(pair);
                on_drained(pair);
            }
        }
        self.pending.retain(|_, v| !v.is_empty());
        self.pending_len = self.pending.values().map(Vec::len).sum();
        self.evicted += removed as u64;
        removed
    }

    /// Number of distinct node pairs touched (appended to or evicted
    /// from) since the last [`IncrementalGraph::clear_touched`].
    pub fn touched_pairs(&self) -> usize {
        self.touched.len()
    }

    /// Resets the dirty-pair set (called by the snapshot engine right
    /// after it captures a publish).
    pub fn clear_touched(&mut self) {
        self.touched.clear();
    }

    /// Fully consolidates the graph: folds all buffers in and drops pairs
    /// emptied by eviction, shrinking the CSR index. Call this
    /// occasionally on long-running windows so dead pairs do not
    /// accumulate.
    pub fn compact(&mut self) {
        self.merge_tails();
        self.integrate_pending();
        if self.graph.retain_nonempty() > 0 {
            self.rebuild_lookup();
        }
    }

    /// Merges the unsorted tails into the resident series, visiting only
    /// the dirty pairs.
    fn merge_tails(&mut self) {
        for p in self.dirty.drain(..) {
            let tail = &mut self.tails[p as usize];
            if tail.is_empty() {
                continue; // eviction may have emptied it
            }
            // Stable by time: arrival order is preserved among ties, so
            // the merged series equals a batch build of the same arrivals.
            tail.sort_by_key(|e| e.time);
            self.graph.merge_events(p, tail);
            tail.clear();
        }
        self.tail_len = 0;
    }

    /// Extends the CSR index with all pending pairs at once.
    fn integrate_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let new: Vec<((NodeId, NodeId), InteractionSeries)> = self
            .pending
            .drain()
            .map(|(pair, events)| (pair, InteractionSeries::from_events(events)))
            .collect();
        self.pending_len = 0;
        self.graph.insert_series(new);
        self.rebuild_lookup();
    }

    /// Re-derives `pair_ids` and re-homes the tail buffers after the pair
    /// set (and therefore every `PairId`) changed.
    fn rebuild_lookup(&mut self) {
        debug_assert!(self.tail_len == 0, "tails must be merged before pair ids move");
        self.pair_ids.clear();
        self.pair_ids.reserve(self.graph.num_pairs());
        for (i, &pair) in self.graph.pairs().iter().enumerate() {
            self.pair_ids.insert(pair, i as PairId);
        }
        self.tails.clear();
        self.tails.resize_with(self.graph.num_pairs(), Vec::new);
        // Any remaining dirty entries are stale (evicted-empty tails).
        self.dirty.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmotif_graph::GraphBuilder;

    fn batch(edges: &[(NodeId, NodeId, Timestamp, Flow)]) -> TimeSeriesGraph {
        let mut b = GraphBuilder::new();
        b.extend_interactions(edges.iter().copied());
        b.build_time_series_graph()
    }

    fn assert_same(inc: &mut IncrementalGraph, edges: &[(NodeId, NodeId, Timestamp, Flow)]) {
        let expect = batch(edges);
        let got = inc.graph();
        assert_eq!(got.num_interactions(), expect.num_interactions());
        assert_eq!(got.pairs(), expect.pairs());
        assert_eq!(got.all_series(), expect.all_series());
    }

    #[test]
    fn in_order_appends_match_batch_build() {
        let edges = [(0u32, 1u32, 1i64, 1.0), (0, 1, 2, 2.0), (1, 2, 3, 3.0), (0, 1, 4, 4.0)];
        let mut inc = IncrementalGraph::new();
        for &(u, v, t, f) in &edges {
            inc.append(u, v, t, f);
        }
        assert_same(&mut inc, &edges);
        assert_eq!(inc.watermark(), Some(4));
    }

    #[test]
    fn out_of_order_appends_match_batch_build() {
        let edges = [
            (0u32, 1u32, 9i64, 1.0),
            (0, 1, 3, 2.0),
            (1, 2, 7, 3.0),
            (0, 1, 5, 4.0),
            (0, 1, 9, 5.0), // tie with the first (0,1) event
            (1, 2, 1, 6.0),
        ];
        let mut inc = IncrementalGraph::new();
        for &(u, v, t, f) in &edges {
            inc.append(u, v, t, f);
        }
        assert!(inc.is_dirty());
        assert_eq!(inc.num_interactions(), 6);
        assert_same(&mut inc, &edges);
        assert!(!inc.is_dirty());
        // Appending after a read works too (and re-dirties).
        inc.append(0, 1, 2, 7.0);
        assert!(inc.is_dirty());
        let mut all = edges.to_vec();
        all.push((0, 1, 2, 7.0));
        assert_same(&mut inc, &all);
    }

    #[test]
    fn tie_order_matches_batch_arrival_order() {
        // Two events on the same pair with the same timestamp, arriving
        // around an out-of-order straggler: the merged series must keep
        // arrival order among ties, exactly like the batch stable sort.
        let edges = [(0u32, 1u32, 5i64, 1.0), (0, 1, 3, 2.0), (0, 1, 5, 3.0)];
        let mut inc = IncrementalGraph::new();
        for &(u, v, t, f) in &edges {
            inc.append(u, v, t, f);
        }
        let flows: Vec<f64> = inc.graph().series(0).events().iter().map(|e| e.flow).collect();
        assert_eq!(flows, vec![2.0, 1.0, 3.0]);
        assert_same(&mut inc, &edges);
    }

    #[test]
    fn validation_matches_builder_rules() {
        let mut inc = IncrementalGraph::new();
        assert!(inc.try_append(0, 1, 1, 0.0).is_err());
        assert!(inc.try_append(0, 1, 1, f64::NAN).is_err());
        assert!(inc.try_append(3, 3, 1, 1.0).is_err());
        assert_eq!(inc.num_interactions(), 0);
        let mut inc = IncrementalGraph::new().allow_self_loops(true);
        assert!(inc.try_append(3, 3, 1, 1.0).is_ok());
    }

    #[test]
    fn eviction_drops_resident_and_buffered_events() {
        let mut inc = IncrementalGraph::new();
        inc.append(0, 1, 10, 1.0);
        inc.append(0, 1, 20, 2.0);
        inc.graph(); // make (0,1) resident
        inc.append(0, 1, 5, 3.0); // buffered straggler, below the floor
        inc.append(2, 3, 8, 4.0); // pending pair, below the floor
        inc.append(2, 3, 30, 5.0); // pending pair, above the floor
        let removed = inc.evict_before(15);
        assert_eq!(removed, 3);
        assert_eq!(inc.num_interactions(), 2);
        assert_same(&mut inc, &[(0, 1, 20, 2.0), (2, 3, 30, 5.0)]);
        let (appended, evicted) = inc.totals();
        assert_eq!(appended, 5);
        assert_eq!(evicted, 3);
    }

    #[test]
    fn compact_drops_emptied_pairs() {
        let mut inc = IncrementalGraph::new();
        inc.append(0, 1, 10, 1.0);
        inc.append(1, 2, 20, 2.0);
        inc.graph();
        inc.evict_before(15);
        assert_eq!(inc.num_pairs(), 2, "emptied pair lingers");
        inc.compact();
        assert_eq!(inc.num_pairs(), 1);
        // The graph still behaves correctly afterwards.
        inc.append(0, 1, 30, 3.0);
        assert_same(&mut inc, &[(1, 2, 20, 2.0), (0, 1, 30, 3.0)]);
    }

    #[test]
    fn touched_pairs_track_appends_and_evictions() {
        let mut inc = IncrementalGraph::new();
        assert_eq!(inc.touched_pairs(), 0);
        inc.append(0, 1, 10, 1.0);
        inc.append(0, 1, 11, 1.0); // same pair: still one dirty pair
        inc.append(1, 2, 12, 1.0);
        assert_eq!(inc.touched_pairs(), 2);
        inc.clear_touched();
        assert_eq!(inc.touched_pairs(), 0);
        // Compaction does not dirty anything by itself.
        inc.compact();
        assert_eq!(inc.touched_pairs(), 0);
        // Eviction dirties exactly the pairs that lose events (resident,
        // buffered-tail and pending alike).
        inc.append(0, 1, 5, 1.0); // straggler tail on resident (0, 1)
        inc.append(7, 8, 6, 1.0); // pending pair below the floor
        inc.clear_touched();
        let removed = inc.evict_before(12);
        assert_eq!(removed, 4, "t=10, 11 resident; t=5 tail; t=6 pending");
        assert_eq!(inc.touched_pairs(), 2, "(0,1) and (7,8) changed; (1,2) did not");
        assert_eq!(inc.num_interactions(), 1);
    }

    #[test]
    fn clean_reads_are_stable() {
        let mut inc = IncrementalGraph::new();
        inc.append(0, 1, 1, 1.0);
        let a = inc.graph().num_interactions();
        let b = inc.graph().num_interactions();
        assert_eq!(a, b);
        assert!(!inc.is_dirty());
    }
}
