//! Stream-tier metrics: process-wide statics updated at every publish
//! and reseal, readable by any registry (the serve `METRICS` verb
//! registers them as closures).
//!
//! Gauges hold the *last* publish's telemetry (duration, dirty set,
//! epoch, wall-clock stamp); counters accumulate totals. The wall-clock
//! stamp is what lets a renderer derive **epoch age** — how stale the
//! published snapshot is — without the engine keeping a clock thread.

use flowmotif_obs::{Counter, Gauge};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Non-no-op publishes since process start (both engines).
pub static PUBLISHES_TOTAL: Counter = Counter::new();

/// Epoch number of the most recent publish.
pub static LAST_PUBLISH_EPOCH: Gauge = Gauge::new();

/// Wall-clock duration of the most recent publish, in nanoseconds
/// (render with scale 1e-9 for seconds) — the stream's publish lag.
pub static LAST_PUBLISH_DURATION_NS: Gauge = Gauge::new();

/// Dirty pairs folded in by the most recent publish.
pub static LAST_PUBLISH_DIRTY_PAIRS: Gauge = Gauge::new();

/// Unix timestamp (ns) of the most recent publish; 0 = never.
pub static LAST_PUBLISH_UNIX_NS: Gauge = Gauge::new();

/// Segment reseals (base ∪ delta merges) since process start.
pub static RESEALS_TOTAL: Counter = Counter::new();

/// Wall-clock duration of the most recent reseal, in nanoseconds.
pub static LAST_RESEAL_DURATION_NS: Gauge = Gauge::new();

/// Nanoseconds since the Unix epoch (0 if the clock is before it).
pub fn unix_now_ns() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0)
}

/// Stamps one completed publish into the statics.
pub(crate) fn record_publish(epoch: u64, dirty_pairs: usize, duration: Duration) {
    PUBLISHES_TOTAL.inc();
    LAST_PUBLISH_EPOCH.set(epoch);
    LAST_PUBLISH_DURATION_NS.set(duration.as_nanos() as u64);
    LAST_PUBLISH_DIRTY_PAIRS.set(dirty_pairs as u64);
    LAST_PUBLISH_UNIX_NS.set(unix_now_ns());
}

/// Stamps one completed reseal into the statics.
pub(crate) fn record_reseal(duration: Duration) {
    RESEALS_TOTAL.inc();
    LAST_RESEAL_DURATION_NS.set(duration.as_nanos() as u64);
}

/// Seconds since the most recent publish (the published epoch's age);
/// `0.0` when no publish has happened yet.
pub fn epoch_age_seconds() -> f64 {
    let last = LAST_PUBLISH_UNIX_NS.get();
    if last == 0 {
        return 0.0;
    }
    unix_now_ns().saturating_sub(last) as f64 * 1e-9
}
