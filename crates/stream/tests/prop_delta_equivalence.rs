//! Property: a standing query's delta-maintained result set is exactly
//! a full re-query, after **every** prefix of a random mutation stream.
//!
//! Seeding a fresh [`StandingQueries`] subscription *is* a full
//! re-query of the current graph (that is how `subscribe` materializes
//! its view), so the oracle on each prefix is simply: subscribe again
//! from scratch and compare instance sets. The maintained view has
//! lived through appends (in- and out-of-order), policy and explicit
//! evictions, tail compactions and snapshot publishes; the fresh view
//! has seen none of it. They must agree bit-for-bit.

use flowmotif_core::catalog;
use flowmotif_graph::{Flow, TimeWindow, Timestamp};
use flowmotif_stream::{
    EpochEngine, QueryEngine, SlidingWindow, SnapshotEngine, StandingQueries, StandingQuery,
};
use flowmotif_util::{RngExt, SeedableRng, StdRng};

const CASES: u64 = 20;
const OPS: usize = 60;
const NODES: u32 = 7;

/// Canonical, order-independent rendering of a standing result set.
/// `DeltaInstance` already carries a canonical per-edge breakdown (and
/// a content hash), so its `Debug` form is a faithful identity.
fn canon(q: &StandingQuery) -> Vec<String> {
    let mut v = Vec::new();
    q.for_each_instance(|key, di| v.push(format!("{key:?} {di:?}")));
    v.sort();
    v
}

#[test]
fn delta_view_equals_full_requery_on_every_prefix() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD317A_u64 * 1000 + case);
        // A third of the cases run under a sliding-window policy, so
        // appends themselves trigger evictions mid-stream.
        let horizon: i64 = [0, 25, 60][(case % 3) as usize];
        let mut inner = QueryEngine::new();
        if horizon > 0 {
            inner = inner.with_window(SlidingWindow::new(horizon));
        }
        let engine = SnapshotEngine::with_engine(inner).publish_every(4);

        let chain = catalog::by_name("M(3,2)", 12, 0.0).unwrap();
        let cycle = catalog::by_name("M(3,3)", 15, 0.0).unwrap();
        let bounded = Some(TimeWindow::new(10, 70));
        let mut subs = StandingQueries::new();
        let a = engine.subscribe_standing(&mut subs, chain.clone(), None);
        let b = engine.subscribe_standing(&mut subs, cycle.clone(), None);
        let c = engine.subscribe_standing(&mut subs, chain.clone(), bounded);
        let specs =
            [(a, chain.clone(), None), (b, cycle.clone(), None), (c, chain.clone(), bounded)];

        let mut events = Vec::new();
        let mut time: Timestamp = 0;
        for op in 0..OPS {
            match rng.random_range(0..10u32) {
                0..=6 => {
                    // Append, sometimes a few ticks behind the watermark
                    // (exercises the unsorted-tail path).
                    time += rng.random_range(0..4i64);
                    let t = (time - rng.random_range(0..3i64)).max(0);
                    let from = rng.random_range(0..NODES);
                    let to = (from + rng.random_range(1..NODES)) % NODES;
                    let flow = rng.random_range(1..6u32) as Flow;
                    // A stale append (below an eviction floor) is refused
                    // without touching the graph — equivalence must hold
                    // either way.
                    let _ = engine.append_standing(from, to, t, flow, &mut subs, &mut events);
                }
                7 => {
                    let floor = time - rng.random_range(0..30i64);
                    engine.evict_standing(floor, &mut subs, &mut events);
                }
                8 => engine.compact(),
                _ => {
                    engine.publish();
                }
            }
            for (id, motif, bounds) in &specs {
                let mut fresh = StandingQueries::new();
                let fid = engine.subscribe_standing(&mut fresh, motif.clone(), *bounds);
                assert_eq!(
                    canon(subs.get(*id).unwrap()),
                    canon(fresh.get(fid).unwrap()),
                    "case {case} op {op} subscription {id}: delta view diverged from re-query"
                );
            }
        }

        // Accounting: every pushed event belongs to a registered
        // subscription, and the emission counters cover them exactly.
        let ids = [a, b, c];
        assert!(events.iter().all(|e| ids.contains(&e.subscription)));
        let emitted: u64 =
            ids.iter().map(|id| subs.get(*id).unwrap().delta_stats().instances_emitted).sum();
        assert_eq!(events.len() as u64, emitted, "case {case}");

        // SearchStats sanity: the delta path enumerates windows (P2)
        // but never runs the P1 driver — subscriptions were seeded on an
        // empty graph, and anchored rescans bypass the driver entirely.
        let windows: u64 =
            ids.iter().map(|id| subs.get(*id).unwrap().search_stats().windows_processed).sum();
        if !events.is_empty() {
            assert!(windows > 0, "case {case}: events without P2 work");
        }
        for id in ids {
            assert_eq!(
                subs.get(id).unwrap().search_stats().structural_matches,
                0,
                "case {case}: the standing path must anchor P1, not re-drive it"
            );
        }
    }
}

#[test]
fn epoch_appends_and_reseals_keep_the_delta_view_exact() {
    use flowmotif_graph::{segment::write_segment, GraphBuilder, NodeId};

    fn tmp_dir(tag: u64) -> std::path::PathBuf {
        let p =
            std::env::temp_dir().join(format!("flowmotif-prop-delta-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xE90C_u64 * 1000 + case);
        // Seal a small random base so the subscription seeds over the
        // mmap'd segment, then stream appends into the RAM delta.
        let mut b = GraphBuilder::new();
        for i in 0..12 {
            let from = rng.random_range(0..NODES);
            let to = (from + rng.random_range(1..NODES)) % NODES;
            b.extend_interactions([(
                from as NodeId,
                to as NodeId,
                i as Timestamp,
                rng.random_range(1..6u32) as Flow,
            )]);
        }
        let dir = tmp_dir(case);
        write_segment(&b.build_time_series_graph(), &dir).unwrap();
        let engine = EpochEngine::open(&dir).unwrap().publish_every(3);

        let motif = catalog::by_name("M(3,2)", 12, 0.0).unwrap();
        let mut subs = StandingQueries::new();
        let id = engine.subscribe_standing(&mut subs, motif.clone(), None);
        assert!(subs.get(id).unwrap().num_instances() > 0 || case > 0, "base seeds the view");

        let mut events = Vec::new();
        let mut time: Timestamp = 12;
        for op in 0..30 {
            if rng.random_range(0..6u32) == 0 {
                // Reseal merges base ∪ delta into a fresh segment —
                // data-identical, so the maintained view needs no hook
                // and must come through untouched.
                engine.reseal().unwrap();
            } else {
                time += rng.random_range(0..3i64);
                let from = rng.random_range(0..NODES);
                let to = (from + rng.random_range(1..NODES)) % NODES;
                let flow = rng.random_range(1..6u32) as Flow;
                let _ = engine.append_standing(from, to, time, flow, &mut subs, &mut events);
            }
            let mut fresh = StandingQueries::new();
            let fid = engine.subscribe_standing(&mut fresh, motif.clone(), None);
            assert_eq!(
                canon(subs.get(id).unwrap()),
                canon(fresh.get(fid).unwrap()),
                "case {case} op {op}: epoch delta view diverged from re-query"
            );
        }
        drop(engine);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
