//! Argument parsing for the `flowmotif` CLI (hand-rolled; the flag
//! surface is small and keeping the dependency tree lean matters for a
//! library-first project).

use flowmotif_core::ExtensionOrder;
use std::path::PathBuf;

/// Usage text shown by `--help` and on parse errors.
pub const USAGE: &str = "\
flowmotif — flow motif search in interaction networks (EDBT 2019)

USAGE:
  flowmotif <COMMAND> [OPTIONS]

COMMANDS:
  stats <file>            dataset statistics of an edge list (from to time flow)
  find <file>             enumerate maximal motif instances (alias: search)
  topk <file>             k highest-flow instances (ϕ is ignored, per §5)
  top1 <file>             maximum-flow instance via the DP module (§5.1)
  pack <file>             compile an edge list into a packed segment
                          directory (out-of-core backend; see --packed)
  significance <file>     z-score vs flow-permuted replicas (§6.3)
  census <file>           instance counts of every walk shape of --edges size
  activity <file>         most active vertex groups for a motif (§5.1 ext.)
  generate                emit a synthetic dataset as an edge list
  stream [file]           resident engine: ingest edges + answer interleaved
                          queries from a script (stdin if no file is given)
  serve [<dir>]           TCP server over the resident engine (snapshot
                          reads, multi-client; see crates/serve/PROTOCOL.md);
                          with <dir> and --packed, serves a packed segment
                          through the epoch engine (mmap base + RAM delta)
  client [file]           send protocol requests (file or stdin, one per
                          line) to a running server and print the replies
  subscribe               register a standing motif query on a running
                          server and stream its EVENT notifications to
                          stdout as they happen
  metrics                 fetch a running server's metrics (Prometheus
                          text) and print them to stdout

OPTIONS (find/topk/top1/significance):
  --motif <spec>          catalog name like M(3,3) or a walk like 0-1-2-0   [M(3,2)]
  --delta <int>           duration constraint δ                             [600]
  --phi <float>           flow constraint ϕ                                 [0]
  --k <int>               result count for topk                             [10]
  --threads <int>         worker threads (0 = all cores)                    [1]
  --hub-degree <int>      split origins with more out-neighbours than this
                          across workers (0 = never split)                  [128]
  --show <int>            print up to N instances                           [5]
  --replicas <int>        randomized replicas for significance             [20]
  --edges <int>           motif size for census                             [2]
  --seed <int>            RNG seed                                          [42]
  --packed                treat <file> as a packed segment directory
                          (produced by `pack`) and search it through a
                          read-only memory map instead of loading it
                          (find/search, topk, top1)
  --profile               print a per-stage breakdown (P1 match scan,
                          P2 enumeration, DP solve, per-worker load)
                          after the results (find/search, topk, top1)
  --extension-order <ord> how P1 picks the motif edge extending each
                          prefix: cardinality (worst-case-optimal) or
                          fixed (the paper's walk order, for A/B runs);
                          also honoured by serve                 [cardinality]
  --json                  machine-readable output on stdout

OPTIONS (pack):
  --out <dir>             segment output directory                          [required]
  --run-records <int>     records per external-sort run (memory knob)       [1048576]

OPTIONS (stream):
  --horizon <int>         sliding-window horizon; evict older interactions
                          (0 = retain everything)                           [0]
  --show <int>            print up to N instances per query                 [5]
  --no-index              answer window-bounded queries without the
                          active-time origin index (A/B baseline)

  A stream script holds one operation per line: an edge `u v t f` (an
  optional `add` prefix is accepted), `query <motif> <delta> <phi>
  [<from> <to>]`, `evict <t>`, `compact`, or `stats`. A `#` starts a
  comment anywhere on a line; `%` comments out a whole line.

OPTIONS (serve/client):
  --host <addr>           interface to bind / connect to                  [127.0.0.1]
  --port <int>            TCP port (serve: 0 picks a free port)           [7878]
  --pool <int>            query-executing worker threads                  [4]
  --event-loop-threads <int>
                          socket-multiplexing event-loop threads          [2]
  --cache-entries <int>   epoch-keyed result-cache capacity (replies;
                          0 disables caching)                             [1024]
  --max-connections <int> open-connection cap (excess connections are
                          refused with BUSY at accept time)               [4096]
  --max-inflight <int>    queries executing at once (0 = unlimited)       [0]
  --max-window <int>      per-query time-window cap (0 = unlimited)       [0]
  --publish-every <int>   auto-publish a snapshot every N appends
                          (0 = only on explicit `publish` requests)       [1024]
  --horizon <int>         sliding-window eviction, as in stream           [0]
  --show <int>            DATA lines per query reply                      [5]
  --no-index              disable the active-time origin index for
                          window-bounded snapshot queries (A/B)
  --slow-query-ms <int>   serve: log queries at least this slow to stderr
                          with their P1/P2/DP stage times (0 logs every
                          query; omit to disable tracing entirely)

OPTIONS (subscribe; also --motif/--delta/--phi/--host/--port above):
  --from <int>            window start of the standing query (with --to)
  --to <int>              window end of the standing query (with --from)
  --limit <int>           exit after printing N events (0 = run until the
                          server closes the connection)                   [0]

OPTIONS (generate):
  --dataset <name>        bitcoin | facebook | passenger                    [bitcoin]
  --scale <float>         size multiplier                                   [1.0]
  --seed <int>            RNG seed                                          [42]
  --out <file>            output path (stdout if omitted)
";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to run.
    pub command: Command,
    /// Motif spec (`M(3,3)` or `0-1-2-0`).
    pub motif: String,
    /// Duration constraint δ.
    pub delta: i64,
    /// Flow constraint ϕ.
    pub phi: f64,
    /// k for top-k.
    pub k: usize,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Out-degree above which the parallel scheduler splits an origin's
    /// work across workers (0 = never split a hub).
    pub hub_degree: u32,
    /// How many instances to print.
    pub show: usize,
    /// Replicas for the significance test.
    pub replicas: usize,
    /// Motif size (edges) for the census.
    pub edges: usize,
    /// RNG seed.
    pub seed: u64,
    /// Treat the input of find/topk/top1 as a packed segment directory.
    pub packed: bool,
    /// External-sort run size (records) for `pack`.
    pub run_records: usize,
    /// Sliding-window horizon for `stream`/`serve` (0 = retain
    /// everything).
    pub horizon: i64,
    /// Interface for `serve`/`client`.
    pub host: String,
    /// TCP port for `serve`/`client`.
    pub port: u16,
    /// Worker-pool size for `serve`.
    pub pool: usize,
    /// Event-loop threads for `serve` (socket multiplexing).
    pub event_loop_threads: usize,
    /// Result-cache capacity (replies) for `serve`; 0 disables caching.
    pub cache_entries: usize,
    /// Open-connection cap for `serve`.
    pub max_connections: usize,
    /// Concurrent-query cap for `serve` (0 = unlimited).
    pub max_inflight: usize,
    /// Per-query window cap for `serve` (0 = unlimited).
    pub max_window: i64,
    /// Auto-publish period (appends) for `serve`; 0 = manual only.
    pub publish_every: usize,
    /// Consult the active-time origin index for window-bounded queries
    /// in `stream`/`serve` (`--no-index` turns it off for A/B runs).
    pub use_index: bool,
    /// Print a per-stage profile after find/topk/top1 results.
    pub profile: bool,
    /// P1 extension order for find/topk/top1/serve
    /// (`--extension-order fixed` is the A/B baseline).
    pub extension_order: ExtensionOrder,
    /// `serve`: log queries at least this slow (ms) to stderr with their
    /// stage breakdown; `None` disables per-query tracing.
    pub slow_query_ms: Option<u64>,
    /// `subscribe`: window start (`--from`; requires `--to`).
    pub from_time: Option<i64>,
    /// `subscribe`: window end (`--to`; requires `--from`).
    pub to_time: Option<i64>,
    /// `subscribe`: stop after this many events (0 = run forever).
    pub limit: usize,
    /// JSON output.
    pub json: bool,
    /// Dataset for `generate`.
    pub dataset: String,
    /// Scale for `generate`.
    pub scale: f64,
    /// Output path for `generate`.
    pub out: Option<PathBuf>,
}

/// The CLI subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print dataset statistics.
    Stats(PathBuf),
    /// Enumerate maximal instances.
    Find(PathBuf),
    /// Top-k instances by flow.
    TopK(PathBuf),
    /// Top-1 via the DP module.
    Top1(PathBuf),
    /// Pack an edge list into a segment directory.
    Pack(PathBuf),
    /// Significance vs permuted replicas.
    Significance(PathBuf),
    /// Census of all walk shapes of a given size.
    Census(PathBuf),
    /// Per-match activity ranking.
    Activity(PathBuf),
    /// Generate a synthetic dataset.
    Generate,
    /// Resident streaming engine fed by a script (file or stdin).
    Stream(Option<PathBuf>),
    /// TCP protocol server over the resident engine, or — given a
    /// packed segment directory plus `--packed` — over the out-of-core
    /// epoch engine.
    Serve(Option<PathBuf>),
    /// Protocol client: requests from a script (file or stdin).
    Client(Option<PathBuf>),
    /// Standing query: subscribe on a running server and stream events.
    Subscribe,
    /// Fetch and print a running server's Prometheus-text metrics.
    Metrics,
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            command: Command::Generate,
            motif: "M(3,2)".into(),
            delta: 600,
            phi: 0.0,
            k: 10,
            threads: 1,
            hub_degree: 128,
            show: 5,
            replicas: 20,
            edges: 2,
            seed: 42,
            packed: false,
            run_records: flowmotif_graph::segment::DEFAULT_RUN_RECORDS,
            horizon: 0,
            host: "127.0.0.1".into(),
            port: 7878,
            pool: 4,
            event_loop_threads: 2,
            cache_entries: 1024,
            max_connections: 4096,
            max_inflight: 0,
            max_window: 0,
            publish_every: 1024,
            use_index: true,
            profile: false,
            extension_order: ExtensionOrder::Cardinality,
            slow_query_ms: None,
            from_time: None,
            to_time: None,
            limit: 0,
            json: false,
            dataset: "bitcoin".into(),
            scale: 1.0,
            out: None,
        }
    }
}

impl Cli {
    /// Parses an argument list (without the program name).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, String> {
        let mut it = args.into_iter().peekable();
        let cmd_name = it.next().ok_or_else(|| "missing command".to_string())?;
        if cmd_name == "--help" || cmd_name == "-h" || cmd_name == "help" {
            return Err(USAGE.to_string());
        }
        let mut file: Option<PathBuf> = None;
        if cmd_name == "stream" || cmd_name == "client" || cmd_name == "serve" {
            // stream/client: optional script file (stdin without one).
            // serve: optional packed segment directory (with --packed).
            if it.peek().is_some_and(|a| !a.starts_with("--")) {
                file = Some(PathBuf::from(it.next().unwrap()));
            }
        } else if cmd_name != "generate" && cmd_name != "metrics" && cmd_name != "subscribe" {
            let f = it.next().ok_or_else(|| format!("`{cmd_name}` needs a <file> argument"))?;
            file = Some(PathBuf::from(f));
        }
        let command = match cmd_name.as_str() {
            "stats" => Command::Stats(file.unwrap()),
            "find" | "search" => Command::Find(file.unwrap()),
            "topk" => Command::TopK(file.unwrap()),
            "top1" => Command::Top1(file.unwrap()),
            "pack" => Command::Pack(file.unwrap()),
            "significance" => Command::Significance(file.unwrap()),
            "census" => Command::Census(file.unwrap()),
            "activity" => Command::Activity(file.unwrap()),
            "generate" => Command::Generate,
            "stream" => Command::Stream(file),
            "serve" => Command::Serve(file),
            "client" => Command::Client(file),
            "subscribe" => Command::Subscribe,
            "metrics" => Command::Metrics,
            other => return Err(format!("unknown command `{other}`\n\n{USAGE}")),
        };
        let mut cli = Cli { command, ..Cli::default() };
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next().ok_or_else(|| format!("missing value for {name}"))
            };
            macro_rules! parse_val {
                ($name:literal) => {
                    value($name)?.parse().map_err(|e| format!("bad {}: {e}", $name))?
                };
            }
            match flag.as_str() {
                "--motif" => cli.motif = value("--motif")?,
                "--delta" => cli.delta = parse_val!("--delta"),
                "--phi" => cli.phi = parse_val!("--phi"),
                "--k" => cli.k = parse_val!("--k"),
                "--threads" => cli.threads = parse_val!("--threads"),
                "--hub-degree" => cli.hub_degree = parse_val!("--hub-degree"),
                "--show" => cli.show = parse_val!("--show"),
                "--replicas" => cli.replicas = parse_val!("--replicas"),
                "--edges" => cli.edges = parse_val!("--edges"),
                "--seed" => cli.seed = parse_val!("--seed"),
                "--packed" => cli.packed = true,
                "--run-records" => cli.run_records = parse_val!("--run-records"),
                "--horizon" => cli.horizon = parse_val!("--horizon"),
                "--host" => cli.host = value("--host")?,
                "--port" => cli.port = parse_val!("--port"),
                "--pool" => cli.pool = parse_val!("--pool"),
                "--event-loop-threads" => {
                    cli.event_loop_threads = parse_val!("--event-loop-threads");
                }
                "--cache-entries" => cli.cache_entries = parse_val!("--cache-entries"),
                "--max-connections" => cli.max_connections = parse_val!("--max-connections"),
                "--max-inflight" => cli.max_inflight = parse_val!("--max-inflight"),
                "--max-window" => cli.max_window = parse_val!("--max-window"),
                "--publish-every" => cli.publish_every = parse_val!("--publish-every"),
                "--no-index" => cli.use_index = false,
                "--profile" => cli.profile = true,
                "--extension-order" => {
                    cli.extension_order = parse_val!("--extension-order");
                }
                "--slow-query-ms" => cli.slow_query_ms = Some(parse_val!("--slow-query-ms")),
                "--from" => cli.from_time = Some(parse_val!("--from")),
                "--to" => cli.to_time = Some(parse_val!("--to")),
                "--limit" => cli.limit = parse_val!("--limit"),
                "--json" => cli.json = true,
                "--dataset" => cli.dataset = value("--dataset")?,
                "--scale" => cli.scale = parse_val!("--scale"),
                "--out" => cli.out = Some(PathBuf::from(value("--out")?)),
                other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
            }
        }
        Ok(cli)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_find_with_options() {
        let cli = parse(&[
            "find", "g.tsv", "--motif", "M(3,3)", "--delta", "900", "--phi", "2.5", "--show", "3",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::Find(PathBuf::from("g.tsv")));
        assert_eq!(cli.motif, "M(3,3)");
        assert_eq!(cli.delta, 900);
        assert_eq!(cli.phi, 2.5);
        assert_eq!(cli.show, 3);
    }

    #[test]
    fn parses_generate() {
        let cli =
            parse(&["generate", "--dataset", "taxi", "--scale", "0.5", "--out", "x.tsv"]).unwrap();
        assert_eq!(cli.command, Command::Generate);
        assert_eq!(cli.dataset, "taxi");
        assert_eq!(cli.scale, 0.5);
        assert_eq!(cli.out, Some(PathBuf::from("x.tsv")));
    }

    #[test]
    fn parses_pack_and_packed_flag() {
        let cli = parse(&["pack", "g.tsv", "--out", "seg", "--run-records", "64"]).unwrap();
        assert_eq!(cli.command, Command::Pack(PathBuf::from("g.tsv")));
        assert_eq!(cli.out, Some(PathBuf::from("seg")));
        assert_eq!(cli.run_records, 64);

        // `--packed` is a bare flag: it must not swallow the next token.
        let cli = parse(&["topk", "seg", "--packed", "--k", "5"]).unwrap();
        assert_eq!(cli.command, Command::TopK(PathBuf::from("seg")));
        assert!(cli.packed);
        assert_eq!(cli.k, 5);
        assert!(!parse(&["find", "g.tsv"]).unwrap().packed);
    }

    #[test]
    fn search_is_an_alias_for_find() {
        let cli = parse(&["search", "g.tsv"]).unwrap();
        assert_eq!(cli.command, Command::Find(PathBuf::from("g.tsv")));
        assert!(parse(&["search"]).is_err());
    }

    #[test]
    fn rejects_unknowns_and_missing_args() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["bogus"]).is_err());
        assert!(parse(&["find"]).is_err());
        assert!(parse(&["find", "g.tsv", "--bogus"]).is_err());
        assert!(parse(&["find", "g.tsv", "--delta"]).is_err());
        assert!(parse(&["find", "g.tsv", "--delta", "abc"]).is_err());
    }

    #[test]
    fn help_returns_usage() {
        let err = parse(&["--help"]).unwrap_err();
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn parses_hub_degree() {
        assert_eq!(parse(&["find", "g.tsv"]).unwrap().hub_degree, 128);
        let cli = parse(&["find", "g.tsv", "--threads", "8", "--hub-degree", "0"]).unwrap();
        assert_eq!(cli.hub_degree, 0);
        assert_eq!(cli.threads, 8);
        assert!(parse(&["topk", "g.tsv", "--hub-degree", "-1"]).is_err());
        assert!(parse(&["topk", "g.tsv", "--hub-degree"]).is_err());
    }

    #[test]
    fn parses_census_and_activity() {
        let cli = parse(&["census", "g.tsv", "--edges", "3", "--delta", "100"]).unwrap();
        assert_eq!(cli.command, Command::Census(PathBuf::from("g.tsv")));
        assert_eq!(cli.edges, 3);
        let cli = parse(&["activity", "g.tsv", "--motif", "M(3,3)"]).unwrap();
        assert_eq!(cli.command, Command::Activity(PathBuf::from("g.tsv")));
    }

    #[test]
    fn parses_stream_with_and_without_file() {
        let cli = parse(&["stream", "s.txt", "--horizon", "600", "--show", "2"]).unwrap();
        assert_eq!(cli.command, Command::Stream(Some(PathBuf::from("s.txt"))));
        assert_eq!(cli.horizon, 600);
        assert_eq!(cli.show, 2);
        // No positional: the script comes from stdin; flags still parse.
        let cli = parse(&["stream", "--horizon", "60"]).unwrap();
        assert_eq!(cli.command, Command::Stream(None));
        assert_eq!(cli.horizon, 60);
        let cli = parse(&["stream"]).unwrap();
        assert_eq!(cli.command, Command::Stream(None));
        assert_eq!(cli.horizon, 0);
    }

    #[test]
    fn parses_serve_and_client() {
        let cli = parse(&[
            "serve",
            "--port",
            "0",
            "--pool",
            "8",
            "--max-inflight",
            "16",
            "--max-window",
            "3600",
            "--publish-every",
            "256",
            "--horizon",
            "7200",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::Serve(None));
        assert_eq!(cli.port, 0);
        assert_eq!(cli.pool, 8);
        assert_eq!(cli.max_inflight, 16);
        assert_eq!(cli.max_window, 3600);
        assert_eq!(cli.publish_every, 256);
        assert_eq!(cli.horizon, 7200);
        // serve takes an optional positional segment directory (for --packed);
        // whether --packed accompanies it is validated at dispatch time.
        let cli = parse(&["serve", "segments", "--packed"]).unwrap();
        assert_eq!(cli.command, Command::Serve(Some(PathBuf::from("segments"))));
        assert!(cli.packed);

        let cli = parse(&["client", "req.txt", "--host", "10.0.0.1", "--port", "9999"]).unwrap();
        assert_eq!(cli.command, Command::Client(Some(PathBuf::from("req.txt"))));
        assert_eq!(cli.host, "10.0.0.1");
        assert_eq!(cli.port, 9999);
        // No positional: requests come from stdin.
        let cli = parse(&["client", "--port", "9999"]).unwrap();
        assert_eq!(cli.command, Command::Client(None));
        // Ports are u16: out-of-range values are parse errors.
        assert!(parse(&["serve", "--port", "65536"]).is_err());
        assert!(parse(&["serve", "--port", "-1"]).is_err());
    }

    #[test]
    fn parses_event_loop_and_cache_flags() {
        let cli = parse(&["serve"]).unwrap();
        assert_eq!(cli.event_loop_threads, 2);
        assert_eq!(cli.cache_entries, 1024);
        assert_eq!(cli.max_connections, 4096);
        let cli = parse(&[
            "serve",
            "--event-loop-threads",
            "4",
            "--cache-entries",
            "0",
            "--max-connections",
            "128",
        ])
        .unwrap();
        assert_eq!(cli.event_loop_threads, 4);
        assert_eq!(cli.cache_entries, 0);
        assert_eq!(cli.max_connections, 128);
        assert!(parse(&["serve", "--event-loop-threads", "two"]).is_err());
    }

    #[test]
    fn no_index_flag_is_recognised_for_stream_and_serve() {
        assert!(parse(&["stream"]).unwrap().use_index);
        let cli = parse(&["stream", "--no-index"]).unwrap();
        assert!(!cli.use_index);
        let cli = parse(&["serve", "--no-index", "--port", "0"]).unwrap();
        assert!(!cli.use_index);
        // Bare flag: the next token is not swallowed as a value.
        assert!(parse(&["stream", "--no-index", "stray"]).is_err());
    }

    #[test]
    fn parses_profile_and_slow_query_flags() {
        assert!(!parse(&["find", "g.tsv"]).unwrap().profile);
        let cli = parse(&["find", "g.tsv", "--profile", "--threads", "4"]).unwrap();
        assert!(cli.profile);
        assert_eq!(cli.threads, 4);
        // Bare flag: the next token is not swallowed as a value.
        assert!(parse(&["find", "g.tsv", "--profile", "stray"]).is_err());

        assert_eq!(parse(&["serve"]).unwrap().slow_query_ms, None);
        let cli = parse(&["serve", "--slow-query-ms", "250"]).unwrap();
        assert_eq!(cli.slow_query_ms, Some(250));
        let cli = parse(&["serve", "--slow-query-ms", "0"]).unwrap();
        assert_eq!(cli.slow_query_ms, Some(0));
        assert!(parse(&["serve", "--slow-query-ms"]).is_err());
        assert!(parse(&["serve", "--slow-query-ms", "-1"]).is_err());
    }

    #[test]
    fn parses_extension_order() {
        assert_eq!(parse(&["find", "g.tsv"]).unwrap().extension_order, ExtensionOrder::Cardinality);
        let cli = parse(&["find", "g.tsv", "--extension-order", "fixed"]).unwrap();
        assert_eq!(cli.extension_order, ExtensionOrder::Fixed);
        let cli = parse(&["serve", "--extension-order", "cardinality"]).unwrap();
        assert_eq!(cli.extension_order, ExtensionOrder::Cardinality);
        let err = parse(&["find", "g.tsv", "--extension-order", "random"]).unwrap_err();
        assert!(err.contains("bad --extension-order"), "{err}");
        assert!(parse(&["find", "g.tsv", "--extension-order"]).is_err());
    }

    #[test]
    fn parses_subscribe_subcommand() {
        let cli =
            parse(&["subscribe", "--motif", "M(3,3)", "--delta", "60", "--port", "9999"]).unwrap();
        assert_eq!(cli.command, Command::Subscribe);
        assert_eq!(cli.motif, "M(3,3)");
        assert_eq!(cli.delta, 60);
        assert_eq!(cli.port, 9999);
        // Window bounds and the event limit are subscribe-specific.
        let cli = parse(&["subscribe", "--from", "0", "--to", "100", "--limit", "3"]).unwrap();
        assert_eq!(cli.from_time, Some(0));
        assert_eq!(cli.to_time, Some(100));
        assert_eq!(cli.limit, 3);
        // Defaults: unbounded window, run forever.
        let cli = parse(&["subscribe"]).unwrap();
        assert_eq!(cli.from_time, None);
        assert_eq!(cli.to_time, None);
        assert_eq!(cli.limit, 0);
        // No positional file.
        assert!(parse(&["subscribe", "stray"]).is_err());
    }

    #[test]
    fn parses_metrics_subcommand() {
        let cli = parse(&["metrics", "--host", "10.0.0.1", "--port", "9999"]).unwrap();
        assert_eq!(cli.command, Command::Metrics);
        assert_eq!(cli.host, "10.0.0.1");
        assert_eq!(cli.port, 9999);
        // No positional file; defaults point at the default server.
        let cli = parse(&["metrics"]).unwrap();
        assert_eq!(cli.port, 7878);
    }

    #[test]
    fn serve_client_defaults() {
        let cli = parse(&["serve"]).unwrap();
        assert_eq!(cli.host, "127.0.0.1");
        assert_eq!(cli.port, 7878);
        assert_eq!(cli.pool, 4);
        assert_eq!(cli.max_inflight, 0);
        assert_eq!(cli.max_window, 0);
        assert_eq!(cli.publish_every, 1024);
    }

    #[test]
    fn defaults_are_sane() {
        let cli = parse(&["topk", "g.tsv"]).unwrap();
        assert_eq!(cli.k, 10);
        assert_eq!(cli.delta, 600);
        assert_eq!(cli.phi, 0.0);
        assert!(!cli.json);
    }

    #[test]
    fn json_flag_is_recognised() {
        let cli = parse(&["find", "g.tsv", "--json"]).unwrap();
        assert!(cli.json);
        // ... and is a bare flag: the next token is parsed as a flag, not
        // as a value of --json.
        assert!(parse(&["find", "g.tsv", "--json", "stray"]).is_err());
    }

    #[test]
    fn negative_numerics() {
        // Signed/float options accept negatives (δ may look back in time,
        // ϕ=−1 disables the flow floor)...
        let cli = parse(&["find", "g.tsv", "--delta", "-5", "--phi", "-2.5"]).unwrap();
        assert_eq!(cli.delta, -5);
        assert_eq!(cli.phi, -2.5);
        // ...but unsigned options reject them with a parse error.
        for flag in ["--k", "--threads", "--show", "--replicas", "--edges", "--seed"] {
            let err = parse(&["find", "g.tsv", flag, "-1"]).unwrap_err();
            assert!(err.contains(&format!("bad {flag}")), "{flag}: {err}");
        }
    }

    #[test]
    fn huge_numerics() {
        // Values beyond the integer width are parse errors, not wraps.
        assert!(parse(&["find", "g.tsv", "--delta", "99999999999999999999"]).is_err());
        assert!(parse(&["find", "g.tsv", "--seed", "18446744073709551616"]).is_err());
        // The extremes of the width still parse.
        let cli = parse(&["find", "g.tsv", "--seed", "18446744073709551615"]).unwrap();
        assert_eq!(cli.seed, u64::MAX);
        let cli = parse(&["find", "g.tsv", "--delta", "-9223372036854775808"]).unwrap();
        assert_eq!(cli.delta, i64::MIN);
        // Float options tolerate huge magnitudes (f64 semantics).
        let cli = parse(&["find", "g.tsv", "--phi", "1e300"]).unwrap();
        assert_eq!(cli.phi, 1e300);
    }

    #[test]
    fn generate_option_routing() {
        // `generate` takes no positional file; its options route into the
        // dataset/scale/seed/out fields.
        let cli = parse(&[
            "generate",
            "--dataset",
            "facebook",
            "--scale",
            "0.25",
            "--seed",
            "7",
            "--out",
            "o.tsv",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::Generate);
        assert_eq!(cli.dataset, "facebook");
        assert_eq!(cli.scale, 0.25);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.out, Some(PathBuf::from("o.tsv")));
        // Without --out the output goes to stdout.
        assert_eq!(parse(&["generate"]).unwrap().out, None);
        // Unknown flags and missing values error under generate too.
        assert!(parse(&["generate", "--bogus"]).is_err());
        assert!(parse(&["generate", "--dataset"]).unwrap_err().contains("missing value"));
        assert!(parse(&["generate", "--scale", "fast"]).is_err());
    }

    #[test]
    fn every_value_flag_reports_missing_value() {
        for flag in [
            "--motif",
            "--delta",
            "--phi",
            "--k",
            "--threads",
            "--show",
            "--replicas",
            "--edges",
            "--seed",
            "--dataset",
            "--scale",
            "--out",
        ] {
            let err = parse(&["find", "g.tsv", flag]).unwrap_err();
            assert!(
                err.contains(&format!("missing value for {flag}")) || err.contains("bad"),
                "{flag}: {err}"
            );
        }
    }
}
