//! Library backing the `flowmotif` command-line tool: argument parsing
//! and the implementations of each subcommand, factored out of `main` so
//! they are unit-testable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cmd;
pub mod opts;

pub use cmd::run;
pub use opts::{Cli, Command};
