//! Library backing the `flowmotif` command-line tool: argument parsing
//! and the implementations of each subcommand, factored out of `main` so
//! they are unit-testable.
//!
//! Three families of subcommands share one flag surface ([`opts::USAGE`]):
//!
//! * **batch analyses** over an edge-list file — `stats`, `find`,
//!   `topk`, `top1`, `significance`, `census`, `activity` — plus
//!   `generate` for synthetic datasets;
//! * **resident sessions** — `stream` drives a
//!   [`flowmotif_stream::QueryEngine`] from a line-oriented script
//!   interleaving appends and queries;
//! * **the network service** — `serve` binds a
//!   [`flowmotif_serve::Server`] over a snapshot engine, `client` sends
//!   protocol requests from a script and prints the framed replies.
//!
//! Every analysis output has a `--json` variant; all parsing is
//! hand-rolled so the workspace stays dependency-free.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cmd;
pub mod opts;

pub use cmd::{run, run_client_script, run_stream_script, start_server};
pub use opts::{Cli, Command};
