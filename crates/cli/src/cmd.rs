//! Subcommand implementations, writing human- or machine-readable output
//! to the provided writer.

use crate::opts::{Cli, Command};
use flowmotif_core::analytics::per_match_activity;
use flowmotif_core::census::walk_census;
use flowmotif_core::dp::dp_top1_with;
use flowmotif_core::parallel::{par_enumerate_all_with, par_top_k_with, ParOptions};
use flowmotif_core::{catalog, AtomicTrace, Motif, SearchOptions, SearchScratch, TraceStage};
use flowmotif_datasets::Dataset;
use flowmotif_graph::{io, GraphStats, GraphStore, SegmentStore, TimeSeriesGraph, TimeWindow};
use flowmotif_serve::{Client, Server, ServerConfig};
use flowmotif_significance::{assess_motif, SignificanceConfig};
use flowmotif_stream::{QueryEngine, SlidingWindow, SnapshotEngine};
use flowmotif_util::json;
use std::io::{BufRead, Write};
use std::path::Path;

/// Runs the parsed CLI, writing output to `out`. Returns a process exit
/// code.
pub fn run<W: Write>(cli: &Cli, out: &mut W) -> Result<(), String> {
    match &cli.command {
        Command::Stats(path) => stats(path, cli, out),
        Command::Find(path) => find(path, cli, out),
        Command::TopK(path) => topk(path, cli, out),
        Command::Top1(path) => top1(path, cli, out),
        Command::Pack(path) => pack(path, cli, out),
        Command::Significance(path) => significance(path, cli, out),
        Command::Census(path) => census(path, cli, out),
        Command::Activity(path) => activity(path, cli, out),
        Command::Generate => generate(cli, out),
        Command::Stream(path) => stream(path.as_deref(), cli, out),
        Command::Serve(path) => serve(path.as_deref(), cli, out),
        Command::Client(path) => client(path.as_deref(), cli, out),
        Command::Subscribe => subscribe(cli, out),
        Command::Metrics => metrics(cli, out),
    }
}

fn load(path: &Path) -> Result<TimeSeriesGraph, String> {
    io::load_time_series_graph(path).map_err(|e| format!("loading {}: {e}", path.display()))
}

/// Opens a packed segment directory (or `graph.seg` file) produced by
/// `flowmotif pack` for `--packed` searches. Touches every mapped page
/// once before the search: phase P1 hops the adjacency sections in
/// graph order, and sequential faulting beats faulting on demand on a
/// cold map (see the `out_of_core` bench).
fn open_packed(path: &Path) -> Result<SegmentStore, String> {
    let store = SegmentStore::open(path)
        .map_err(|e| format!("opening packed graph {}: {e}", path.display()))?;
    store.prefetch();
    Ok(store)
}

fn motif_of(cli: &Cli) -> Result<Motif, String> {
    catalog::parse_motif(&cli.motif, cli.delta, cli.phi).map_err(|e| e.to_string())
}

/// Scheduling options for the parallel search commands: `--threads` plus
/// `--hub-degree` (0 = keep every origin whole).
fn par_of(cli: &Cli) -> ParOptions {
    ParOptions {
        threads: cli.threads,
        hub_degree: if cli.hub_degree == 0 { u32::MAX } else { cli.hub_degree },
        ..ParOptions::default()
    }
}

/// A trace arena for `--profile`, leaked once per invocation (the search
/// hook needs `&'static`, and the CLI is a short-lived process).
fn profile_trace(cli: &Cli) -> Option<&'static AtomicTrace> {
    cli.profile.then(|| &*Box::leak(Box::new(AtomicTrace::new())))
}

/// Search options for find/topk/top1: the `--extension-order` choice,
/// with the `--profile` trace attached when requested.
fn traced_options(cli: &Cli, trace: Option<&'static AtomicTrace>) -> SearchOptions {
    SearchOptions::builder()
        .trace(trace.map(|t| t as _))
        .extension_order(cli.extension_order)
        .build()
}

/// Prints the per-stage breakdown collected by a `--profile` run: stage
/// wall-clock time and work count, then per-worker task/busy figures
/// when the search ran on more than one worker.
fn write_profile<W: Write>(
    out: &mut W,
    trace: Option<&'static AtomicTrace>,
    started: Option<std::time::Instant>,
) {
    let (Some(trace), Some(started)) = (trace, started) else { return };
    let total = started.elapsed();
    writeln!(out, "profile: total {:.3} ms", total.as_secs_f64() * 1e3).ok();
    writeln!(out, "  {:<5} {:>12} {:>12}", "stage", "time_ms", "count").ok();
    for stage in [TraceStage::P1, TraceStage::P2, TraceStage::Dp] {
        let (ns, n) = (trace.nanos(stage), trace.count(stage));
        if ns == 0 && n == 0 {
            continue; // stage never ran (e.g. no DP outside top1)
        }
        writeln!(out, "  {:<5} {:>12.3} {:>12}", stage.label(), ns as f64 / 1e6, n).ok();
    }
    let workers = trace.workers();
    if workers > 1 {
        for wi in 0..workers {
            writeln!(
                out,
                "  worker {wi}: tasks={} busy_ms={:.3}",
                trace.worker_tasks(wi),
                trace.worker_nanos(wi) as f64 / 1e6
            )
            .ok();
        }
    }
}

fn stats<W: Write>(path: &Path, cli: &Cli, out: &mut W) -> Result<(), String> {
    let g = load(path)?;
    let s = GraphStats::of(&g);
    if cli.json {
        writeln!(out, "{}", flowmotif_util::to_string_pretty(&s)).ok();
    } else {
        writeln!(out, "{s}").ok();
    }
    Ok(())
}

fn find<W: Write>(path: &Path, cli: &Cli, out: &mut W) -> Result<(), String> {
    if cli.packed {
        find_in(&open_packed(path)?, cli, out)
    } else {
        find_in(&load(path)?, cli, out)
    }
}

fn find_in<G: GraphStore + Sync, W: Write>(g: &G, cli: &Cli, out: &mut W) -> Result<(), String> {
    let motif = motif_of(cli)?;
    let trace = profile_trace(cli);
    let started = trace.map(|_| std::time::Instant::now());
    let (groups, stats) =
        par_enumerate_all_with(g, &motif, traced_options(cli, trace), par_of(cli));
    let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
    if cli.json {
        let shown: Vec<_> = groups
            .iter()
            .flat_map(|(sm, v)| v.iter().map(move |i| (sm, i)))
            .take(cli.show)
            .collect();
        writeln!(
            out,
            "{}",
            json!({
                "motif": motif.name(),
                "delta": motif.delta(),
                "phi": motif.phi(),
                "structural_matches": stats.structural_matches,
                "instances": total,
                "sample": shown,
            })
        )
        .ok();
        return Ok(());
    }
    writeln!(
        out,
        "{motif}: {} structural matches, {} maximal instances",
        stats.structural_matches, total
    )
    .ok();
    let mut printed = 0;
    'outer: for (sm, insts) in &groups {
        for inst in insts {
            if printed >= cli.show {
                break 'outer;
            }
            writeln!(
                out,
                "  nodes {:?} flow {:.3} span {}: {}",
                sm.walk_nodes(g),
                inst.flow,
                inst.span(),
                inst.display(g)
            )
            .ok();
            printed += 1;
        }
    }
    write_profile(out, trace, started);
    Ok(())
}

fn topk<W: Write>(path: &Path, cli: &Cli, out: &mut W) -> Result<(), String> {
    if cli.packed {
        topk_in(&open_packed(path)?, cli, out)
    } else {
        topk_in(&load(path)?, cli, out)
    }
}

fn topk_in<G: GraphStore + Sync, W: Write>(g: &G, cli: &Cli, out: &mut W) -> Result<(), String> {
    // §5: top-k ranks by flow with ϕ = 0 (any --phi is still honoured as
    // a floor if explicitly set).
    let motif = motif_of(cli)?;
    let trace = profile_trace(cli);
    let started = trace.map(|_| std::time::Instant::now());
    let (ranked, _) = par_top_k_with(g, &motif, cli.k, traced_options(cli, trace), par_of(cli));
    if cli.json {
        let rows: Vec<_> = ranked
            .iter()
            .map(|r| json!({"flow": r.instance.flow, "instance": &r.instance}))
            .collect();
        writeln!(out, "{}", flowmotif_util::Json::Array(rows)).ok();
        return Ok(());
    }
    writeln!(out, "top-{} instances of {} by flow:", cli.k, motif.name()).ok();
    for (i, r) in ranked.iter().enumerate() {
        writeln!(
            out,
            "  #{} flow {:.3} nodes {:?}: {}",
            i + 1,
            r.instance.flow,
            r.structural_match.walk_nodes(g),
            r.instance.display(g)
        )
        .ok();
    }
    if ranked.is_empty() {
        writeln!(out, "  (no instances)").ok();
    }
    write_profile(out, trace, started);
    Ok(())
}

fn top1<W: Write>(path: &Path, cli: &Cli, out: &mut W) -> Result<(), String> {
    if cli.packed {
        top1_in(&open_packed(path)?, cli, out)
    } else {
        top1_in(&load(path)?, cli, out)
    }
}

fn top1_in<G: GraphStore, W: Write>(g: &G, cli: &Cli, out: &mut W) -> Result<(), String> {
    let motif = motif_of(cli)?;
    let trace = profile_trace(cli);
    let started = trace.map(|_| std::time::Instant::now());
    let (best, stats) =
        dp_top1_with(g, &motif, traced_options(cli, trace), &mut SearchScratch::default());
    match best {
        Some((sm, inst)) => {
            if cli.json {
                writeln!(
                    out,
                    "{}",
                    json!({"flow": inst.flow, "nodes": sm.walk_nodes(g), "instance": &inst})
                )
                .ok();
            } else {
                writeln!(
                    out,
                    "top-1 flow {:.3} over {} matches ({} DP windows): {}",
                    inst.flow,
                    stats.structural_matches,
                    stats.windows_processed,
                    inst.display(g)
                )
                .ok();
            }
        }
        None => {
            writeln!(out, "no instances").ok();
        }
    }
    write_profile(out, trace, started);
    Ok(())
}

fn pack<W: Write>(input: &Path, cli: &Cli, out: &mut W) -> Result<(), String> {
    let dir = cli.out.as_deref().ok_or_else(|| "pack requires --out <dir>".to_string())?;
    let stats = flowmotif_graph::pack_edge_list(input, dir, cli.run_records)
        .map_err(|e| format!("packing {}: {e}", input.display()))?;
    if cli.json {
        writeln!(out, "{}", flowmotif_util::to_string_pretty(&stats)).ok();
    } else {
        writeln!(
            out,
            "packed {} interactions over {} pairs ({} nodes, {} sort runs) into {}",
            stats.interactions,
            stats.pairs,
            stats.nodes,
            stats.runs,
            dir.display()
        )
        .ok();
    }
    Ok(())
}

fn significance<W: Write>(path: &Path, cli: &Cli, out: &mut W) -> Result<(), String> {
    let mg = io::load_multigraph(path).map_err(|e| format!("loading {}: {e}", path.display()))?;
    let motif = motif_of(cli)?;
    let cfg =
        SignificanceConfig { num_replicas: cli.replicas, seed: cli.seed, threads: cli.threads };
    let sig = assess_motif(&mg, &motif, cfg);
    if cli.json {
        writeln!(out, "{}", flowmotif_util::to_string_pretty(&sig)).ok();
    } else {
        writeln!(
            out,
            "{}: real={} random mean={:.2} σ={:.2} z={:.2} p={:.2}",
            sig.motif, sig.real_count, sig.random_mean, sig.random_std, sig.z_score, sig.p_value
        )
        .ok();
    }
    Ok(())
}

fn census<W: Write>(path: &Path, cli: &Cli, out: &mut W) -> Result<(), String> {
    let g = load(path)?;
    let rows = walk_census(&g, cli.edges, cli.delta, cli.phi);
    if cli.json {
        writeln!(out, "{}", flowmotif_util::to_string_pretty(&rows)).ok();
        return Ok(());
    }
    writeln!(out, "census of {}-edge walk motifs (δ={}, ϕ={}):", cli.edges, cli.delta, cli.phi)
        .ok();
    for r in &rows {
        writeln!(
            out,
            "  {:<16} {:>8} instances  ({} matches)",
            r.shape.to_string(),
            r.instances,
            r.structural_matches
        )
        .ok();
    }
    Ok(())
}

fn activity<W: Write>(path: &Path, cli: &Cli, out: &mut W) -> Result<(), String> {
    let g = load(path)?;
    let motif = motif_of(cli)?;
    let acts = per_match_activity(&g, &motif);
    if cli.json {
        writeln!(out, "{}", flowmotif_util::to_string_pretty(&acts)).ok();
        return Ok(());
    }
    writeln!(out, "most active vertex groups for {} (top {}):", motif.name(), cli.show).ok();
    for a in acts.iter().take(cli.show) {
        writeln!(
            out,
            "  nodes {:?}: {} instances, max flow {:.3}, active {}..{}",
            a.structural_match.walk_nodes(&g),
            a.instances,
            a.max_flow,
            a.first_activity.unwrap_or(0),
            a.last_activity.unwrap_or(0),
        )
        .ok();
    }
    if acts.is_empty() {
        writeln!(out, "  (no instances)").ok();
    }
    Ok(())
}

fn stream<W: Write>(path: Option<&Path>, cli: &Cli, out: &mut W) -> Result<(), String> {
    match path {
        Some(p) => {
            let f = std::fs::File::open(p).map_err(|e| format!("opening {}: {e}", p.display()))?;
            run_stream_script(std::io::BufReader::new(f), cli, out)
        }
        None => run_stream_script(std::io::stdin().lock(), cli, out),
    }
}

/// Drives a [`QueryEngine`] session from a line-oriented script (see the
/// `stream` section of [`crate::opts::USAGE`] for the grammar), writing
/// query answers to `out`.
pub fn run_stream_script<R: BufRead, W: Write>(
    reader: R,
    cli: &Cli,
    out: &mut W,
) -> Result<(), String> {
    if cli.horizon < 0 {
        return Err(format!("--horizon must be non-negative, got {}", cli.horizon));
    }
    let mut engine = QueryEngine::new().search_options(search_options_of(cli));
    if cli.horizon > 0 {
        engine = engine.with_window(SlidingWindow::new(cli.horizon));
    }
    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line.map_err(|e| format!("reading line {lineno}: {e}"))?;
        let at = |e: String| format!("line {lineno}: {e}");
        // `#` starts a comment anywhere on the line; `%` only as a whole
        // line (matching the edge-list loader's comment conventions).
        let trimmed = line.split('#').next().unwrap_or("").trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        let exact_len = |n: usize, what: &str| {
            if fields.len() == n {
                Ok(())
            } else {
                Err(at(format!("`{what}` takes {} fields, got {}", n - 1, fields.len() - 1)))
            }
        };
        match fields[0] {
            "query" => {
                let (motif, window) = parse_query(&fields[1..]).map_err(at)?;
                stream_query(&mut engine, &motif, window, cli, out);
            }
            "evict" => {
                exact_len(2, "evict <t>")?;
                let floor: i64 = parse_field(&fields[1..], 0, "evict <t>").map_err(at)?;
                let dropped = engine.evict_before(floor);
                writeln!(out, "evicted {dropped} interactions before t={floor}").ok();
            }
            "compact" => {
                exact_len(1, "compact")?;
                engine.compact();
            }
            "stats" => {
                exact_len(1, "stats")?;
                writeln!(out, "{}", engine.stats()).ok();
            }
            _ => {
                let edge = if fields[0] == "add" { &fields[1..] } else { &fields[..] };
                if edge.len() != 4 {
                    return Err(at(format!("edge `u v t f` takes 4 fields, got {}", edge.len())));
                }
                let u = parse_field(edge, 0, "edge `u v t f`").map_err(at)?;
                let v = parse_field(edge, 1, "edge `u v t f`").map_err(at)?;
                let t = parse_field(edge, 2, "edge `u v t f`").map_err(at)?;
                let f = parse_field(edge, 3, "edge `u v t f`").map_err(at)?;
                engine.try_append(u, v, t, f).map_err(|e| at(e.to_string()))?;
            }
        }
    }
    Ok(())
}

/// Search options derived from the CLI flags (`--no-index` is the A/B
/// switch over the active-time origin index, `--extension-order fixed`
/// the one over the worst-case-optimal P1 order).
fn search_options_of(cli: &Cli) -> SearchOptions {
    SearchOptions::builder()
        .use_active_index(cli.use_index)
        .extension_order(cli.extension_order)
        .build()
}

fn parse_field<T: std::str::FromStr>(fields: &[&str], i: usize, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let raw = fields.get(i).ok_or_else(|| format!("missing field {} of {what}", i + 1))?;
    raw.parse().map_err(|e| format!("bad field `{raw}` of {what}: {e}"))
}

/// Parses `query <motif> <delta> <phi> [<from> <to>]`.
fn parse_query(args: &[&str]) -> Result<(Motif, Option<TimeWindow>), String> {
    if args.len() != 3 && args.len() != 5 {
        return Err(format!(
            "`query <motif> <delta> <phi> [<from> <to>]` takes 3 or 5 fields, got {}",
            args.len()
        ));
    }
    let spec: String = parse_field(args, 0, "query <motif> <delta> <phi>")?;
    let delta: i64 = parse_field(args, 1, "query <motif> <delta> <phi>")?;
    let phi: f64 = parse_field(args, 2, "query <motif> <delta> <phi>")?;
    let motif = catalog::parse_motif(&spec, delta, phi).map_err(|e| e.to_string())?;
    let window = if args.len() > 3 {
        let from: i64 = parse_field(args, 3, "query window <from> <to>")?;
        let to: i64 = parse_field(args, 4, "query window <from> <to>")?;
        if to < from {
            return Err(format!("query window [{from}, {to}] ends before it starts"));
        }
        Some(TimeWindow::new(from, to))
    } else {
        None
    };
    Ok((motif, window))
}

fn stream_query<W: Write>(
    engine: &mut QueryEngine,
    motif: &Motif,
    window: Option<TimeWindow>,
    cli: &Cli,
    out: &mut W,
) {
    let res = engine.query(motif, window);
    let total = res.num_instances();
    let g = engine.graph();
    if cli.json {
        let shown: Vec<_> = res
            .groups
            .iter()
            .flat_map(|(sm, v)| v.iter().map(move |i| (sm, i)))
            .take(cli.show)
            .collect();
        writeln!(
            out,
            "{}",
            json!({
                "motif": motif.name(),
                "delta": motif.delta(),
                "phi": motif.phi(),
                "window": window.map(|w| vec![w.start, w.end]),
                "instances": total,
                "sample": shown,
            })
        )
        .ok();
        return;
    }
    let scope = window.map_or_else(|| "all retained".to_string(), |w| w.to_string());
    writeln!(out, "{motif} over {scope}: {total} maximal instances").ok();
    let mut printed = 0;
    'outer: for (sm, insts) in &res.groups {
        for inst in insts {
            if printed >= cli.show {
                break 'outer;
            }
            writeln!(
                out,
                "  nodes {:?} flow {:.3}: {}",
                sm.walk_nodes(g),
                inst.flow,
                inst.display(g)
            )
            .ok();
            printed += 1;
        }
    }
}

fn serve<W: Write>(path: Option<&Path>, cli: &Cli, out: &mut W) -> Result<(), String> {
    let server = start_server_at(path, cli)?;
    writeln!(out, "flowmotif-serve listening on {}", server.local_addr()).ok();
    out.flush().ok();
    // Foreground mode: serve until the process is killed.
    server.join();
    Ok(())
}

/// Builds the snapshot engine and binds the protocol server from the
/// parsed flags; `serve` then blocks on it, while tests bind port 0 and
/// drive the returned handle from in-process clients.
pub fn start_server(cli: &Cli) -> Result<Server, String> {
    start_server_at(None, cli)
}

/// [`start_server`], optionally over a packed segment directory: with
/// `--packed` and a path, the server fronts an
/// [`flowmotif_stream::EpochEngine`] (memory-mapped base + RAM delta)
/// instead of the in-memory snapshot engine.
pub fn start_server_at(path: Option<&Path>, cli: &Cli) -> Result<Server, String> {
    if cli.horizon < 0 {
        return Err(format!("--horizon must be non-negative, got {}", cli.horizon));
    }
    if cli.max_window < 0 {
        return Err(format!("--max-window must be non-negative, got {}", cli.max_window));
    }
    let config = ServerConfig {
        workers: cli.pool.max(1),
        max_inflight: cli.max_inflight,
        max_window: (cli.max_window > 0).then_some(cli.max_window),
        show: cli.show,
        slow_query_ms: cli.slow_query_ms,
        event_loop_threads: cli.event_loop_threads.max(1),
        cache_entries: cli.cache_entries,
        max_connections: cli.max_connections.max(1),
        ..ServerConfig::default()
    };
    let bind = |e: std::io::Error| format!("binding {}:{}: {e}", cli.host, cli.port);
    if cli.packed {
        let dir = path.ok_or_else(|| "serve --packed needs a <dir> argument".to_string())?;
        if cli.horizon > 0 {
            return Err("--horizon is not supported with --packed (segments are immutable); \
                        bound retention by resealing instead"
                .to_string());
        }
        let engine = flowmotif_stream::EpochEngine::open(dir)
            .map_err(|e| format!("opening packed graph {}: {e}", dir.display()))?
            .search_options(search_options_of(cli))
            .publish_every(cli.publish_every);
        return Server::start(std::sync::Arc::new(engine), config, (cli.host.as_str(), cli.port))
            .map_err(bind);
    }
    if path.is_some() {
        return Err("serve takes a <dir> argument only with --packed".to_string());
    }
    let mut inner = QueryEngine::new().search_options(search_options_of(cli));
    if cli.horizon > 0 {
        inner = inner.with_window(SlidingWindow::new(cli.horizon));
    }
    let engine = SnapshotEngine::with_engine(inner).publish_every(cli.publish_every);
    Server::start(std::sync::Arc::new(engine), config, (cli.host.as_str(), cli.port)).map_err(bind)
}

fn client<W: Write>(path: Option<&Path>, cli: &Cli, out: &mut W) -> Result<(), String> {
    let mut client = Client::connect((cli.host.as_str(), cli.port))
        .map_err(|e| format!("connecting to {}:{}: {e}", cli.host, cli.port))?;
    match path {
        Some(p) => {
            let f = std::fs::File::open(p).map_err(|e| format!("opening {}: {e}", p.display()))?;
            run_client_script(std::io::BufReader::new(f), &mut client, out)
        }
        None => run_client_script(std::io::stdin().lock(), &mut client, out),
    }
}

/// Sends each non-comment script line as one protocol request and prints
/// the framed reply (`DATA` lines, then the status line). Server-side
/// `ERR`/`BUSY` statuses are output, not failures; only transport errors
/// abort the script.
pub fn run_client_script<R: BufRead, W: Write>(
    reader: R,
    client: &mut Client,
    out: &mut W,
) -> Result<(), String> {
    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line.map_err(|e| format!("reading line {lineno}: {e}"))?;
        // Same comment conventions as the stream script.
        let trimmed = line.split('#').next().unwrap_or("").trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let reply = client.send(trimmed).map_err(|e| format!("line {lineno}: {e}"))?;
        // Push notifications that raced ahead of this reply (the session
        // subscribed earlier and something matched in the meantime).
        for payload in &reply.events {
            writeln!(out, "EVENT {payload}").ok();
        }
        for payload in &reply.data {
            writeln!(out, "DATA {payload}").ok();
        }
        writeln!(out, "{}", reply.status).ok();
        if reply.status == "OK bye" {
            break;
        }
    }
    Ok(())
}

/// Registers a standing motif query on a running server and streams its
/// push notifications to `out`, one `EVENT` line per new maximal
/// instance, as appends on other sessions produce them. Runs until the
/// server closes the connection, or — with `--limit N` — until N events
/// have been printed.
fn subscribe<W: Write>(cli: &Cli, out: &mut W) -> Result<(), String> {
    let window = match (cli.from_time, cli.to_time) {
        (Some(from), Some(to)) => Some((from, to)),
        (None, None) => None,
        _ => return Err("--from and --to must be given together".to_string()),
    };
    let mut client = Client::connect((cli.host.as_str(), cli.port))
        .map_err(|e| format!("connecting to {}:{}: {e}", cli.host, cli.port))?;
    let mut request = format!("subscribe {} {} {}", cli.motif, cli.delta, cli.phi);
    if let Some((from, to)) = window {
        request.push_str(&format!(" {from} {to}"));
    }
    let reply = client.send(&request).map_err(|e| format!("subscribing: {e}"))?;
    if !reply.is_ok() {
        return Err(format!("server refused subscription: {}", reply.status));
    }
    writeln!(out, "{}", reply.status).ok();
    out.flush().ok();
    let mut seen = 0usize;
    loop {
        match client.recv_line() {
            Ok(Some(line)) => {
                writeln!(out, "{line}").ok();
                // Each event must reach the pipe as it happens, not when
                // the process exits — subscribers tail this output.
                out.flush().ok();
                if line.starts_with("EVENT ") {
                    seen += 1;
                    if cli.limit > 0 && seen >= cli.limit {
                        return Ok(());
                    }
                }
            }
            Ok(None) => return Ok(()), // server closed: done
            Err(e) => return Err(format!("reading events: {e}")),
        }
    }
}

/// Fetches a running server's metric families over the `metrics` verb
/// and prints the Prometheus text to stdout (ready to pipe into a
/// node-exporter textfile or straight at a human).
fn metrics<W: Write>(cli: &Cli, out: &mut W) -> Result<(), String> {
    let mut client = Client::connect((cli.host.as_str(), cli.port))
        .map_err(|e| format!("connecting to {}:{}: {e}", cli.host, cli.port))?;
    let reply = client.send("metrics").map_err(|e| format!("fetching metrics: {e}"))?;
    if !reply.is_ok() {
        return Err(format!("server refused metrics: {}", reply.status));
    }
    for line in &reply.data {
        writeln!(out, "{line}").ok();
    }
    Ok(())
}

fn generate<W: Write>(cli: &Cli, out: &mut W) -> Result<(), String> {
    let dataset: Dataset = cli.dataset.parse()?;
    let mg = dataset.generate_multigraph(cli.scale, cli.seed);
    match &cli.out {
        Some(path) => {
            let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
            io::write_edge_list(&mg, std::io::BufWriter::new(f)).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "wrote {} interactions ({} nodes) to {}",
                mg.num_interactions(),
                mg.num_nodes(),
                path.display()
            )
            .ok();
        }
        None => {
            io::write_edge_list(&mg, &mut *out).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::Cli;

    fn run_args(args: &[&str]) -> (String, Result<(), String>) {
        let cli = Cli::parse_from(args.iter().map(|s| s.to_string())).unwrap();
        let mut buf = Vec::new();
        let r = run(&cli, &mut buf);
        (String::from_utf8(buf).unwrap(), r)
    }

    /// Writes the Fig. 2 example graph to a unique temp file; the file is
    /// removed when the returned guard drops.
    struct TempFile(std::path::PathBuf);
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
    impl TempFile {
        fn to_str(&self) -> &str {
            self.0.to_str().unwrap()
        }
    }

    fn unique_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "flowmotif_cli_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn temp_edge_list() -> TempFile {
        let path = unique_path("edges");
        let body = "2 0 10 10\n0 1 13 5\n0 1 15 7\n1 2 18 20\n3 2 1 2\n3 2 3 5\n3 0 11 10\n2 3 19 5\n2 3 21 4\n1 3 23 7\n";
        std::fs::write(&path, body).unwrap();
        TempFile(path)
    }

    /// Packs the Fig. 2 edge list into a unique temp segment directory;
    /// removed (recursively) when the guard drops.
    struct TempDir(std::path::PathBuf);
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn packed_fig2() -> (TempFile, TempDir) {
        let edges = temp_edge_list();
        let dir = TempDir(unique_path("packed"));
        let (out, r) = run_args(&["pack", edges.to_str(), "--out", dir.0.to_str().unwrap()]);
        r.unwrap();
        assert!(out.contains("packed 10 interactions"), "{out}");
        (edges, dir)
    }

    #[test]
    fn pack_requires_out_dir() {
        let edges = temp_edge_list();
        let (_, r) = run_args(&["pack", edges.to_str()]);
        assert!(r.unwrap_err().contains("--out"));
    }

    #[test]
    fn pack_json_reports_stats() {
        let edges = temp_edge_list();
        let dir = TempDir(unique_path("packed_json"));
        let (out, r) =
            run_args(&["pack", edges.to_str(), "--out", dir.0.to_str().unwrap(), "--json"]);
        r.unwrap();
        assert!(out.contains("\"interactions\": 10"), "{out}");
        assert!(out.contains("\"pairs\": 7"), "{out}");
    }

    #[test]
    fn packed_search_matches_in_memory_output() {
        let (edges, dir) = packed_fig2();
        let motif = ["--motif", "M(3,3)", "--delta", "10", "--phi", "7"];
        for cmd in ["find", "search", "topk", "top1"] {
            let mut mem = vec![cmd, edges.to_str()];
            mem.extend_from_slice(&motif);
            let mut packed = vec![cmd, dir.0.to_str().unwrap(), "--packed"];
            packed.extend_from_slice(&motif);
            let (want, r1) = run_args(&mem);
            let (got, r2) = run_args(&packed);
            r1.unwrap();
            r2.unwrap();
            assert_eq!(want, got, "`{cmd}` diverged between backends");
        }
    }

    #[test]
    fn packed_search_rejects_unpacked_input() {
        let edges = temp_edge_list();
        let (_, r) = run_args(&["find", edges.to_str(), "--packed"]);
        assert!(r.unwrap_err().contains("opening packed graph"));
    }

    #[test]
    fn stats_command() {
        let path = temp_edge_list();
        let (out, r) = run_args(&["stats", path.to_str()]);
        r.unwrap();
        assert!(out.contains("nodes=4"));
        assert!(out.contains("edges=10"));
    }

    #[test]
    fn find_command_reports_fig4_instance() {
        let path = temp_edge_list();
        let (out, r) =
            run_args(&["find", path.to_str(), "--motif", "M(3,3)", "--delta", "10", "--phi", "7"]);
        r.unwrap();
        assert!(out.contains("1 maximal instances"), "{out}");
        assert!(out.contains("(10, 10)"), "{out}");
    }

    #[test]
    fn topk_and_top1_agree() {
        let path = temp_edge_list();
        let (out_k, r) =
            run_args(&["topk", path.to_str(), "--motif", "M(3,3)", "--delta", "10", "--k", "1"]);
        r.unwrap();
        let (out_1, r) = run_args(&["top1", path.to_str(), "--motif", "M(3,3)", "--delta", "10"]);
        r.unwrap();
        assert!(out_k.contains("flow 10.000"), "{out_k}");
        assert!(out_1.contains("top-1 flow 10.000"), "{out_1}");
    }

    #[test]
    fn generate_and_stats_round_trip() {
        let path = TempFile(unique_path("synth"));
        let (_, r) = run_args(&[
            "generate",
            "--dataset",
            "passenger",
            "--scale",
            "0.05",
            "--out",
            path.to_str(),
        ]);
        r.unwrap();
        let (out, r) = run_args(&["stats", path.to_str()]);
        r.unwrap();
        assert!(out.contains("nodes="));
    }

    #[test]
    fn significance_command_runs() {
        let path = temp_edge_list();
        let (out, r) = run_args(&[
            "significance",
            path.to_str(),
            "--motif",
            "M(3,3)",
            "--delta",
            "10",
            "--phi",
            "7",
            "--replicas",
            "3",
        ]);
        r.unwrap();
        assert!(out.contains("real=1"), "{out}");
    }

    #[test]
    fn census_command() {
        let path = temp_edge_list();
        let (out, r) = run_args(&["census", path.to_str(), "--edges", "2", "--delta", "10"]);
        r.unwrap();
        assert!(out.contains("0-1-2"), "{out}");
    }

    #[test]
    fn activity_command() {
        let path = temp_edge_list();
        let (out, r) = run_args(&[
            "activity",
            path.to_str(),
            "--motif",
            "M(3,3)",
            "--delta",
            "10",
            "--phi",
            "7",
        ]);
        r.unwrap();
        assert!(out.contains("1 instances"), "{out}");
    }

    #[test]
    fn missing_file_is_an_error() {
        let (_, r) = run_args(&["stats", "/no/such/file"]);
        assert!(r.is_err());
    }

    fn run_script(script: &str, extra: &[&str]) -> (String, Result<(), String>) {
        let mut args = vec!["stream".to_string()];
        args.extend(extra.iter().map(|s| s.to_string()));
        let cli = Cli::parse_from(args).unwrap();
        let mut buf = Vec::new();
        let r = run_stream_script(script.as_bytes(), &cli, &mut buf);
        (String::from_utf8(buf).unwrap(), r)
    }

    #[test]
    fn stream_script_interleaves_edges_and_queries() {
        let script = "\
# the paper's Fig. 2 example, streamed
3 2 1 2
3 2 3 5
2 0 10 10
3 0 11 10
0 1 13 5
0 1 15 7
query M(3,3) 10 7
add 1 2 18 20
2 3 19 5
2 3 21 4
1 3 23 7
query M(3,3) 10 7
query M(3,3) 10 7 11 23
stats
";
        let (out, r) = run_script(script, &[]);
        r.unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("0 maximal instances"), "{out}");
        assert!(lines[1].contains("1 maximal instances"), "{out}");
        assert!(lines[2].contains("(10, 10)"), "{out}");
        // The window query excludes t=10, killing the instance.
        assert!(lines[3].contains("[11, 23]: 0 maximal instances"), "{out}");
        assert!(lines[4].contains("interactions=10"), "{out}");
        assert!(lines[4].contains("watermark=23"), "{out}");
    }

    #[test]
    fn stream_script_from_file_with_horizon_and_evict() {
        let path = TempFile(unique_path("stream"));
        let script = "\
0 1 10 1
1 2 12 2
evict 11
query M(3,2) 10 0
stats
";
        std::fs::write(&path.0, script).unwrap();
        let (out, r) = run_args(&["stream", path.to_str(), "--horizon", "100"]);
        r.unwrap();
        assert!(out.contains("evicted 1 interactions before t=11"), "{out}");
        assert!(out.contains("0 maximal instances"), "{out}");
        assert!(out.contains("evicted=1"), "{out}");
    }

    #[test]
    fn stream_script_json_query_output() {
        let script = "0 1 10 1\n1 2 12 2\nquery M(3,2) 10 0\n";
        let (out, r) = run_script(script, &["--json"]);
        r.unwrap();
        assert!(out.contains("\"instances\":1"), "{out}");
        assert!(out.contains("\"window\":null"), "{out}");
    }

    #[test]
    fn stream_script_errors_carry_line_numbers() {
        let (_, r) = run_script("0 1 10 1\n0 1 oops 1\n", &[]);
        assert!(r.unwrap_err().contains("line 2"));
        let (_, r) = run_script("query M(3,2)\n", &[]);
        assert!(r.unwrap_err().contains("line 1"));
        let (_, r) = run_script("0 1 10 -5\n", &[]);
        assert!(r.unwrap_err().contains("invalid flow"));
        let (_, r) = run_script("query M(3,2) 10 0 20 5\n", &[]);
        assert!(r.unwrap_err().contains("ends before"));
        // Extra fields are errors, not silently dropped data.
        let (_, r) = run_script("0 1 10 5 2 3 11 4\n", &[]);
        assert!(r.unwrap_err().contains("4 fields"));
        let (_, r) = run_script("query M(3,2) 10 0 20 30 junk\n", &[]);
        assert!(r.unwrap_err().contains("3 or 5 fields"));
        let (_, r) = run_script("stats now\n", &[]);
        assert!(r.unwrap_err().contains("takes 0 fields"));
    }

    #[test]
    fn stream_script_allows_trailing_comments() {
        // The README example annotates operations in place.
        let script = "\
% whole-line comment
0 1 10 1           # first hop
1 2 12 2
query M(3,2) 10 0  # the chain
stats              # and the state
";
        let (out, r) = run_script(script, &[]);
        r.unwrap();
        assert!(out.contains("1 maximal instances"), "{out}");
        assert!(out.contains("interactions=2"), "{out}");
    }

    #[test]
    fn stream_no_index_answers_identically() {
        // A/B: the same script with and without the origin index must
        // print byte-identical answers.
        let script = "\
0 1 10 1
1 2 12 2
2 0 14 3
0 1 40 1
1 2 44 2
query M(3,2) 10 0 0 20
query M(3,3) 10 0 8 15
query M(3,2) 10 0 35 50
query M(3,2) 10 0
stats
";
        let (with_index, r) = run_script(script, &[]);
        r.unwrap();
        let (without, r) = run_script(script, &["--no-index"]);
        r.unwrap();
        assert_eq!(with_index, without);
        assert!(with_index.contains("1 maximal instances"), "{with_index}");
    }

    #[test]
    fn profile_flag_prints_stage_breakdown() {
        let f = temp_edge_list();
        let (out, r) = run_args(&["find", f.to_str(), "--profile", "--threads", "2"]);
        r.unwrap();
        assert!(out.contains("profile: total"), "{out}");
        assert!(out.contains("p1"), "{out}");
        assert!(out.contains("p2"), "{out}");
        let (out, r) = run_args(&["topk", f.to_str(), "--profile"]);
        r.unwrap();
        assert!(out.contains("profile: total"), "{out}");
        // top1 runs the DP, so its profile shows the dp stage.
        let (out, r) = run_args(&["top1", f.to_str(), "--profile"]);
        r.unwrap();
        assert!(out.contains("profile: total"), "{out}");
        assert!(out.contains("dp"), "{out}");
        // Without the flag, results are table-free and byte-identical to
        // an untraced run.
        let (with_flag, _) = run_args(&["find", f.to_str(), "--profile"]);
        let (without, _) = run_args(&["find", f.to_str()]);
        assert!(!without.contains("profile:"), "{without}");
        assert_eq!(with_flag.split("profile:").next().unwrap(), without);
    }

    #[test]
    fn metrics_subcommand_fetches_prometheus_text() {
        let serve_cli =
            Cli::parse_from(["serve", "--port", "0"].iter().map(|s| s.to_string())).unwrap();
        let server = start_server(&serve_cli).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let script = "add 0 1 10 5\npublish\ncount M(3,2) 10 0\n";
        run_client_script(script.as_bytes(), &mut client, &mut Vec::new()).unwrap();
        let (out, r) = run_args(&["metrics", "--port", &server.local_addr().port().to_string()]);
        r.unwrap();
        assert!(out.contains("# TYPE flowmotif_serve_requests_total counter"), "{out}");
        assert!(out.contains("flowmotif_serve_requests_total{verb=\"count\"} 1"), "{out}");
        assert!(out.contains("flowmotif_engine_epoch 1"), "{out}");
        drop(client);
        server.shutdown();
        // Against a dead server the subcommand reports the connect error.
        let (_, r) = run_args(&["metrics", "--port", "1"]);
        assert!(r.unwrap_err().contains("connecting"), "dead server must fail");
    }

    #[test]
    fn subscribe_subcommand_streams_events_over_the_wire() {
        let serve_cli =
            Cli::parse_from(["serve", "--port", "0"].iter().map(|s| s.to_string())).unwrap();
        let server = start_server(&serve_cli).unwrap();
        let port = server.local_addr().port().to_string();
        // The subscriber runs the real subcommand in a thread, exiting
        // after its first event thanks to --limit.
        let sub = std::thread::spawn({
            move || {
                let args = [
                    "subscribe",
                    "--motif",
                    "M(3,2)",
                    "--delta",
                    "10",
                    "--port",
                    &port,
                    "--limit",
                    "1",
                ];
                let cli = Cli::parse_from(args.iter().map(|s| s.to_string())).unwrap();
                let mut buf = Vec::new();
                run(&cli, &mut buf).map(|()| String::from_utf8(buf).unwrap())
            }
        });
        // Wait until the subscription is registered before appending, so
        // the chain below is guaranteed to be delta-evaluated.
        let mut feeder = Client::connect(server.local_addr()).unwrap();
        for _ in 0..1000 {
            let m = feeder.send("metrics").unwrap();
            if m.data.iter().any(|l| l == "flowmotif_serve_subscriptions_active 1") {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        feeder.send("add 0 1 1 2").unwrap();
        feeder.send("add 1 2 2 3").unwrap();
        let out = sub.join().unwrap().unwrap();
        assert!(out.starts_with("OK subscribed id=1\n"), "{out}");
        assert!(out.contains("EVENT id=1 match=0-1-2 flow=2 first=1 last=2 size=2"), "{out}");
        drop(feeder);
        server.shutdown();
        // --from/--to must come as a pair.
        let args = ["subscribe", "--from", "0"];
        let cli = Cli::parse_from(args.iter().map(|s| s.to_string())).unwrap();
        let r = run(&cli, &mut Vec::new());
        assert!(r.unwrap_err().contains("--from and --to"), "half a window must fail");
    }

    #[test]
    fn serve_slow_query_flag_keeps_replies_clean() {
        let out = serve_round_trip(
            &["--slow-query-ms", "0", "--publish-every", "0"],
            "add 0 1 10 5\nadd 1 2 12 4\npublish\ncount M(3,2) 10 0\nquit\n",
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[3], "OK count=1 matches=1 epoch=1", "{out}");
        assert_eq!(lines[4], "OK bye");
    }

    #[test]
    fn stream_rejects_negative_horizon() {
        let (_, r) = run_script("0 1 10 1\n", &["--horizon", "-5"]);
        assert!(r.unwrap_err().contains("non-negative"));
    }

    /// Starts an in-process server from CLI flags, runs a client script
    /// against it, and returns the client's output.
    fn serve_round_trip(serve_flags: &[&str], script: &str) -> String {
        let mut args = vec!["serve".to_string(), "--port".to_string(), "0".to_string()];
        args.extend(serve_flags.iter().map(|s| s.to_string()));
        let serve_cli = Cli::parse_from(args).unwrap();
        let server = start_server(&serve_cli).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let mut buf = Vec::new();
        run_client_script(script.as_bytes(), &mut client, &mut buf).unwrap();
        drop(client);
        server.shutdown();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn serve_and_client_round_trip_a_session() {
        let script = "\
% comment lines and inline comments work like stream scripts
add 0 1 10 5      # first hop
add 1 2 12 4
count M(3,2) 10 0 # still epoch 0: nothing published
publish
count M(3,2) 10 0
query M(3,2) 10 0
stats
session
quit
";
        let out = serve_round_trip(&["--publish-every", "0"], script);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "OK added watermark=10");
        assert_eq!(lines[1], "OK added watermark=12");
        assert_eq!(lines[2], "OK count=0 matches=0 epoch=0");
        assert_eq!(lines[3], "OK published epoch=1");
        assert_eq!(lines[4], "OK count=1 matches=1 epoch=1");
        assert!(lines[5].starts_with("DATA nodes=0-1-2"), "{out}");
        assert!(lines[6].starts_with("OK query instances=1 shown=1"), "{out}");
        assert!(lines[7].contains("interactions=2"), "{out}");
        assert_eq!(lines[8], "OK session queries=3 appends=2 errors=0");
        assert_eq!(lines[9], "OK bye");
    }

    #[test]
    fn serve_applies_admission_flags() {
        let out = serve_round_trip(
            &["--max-window", "100"],
            "query M(3,2) 10 0\nquery M(3,2) 10 0 0 50\n",
        );
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("ERR admission unbounded"), "{out}");
        assert!(lines[1].starts_with("OK query instances=0"), "{out}");
    }

    #[test]
    fn serve_auto_publishes_on_the_configured_period() {
        let out = serve_round_trip(
            &["--publish-every", "2"],
            "add 0 1 10 5\nadd 1 2 12 4\ncount M(3,2) 10 0\n",
        );
        assert!(out.contains("OK count=1 matches=1 epoch=1"), "{out}");
    }

    #[test]
    fn serve_rejects_bad_flags() {
        for flags in [["--horizon", "-1"], ["--max-window", "-1"]] {
            let mut args = vec!["serve".to_string()];
            args.extend(flags.iter().map(|s| s.to_string()));
            let cli = Cli::parse_from(args).unwrap();
            assert!(start_server(&cli).unwrap_err().contains("non-negative"));
        }
    }

    #[test]
    fn serve_packed_round_trips_a_session() {
        let (_edges, dir) = packed_fig2();
        let cli = Cli::parse_from(
            ["serve", dir.0.to_str().unwrap(), "--packed", "--port", "0"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        let server = start_server_at(Some(&dir.0), &cli).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let mut buf = Vec::new();
        let script = "\
count M(3,3) 10 7
stats
add 0 1 40 5
publish
stats
quit
";
        run_client_script(script.as_bytes(), &mut client, &mut buf).unwrap();
        drop(client);
        server.shutdown();
        let out = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        // The sealed segment is queryable at epoch 0 without any publish.
        assert!(lines[0].starts_with("OK count=1"), "{out}");
        assert!(lines[0].contains("epoch=0"), "{out}");
        assert!(lines[1].contains("interactions=10"), "{out}");
        assert_eq!(lines[2], "OK added watermark=40");
        assert_eq!(lines[3], "OK published epoch=1");
        assert!(lines[4].contains("interactions=11"), "{out}");
        assert_eq!(lines[5], "OK bye");
    }

    #[test]
    fn serve_packed_flag_validation() {
        let parse = |args: &[&str]| Cli::parse_from(args.iter().map(|s| s.to_string())).unwrap();
        // A directory argument is only meaningful with --packed.
        let cli = parse(&["serve", "somewhere", "--port", "0"]);
        assert!(start_server_at(Some(Path::new("somewhere")), &cli)
            .unwrap_err()
            .contains("--packed"));
        // --packed needs the directory argument.
        let cli = parse(&["serve", "--packed", "--port", "0"]);
        assert!(start_server_at(None, &cli).unwrap_err().contains("<dir>"));
        // Sealed segments cannot be evicted, so --horizon is rejected.
        let (_edges, dir) = packed_fig2();
        let cli = parse(&["serve", "--packed", "--horizon", "100", "--port", "0"]);
        assert!(start_server_at(Some(&dir.0), &cli).unwrap_err().contains("--horizon"));
    }

    #[test]
    fn client_reports_connection_failure() {
        // A port nothing listens on (port 1 needs root to bind and is
        // essentially never in use on a test machine).
        let cli = Cli::parse_from(["client", "--port", "1"].iter().map(|s| s.to_string())).unwrap();
        let mut buf = Vec::new();
        let err = run(&cli, &mut buf).unwrap_err();
        assert!(err.contains("connecting to 127.0.0.1:1"), "{err}");
    }
}
