//! Subcommand implementations, writing human- or machine-readable output
//! to the provided writer.

use crate::opts::{Cli, Command};
use flowmotif_core::analytics::per_match_activity;
use flowmotif_core::census::walk_census;
use flowmotif_core::dp::dp_top1;
use flowmotif_core::parallel::{par_enumerate_all, par_top_k};
use flowmotif_core::{catalog, Motif};
use flowmotif_datasets::Dataset;
use flowmotif_graph::{io, GraphStats, TimeSeriesGraph};
use flowmotif_significance::{assess_motif, SignificanceConfig};
use flowmotif_util::json;
use std::io::Write;
use std::path::Path;

/// Runs the parsed CLI, writing output to `out`. Returns a process exit
/// code.
pub fn run<W: Write>(cli: &Cli, out: &mut W) -> Result<(), String> {
    match &cli.command {
        Command::Stats(path) => stats(path, cli, out),
        Command::Find(path) => find(path, cli, out),
        Command::TopK(path) => topk(path, cli, out),
        Command::Top1(path) => top1(path, cli, out),
        Command::Significance(path) => significance(path, cli, out),
        Command::Census(path) => census(path, cli, out),
        Command::Activity(path) => activity(path, cli, out),
        Command::Generate => generate(cli, out),
    }
}

fn load(path: &Path) -> Result<TimeSeriesGraph, String> {
    io::load_time_series_graph(path).map_err(|e| format!("loading {}: {e}", path.display()))
}

fn motif_of(cli: &Cli) -> Result<Motif, String> {
    catalog::parse_motif(&cli.motif, cli.delta, cli.phi).map_err(|e| e.to_string())
}

fn stats<W: Write>(path: &Path, cli: &Cli, out: &mut W) -> Result<(), String> {
    let g = load(path)?;
    let s = GraphStats::of(&g);
    if cli.json {
        writeln!(out, "{}", flowmotif_util::to_string_pretty(&s)).ok();
    } else {
        writeln!(out, "{s}").ok();
    }
    Ok(())
}

fn find<W: Write>(path: &Path, cli: &Cli, out: &mut W) -> Result<(), String> {
    let g = load(path)?;
    let motif = motif_of(cli)?;
    let (groups, stats) = par_enumerate_all(&g, &motif, cli.threads);
    let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
    if cli.json {
        let shown: Vec<_> = groups
            .iter()
            .flat_map(|(sm, v)| v.iter().map(move |i| (sm, i)))
            .take(cli.show)
            .collect();
        writeln!(
            out,
            "{}",
            json!({
                "motif": motif.name(),
                "delta": motif.delta(),
                "phi": motif.phi(),
                "structural_matches": stats.structural_matches,
                "instances": total,
                "sample": shown,
            })
        )
        .ok();
        return Ok(());
    }
    writeln!(
        out,
        "{motif}: {} structural matches, {} maximal instances",
        stats.structural_matches, total
    )
    .ok();
    let mut printed = 0;
    'outer: for (sm, insts) in &groups {
        for inst in insts {
            if printed >= cli.show {
                break 'outer;
            }
            writeln!(
                out,
                "  nodes {:?} flow {:.3} span {}: {}",
                sm.walk_nodes(&g),
                inst.flow,
                inst.span(),
                inst.display(&g)
            )
            .ok();
            printed += 1;
        }
    }
    Ok(())
}

fn topk<W: Write>(path: &Path, cli: &Cli, out: &mut W) -> Result<(), String> {
    let g = load(path)?;
    // §5: top-k ranks by flow with ϕ = 0 (any --phi is still honoured as
    // a floor if explicitly set).
    let motif = motif_of(cli)?;
    let (ranked, _) = par_top_k(&g, &motif, cli.k, cli.threads);
    if cli.json {
        let rows: Vec<_> = ranked
            .iter()
            .map(|r| json!({"flow": r.instance.flow, "instance": &r.instance}))
            .collect();
        writeln!(out, "{}", flowmotif_util::Json::Array(rows)).ok();
        return Ok(());
    }
    writeln!(out, "top-{} instances of {} by flow:", cli.k, motif.name()).ok();
    for (i, r) in ranked.iter().enumerate() {
        writeln!(
            out,
            "  #{} flow {:.3} nodes {:?}: {}",
            i + 1,
            r.instance.flow,
            r.structural_match.walk_nodes(&g),
            r.instance.display(&g)
        )
        .ok();
    }
    if ranked.is_empty() {
        writeln!(out, "  (no instances)").ok();
    }
    Ok(())
}

fn top1<W: Write>(path: &Path, cli: &Cli, out: &mut W) -> Result<(), String> {
    let g = load(path)?;
    let motif = motif_of(cli)?;
    let (best, stats) = dp_top1(&g, &motif);
    match best {
        Some((sm, inst)) => {
            if cli.json {
                writeln!(
                    out,
                    "{}",
                    json!({"flow": inst.flow, "nodes": sm.walk_nodes(&g), "instance": &inst})
                )
                .ok();
            } else {
                writeln!(
                    out,
                    "top-1 flow {:.3} over {} matches ({} DP windows): {}",
                    inst.flow,
                    stats.structural_matches,
                    stats.windows_processed,
                    inst.display(&g)
                )
                .ok();
            }
        }
        None => {
            writeln!(out, "no instances").ok();
        }
    }
    Ok(())
}

fn significance<W: Write>(path: &Path, cli: &Cli, out: &mut W) -> Result<(), String> {
    let mg = io::load_multigraph(path).map_err(|e| format!("loading {}: {e}", path.display()))?;
    let motif = motif_of(cli)?;
    let cfg = SignificanceConfig { num_replicas: cli.replicas, seed: cli.seed };
    let sig = assess_motif(&mg, &motif, cfg);
    if cli.json {
        writeln!(out, "{}", flowmotif_util::to_string_pretty(&sig)).ok();
    } else {
        writeln!(
            out,
            "{}: real={} random mean={:.2} σ={:.2} z={:.2} p={:.2}",
            sig.motif, sig.real_count, sig.random_mean, sig.random_std, sig.z_score, sig.p_value
        )
        .ok();
    }
    Ok(())
}

fn census<W: Write>(path: &Path, cli: &Cli, out: &mut W) -> Result<(), String> {
    let g = load(path)?;
    let rows = walk_census(&g, cli.edges, cli.delta, cli.phi);
    if cli.json {
        writeln!(out, "{}", flowmotif_util::to_string_pretty(&rows)).ok();
        return Ok(());
    }
    writeln!(out, "census of {}-edge walk motifs (δ={}, ϕ={}):", cli.edges, cli.delta, cli.phi)
        .ok();
    for r in &rows {
        writeln!(
            out,
            "  {:<16} {:>8} instances  ({} matches)",
            r.shape.to_string(),
            r.instances,
            r.structural_matches
        )
        .ok();
    }
    Ok(())
}

fn activity<W: Write>(path: &Path, cli: &Cli, out: &mut W) -> Result<(), String> {
    let g = load(path)?;
    let motif = motif_of(cli)?;
    let acts = per_match_activity(&g, &motif);
    if cli.json {
        writeln!(out, "{}", flowmotif_util::to_string_pretty(&acts)).ok();
        return Ok(());
    }
    writeln!(out, "most active vertex groups for {} (top {}):", motif.name(), cli.show).ok();
    for a in acts.iter().take(cli.show) {
        writeln!(
            out,
            "  nodes {:?}: {} instances, max flow {:.3}, active {}..{}",
            a.structural_match.walk_nodes(&g),
            a.instances,
            a.max_flow,
            a.first_activity.unwrap_or(0),
            a.last_activity.unwrap_or(0),
        )
        .ok();
    }
    if acts.is_empty() {
        writeln!(out, "  (no instances)").ok();
    }
    Ok(())
}

fn generate<W: Write>(cli: &Cli, out: &mut W) -> Result<(), String> {
    let dataset: Dataset = cli.dataset.parse()?;
    let mg = dataset.generate_multigraph(cli.scale, cli.seed);
    match &cli.out {
        Some(path) => {
            let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
            io::write_edge_list(&mg, std::io::BufWriter::new(f)).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "wrote {} interactions ({} nodes) to {}",
                mg.num_interactions(),
                mg.num_nodes(),
                path.display()
            )
            .ok();
        }
        None => {
            io::write_edge_list(&mg, &mut *out).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::Cli;

    fn run_args(args: &[&str]) -> (String, Result<(), String>) {
        let cli = Cli::parse_from(args.iter().map(|s| s.to_string())).unwrap();
        let mut buf = Vec::new();
        let r = run(&cli, &mut buf);
        (String::from_utf8(buf).unwrap(), r)
    }

    /// Writes the Fig. 2 example graph to a unique temp file; the file is
    /// removed when the returned guard drops.
    struct TempFile(std::path::PathBuf);
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
    impl TempFile {
        fn to_str(&self) -> &str {
            self.0.to_str().unwrap()
        }
    }

    fn unique_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "flowmotif_cli_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn temp_edge_list() -> TempFile {
        let path = unique_path("edges");
        let body = "2 0 10 10\n0 1 13 5\n0 1 15 7\n1 2 18 20\n3 2 1 2\n3 2 3 5\n3 0 11 10\n2 3 19 5\n2 3 21 4\n1 3 23 7\n";
        std::fs::write(&path, body).unwrap();
        TempFile(path)
    }

    #[test]
    fn stats_command() {
        let path = temp_edge_list();
        let (out, r) = run_args(&["stats", path.to_str()]);
        r.unwrap();
        assert!(out.contains("nodes=4"));
        assert!(out.contains("edges=10"));
    }

    #[test]
    fn find_command_reports_fig4_instance() {
        let path = temp_edge_list();
        let (out, r) =
            run_args(&["find", path.to_str(), "--motif", "M(3,3)", "--delta", "10", "--phi", "7"]);
        r.unwrap();
        assert!(out.contains("1 maximal instances"), "{out}");
        assert!(out.contains("(10, 10)"), "{out}");
    }

    #[test]
    fn topk_and_top1_agree() {
        let path = temp_edge_list();
        let (out_k, r) =
            run_args(&["topk", path.to_str(), "--motif", "M(3,3)", "--delta", "10", "--k", "1"]);
        r.unwrap();
        let (out_1, r) = run_args(&["top1", path.to_str(), "--motif", "M(3,3)", "--delta", "10"]);
        r.unwrap();
        assert!(out_k.contains("flow 10.000"), "{out_k}");
        assert!(out_1.contains("top-1 flow 10.000"), "{out_1}");
    }

    #[test]
    fn generate_and_stats_round_trip() {
        let path = TempFile(unique_path("synth"));
        let (_, r) = run_args(&[
            "generate",
            "--dataset",
            "passenger",
            "--scale",
            "0.05",
            "--out",
            path.to_str(),
        ]);
        r.unwrap();
        let (out, r) = run_args(&["stats", path.to_str()]);
        r.unwrap();
        assert!(out.contains("nodes="));
    }

    #[test]
    fn significance_command_runs() {
        let path = temp_edge_list();
        let (out, r) = run_args(&[
            "significance",
            path.to_str(),
            "--motif",
            "M(3,3)",
            "--delta",
            "10",
            "--phi",
            "7",
            "--replicas",
            "3",
        ]);
        r.unwrap();
        assert!(out.contains("real=1"), "{out}");
    }

    #[test]
    fn census_command() {
        let path = temp_edge_list();
        let (out, r) = run_args(&["census", path.to_str(), "--edges", "2", "--delta", "10"]);
        r.unwrap();
        assert!(out.contains("0-1-2"), "{out}");
    }

    #[test]
    fn activity_command() {
        let path = temp_edge_list();
        let (out, r) = run_args(&[
            "activity",
            path.to_str(),
            "--motif",
            "M(3,3)",
            "--delta",
            "10",
            "--phi",
            "7",
        ]);
        r.unwrap();
        assert!(out.contains("1 instances"), "{out}");
    }

    #[test]
    fn missing_file_is_an_error() {
        let (_, r) = run_args(&["stats", "/no/such/file"]);
        assert!(r.is_err());
    }
}
