//! Dependency-free observability primitives shared by every layer:
//! relaxed-atomic [`Counter`]s and [`Gauge`]s, a log-bucketed lock-free
//! latency [`Histogram`], and a [`MetricsRegistry`] that renders the
//! whole set in the Prometheus text exposition format.
//!
//! Design constraints, in order:
//!
//! 1. **Recording must be cheap and lock-free.** `record()`/`inc()` are
//!    one or two `Relaxed` `fetch_add`s — safe from any thread, inside
//!    the zero-allocation search hot loop, and from signal-free drop
//!    paths. No locks, no allocation, no syscalls.
//! 2. **Const-constructible.** Every primitive has a `const fn new()`,
//!    so layers below the registry (graph, stream) can keep process-wide
//!    `static` metrics without lazy-init machinery.
//! 3. **Rendering is the slow path.** The registry takes a mutex and
//!    formats strings only when a `METRICS` request or `--profile`
//!    report asks for it.
//!
//! ```
//! use flowmotif_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let requests = registry.counter("demo_requests_total", "Requests served.");
//! let latency = registry.histogram("demo_latency_seconds", "Request latency.");
//! requests.inc();
//! latency.record_ns(1_500);
//! let text = registry.render();
//! assert!(text.contains("# TYPE demo_requests_total counter"));
//! assert!(text.contains("demo_requests_total 1"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter; `const`, so counters can be `static`.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (bytes resident, last-publish cost…).
/// Stored as a `u64`; scale factors (e.g. nanoseconds → seconds) are
/// applied at render time by the registry, not here.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge; `const`, so gauges can be `static`.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (saturating at zero under a lost race, never
    /// wrapping into the exabytes).
    #[inline]
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets in a [`Histogram`]: bucket `k` counts samples
/// in `[2^k, 2^(k+1))`, so 64 buckets cover the whole `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free latency histogram over power-of-two buckets.
///
/// `record_ns()` is two relaxed `fetch_add`s; there is no lock and no
/// allocation, so concurrent recorders only contend on cache lines.
/// Bucket `k` covers `[2^k, 2^(k+1))` nanoseconds (samples of 0 land in
/// bucket 0), which keeps quantile estimates within one power-of-two
/// boundary of the true value — plenty for latency monitoring, where the
/// interesting signal is orders of magnitude.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Sum of all recorded values (nanoseconds).
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index of a sample: `floor(log2(max(v, 1)))`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// The exclusive upper bound of bucket `k` (`u64::MAX` for the last).
#[inline]
fn bucket_bound(k: usize) -> u64 {
    if k + 1 >= HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        1u64 << (k + 1)
    }
}

impl Histogram {
    /// An empty histogram; `const`, so histograms can be `static`.
    pub const fn new() -> Self {
        Self { buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS], sum: AtomicU64::new(0) }
    }

    /// Records one sample, in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one duration.
    #[inline]
    pub fn record(&self, d: std::time::Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total number of recorded samples (derived from the buckets, so it
    /// is consistent with any concurrently rendered bucket counts).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The count in bucket `k` (samples in `[2^k, 2^(k+1))` ns).
    pub fn bucket(&self, k: usize) -> u64 {
        self.buckets[k].load(Ordering::Relaxed)
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`) in
    /// nanoseconds: the upper bound of the bucket holding the rank, i.e.
    /// within one power-of-two boundary of the true quantile. Returns 0
    /// on an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank of the q-quantile among `total` ordered samples.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(k).saturating_sub(1).max(1);
            }
        }
        bucket_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Adds every sample of `other` into `self`. Associative and
    /// commutative up to relaxed-ordering races, which makes per-worker
    /// histograms mergeable in any order.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Resets every bucket and the sum to zero. Not atomic with respect
    /// to concurrent recorders; meant for single-owner reuse (per-query
    /// trace sinks), not for shared registry histograms.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// How a registry entry obtains its value at render time.
enum Source {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    /// A counter sampled through a closure (wraps `static` counters or
    /// foreign atomics without taking ownership).
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    /// A gauge sampled through a closure, already in display units.
    GaugeFn(Box<dyn Fn() -> f64 + Send + Sync>),
}

struct Entry {
    name: &'static str,
    /// Rendered inside `{…}` after the name (e.g. `verb="query"`).
    label: Option<(&'static str, String)>,
    help: &'static str,
    /// Multiplier applied to integer-valued sources at render time
    /// (e.g. `1e-9` renders a nanosecond gauge in seconds).
    scale: f64,
    source: Source,
}

/// A set of named metrics, rendered in the Prometheus text exposition
/// format (`# HELP` / `# TYPE` headers, cumulative `_bucket{le=…}`
/// histogram series). Registration takes a mutex; the returned handles
/// are lock-free to update.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries = self.entries.lock().unwrap();
        f.debug_struct("MetricsRegistry").field("entries", &entries.len()).finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&self, entry: Entry) {
        self.entries.lock().unwrap().push(entry);
    }

    /// Registers and returns a new counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_labeled(name, None, help)
    }

    /// Registers a counter carrying one label pair (`key="value"`);
    /// entries sharing a name form one metric family.
    pub fn counter_labeled(
        &self,
        name: &'static str,
        label: Option<(&'static str, &str)>,
        help: &'static str,
    ) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.push(Entry {
            name,
            label: label.map(|(k, v)| (k, v.to_string())),
            help,
            scale: 1.0,
            source: Source::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Registers and returns a new gauge. `scale` converts the stored
    /// integer to display units (1.0 for unit-less, 1e-9 for ns → s).
    pub fn gauge(&self, name: &'static str, help: &'static str, scale: f64) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.push(Entry { name, label: None, help, scale, source: Source::Gauge(Arc::clone(&g)) });
        g
    }

    /// Registers and returns a new histogram (bucket bounds rendered in
    /// seconds; samples are recorded in nanoseconds).
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        self.histogram_labeled(name, None, help)
    }

    /// Registers a histogram carrying one label pair.
    pub fn histogram_labeled(
        &self,
        name: &'static str,
        label: Option<(&'static str, &str)>,
        help: &'static str,
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.push(Entry {
            name,
            label: label.map(|(k, v)| (k, v.to_string())),
            help,
            scale: 1.0,
            source: Source::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Registers a counter whose value is sampled from `f` at render
    /// time — the bridge to `static` counters owned by lower layers.
    pub fn counter_fn(
        &self,
        name: &'static str,
        help: &'static str,
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.push(Entry {
            name,
            label: None,
            help,
            scale: 1.0,
            source: Source::CounterFn(Box::new(f)),
        });
    }

    /// Registers a gauge whose value is sampled from `f` at render time,
    /// already in display units.
    pub fn gauge_fn(
        &self,
        name: &'static str,
        help: &'static str,
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.push(Entry {
            name,
            label: None,
            help,
            scale: 1.0,
            source: Source::GaugeFn(Box::new(f)),
        });
    }

    /// Renders every registered metric in the Prometheus text exposition
    /// format. `# HELP`/`# TYPE` headers are emitted once per family (in
    /// first-registration order); labeled series follow their family.
    pub fn render(&self) -> String {
        let entries = self.entries.lock().unwrap();
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for entry in entries.iter() {
            if !seen.contains(&entry.name) {
                seen.push(entry.name);
                let kind = match entry.source {
                    Source::Counter(_) | Source::CounterFn(_) => "counter",
                    Source::Gauge(_) | Source::GaugeFn(_) => "gauge",
                    Source::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# HELP {} {}\n", entry.name, entry.help));
                out.push_str(&format!("# TYPE {} {kind}\n", entry.name));
            }
            let labels = |extra: Option<String>| -> String {
                let mut parts = Vec::new();
                if let Some((k, v)) = &entry.label {
                    parts.push(format!("{k}=\"{v}\""));
                }
                if let Some(e) = extra {
                    parts.push(e);
                }
                if parts.is_empty() {
                    String::new()
                } else {
                    format!("{{{}}}", parts.join(","))
                }
            };
            match &entry.source {
                Source::Counter(c) => {
                    out.push_str(&format!("{}{} {}\n", entry.name, labels(None), c.get()));
                }
                Source::CounterFn(f) => {
                    out.push_str(&format!("{}{} {}\n", entry.name, labels(None), f()));
                }
                Source::Gauge(g) => {
                    let v = g.get();
                    if entry.scale == 1.0 {
                        out.push_str(&format!("{}{} {v}\n", entry.name, labels(None)));
                    } else {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            entry.name,
                            labels(None),
                            v as f64 * entry.scale
                        ));
                    }
                }
                Source::GaugeFn(f) => {
                    out.push_str(&format!("{}{} {}\n", entry.name, labels(None), f()));
                }
                Source::Histogram(h) => {
                    // Cumulative buckets: only boundaries where the count
                    // changes are emitted (any subset plus `+Inf` is
                    // valid Prometheus), which keeps idle histograms to a
                    // single line.
                    let mut cumulative = 0u64;
                    for k in 0..HISTOGRAM_BUCKETS {
                        let n = h.bucket(k);
                        if n > 0 && k + 1 < HISTOGRAM_BUCKETS {
                            cumulative += n;
                            let le = bucket_bound(k) as f64 * 1e-9;
                            out.push_str(&format!(
                                "{}_bucket{} {cumulative}\n",
                                entry.name,
                                labels(Some(format!("le=\"{le}\"")))
                            ));
                        }
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        entry.name,
                        labels(Some("le=\"+Inf\"".to_string())),
                        h.count()
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        entry.name,
                        labels(None),
                        h.sum_ns() as f64 * 1e-9
                    ));
                    out.push_str(&format!("{}_count{} {}\n", entry.name, labels(None), h.count()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmotif_util::{RngExt, SeedableRng, StdRng};

    #[test]
    fn counter_and_gauge_basics() {
        static C: Counter = Counter::new();
        C.inc();
        C.add(4);
        assert_eq!(C.get(), 5);

        static G: Gauge = Gauge::new();
        G.set(100);
        G.add(20);
        G.sub(50);
        assert_eq!(G.get(), 70);
        G.sub(1000); // saturates, never wraps
        assert_eq!(G.get(), 0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_bound(0), 2);
        assert_eq!(bucket_bound(62), 1 << 63);
        assert_eq!(bucket_bound(63), u64::MAX);
    }

    /// Satellite: seeded randomized suite — recorded samples land in the
    /// predicted buckets and the total count matches exactly.
    #[test]
    fn histogram_bucket_counts_match_reference_seeded() {
        let mut rng = StdRng::seed_from_u64(0xb0cce7);
        let h = Histogram::new();
        let mut reference = [0u64; HISTOGRAM_BUCKETS];
        let mut sum = 0u64;
        for _ in 0..10_000 {
            // Log-uniform samples: every bucket order of magnitude gets
            // traffic, not just the mid-range.
            let shift = rng.random_range(0..50u32);
            let v = rng.random::<u64>() >> shift;
            h.record_ns(v);
            reference[bucket_of(v)] += 1;
            sum = sum.wrapping_add(v);
        }
        for (k, &expected) in reference.iter().enumerate() {
            assert_eq!(h.bucket(k), expected, "bucket {k}");
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.sum_ns(), sum);
    }

    /// Satellite: quantile estimates stay within one bucket boundary of
    /// the exact order statistic.
    #[test]
    fn histogram_quantiles_within_one_bucket_seeded() {
        for seed in [1u64, 7, 42, 4242] {
            let mut rng = StdRng::seed_from_u64(seed);
            let h = Histogram::new();
            let mut samples: Vec<u64> = (0..5_000)
                .map(|_| {
                    let shift = rng.random_range(20..55u32);
                    rng.random::<u64>() >> shift
                })
                .collect();
            for &s in &samples {
                h.record_ns(s);
            }
            samples.sort_unstable();
            for q in [0.5, 0.9, 0.99, 1.0] {
                let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
                let exact = samples[rank - 1];
                let est = h.quantile_ns(q);
                // The estimate is the upper bound of the exact value's
                // bucket: never below the truth, at most one power-of-two
                // boundary above it.
                assert!(est >= exact, "seed {seed} q {q}: est {est} < exact {exact}");
                assert!(
                    est <= bucket_bound(bucket_of(exact)),
                    "seed {seed} q {q}: est {est} beyond bucket of {exact}"
                );
            }
        }
        assert_eq!(Histogram::new().quantile_ns(0.5), 0, "empty histogram");
    }

    /// Satellite: `merge()` is associative — (a ∪ b) ∪ c and a ∪ (b ∪ c)
    /// agree bucket for bucket, and both match recording every sample
    /// into one histogram.
    #[test]
    fn histogram_merge_is_associative_seeded() {
        let mut rng = StdRng::seed_from_u64(99);
        let parts: Vec<Vec<u64>> = (0..3)
            .map(|_| {
                (0..1_000).map(|_| rng.random::<u64>() >> rng.random_range(0..50u32)).collect()
            })
            .collect();
        let hist_of = |samples: &[Vec<u64>]| {
            let h = Histogram::new();
            for part in samples {
                for &s in part {
                    h.record_ns(s);
                }
            }
            h
        };
        let [a, b, c] = [hist_of(&parts[0..1]), hist_of(&parts[1..2]), hist_of(&parts[2..3])];
        // left: (a ∪ b) ∪ c
        let left = Histogram::new();
        left.merge(&a);
        left.merge(&b);
        left.merge(&c);
        // right: a ∪ (b ∪ c)
        let bc = Histogram::new();
        bc.merge(&b);
        bc.merge(&c);
        let right = Histogram::new();
        right.merge(&a);
        right.merge(&bc);
        let direct = hist_of(&parts);
        for k in 0..HISTOGRAM_BUCKETS {
            assert_eq!(left.bucket(k), right.bucket(k), "bucket {k}");
            assert_eq!(left.bucket(k), direct.bucket(k), "bucket {k}");
        }
        assert_eq!(left.sum_ns(), right.sum_ns());
        assert_eq!(left.sum_ns(), direct.sum_ns());
        assert_eq!(left.count(), 3_000);
    }

    #[test]
    fn histogram_reset_clears_everything() {
        let h = Histogram::new();
        h.record_ns(5);
        h.record_ns(5_000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_ns(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let r = MetricsRegistry::new();
        let c = r.counter_labeled("req_total", Some(("verb", "query")), "Requests.");
        let c2 = r.counter_labeled("req_total", Some(("verb", "count")), "Requests.");
        let g = r.gauge("publish_seconds", "Last publish cost.", 1e-9);
        let h = r.histogram("latency_seconds", "Latency.");
        r.counter_fn("reads_total", "Reads.", || 7);
        r.gauge_fn("age_seconds", "Age.", || 2.5);
        c.add(3);
        c2.inc();
        g.set(1_500_000_000);
        h.record_ns(1_000);
        h.record_ns(3_000);

        let text = r.render();
        // One family header for the two labeled counters.
        assert_eq!(text.matches("# TYPE req_total counter").count(), 1);
        assert!(text.contains("req_total{verb=\"query\"} 3"), "{text}");
        assert!(text.contains("req_total{verb=\"count\"} 1"), "{text}");
        assert!(text.contains("# TYPE publish_seconds gauge"), "{text}");
        assert!(text.contains("publish_seconds 1.5"), "{text}");
        assert!(text.contains("# TYPE latency_seconds histogram"), "{text}");
        assert!(text.contains("latency_seconds_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("latency_seconds_count 2"), "{text}");
        assert!(text.contains("reads_total 7"), "{text}");
        assert!(text.contains("age_seconds 2.5"), "{text}");
        // Cumulative bucket counts are non-decreasing in `le` order.
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("latency_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
    }

    #[test]
    fn render_matches_exposition_line_grammar() {
        let r = MetricsRegistry::new();
        let h = r.histogram_labeled("lat_seconds", Some(("verb", "query")), "L.");
        h.record_ns(999);
        let c = r.counter("n_total", "N.");
        c.inc();
        for line in r.render().lines() {
            if line.starts_with('#') {
                continue;
            }
            // `name{labels} value` or `name value`
            let (series, value) = line.rsplit_once(' ').expect("space-separated value");
            assert!(value.parse::<f64>().is_ok(), "unparsable value in {line:?}");
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars().all(|ch| ch.is_ascii_alphanumeric() || ch == '_'),
                "bad metric name in {line:?}"
            );
        }
    }
}
