//! Experiment context: dataset generation with the paper's defaults,
//! catalog motifs per dataset, and timing helpers.

use flowmotif_core::{catalog, Motif};
use flowmotif_datasets::Dataset;
use flowmotif_graph::{TemporalMultigraph, TimeSeriesGraph};
use std::time::{Duration, Instant};

/// Times a closure, returning its result and the wall-clock duration.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Lazily generated per-dataset graphs at a fixed scale and seed.
#[derive(Debug)]
pub struct ExpContext {
    /// Dataset scale factor.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExpContext {
    /// Creates a context.
    pub fn new(scale: f64, seed: u64) -> Self {
        Self { scale, seed }
    }

    /// The raw multigraph of `d`.
    pub fn multigraph(&self, d: Dataset) -> TemporalMultigraph {
        d.generate_multigraph(self.scale, self.seed)
    }

    /// The merged time-series graph of `d`.
    pub fn graph(&self, d: Dataset) -> TimeSeriesGraph {
        d.generate(self.scale, self.seed)
    }

    /// The ten catalog motifs with `d`'s default `δ` and `ϕ` (paper §6.2).
    pub fn motifs(&self, d: Dataset) -> Vec<Motif> {
        catalog::all_motifs(d.default_delta(), d.default_phi())
    }

    /// Catalog restricted to `quick` runs: the four cheapest motifs.
    pub fn motifs_quick(&self, d: Dataset) -> Vec<Motif> {
        self.motifs(d).into_iter().take(4).collect()
    }
}

/// Milliseconds as f64 — the unit used in all printed tables.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_is_deterministic() {
        let c = ExpContext::new(0.05, 9);
        let a = c.graph(Dataset::Passenger);
        let b = c.graph(Dataset::Passenger);
        assert_eq!(a.num_interactions(), b.num_interactions());
    }

    #[test]
    fn motifs_carry_dataset_defaults() {
        let c = ExpContext::new(0.1, 1);
        let ms = c.motifs(Dataset::Passenger);
        assert_eq!(ms.len(), 10);
        assert!(ms.iter().all(|m| m.delta() == 900 && m.phi() == 2.0));
        assert_eq!(c.motifs_quick(Dataset::Bitcoin).len(), 4);
    }

    #[test]
    fn time_it_measures() {
        let (v, d) = time_it(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(4));
    }
}
