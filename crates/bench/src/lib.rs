//! Shared harness for the experiment binaries and micro-benches.
//!
//! Every table and figure of the paper's §6 has a binary in `src/bin/`
//! (`exp_table3`, `exp_fig8`, …, `exp_fig14`) that regenerates the same
//! rows/series, plus a micro-bench in `benches/` for the
//! runtime-focused artifacts. See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc_counter;
pub mod args;
pub mod baseline;
pub mod harness;
pub mod micro;
pub mod table;

pub use alloc_counter::{
    allocations, live_bytes, peak_bytes, reset_peak, set_heap_budget, CountingAllocator,
};
pub use args::CommonArgs;
pub use harness::{time_it, ExpContext};
pub use micro::{BenchGroup, BenchResult};
pub use table::Table;
