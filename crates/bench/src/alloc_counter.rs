//! A counting wrapper around the system allocator, for the zero-allocation
//! gate (`benches/alloc_profile.rs`).
//!
//! Install it in a bench binary with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: flowmotif_bench::CountingAllocator = flowmotif_bench::CountingAllocator;
//! ```
//!
//! and bracket the code under test with [`allocations`] snapshots. Every
//! `alloc`/`realloc` anywhere in the process bumps the counter (`dealloc`
//! does not: the gate cares about allocation *traffic*, and a free-only
//! path is already alloc-free), so measurements must run single-threaded
//! and keep incidental work (printing, formatting) outside the bracket.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATION_COUNT: AtomicU64 = AtomicU64::new(0);

/// Process-wide number of `alloc`/`realloc` calls since start.
pub fn allocations() -> u64 {
    ALLOCATION_COUNT.load(Ordering::Relaxed)
}

/// The counting global allocator (delegates to [`System`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAllocator;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic
// with no allocation of its own.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}
