//! A counting wrapper around the system allocator, for the zero-allocation
//! gate (`benches/alloc_profile.rs`) and the out-of-core heap budget
//! (`benches/out_of_core.rs`).
//!
//! Install it in a bench binary with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: flowmotif_bench::CountingAllocator = flowmotif_bench::CountingAllocator;
//! ```
//!
//! and bracket the code under test with [`allocations`] snapshots. Every
//! `alloc`/`realloc` anywhere in the process bumps the counter (`dealloc`
//! does not: the gate cares about allocation *traffic*, and a free-only
//! path is already alloc-free), so measurements must run single-threaded
//! and keep incidental work (printing, formatting) outside the bracket.
//!
//! Beyond call counting, the allocator tracks **live and peak heap
//! bytes** ([`live_bytes`] / [`peak_bytes`]) and can *enforce* a hard
//! cap on live bytes ([`set_heap_budget`]): once armed, any allocation
//! that would push the live total past the cap fails (returns null, so
//! the runtime aborts through `handle_alloc_error`). The out-of-core
//! bench uses this to prove a mapped-segment search completes inside a
//! heap budget several times smaller than the graph.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATION_COUNT: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
static BUDGET_BYTES: AtomicU64 = AtomicU64::new(u64::MAX);

/// Process-wide number of `alloc`/`realloc` calls since start.
pub fn allocations() -> u64 {
    ALLOCATION_COUNT.load(Ordering::Relaxed)
}

/// Heap bytes currently live (allocated and not yet freed).
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`] since start (or the last
/// [`reset_peak`]).
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Resets the peak to the current live total, so the next
/// [`peak_bytes`] reading reflects only growth after this call.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Arms (`Some(cap)`) or disarms (`None`) the hard cap on live heap
/// bytes. The cap is absolute: an allocation that would make
/// [`live_bytes`] exceed it fails outright. Callers typically arm with
/// `live_bytes() + budget` so the cap bounds *additional* growth.
pub fn set_heap_budget(cap: Option<u64>) {
    BUDGET_BYTES.store(cap.unwrap_or(u64::MAX), Ordering::Relaxed);
}

#[inline]
fn charge(bytes: u64) -> bool {
    let cap = BUDGET_BYTES.load(Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    if live > cap {
        LIVE_BYTES.fetch_sub(bytes, Ordering::Relaxed);
        return false;
    }
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    true
}

/// The counting global allocator (delegates to [`System`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAllocator;

// SAFETY: defers entirely to `System` (budget-rejected requests return
// null, which `GlobalAlloc` permits); the counters are relaxed atomics
// with no allocation of their own.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        if !charge(layout.size() as u64) {
            return std::ptr::null_mut();
        }
        let p = System.alloc(layout);
        if p.is_null() {
            LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        let grow = new_size.saturating_sub(layout.size()) as u64;
        if !charge(grow) {
            return std::ptr::null_mut();
        }
        let p = System.realloc(ptr, layout, new_size);
        if p.is_null() {
            // Failed: the old block (layout.size()) is still live.
            LIVE_BYTES.fetch_sub(grow, Ordering::Relaxed);
        } else if new_size < layout.size() {
            LIVE_BYTES.fetch_sub((layout.size() - new_size) as u64, Ordering::Relaxed);
        }
        p
    }
}
