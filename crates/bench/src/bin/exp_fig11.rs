//! Experiment F11 — regenerates paper Fig. 11: the flow of the k-th
//! ranked instance for k ∈ {1, 5, 10, 50, 100, 500} (top-k search with
//! ϕ = 0, δ at its default).
//!
//! Run: `cargo run --release -p flowmotif-bench --bin exp_fig11 [--scale S]`

use flowmotif_bench::{CommonArgs, ExpContext, Table};
use flowmotif_core::topk::top_k;
use flowmotif_datasets::Dataset;

const KS: [usize; 6] = [1, 5, 10, 50, 100, 500];

struct Point {
    dataset: String,
    motif: String,
    k: usize,
    flow: Option<f64>,
}

flowmotif_util::impl_to_json!(Point { dataset, motif, k, flow });

fn main() {
    let args = CommonArgs::parse();
    let ctx = ExpContext::new(args.scale, args.seed);
    println!(
        "Fig. 11: flow of the k-th ranked instance (ϕ=0, δ default), scale={} seed={}\n",
        args.scale, args.seed
    );
    let mut points = Vec::new();
    for d in Dataset::ALL {
        let g = ctx.graph(d);
        let motifs = if args.quick { ctx.motifs_quick(d) } else { ctx.motifs(d) };
        let mut headers = vec!["Motif".to_string()];
        headers.extend(KS.iter().map(|k| format!("k={k}")));
        let mut table = Table::new(headers);
        for m in &motifs {
            let motif = m.with_constraints(d.default_delta(), 0.0).unwrap();
            // One top-500 run serves every k.
            let (ranked, _) = top_k(&g, &motif, *KS.last().unwrap());
            let mut row = vec![m.name()];
            for &k in &KS {
                let flow = (ranked.len() >= k).then(|| ranked[k - 1].instance.flow);
                row.push(flow.map_or("-".to_string(), |f| format!("{f:.1}")));
                points.push(Point { dataset: d.name().into(), motif: m.name(), k, flow });
            }
            table.row(row);
        }
        println!("== {} ==", d.name());
        table.print();
        println!();
    }
    println!("paper shape: k-th flow decreases in k, flattening for large k.");
    args.maybe_write_json(&points);
}
