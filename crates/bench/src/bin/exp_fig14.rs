//! Experiment F14 — regenerates paper Fig. 14: significance of the
//! catalog motifs against 20 flow-permuted random replicas per dataset
//! (box plots of random counts, real counts, z-scores).
//!
//! Run: `cargo run --release -p flowmotif-bench --bin exp_fig14 [--scale S]`

use flowmotif_bench::{CommonArgs, ExpContext, Table};
use flowmotif_datasets::Dataset;
use flowmotif_significance::{assess_motifs, SignificanceConfig};

fn main() {
    let args = CommonArgs::parse();
    let ctx = ExpContext::new(args.scale, args.seed);
    let cfg = SignificanceConfig {
        num_replicas: if args.quick { 5 } else { 20 },
        seed: args.seed,
        threads: args.threads,
    };
    println!(
        "Fig. 14: motif significance vs {} flow-permuted replicas, default δ/ϕ, scale={} seed={}\n",
        cfg.num_replicas, args.scale, args.seed
    );
    let mut all = Vec::new();
    for d in Dataset::ALL {
        let mg = ctx.multigraph(d);
        let motifs = if args.quick { ctx.motifs_quick(d) } else { ctx.motifs(d) };
        let results = assess_motifs(&mg, &motifs, cfg);
        let mut table = Table::new([
            "Motif",
            "real",
            "rand mean",
            "rand σ",
            "z-score",
            "p",
            "box [min q1 med q3 max]",
        ]);
        for r in &results {
            table.row([
                r.motif.clone(),
                r.real_count.to_string(),
                format!("{:.1}", r.random_mean),
                format!("{:.2}", r.random_std),
                if r.z_score.is_infinite() { "inf".into() } else { format!("{:.2}", r.z_score) },
                format!("{:.2}", r.p_value),
                format!(
                    "[{:.0} {:.0} {:.0} {:.0} {:.0}]",
                    r.box_plot.min, r.box_plot.q1, r.box_plot.median, r.box_plot.q3, r.box_plot.max
                ),
            ]);
        }
        println!("== {} (δ={}, ϕ={}) ==", d.name(), d.default_delta(), d.default_phi());
        table.print();
        println!();
        all.extend(results.into_iter().map(|r| (d.name().to_string(), r)));
    }
    println!("paper shape: real counts far above the randomized distributions (empirical p = 0).");
    args.maybe_write_json(&all);
}
