//! Experiment F10 — regenerates paper Fig. 10: number of instances and
//! runtime of the two-phase algorithm as `ϕ` varies (δ at its default).
//!
//! Run: `cargo run --release -p flowmotif-bench --bin exp_fig10 [--scale S]`

use flowmotif_bench::{harness::ms, time_it, CommonArgs, ExpContext, Table};
use flowmotif_core::count_instances;
use flowmotif_datasets::Dataset;

struct Point {
    dataset: String,
    motif: String,
    delta: i64,
    phi: f64,
    instances: u64,
    time_ms: f64,
}

flowmotif_util::impl_to_json!(Point { dataset, motif, delta, phi, instances, time_ms });

fn main() {
    let args = CommonArgs::parse();
    let ctx = ExpContext::new(args.scale, args.seed);
    println!(
        "Fig. 10: #instances and time vs ϕ (δ = dataset default), scale={} seed={}\n",
        args.scale, args.seed
    );
    let mut points = Vec::new();
    for d in Dataset::ALL {
        let g = ctx.graph(d);
        let motifs = if args.quick { ctx.motifs_quick(d) } else { ctx.motifs(d) };
        let sweep =
            if args.quick { d.phi_sweep().into_iter().step_by(2).collect() } else { d.phi_sweep() };
        let mut headers = vec!["Motif".to_string()];
        headers.extend(sweep.iter().map(|x| format!("ϕ={x}")));
        let mut counts = Table::new(headers.clone());
        let mut times = Table::new(headers);
        for m in &motifs {
            let mut crow = vec![m.name()];
            let mut trow = vec![m.name()];
            for &phi in &sweep {
                let motif = m.with_constraints(d.default_delta(), phi).unwrap();
                let ((n, _), t) = time_it(|| count_instances(&g, &motif));
                crow.push(n.to_string());
                trow.push(format!("{:.1}", ms(t)));
                points.push(Point {
                    dataset: d.name().into(),
                    motif: m.name(),
                    delta: d.default_delta(),
                    phi,
                    instances: n,
                    time_ms: ms(t),
                });
            }
            counts.row(crow);
            times.row(trow);
        }
        println!("== {} — #instances ==", d.name());
        counts.print();
        println!("\n== {} — time (ms) ==", d.name());
        times.print();
        println!();
    }
    println!("paper shape: #instances and time drop as ϕ grows (prefix pruning bites earlier).");
    args.maybe_write_json(&points);
}
