//! CI bench-regression gate.
//!
//! ```text
//! bench_gate check <BENCH_baseline.json> <current.jsonl> [--threshold X] [--floor-ns N]
//! bench_gate bless <current.jsonl> <BENCH_baseline.json>
//! ```
//!
//! `check` compares the current run's medians against the committed
//! baseline and exits non-zero when any bench regressed past the
//! threshold (default 1.5×, overridable with `--threshold` or the
//! `BENCH_GATE_THRESHOLD` environment variable) or is missing from the
//! run. Baselines below the noise floor (default 20 µs, `--floor-ns`)
//! are judged against `threshold × floor` instead of their own median —
//! at quick budgets they measure scheduler jitter, so wobble inside the
//! noise band passes, but a genuine blow-up still fails.
//!
//! `bless` rewrites the baseline from a current run (seeding it, or
//! adopting intentional changes). The JSON-lines file is append-only, so
//! several sweeps can accumulate before blessing: both `check` and
//! `bless` judge each bench by its *fastest* accumulated observation —
//! best-of-N on both sides, so one-off scheduler jitter can neither
//! fail a check nor ratchet a baseline. Review the diff before
//! committing.

use flowmotif_bench::baseline::{compare, dedupe_min, parse_entries, render_baseline, Verdict};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("bench_gate: {e}");
            std::process::exit(1);
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let usage = "usage: bench_gate check <baseline> <current> [--threshold X] [--floor-ns N]\n       bench_gate bless <current> <baseline-out>";
    match args.first().map(String::as_str) {
        Some("check") => {
            let (mut threshold, mut floor_ns) = (default_threshold(), 20_000.0f64);
            let mut paths = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--threshold" => {
                        threshold = it
                            .next()
                            .ok_or("missing value for --threshold")?
                            .parse()
                            .map_err(|e| format!("bad --threshold: {e}"))?;
                    }
                    "--floor-ns" => {
                        floor_ns = it
                            .next()
                            .ok_or("missing value for --floor-ns")?
                            .parse()
                            .map_err(|e| format!("bad --floor-ns: {e}"))?;
                    }
                    p => paths.push(p.to_string()),
                }
            }
            let [baseline_path, current_path] = paths.as_slice() else {
                return Err(usage.to_string());
            };
            check(baseline_path, current_path, threshold, floor_ns)
        }
        Some("bless") => {
            let [_, current_path, out_path] = args else {
                return Err(usage.to_string());
            };
            // A current file may hold several appended sweeps; bless the
            // fastest observation per bench (symmetric with `check`, and
            // a one-off slow sweep cannot ratchet the baseline).
            let entries = dedupe_min(parse_entries(&read(current_path)?)?);
            if entries.is_empty() {
                return Err(format!("{current_path}: no bench results to bless"));
            }
            std::fs::write(out_path, render_baseline(&entries))
                .map_err(|e| format!("writing {out_path}: {e}"))?;
            println!("blessed {} benches into {out_path}", entries.len());
            Ok(())
        }
        _ => Err(usage.to_string()),
    }
}

fn default_threshold() -> f64 {
    std::env::var("BENCH_GATE_THRESHOLD").ok().and_then(|v| v.parse().ok()).unwrap_or(1.5)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
}

fn check(
    baseline_path: &str,
    current_path: &str,
    threshold: f64,
    floor_ns: f64,
) -> Result<(), String> {
    let baseline = parse_entries(&read(baseline_path)?)?;
    if baseline.is_empty() {
        return Err(format!("{baseline_path}: empty baseline — seed it with `bench_gate bless`"));
    }
    let current = parse_entries(&read(current_path)?)?;
    let rows = compare(&baseline, &current, threshold, floor_ns);

    println!(
        "{:<60} {:>14} {:>14} {:>8}  verdict",
        "benchmark", "baseline ns", "current ns", "ratio"
    );
    let mut failures = 0usize;
    for row in &rows {
        let (cur, ratio) = match row.current_ns {
            Some(c) => (format!("{c:.0}"), format!("{:.2}x", c / row.baseline_ns)),
            None => ("-".to_string(), "-".to_string()),
        };
        let verdict = match row.verdict {
            Verdict::Ok => "ok",
            Verdict::BelowFloor => "below-floor (informational)",
            Verdict::Regressed => {
                failures += 1;
                "REGRESSED"
            }
            Verdict::Missing => {
                failures += 1;
                "MISSING from current run"
            }
        };
        println!("{:<60} {:>14.0} {:>14} {:>8}  {}", row.id, row.baseline_ns, cur, ratio, verdict);
    }
    println!("bench gate: {} baselines, threshold {threshold}x, floor {floor_ns} ns", rows.len());
    if failures > 0 {
        return Err(format!(
            "{failures} bench(es) regressed past {threshold}x or went missing; if intentional, \
             re-seed with `cargo run -p flowmotif-bench --bin bench_gate -- bless {current_path} \
             {baseline_path}`"
        ));
    }
    println!("bench gate: ok");
    Ok(())
}
