//! Experiment T3 — regenerates paper Table 3: dataset statistics
//! (#nodes, #connected node pairs, #edges, avg flow per edge).
//!
//! Run: `cargo run --release -p flowmotif-bench --bin exp_table3 [--scale S]`

use flowmotif_bench::{CommonArgs, ExpContext, Table};
use flowmotif_datasets::Dataset;
use flowmotif_graph::GraphStats;

struct Row {
    dataset: String,
    stats: GraphStats,
}

flowmotif_util::impl_to_json!(Row { dataset, stats });

fn main() {
    let args = CommonArgs::parse();
    let ctx = ExpContext::new(args.scale, args.seed);
    println!(
        "Table 3: statistics of the (synthetic) datasets, scale={} seed={}\n",
        args.scale, args.seed
    );
    let mut table = Table::new([
        "Dataset",
        "#nodes",
        "#connected node pairs",
        "#edges",
        "Avg. flow per edge",
        "Avg. edges per pair",
    ]);
    let mut rows = Vec::new();
    for d in Dataset::ALL {
        let g = ctx.graph(d);
        let s = GraphStats::of(&g);
        table.row([
            d.name().to_string(),
            s.num_nodes.to_string(),
            s.num_connected_pairs.to_string(),
            s.num_interactions.to_string(),
            format!("{:.3}", s.avg_flow_per_edge),
            format!("{:.3}", s.avg_edges_per_pair),
        ]);
        rows.push(Row { dataset: d.name().into(), stats: s });
    }
    table.print();
    println!("\npaper (full-scale): Bitcoin 24.6M/88.9M/123M/4.845, Facebook 45800/264K/856K/3.014, Passenger 289/77896/215175/1.933");
    args.maybe_write_json(&rows);
}
