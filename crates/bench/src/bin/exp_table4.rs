//! Experiment T4 — regenerates paper Table 4: number of structural
//! matches and phase-P1 runtime for each catalog motif on each dataset.
//!
//! Run: `cargo run --release -p flowmotif-bench --bin exp_table4 [--scale S]`

use flowmotif_bench::{harness::ms, time_it, CommonArgs, ExpContext, Table};
use flowmotif_core::count_structural_matches;
use flowmotif_datasets::Dataset;

struct Row {
    dataset: String,
    motif: String,
    matches: u64,
    p1_ms: f64,
}

flowmotif_util::impl_to_json!(Row { dataset, motif, matches, p1_ms });

fn main() {
    let args = CommonArgs::parse();
    let ctx = ExpContext::new(args.scale, args.seed);
    println!(
        "Table 4: structural matches and phase-P1 time, scale={} seed={}\n",
        args.scale, args.seed
    );
    let mut rows = Vec::new();
    for d in Dataset::ALL {
        let g = ctx.graph(d);
        let motifs = if args.quick { ctx.motifs_quick(d) } else { ctx.motifs(d) };
        let mut table = Table::new(["Motif", "Matches", "P1 time (ms)"]);
        for m in &motifs {
            let (count, dur) = time_it(|| count_structural_matches(&g, m.path()));
            table.row([m.name(), count.to_string(), format!("{:.2}", ms(dur))]);
            rows.push(Row {
                dataset: d.name().into(),
                motif: m.name(),
                matches: count,
                p1_ms: ms(dur),
            });
        }
        println!("== {} ==", d.name());
        table.print();
        println!();
    }
    println!("paper shape: more complex motifs -> fewer matches but more P1 time.");
    args.maybe_write_json(&rows);
}
