//! Experiment F8 — regenerates paper Fig. 8: runtime of the two-phase
//! algorithm vs the join-based baseline for all ten catalog motifs on the
//! three datasets, at the default δ/ϕ.
//!
//! Run: `cargo run --release -p flowmotif-bench --bin exp_fig8 [--scale S]`

use flowmotif_baseline::join_enumerate;
use flowmotif_bench::{harness::ms, time_it, CommonArgs, ExpContext, Table};
use flowmotif_core::{count_instances, count_instances_shared};
use flowmotif_datasets::Dataset;

struct Row {
    dataset: String,
    motif: String,
    instances: u64,
    two_phase_ms: f64,
    join_ms: f64,
    shared_ms: f64,
}

flowmotif_util::impl_to_json!(Row { dataset, motif, instances, two_phase_ms, join_ms, shared_ms });

fn main() {
    let args = CommonArgs::parse();
    let ctx = ExpContext::new(args.scale, args.seed);
    println!(
        "Fig. 8: two-phase vs join algorithm, default δ/ϕ, scale={} seed={}\n",
        args.scale, args.seed
    );
    let mut rows = Vec::new();
    for d in Dataset::ALL {
        let g = ctx.graph(d);
        let motifs = if args.quick { ctx.motifs_quick(d) } else { ctx.motifs(d) };
        let mut table = Table::new([
            "Motif",
            "#instances",
            "two-phase (ms)",
            "join (ms)",
            "shared (ms)",
            "join/two-phase",
        ]);
        for m in &motifs {
            let ((n2, _), t2) = time_it(|| count_instances(&g, m));
            let ((nj, _), tj) = time_it(|| join_enumerate(&g, m));
            let ((ns, _), ts) = time_it(|| count_instances_shared(&g, m));
            assert_eq!(n2, nj.len() as u64, "two-phase and join must agree on {m}");
            assert_eq!(n2, ns, "shared-prefix search must agree on {m}");
            table.row([
                m.name(),
                n2.to_string(),
                format!("{:.2}", ms(t2)),
                format!("{:.2}", ms(tj)),
                format!("{:.2}", ms(ts)),
                format!("{:.2}x", ms(tj) / ms(t2).max(1e-9)),
            ]);
            rows.push(Row {
                dataset: d.name().into(),
                motif: m.name(),
                instances: n2,
                two_phase_ms: ms(t2),
                join_ms: ms(tj),
                shared_ms: ms(ts),
            });
        }
        println!("== {} (δ={}, ϕ={}) ==", d.name(), d.default_delta(), d.default_phi());
        table.print();
        println!();
    }
    println!("paper shape: two-phase ~2x faster than join (join materialises redundant sub-motif instances).");
    args.maybe_write_json(&rows);
}
