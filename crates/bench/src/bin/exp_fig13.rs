//! Experiment F13 — regenerates paper Fig. 13: scalability of the
//! two-phase algorithm over time-prefix samples of each dataset
//! (B1–B5, F1–F5, T1–T4), at the default δ/ϕ.
//!
//! Run: `cargo run --release -p flowmotif-bench --bin exp_fig13 [--scale S]`

use flowmotif_bench::{harness::ms, time_it, CommonArgs, ExpContext, Table};
use flowmotif_core::count_instances;
use flowmotif_datasets::{time_prefix_samples, Dataset};

struct Point {
    dataset: String,
    sample: String,
    motif: String,
    interactions: usize,
    instances: u64,
    time_ms: f64,
}

flowmotif_util::impl_to_json!(Point { dataset, sample, motif, interactions, instances, time_ms });

fn main() {
    let args = CommonArgs::parse();
    let ctx = ExpContext::new(args.scale, args.seed);
    println!(
        "Fig. 13: scalability over time-prefix samples, default δ/ϕ, scale={} seed={}\n",
        args.scale, args.seed
    );
    let mut points = Vec::new();
    for d in Dataset::ALL {
        let mg = ctx.multigraph(d);
        let samples = time_prefix_samples(&mg, &d.prefix_fractions());
        let motifs = if args.quick { ctx.motifs_quick(d) } else { ctx.motifs(d) };
        let mut headers = vec!["Motif".to_string()];
        headers.extend(samples.iter().map(|s| format!("{} ({})", s.label, s.num_interactions)));
        let mut counts = Table::new(headers.clone());
        let mut times = Table::new(headers);
        for m in &motifs {
            let mut crow = vec![m.name()];
            let mut trow = vec![m.name()];
            for s in &samples {
                let ((n, _), t) = time_it(|| count_instances(&s.graph, m));
                crow.push(n.to_string());
                trow.push(format!("{:.1}", ms(t)));
                points.push(Point {
                    dataset: d.name().into(),
                    sample: s.label.clone(),
                    motif: m.name(),
                    interactions: s.num_interactions,
                    instances: n,
                    time_ms: ms(t),
                });
            }
            counts.row(crow);
            times.row(trow);
        }
        println!("== {} — #instances per sample ==", d.name());
        counts.print();
        println!("\n== {} — time (ms) per sample ==", d.name());
        times.print();
        println!();
    }
    println!("paper shape: cost grows more slowly than #instances and input size.");
    args.maybe_write_json(&points);
}
