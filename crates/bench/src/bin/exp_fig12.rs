//! Experiment F12 — regenerates paper Fig. 12: phase-P2 runtime of top-1
//! search via the general top-k algorithm (k = 1) vs the dynamic
//! programming module of §5.1.
//!
//! Phase P1 (structural matching) is shared, so the comparison times P2
//! only, exactly like the paper's bar charts.
//!
//! Run: `cargo run --release -p flowmotif-bench --bin exp_fig12 [--scale S]`

use flowmotif_bench::{harness::ms, time_it, CommonArgs, ExpContext, Table};
use flowmotif_core::dp::{dp_best_window_in_match, DpScratch, DpStats};
use flowmotif_core::enumerate::{
    enumerate_in_match_reusing, EnumerationScratch, SearchOptions, SearchStats,
};
use flowmotif_core::find_structural_matches;
use flowmotif_core::topk::TopKSink;
use flowmotif_datasets::Dataset;

struct Row {
    dataset: String,
    motif: String,
    top1_flow: f64,
    topk_p2_ms: f64,
    dp_p2_ms: f64,
}

flowmotif_util::impl_to_json!(Row { dataset, motif, top1_flow, topk_p2_ms, dp_p2_ms });

fn main() {
    let args = CommonArgs::parse();
    let ctx = ExpContext::new(args.scale, args.seed);
    println!(
        "Fig. 12: P2 time of top-1 search — top-k (k=1) vs DP module, scale={} seed={}\n",
        args.scale, args.seed
    );
    let mut rows = Vec::new();
    for d in Dataset::ALL {
        let g = ctx.graph(d);
        let motifs = if args.quick { ctx.motifs_quick(d) } else { ctx.motifs(d) };
        let mut table =
            Table::new(["Motif", "top-1 flow", "top-k k=1 P2 (ms)", "DP P2 (ms)", "DP/top-k"]);
        for m in &motifs {
            let motif = m.with_constraints(d.default_delta(), 0.0).unwrap();
            let matches = find_structural_matches(&g, motif.path());

            // P2 via the general top-k algorithm with k = 1.
            let (topk_flow, t_topk) = time_it(|| {
                let mut sink = TopKSink::new(1);
                let mut stats = SearchStats::default();
                let mut scratch = EnumerationScratch::default();
                for sm in &matches {
                    enumerate_in_match_reusing(
                        &g,
                        &motif,
                        sm,
                        SearchOptions::default(),
                        &mut sink,
                        &mut stats,
                        &mut scratch,
                    );
                }
                sink.into_sorted().first().map_or(0.0, |r| r.instance.flow)
            });

            // P2 via the DP module (Algorithm 2), threading the best flow
            // found so far as the admissible pruning threshold — the same
            // role the floating threshold plays for top-k.
            let (dp_flow, t_dp) = time_it(|| {
                let mut stats = DpStats::default();
                let mut scratch = DpScratch::default();
                let mut best = 0.0f64;
                for sm in &matches {
                    if let Some((f, _)) =
                        dp_best_window_in_match(&g, &motif, sm, best, &mut scratch, &mut stats)
                    {
                        best = f;
                    }
                }
                best
            });
            assert!(
                (topk_flow - dp_flow).abs() < 1e-9,
                "{}: top-k found {topk_flow}, DP found {dp_flow}",
                m.name()
            );
            table.row([
                m.name(),
                format!("{topk_flow:.1}"),
                format!("{:.2}", ms(t_topk)),
                format!("{:.2}", ms(t_dp)),
                format!("{:.2}x", ms(t_dp) / ms(t_topk).max(1e-9)),
            ]);
            rows.push(Row {
                dataset: d.name().into(),
                motif: m.name(),
                top1_flow: topk_flow,
                topk_p2_ms: ms(t_topk),
                dp_p2_ms: ms(t_dp),
            });
        }
        println!("== {} (δ={}) ==", d.name(), d.default_delta());
        table.print();
        println!();
    }
    println!("paper shape: the DP module cuts P2 time by 20-40% vs top-k with k=1.");
    args.maybe_write_json(&rows);
}
