//! Minimal command-line flag parsing shared by the experiment binaries
//! (no external CLI dependency needed for `--flag value` pairs).

use std::path::PathBuf;

/// Flags understood by every experiment binary.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Dataset scale factor (1.0 = the DESIGN.md laptop defaults).
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Write machine-readable results as JSON to this path.
    pub json: Option<PathBuf>,
    /// Use a reduced setting (fewer replicas / sweep points) for smoke
    /// runs.
    pub quick: bool,
    /// Worker threads for parallel drivers (0 = all cores).
    pub threads: usize,
}

impl Default for CommonArgs {
    fn default() -> Self {
        Self { scale: 1.0, seed: 42, json: None, quick: false, threads: 1 }
    }
}

impl CommonArgs {
    /// Parses `std::env::args()`. Unknown flags abort with a usage
    /// message; every experiment accepts the same set.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--scale" => out.scale = value("--scale").parse().expect("bad --scale"),
                "--seed" => out.seed = value("--seed").parse().expect("bad --seed"),
                "--json" => out.json = Some(PathBuf::from(value("--json"))),
                "--threads" => out.threads = value("--threads").parse().expect("bad --threads"),
                "--quick" => out.quick = true,
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale <f64> --seed <u64> --json <path> --threads <n> --quick"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag `{other}`; try --help");
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// Writes `value` as pretty JSON to `--json` if given.
    pub fn maybe_write_json<T: flowmotif_util::ToJson>(&self, value: &T) {
        if let Some(path) = &self.json {
            let s = flowmotif_util::to_string_pretty(value);
            std::fs::write(path, s).expect("write json");
            eprintln!("wrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = CommonArgs::parse_from(Vec::<String>::new());
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.seed, 42);
        assert!(a.json.is_none());
        assert!(!a.quick);
    }

    #[test]
    fn parses_all_flags() {
        let a = CommonArgs::parse_from(
            ["--scale", "0.5", "--seed", "7", "--quick", "--threads", "4", "--json", "/tmp/x.json"]
                .map(String::from),
        );
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 7);
        assert!(a.quick);
        assert_eq!(a.threads, 4);
        assert_eq!(a.json.unwrap().to_str().unwrap(), "/tmp/x.json");
    }
}
