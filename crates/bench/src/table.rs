//! Plain-text table rendering for experiment output (the paper's tables
//! and figure series, as aligned console tables).

/// A simple right-aligned text table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (cells are padded/truncated to the header count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Renders to a string with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // First column left-aligned (labels), the rest right-aligned.
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", c, w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 2 decimals (times, flows).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats an integer count with no decorations.
pub fn n(x: u64) -> String {
    x.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["motif", "count", "ms"]);
        t.row(["M(3,2)", "12345", "1.23"]);
        t.row(["M(5,5)A", "7", "100.00"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("motif"));
        assert!(lines[2].starts_with("M(3,2)"));
        // Right alignment: the short count sits at the right edge of its
        // column.
        assert!(lines[3].contains("      7"));
    }

    #[test]
    fn rows_are_padded_to_header_width() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only-one"]);
        assert_eq!(t.rows[0].len(), 3);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(n(42), "42");
    }
}
