//! A tiny self-contained micro-benchmark runner (the workspace builds
//! offline, so the Criterion benches were ported onto this harness).
//!
//! Each bench target is a plain `fn main()` (`harness = false`) that
//! creates a [`BenchGroup`] and registers closures. Per benchmark the
//! runner warms up, then runs timed batches until a measurement budget is
//! spent, and reports min / mean / max per-iteration wall time.
//!
//! CLI surface (args after `cargo bench -- …`):
//!
//! * a positional substring filters benchmark ids;
//! * `--quick` shrinks warm-up and measurement budgets ~10×.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runner configuration plus collected results.
#[derive(Debug)]
pub struct BenchGroup {
    name: String,
    filter: Option<String>,
    quick: bool,
    warm_up: Duration,
    measure: Duration,
    min_iters: u32,
    results: Vec<BenchResult>,
}

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id (`group/bench`).
    pub id: String,
    /// Iterations measured.
    pub iters: u32,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Mean iteration time.
    pub mean: Duration,
    /// Slowest observed iteration.
    pub max: Duration,
}

impl BenchGroup {
    /// Creates a group, reading the filter / `--quick` flags from
    /// `std::env::args()`.
    pub fn new(name: &str) -> Self {
        Self::with_args(name, std::env::args().skip(1))
    }

    /// Creates a group from an explicit argument list (testable).
    pub fn with_args<I: IntoIterator<Item = String>>(name: &str, args: I) -> Self {
        let mut filter = None;
        let mut quick = false;
        for a in args {
            match a.as_str() {
                "--quick" => quick = true,
                // `cargo bench` passes `--bench` through to the target.
                "--bench" | "--exact" => {}
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                _ => {}
            }
        }
        let (warm_up, measure) = if quick {
            (Duration::from_millis(20), Duration::from_millis(100))
        } else {
            (Duration::from_millis(200), Duration::from_secs(1))
        };
        Self {
            name: name.to_string(),
            filter,
            quick,
            warm_up,
            measure,
            min_iters: 5,
            results: Vec::new(),
        }
    }

    /// Overrides the measurement budget (warm-up scales to 1/5th of it).
    /// `--quick` runs still shrink the budget 10×.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure = if self.quick { d / 10 } else { d };
        self.warm_up = self.measure / 5;
        self
    }

    /// Runs one benchmark unless the filter excludes it. The closure's
    /// result is passed through [`black_box`] so work is not optimised
    /// away.
    pub fn bench<T>(&mut self, id: impl Into<String>, mut f: impl FnMut() -> T) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }

        // Run until the budget is spent and at least `min_iters` samples
        // exist; a long benchmark thus stops right after the budget (but
        // never before its 5th sample).
        let mut iters = 0u32;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        while total < self.measure || iters < self.min_iters {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            iters += 1;
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        let r = BenchResult { id, iters, min, mean: total / iters, max };
        println!(
            "{:<60} {:>12} {:>12} {:>12}   ({} iters)",
            r.id,
            fmt_duration(r.min),
            fmt_duration(r.mean),
            fmt_duration(r.max),
            r.iters
        );
        self.results.push(r);
        self
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the footer. Call at the end of `main`.
    pub fn finish(&self) {
        println!("{}: {} benchmarks", self.name, self.results.len());
    }
}

/// Prints the standard column header for bench output.
pub fn header() {
    println!("{:<60} {:>12} {:>12} {:>12}", "benchmark", "min", "mean", "max");
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(name: &str) -> BenchGroup {
        let mut g = BenchGroup::with_args(name, ["--quick".to_string()]);
        g.measurement_time(Duration::from_millis(5));
        g
    }

    #[test]
    fn runs_and_records() {
        let mut g = quick("g");
        let mut calls = 0u64;
        g.bench("inc", || {
            calls += 1;
            calls
        });
        assert_eq!(g.results().len(), 1);
        let r = &g.results()[0];
        assert_eq!(r.id, "g/inc");
        assert!(r.iters >= 5);
        assert!(r.min <= r.mean && r.mean <= r.max);
        assert!(calls as u32 >= r.iters);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut g = BenchGroup::with_args("g", ["only".to_string(), "--quick".to_string()]);
        g.measurement_time(Duration::from_millis(5));
        g.bench("only_this", || 1);
        g.bench("not_that", || 2);
        assert_eq!(g.results().len(), 1);
        assert_eq!(g.results()[0].id, "g/only_this");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
