//! A tiny self-contained micro-benchmark runner (the workspace builds
//! offline, so the Criterion benches were ported onto this harness).
//!
//! Each bench target is a plain `fn main()` (`harness = false`) that
//! creates a [`BenchGroup`] and registers closures. Per benchmark the
//! runner warms up, then runs timed batches until a measurement budget is
//! spent, and reports min / mean / max per-iteration wall time.
//!
//! CLI surface (args after `cargo bench -- …`):
//!
//! * a positional substring filters benchmark ids;
//! * `--quick` shrinks warm-up and measurement budgets ~10×.
//!
//! # Machine-readable output
//!
//! When the `FLOWMOTIF_BENCH_JSON` environment variable names a file,
//! [`BenchGroup::finish`] *appends* one JSON object per result —
//! `{"<bench id>": <median ns/iter>}` — so a run over several bench
//! binaries accumulates a single JSON-lines file. The CI
//! bench-regression gate (`bench_gate` in `src/bin/`) compares such a
//! file against the committed `BENCH_baseline.json`.

use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Runner configuration plus collected results.
#[derive(Debug)]
pub struct BenchGroup {
    name: String,
    filter: Option<String>,
    quick: bool,
    warm_up: Duration,
    measure: Duration,
    min_iters: u32,
    results: Vec<BenchResult>,
}

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id (`group/bench`).
    pub id: String,
    /// Iterations measured.
    pub iters: u32,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Mean iteration time.
    pub mean: Duration,
    /// Median iteration time (over the first [`MAX_SAMPLES`] samples) —
    /// the statistic the regression gate compares, being robust to the
    /// occasional scheduling hiccup that skews mean and max.
    pub median: Duration,
    /// Slowest observed iteration.
    pub max: Duration,
}

/// Per-benchmark cap on retained samples for the median; beyond it the
/// summary keeps updating min/mean/max but the median is computed over
/// this prefix (plenty for a stable median at any realistic bench cost).
pub const MAX_SAMPLES: usize = 4096;

impl BenchGroup {
    /// Creates a group, reading the filter / `--quick` flags from
    /// `std::env::args()`.
    pub fn new(name: &str) -> Self {
        Self::with_args(name, std::env::args().skip(1))
    }

    /// Creates a group from an explicit argument list (testable).
    pub fn with_args<I: IntoIterator<Item = String>>(name: &str, args: I) -> Self {
        let mut filter = None;
        let mut quick = false;
        for a in args {
            match a.as_str() {
                "--quick" => quick = true,
                // `cargo bench` passes `--bench` through to the target.
                "--bench" | "--exact" => {}
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                _ => {}
            }
        }
        let (warm_up, measure) = if quick {
            (Duration::from_millis(20), Duration::from_millis(100))
        } else {
            (Duration::from_millis(200), Duration::from_secs(1))
        };
        Self {
            name: name.to_string(),
            filter,
            quick,
            warm_up,
            measure,
            min_iters: 5,
            results: Vec::new(),
        }
    }

    /// Overrides the measurement budget (warm-up scales to 1/5th of it).
    /// `--quick` runs still shrink the budget 10×.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure = if self.quick { d / 10 } else { d };
        self.warm_up = self.measure / 5;
        self
    }

    /// Runs one benchmark unless the filter excludes it. The closure's
    /// result is passed through [`black_box`] so work is not optimised
    /// away.
    pub fn bench<T>(&mut self, id: impl Into<String>, mut f: impl FnMut() -> T) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }

        // Run until the budget is spent and at least `min_iters` samples
        // exist; a long benchmark thus stops right after the budget (but
        // never before its 5th sample).
        let mut iters = 0u32;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut samples: Vec<Duration> = Vec::new();
        while total < self.measure || iters < self.min_iters {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            iters += 1;
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
            if samples.len() < MAX_SAMPLES {
                samples.push(dt);
            }
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let r = BenchResult { id, iters, min, mean: total / iters, median, max };
        println!(
            "{:<60} {:>12} {:>12} {:>12} {:>12}   ({} iters)",
            r.id,
            fmt_duration(r.min),
            fmt_duration(r.mean),
            fmt_duration(r.median),
            fmt_duration(r.max),
            r.iters
        );
        self.results.push(r);
        self
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the footer and, when `FLOWMOTIF_BENCH_JSON` names a file,
    /// appends every result as a JSON line (`{"<id>": <median ns>}`).
    /// Call at the end of `main`.
    pub fn finish(&self) {
        println!("{}: {} benchmarks", self.name, self.results.len());
        if let Ok(path) = std::env::var("FLOWMOTIF_BENCH_JSON") {
            if let Err(e) = self.append_json(&path) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
    }

    /// Appends this group's results to `path` in the JSON-lines format
    /// the regression gate consumes.
    fn append_json(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        let mut body = String::new();
        for r in &self.results {
            let line = flowmotif_util::Json::Object(vec![(
                r.id.clone(),
                flowmotif_util::Json::Int(r.median.as_nanos() as i128),
            )]);
            body.push_str(&line.to_string());
            body.push('\n');
        }
        f.write_all(body.as_bytes())
    }
}

/// Prints the standard column header for bench output.
pub fn header() {
    println!("{:<60} {:>12} {:>12} {:>12} {:>12}", "benchmark", "min", "mean", "median", "max");
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(name: &str) -> BenchGroup {
        let mut g = BenchGroup::with_args(name, ["--quick".to_string()]);
        g.measurement_time(Duration::from_millis(5));
        g
    }

    #[test]
    fn runs_and_records() {
        let mut g = quick("g");
        let mut calls = 0u64;
        g.bench("inc", || {
            calls += 1;
            calls
        });
        assert_eq!(g.results().len(), 1);
        let r = &g.results()[0];
        assert_eq!(r.id, "g/inc");
        assert!(r.iters >= 5);
        assert!(r.min <= r.mean && r.mean <= r.max);
        assert!(r.min <= r.median && r.median <= r.max);
        assert!(calls as u32 >= r.iters);
    }

    #[test]
    fn json_lines_are_appended_per_result() {
        let path = std::env::temp_dir().join(format!(
            "flowmotif_bench_json_{}_{}",
            std::process::id(),
            line!()
        ));
        let mut g = quick("j");
        g.bench("one", || 1);
        g.bench("two", || 2);
        g.append_json(path.to_str().unwrap()).unwrap();
        g.append_json(path.to_str().unwrap()).unwrap(); // append, not truncate
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"j/one\":"), "{body}");
        assert!(lines[1].starts_with("{\"j/two\":"), "{body}");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut g = BenchGroup::with_args("g", ["only".to_string(), "--quick".to_string()]);
        g.measurement_time(Duration::from_millis(5));
        g.bench("only_this", || 1);
        g.bench("not_that", || 2);
        assert_eq!(g.results().len(), 1);
        assert_eq!(g.results()[0].id, "g/only_this");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
