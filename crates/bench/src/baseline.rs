//! Parsing and comparison of bench-baseline files for the CI
//! bench-regression gate.
//!
//! Two file shapes share one grammar — a stream of `"<bench id>":
//! <number>` entries inside `{ … }` objects, whitespace-insensitive:
//!
//! * `BENCH_baseline.json` — one pretty-printed object mapping bench id
//!   to median ns/iter (committed at the repo root);
//! * the JSON-lines file the harness appends under `FLOWMOTIF_BENCH_JSON`
//!   (one single-entry object per line).
//!
//! The scanner below accepts both (and their concatenation), so the gate
//! and the `bless` re-seeding path need no format negotiation.

/// Parses every `"key": number` entry in `text`, in order, **keeping
/// duplicates**: an appended file legitimately accumulates several runs
/// of the same bench, and both consumers fold them to the fastest
/// observation per id (the gate directly, `bless` via [`dedupe_min`]).
/// Errors on malformed entries rather than skipping them, so a
/// corrupted baseline fails the gate loudly.
pub fn parse_entries(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out: Vec<(String, f64)> = Vec::new();
    let mut chars = text.char_indices().peekable();
    while let Some((start, c)) = chars.next() {
        if c != '"' {
            continue;
        }
        // Key: bench ids never contain quotes or escapes; reject if so.
        let mut key = String::new();
        let mut closed = false;
        for (_, k) in chars.by_ref() {
            match k {
                '"' => {
                    closed = true;
                    break;
                }
                '\\' => return Err(format!("escape in key at byte {start}")),
                k => key.push(k),
            }
        }
        if !closed {
            return Err(format!("unterminated key at byte {start}"));
        }
        // Separator.
        while chars.peek().is_some_and(|&(_, c)| c.is_whitespace()) {
            chars.next();
        }
        match chars.next() {
            Some((_, ':')) => {}
            other => return Err(format!("expected `:` after key {key:?}, got {other:?}")),
        }
        while chars.peek().is_some_and(|&(_, c)| c.is_whitespace()) {
            chars.next();
        }
        // Number: consume until a delimiter.
        let mut num = String::new();
        while let Some(&(_, c)) = chars.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                num.push(c);
                chars.next();
            } else {
                break;
            }
        }
        let value: f64 =
            num.parse().map_err(|e| format!("bad number {num:?} for key {key:?}: {e}"))?;
        out.push((key, value));
    }
    Ok(out)
}

/// One row of the gate's comparison report.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Bench id.
    pub id: String,
    /// Baseline median ns/iter.
    pub baseline_ns: f64,
    /// Current median ns/iter, `None` if the bench did not run.
    pub current_ns: Option<f64>,
    /// What the gate concluded for this row.
    pub verdict: Verdict,
}

/// Gate outcome for one bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the threshold (or faster).
    Ok,
    /// Slower than `threshold ×` the baseline.
    Regressed,
    /// Baseline too small to judge reliably (below the noise floor).
    BelowFloor,
    /// Present in the baseline but absent from the current run.
    Missing,
}

/// Compares `current` against `baseline`: a bench regresses when its
/// current median — the *fastest* one, if the current file accumulated
/// several runs — exceeds `threshold × max(baseline, floor_ns)`. The
/// floor makes sub-`floor_ns` baselines tolerant of scheduler noise at
/// quick budgets without exempting them entirely — a 15 µs bench that
/// jumps to 50 ms still fails; one that wobbles to 25 µs does not.
/// Returns one row per baseline entry; benches only in `current` are
/// ignored (run `bench_gate bless` to adopt them).
pub fn compare(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    threshold: f64,
    floor_ns: f64,
) -> Vec<Comparison> {
    baseline
        .iter()
        .map(|(id, base)| {
            // Best-of-N: a current file may accumulate several runs of
            // the same bench (the JSON-lines file is append-only); a
            // bench only regressed if even its *fastest* run did, which
            // keeps the gate robust to one-off scheduler jitter.
            let cur = current
                .iter()
                .filter(|(k, _)| k == id)
                .map(|&(_, v)| v)
                .fold(None, |acc: Option<f64>, v| Some(acc.map_or(v, |a| a.min(v))));
            let verdict = match cur {
                None => Verdict::Missing,
                Some(c) if c > threshold * base.max(floor_ns) => Verdict::Regressed,
                Some(_) if *base < floor_ns => Verdict::BelowFloor,
                Some(_) => Verdict::Ok,
            };
            Comparison { id: id.clone(), baseline_ns: *base, current_ns: cur, verdict }
        })
        .collect()
}

/// Collapses duplicate ids to the *fastest* observation per bench — the
/// bless path uses this, making the gate symmetric: both the baseline
/// and the current run are judged by their best-of-N accumulated
/// medians. A one-off slow sweep can then neither ratchet a committed
/// baseline upward (silently widening that bench's gate) nor fail a
/// check spuriously; the fastest median is the statistic that actually
/// converges under scheduler noise.
pub fn dedupe_min(entries: Vec<(String, f64)>) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::with_capacity(entries.len());
    for (id, v) in entries {
        match out.iter_mut().find(|(k, _)| *k == id) {
            Some((_, best)) => *best = best.min(v),
            None => out.push((id, v)),
        }
    }
    out
}

/// Renders entries as the pretty `BENCH_baseline.json` object (sorted by
/// id, one entry per line).
pub fn render_baseline(entries: &[(String, f64)]) -> String {
    let mut sorted: Vec<&(String, f64)> = entries.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("{\n");
    for (i, (k, v)) in sorted.iter().enumerate() {
        out.push_str(&format!("  \"{k}\": {v}"));
        out.push_str(if i + 1 < sorted.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pretty_objects_and_json_lines() {
        let pretty = "{\n  \"a/b\": 120.5,\n  \"c/d\": 7\n}\n";
        assert_eq!(
            parse_entries(pretty).unwrap(),
            vec![("a/b".to_string(), 120.5), ("c/d".to_string(), 7.0)]
        );
        let jsonl = "{\"a/b\": 10}\n{\"c/d\": 20}\n{\"a/b\": 30}\n";
        assert_eq!(
            parse_entries(jsonl).unwrap(),
            vec![("a/b".to_string(), 10.0), ("c/d".to_string(), 20.0), ("a/b".to_string(), 30.0)],
            "duplicates are kept for the consumers to fold"
        );
        assert_eq!(
            dedupe_min(parse_entries(jsonl).unwrap()),
            vec![("a/b".to_string(), 10.0), ("c/d".to_string(), 20.0)],
            "bless keeps the fastest observation per bench"
        );
        assert!(parse_entries("{\"a\" 5}").is_err(), "missing colon");
        assert!(parse_entries("{\"a\": oops}").is_err(), "bad number");
        assert_eq!(parse_entries("").unwrap(), vec![]);
    }

    #[test]
    fn round_trips_through_render() {
        let entries = vec![("z".to_string(), 3.0), ("a".to_string(), 1.5)];
        let rendered = render_baseline(&entries);
        let mut parsed = parse_entries(&rendered).unwrap();
        parsed.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(parsed, vec![("a".to_string(), 1.5), ("z".to_string(), 3.0)]);
    }

    #[test]
    fn compare_flags_regressions_missing_and_floor() {
        let baseline = vec![
            ("jitter".to_string(), 100.0), // sub-floor, wobbles within the noise band
            ("blowup".to_string(), 100.0), // sub-floor, regresses far past the band
            ("same".to_string(), 1e6),
            ("slow".to_string(), 1e6),
            ("gone".to_string(), 1e6),
        ];
        let current = vec![
            ("jitter".to_string(), 25_000.0), // < 1.5 × floor: noise, not a regression
            ("blowup".to_string(), 1e9),
            ("same".to_string(), 1.2e6),
            ("slow".to_string(), 1.6e6),
        ];
        let rows = compare(&baseline, &current, 1.5, 20_000.0);
        let verdict_of = |id: &str| rows.iter().find(|c| c.id == id).unwrap().verdict;
        assert_eq!(verdict_of("jitter"), Verdict::BelowFloor);
        assert_eq!(verdict_of("blowup"), Verdict::Regressed, "the floor is not a blank cheque");
        assert_eq!(verdict_of("same"), Verdict::Ok);
        assert_eq!(verdict_of("slow"), Verdict::Regressed);
        assert_eq!(verdict_of("gone"), Verdict::Missing);
    }

    #[test]
    fn compare_takes_the_best_of_accumulated_runs() {
        // Two appended sweeps: the first hit a scheduling hiccup, the
        // second is clean — only the fastest observation is judged.
        let baseline = vec![("b".to_string(), 1e6)];
        let current = vec![("b".to_string(), 2e6), ("b".to_string(), 1.1e6)];
        let rows = compare(&baseline, &current, 1.5, 20_000.0);
        assert_eq!(rows[0].verdict, Verdict::Ok);
        assert_eq!(rows[0].current_ns, Some(1.1e6));
        // ... and a regression in every run still fails.
        let current = vec![("b".to_string(), 2e6), ("b".to_string(), 1.8e6)];
        let rows = compare(&baseline, &current, 1.5, 20_000.0);
        assert_eq!(rows[0].verdict, Verdict::Regressed);
    }
}
