//! Micro-bench counterpart of experiment F12 (paper Fig. 12): top-1
//! search via the general top-k algorithm (k = 1) vs the DP module of
//! §5.1.

use flowmotif_bench::{micro, BenchGroup, ExpContext};
use flowmotif_core::dp::dp_max_flow;
use flowmotif_core::topk::top_k;
use flowmotif_datasets::Dataset;
use std::hint::black_box;

const SCALE: f64 = 0.25;
const MOTIFS: [&str; 3] = ["M(3,2)", "M(3,3)", "M(4,4)A"];

fn main() {
    let ctx = ExpContext::new(SCALE, 42);
    let mut group = BenchGroup::new("fig12_dp_vs_topk");
    group.measurement_time(std::time::Duration::from_secs(2));
    micro::header();
    for d in Dataset::ALL {
        let g = ctx.graph(d);
        for m in ctx.motifs(d).into_iter().filter(|m| MOTIFS.contains(&m.name().as_str())) {
            let motif = m.with_constraints(d.default_delta(), 0.0).unwrap();
            group.bench(format!("topk1/{}/{}", d.name(), motif.name()), || {
                black_box(top_k(&g, &motif, 1))
            });
            group.bench(format!("dp/{}/{}", d.name(), motif.name()), || {
                black_box(dp_max_flow(&g, &motif))
            });
        }
    }
    group.finish();
}
