//! Criterion counterpart of experiment F12 (paper Fig. 12): top-1 search
//! via the general top-k algorithm (k = 1) vs the DP module of §5.1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowmotif_bench::ExpContext;
use flowmotif_core::dp::dp_max_flow;
use flowmotif_core::topk::top_k;
use flowmotif_datasets::Dataset;
use std::hint::black_box;

const SCALE: f64 = 0.25;
const MOTIFS: [&str; 3] = ["M(3,2)", "M(3,3)", "M(4,4)A"];

fn bench(c: &mut Criterion) {
    let ctx = ExpContext::new(SCALE, 42);
    let mut group = c.benchmark_group("fig12_dp_vs_topk");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for d in Dataset::ALL {
        let g = ctx.graph(d);
        for m in ctx
            .motifs(d)
            .into_iter()
            .filter(|m| MOTIFS.contains(&m.name().as_str()))
        {
            let motif = m.with_constraints(d.default_delta(), 0.0).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("topk1/{}", d.name()), motif.name()),
                &motif,
                |b, m| b.iter(|| black_box(top_k(&g, m, 1))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("dp/{}", d.name()), motif.name()),
                &motif,
                |b, m| b.iter(|| black_box(dp_max_flow(&g, m))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
