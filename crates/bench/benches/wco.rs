//! Worst-case-optimal P1 gate: cardinality-ordered extension must beat
//! fixed-order extension by a wide margin on a hub-skewed graph, while
//! enumerating the bit-identical match stream.
//!
//! The graph is a pinwheel of `n` directed triangles sharing one hub
//! `h`: spokes `s_i → h`, hub fan-out `h → t_i`, and closing edges
//! `t_i → s_i`. For the triangle motif M(3,3) rooted at `s_i`, the last
//! walk step binds `u2` under two constraints: `u2 ∈ out(h)` (size `n`)
//! and `u2 ∈ in(s_i)` (size 1). Fixed order always proposes from the
//! primary walk edge — the hub's `n`-wide out-list — so the whole scan
//! is Θ(n²); cardinality order lets the 1-element in-list propose and
//! *gallops* into the hub's list, collapsing the scan to Θ(n·log n).
//! The asymptotic gap is the whole point of the WCO port, so the bench
//! **asserts** a ≥ 3x wall-clock margin (the observed gap is far
//! larger; 3x keeps the gate immune to scheduler noise) and fails
//! `cargo bench` — and CI's `wco` stage — deterministically if
//! cardinality ordering stops paying for itself.
//!
//! Both orders also feed the regression baseline (`wco/fixed`,
//! `wco/cardinality`) so the *absolute* cost of either strategy cannot
//! quietly regress.

use flowmotif_bench::{micro, BenchGroup};
use flowmotif_core::{catalog, ExtensionOrder, P1Driver};
use flowmotif_graph::{GraphBuilder, TimeSeriesGraph};
use flowmotif_util::rng::{RngExt, SeedableRng, StdRng};
use std::hint::black_box;

/// `n` triangles `s_i → h → t_i → s_i` through one shared hub.
fn pinwheel(n: u32, seed: u64) -> TimeSeriesGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let hub = 0u32;
    for i in 0..n {
        let s = 1 + i;
        let t = 1 + n + i;
        let base = rng.random_range(0i64..1000);
        b.add_interaction(s, hub, base, rng.random_range(1..10) as f64);
        b.add_interaction(hub, t, base + 1, rng.random_range(1..10) as f64);
        b.add_interaction(t, s, base + 2, rng.random_range(1..10) as f64);
    }
    b.build_time_series_graph()
}

fn main() {
    let mut group = BenchGroup::new("wco");
    group.measurement_time(std::time::Duration::from_secs(1));

    const SPOKES: u32 = 1500;
    let g = pinwheel(SPOKES, 11);
    let motif = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
    let path = motif.path();
    let driver = |order: ExtensionOrder| P1Driver::new(path).extension_order(order);

    // Correctness first: the two orders must emit the bit-identical
    // match stream (same matches, same sequence) — WCO only reorders
    // *exploration*, never results.
    let fixed_matches = driver(ExtensionOrder::Fixed).collect(&g);
    let wco_matches = driver(ExtensionOrder::Cardinality).collect(&g);
    assert_eq!(
        fixed_matches, wco_matches,
        "extension orders disagree on the structural match stream"
    );
    // Every triangle matches at each of its three rotations.
    assert_eq!(fixed_matches.len(), 3 * SPOKES as usize);

    micro::header();
    group.bench("fixed", || black_box(driver(ExtensionOrder::Fixed).count(&g)));
    group.bench("cardinality", || black_box(driver(ExtensionOrder::Cardinality).count(&g)));

    // The margin gate runs whenever both sides were measured (a bench
    // filter may exclude one; the unfiltered CI run always has both).
    let median = |id: &str| group.results().iter().find(|r| r.id == id).map(|r| r.median);
    if let (Some(fixed), Some(wco)) = (median("wco/fixed"), median("wco/cardinality")) {
        println!(
            "wco: {} spokes, fixed {:?} vs cardinality {:?} ({:.1}x)",
            SPOKES,
            fixed,
            wco,
            fixed.as_secs_f64() / wco.as_secs_f64().max(1e-12),
        );
        assert!(
            wco * 3 <= fixed,
            "cardinality-ordered P1 must be >= 3x faster than fixed order on the hub-skewed \
             graph (fixed {fixed:?}, cardinality {wco:?})"
        );
    }

    group.finish();
}
