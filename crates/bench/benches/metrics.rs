//! Observability overhead benches: the raw cost of the metric
//! primitives, and proof that stage tracing stays cheap enough to leave
//! compiled into the hot path.
//!
//! Two hard assertions ride along with the timings:
//!
//! * `search/traced` must stay within 5% (plus a fixed 20 µs of timer
//!   slack) of `search/untraced` on the windowed enumeration — the
//!   [`TraceSink`] hook is a handful of atomics per window, and this
//!   gate fails the bench (and therefore CI) if per-match recording
//!   ever sneaks into the instrumentation.
//! * The comparison uses each bench's *minimum* iteration, the most
//!   scheduler-noise-robust statistic, so the `--quick` CI budgets
//!   cannot flake the gate.
//!
//! The medians still feed the ordinary regression gate via
//! `FLOWMOTIF_BENCH_JSON` like every other bench.

use flowmotif_bench::{micro, BenchGroup, ExpContext};
use flowmotif_core::enumerate::{CountSink, SearchOptions};
use flowmotif_core::{enumerate_window_with_sink_scratch, AtomicTrace, SearchScratch};
use flowmotif_datasets::Dataset;
use flowmotif_graph::TimeWindow;
use flowmotif_obs::{Counter, Histogram};
use std::hint::black_box;
use std::time::Duration;

const SCALE: f64 = 0.25;

/// Primitive benches batch this many operations per iteration so the
/// per-op cost is not swamped by the harness's own `Instant` reads.
const BATCH: u64 = 1024;

fn main() {
    let ctx = ExpContext::new(SCALE, 42);
    let mut group = BenchGroup::new("metrics");
    group.measurement_time(Duration::from_secs(1));
    micro::header();

    static HIST: Histogram = Histogram::new();
    group.bench("histogram_record_x1024", || {
        for i in 0..BATCH {
            // Spread across buckets: the stride visits many magnitudes.
            HIST.record_ns(black_box((i + 1) * 977));
        }
        HIST.count()
    });

    static HITS: Counter = Counter::new();
    group.bench("counter_inc_x1024", || {
        for _ in 0..BATCH {
            HITS.inc();
        }
        HITS.get()
    });

    let d = Dataset::Facebook;
    let g = ctx.graph(d);
    let motif = ctx.motifs(d)[0].clone(); // M(3,2) at default δ/ϕ
    let (lo, hi) = g.time_span().expect("non-empty dataset");
    let mid = lo + (hi - lo) / 2;
    let window = TimeWindow::new(mid, mid + (hi - lo) / 4);

    {
        let mut scratch = SearchScratch::default();
        let (g, motif) = (&g, &motif);
        let opts = SearchOptions::default();
        group.bench("search/untraced", move || {
            let mut sink = CountSink::default();
            enumerate_window_with_sink_scratch(g, motif, window, opts, &mut sink, &mut scratch);
            sink.count
        });
    }
    {
        let trace: &'static AtomicTrace = Box::leak(Box::new(AtomicTrace::new()));
        let mut scratch = SearchScratch::default();
        let (g, motif) = (&g, &motif);
        let opts = SearchOptions::default().with_trace(Some(trace));
        group.bench("search/traced", move || {
            trace.reset();
            let mut sink = CountSink::default();
            enumerate_window_with_sink_scratch(g, motif, window, opts, &mut sink, &mut scratch);
            sink.count
        });
    }

    let min_of =
        |needle: &str| group.results().iter().find(|r| r.id.ends_with(needle)).map(|r| r.min);
    if let (Some(untraced), Some(traced)) = (min_of("search/untraced"), min_of("search/traced")) {
        let allowed = untraced.mul_f64(1.05) + Duration::from_micros(20);
        assert!(
            traced <= allowed,
            "trace overhead gate: traced search min {traced:?} exceeds untraced min \
             {untraced:?} by more than 5% + 20µs — stage tracing must stay per-window, \
             never per-match"
        );
    }
    group.finish();
}
