//! Out-of-core gate: a mapped-segment search must complete inside a
//! heap budget several times smaller than the graph, and produce
//! bit-identical results to the in-memory backend.
//!
//! The bench packs a synthetic edge list whose segment file is at least
//! **4x a heap budget**, arms the counting allocator's hard cap
//! ([`flowmotif_bench::set_heap_budget`]) around the packed search, and
//! panics if the search either allocates past the budget (the allocator
//! fails the allocation outright) or disagrees with the in-memory
//! count/stats. It also times epoch publishes over the sealed segment:
//! a publish must touch only the delta (`dirty_pairs` == pairs appended
//! since the last publish), never the resident pairs of the base — the
//! two `publish/*` entries feed the regression gate so an accidental
//! O(pairs) publish shows up as a timing cliff.

use flowmotif_bench::CountingAllocator;
use flowmotif_bench::{live_bytes, peak_bytes, reset_peak, set_heap_budget, BenchGroup};
use flowmotif_core::catalog::parse_motif;
use flowmotif_core::enumerate::count_instances;
use flowmotif_graph::io::load_time_series_graph;
use flowmotif_graph::segment::{pack_edge_list, segment_path, DEFAULT_RUN_RECORDS};
use flowmotif_graph::SegmentStore;
use flowmotif_stream::EpochEngine;
use flowmotif_util::{RngExt, SeedableRng, StdRng};
use std::fmt::Write as _;
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Interactions in the synthetic graph: 16 B of event payload each, so
/// the event section alone is ~1.2 MiB.
const EVENTS: usize = 80_000;
const NODES: u32 = 150;
/// Timestamps spread over this range keep the δ-joins sparse.
const TIME_RANGE: i64 = 2_000_000;

fn random_edge_list(rng: &mut StdRng) -> String {
    let mut body = String::with_capacity(EVENTS * 16);
    for _ in 0..EVENTS {
        let u = rng.random_range(0..NODES);
        let mut v = rng.random_range(0..NODES);
        if v == u {
            v = (v + 1) % NODES;
        }
        let t = rng.random_range(0i64..TIME_RANGE);
        let f = rng.random_range(1i64..100) as f64;
        writeln!(body, "{u} {v} {t} {f}").unwrap();
    }
    body
}

struct TempDir(std::path::PathBuf);
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn main() {
    let mut group = BenchGroup::new("out_of_core");
    group.measurement_time(std::time::Duration::from_secs(1));

    let dir =
        TempDir(std::env::temp_dir().join(format!("flowmotif_out_of_core_{}", std::process::id())));
    std::fs::create_dir_all(&dir.0).unwrap();
    let edges = dir.0.join("edges.txt");
    std::fs::write(&edges, random_edge_list(&mut StdRng::seed_from_u64(42))).unwrap();
    pack_edge_list(&edges, &dir.0, DEFAULT_RUN_RECORDS).unwrap();
    let segment_bytes = std::fs::metadata(segment_path(&dir.0)).unwrap().len();
    // The graph must dwarf the budget, or the gate proves nothing.
    let budget = segment_bytes / 4;
    println!(
        "out_of_core: segment {} KiB, heap budget {} KiB (4x smaller)",
        segment_bytes / 1024,
        budget / 1024
    );

    let motif = parse_motif("M(3,2)", 60, 50.0).unwrap();

    // In-memory reference, computed (and dropped) before any budget is
    // armed: ~2 MiB of resident events, far over the budget.
    let (want_count, want_stats) = {
        let mem = load_time_series_graph(&edges).unwrap();
        count_instances(&mem, &motif)
    };

    // The mapped store's heap footprint is its section index, not the
    // data: opening and searching must both fit the budget.
    set_heap_budget(Some(live_bytes() + budget));
    reset_peak();
    let floor = live_bytes();
    let seg = SegmentStore::open(&dir.0).unwrap();
    let (got_count, got_stats) = count_instances(&seg, &motif);
    set_heap_budget(None);
    let high_water = peak_bytes() - floor;
    assert_eq!(
        (got_count, got_stats),
        (want_count, want_stats),
        "packed search diverged from the in-memory backend"
    );
    assert!(
        high_water <= budget,
        "packed open+search grew the heap by {high_water} B, budget is {budget} B"
    );
    println!(
        "out_of_core: packed search matched {want_count} instances, \
         heap high-water {} KiB under {} KiB budget",
        high_water / 1024,
        budget / 1024
    );

    // Prefetch note: a fresh map faulted on demand by P1's random
    // access pattern (one 4 KiB fault per miss) versus a sequential
    // prefetch pass (kernel readahead, large ordered requests) followed
    // by the same search. The CLI's packed open runs `prefetch()`
    // unconditionally. Inside one process the page cache is already
    // warm from packing, so these numbers *understate* the cold-file
    // gap — the note chiefly records that the prefetch pass itself is
    // cheap relative to a single search.
    {
        use std::time::Instant;
        let on_demand = SegmentStore::open(&dir.0).unwrap();
        let t0 = Instant::now();
        black_box(count_instances(&on_demand, &motif));
        let cold_search = t0.elapsed();
        let prefetched = SegmentStore::open(&dir.0).unwrap();
        let t0 = Instant::now();
        let spanned = prefetched.prefetch();
        let prefetch_cost = t0.elapsed();
        let t0 = Instant::now();
        black_box(count_instances(&prefetched, &motif));
        let warm_search = t0.elapsed();
        println!(
            "out_of_core: first search on-demand {cold_search:?}; prefetch ({} KiB) \
             {prefetch_cost:?} + search {warm_search:?}",
            spanned / 1024
        );
    }

    // Timed: the budgeted search, re-armed on every iteration so a heap
    // regression in any layer fails the bench run itself.
    {
        let seg = &seg;
        let motif = &motif;
        group.bench("search/packed_budgeted", move || {
            set_heap_budget(Some(live_bytes() + budget));
            let out = black_box(count_instances(seg, motif));
            set_heap_budget(None);
            assert_eq!(out.0, want_count);
            out.0
        });
    }

    // Timed comparison point: the same search over the heap-resident
    // backend (no budget — it could not hold one).
    {
        let mem = load_time_series_graph(&edges).unwrap();
        let motif = motif.clone();
        group.bench("search/in_memory", move || black_box(count_instances(&mem, &motif).0));
    }

    // Epoch publish over the sealed segment: cost must track the delta,
    // not the tens of thousands of resident pairs. Each iteration appends a small batch
    // and publishes; `dirty_pairs` proves only the delta was touched.
    for delta in [16usize, 256] {
        let engine = EpochEngine::open(&dir.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7 + delta as u64);
        let mut t = TIME_RANGE;
        group.bench(format!("publish/delta{delta}"), move || {
            for _ in 0..delta {
                let u = rng.random_range(0..NODES);
                let v = (u + 1 + rng.random_range(0..NODES - 1)) % NODES;
                t += 1;
                engine.append(u, v, t, 1.0).unwrap();
            }
            let epoch = engine.publish();
            let report = engine.publish_report();
            assert!(
                report.dirty_pairs <= delta,
                "publish touched {} pairs for a {delta}-event delta",
                report.dirty_pairs
            );
            epoch
        });
    }

    group.finish();
}
