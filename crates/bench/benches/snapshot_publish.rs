//! Snapshot publish cost: with copy-on-write series sharing, publishing
//! after touching a fixed number of pairs must cost roughly the same
//! whether the resident graph holds 40k or 400k interactions — publish
//! scales with the *dirty* set, not the resident size. The deep-copy
//! benches show what the pre-COW publish (a full per-pair series clone)
//! would pay at each size, which *does* scale with residency.

use flowmotif_bench::{micro, BenchGroup};
use flowmotif_graph::InteractionSeries;
use flowmotif_stream::SnapshotEngine;
use std::hint::black_box;

/// Distinct connected pairs in the resident graph (kept constant so the
/// per-publish O(pairs) floor is identical across sizes).
const PAIRS: u32 = 4_000;
/// Pairs touched between consecutive publishes.
const DIRTY: u32 = 64;

/// An engine preloaded with `resident` in-order interactions spread
/// round-robin over [`PAIRS`] pairs, published once.
fn engine_with(resident: usize) -> SnapshotEngine {
    let engine = SnapshotEngine::new();
    engine
        .ingest((0..resident as i64).map(|i| ((i % PAIRS as i64) as u32, PAIRS + 1, i, 1.0)))
        .unwrap();
    engine.publish();
    engine
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: [usize; 2] = if quick { [40_000, 400_000] } else { [100_000, 1_000_000] };

    let mut group = BenchGroup::new("snapshot_publish");
    group.measurement_time(std::time::Duration::from_secs(2));
    micro::header();

    for resident in sizes {
        let engine = engine_with(resident);
        let mut t = resident as i64;
        group.bench(format!("publish_dirty{DIRTY}_resident{resident}"), || {
            // Touch DIRTY distinct pairs, then publish. The appends
            // themselves pay the copy-on-write detach for exactly those
            // pairs; the publish is the O(pairs) structural clone + swap.
            for p in 0..DIRTY {
                engine.append(p * (PAIRS / DIRTY), PAIRS + 1, t, 1.0).unwrap();
                t += 1;
            }
            let epoch = black_box(engine.publish());
            // Keep the bench honest: each measured publish must have had
            // exactly DIRTY dirty pairs. (Inside the closure so a
            // positional bench filter that skips this bench cannot trip
            // it on an unpublished engine.)
            assert_eq!(engine.publish_report().dirty_pairs, DIRTY as usize);
            epoch
        });
    }

    // The pre-COW cost model for contrast: deep-copying every resident
    // series (what each publish used to do under the writer lock).
    for resident in sizes {
        let engine = engine_with(resident);
        let snap = engine.snapshot();
        group.bench(format!("deep_copy_resident{resident}"), || {
            let copied: Vec<InteractionSeries> = snap
                .graph()
                .all_series()
                .iter()
                .map(|s| InteractionSeries::from_sorted_events(s.events().to_vec()))
                .collect();
            black_box(copied.len())
        });
    }

    let r = group.results();
    if let [small, large, deep_small, deep_large] = r {
        println!(
            "# publish {}k->{}k resident: {:.2}x (flat = O(dirty)); deep copy: {:.2}x (O(resident))",
            (sizes[0] / 1000),
            (sizes[1] / 1000),
            large.median.as_secs_f64() / small.median.as_secs_f64(),
            deep_large.median.as_secs_f64() / deep_small.median.as_secs_f64(),
        );
    }
    group.finish();
}
