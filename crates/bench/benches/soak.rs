//! Serve v2 soak: the two capacity claims of the event-loop front-end,
//! asserted rather than just measured.
//!
//! * **Idle-connection capacity** — the v1 server was
//!   thread-per-connection with a bounded pool: at most
//!   `workers + backlog` connections could even be open, every one of
//!   them pinning a thread. The event loop multiplexes connections over
//!   `poll(2)`, so the same worker configuration must now hold ≥ 10x
//!   that many *simultaneously open, all answering* connections, at a
//!   cost of one fd and a pair of buffers each.
//! * **Cache-hit speedup** — a repeated `count` answered by the
//!   epoch-keyed result cache never leaves the event loop, so it must
//!   beat the identical cold query (cache disabled) by ≥ 10x end-to-end
//!   over the wire, loopback round-trip included.
//!
//! Ingest goes through [`Client::send_batch`] — the pipelined path —
//! so this bench also soaks many-requests-in-flight framing under load.

use flowmotif_bench::{micro, BenchGroup};
use flowmotif_serve::{Client, Server, ServerConfig};
use flowmotif_stream::SnapshotEngine;
use flowmotif_util::rng::{RngExt, SeedableRng, StdRng};
use std::hint::black_box;
use std::sync::Arc;

/// Interactions ingested into each server before the query benches.
const INTERACTIONS: usize = 10_000;

/// Node universe: small enough that the 2-hop structural match count is
/// large, making the cold `count` genuinely engine-bound.
const NODES: u32 = 100;

/// Idle connections held open at once. The v1 architecture capped out
/// at `workers + backlog` (10 with the config below); the assertion
/// demands 10x that.
const IDLE_CONNS: usize = 120;

fn config() -> ServerConfig {
    ServerConfig { workers: 2, backlog: 8, ..ServerConfig::default() }
}

/// Starts a server over a fresh in-memory engine and pipelines the
/// deterministic interaction stream into it in batched bursts.
fn populated_server(cache_entries: usize, interactions: usize) -> Server {
    let server = Server::start(
        Arc::new(SnapshotEngine::new()),
        ServerConfig { cache_entries, ..config() },
        "127.0.0.1:0",
    )
    .unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let mut sent = 0usize;
    let mut t = 0i64;
    while sent < interactions {
        let burst = 500.min(interactions - sent);
        let lines: Vec<String> = (0..burst)
            .map(|_| {
                t += 1;
                let u = rng.random_range(0..NODES);
                let mut v = rng.random_range(0..NODES);
                while v == u {
                    v = rng.random_range(0..NODES);
                }
                format!("add {u} {v} {t} {}", rng.random_range(1u32..100))
            })
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        for reply in c.send_batch(&refs).unwrap() {
            assert!(reply.is_ok(), "pipelined ingest: {}", reply.status);
        }
        sent += burst;
    }
    let reply = c.send("publish").unwrap();
    assert!(reply.is_ok(), "{}", reply.status);
    server
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let interactions = if quick { INTERACTIONS / 5 } else { INTERACTIONS };
    // Quick runs trim the safety margin, never the asserted 10x floor.
    let idle_conns = if quick { 100 } else { IDLE_CONNS };

    let mut group = BenchGroup::new("soak");
    group.measurement_time(std::time::Duration::from_secs(2));
    micro::header();

    // ---- idle-connection capacity ------------------------------------
    // Every connection stays open for the whole sweep; every one must be
    // live (served, not parked in an accept queue).
    let cfg = config();
    let v1_cap = cfg.workers + cfg.backlog;
    let server = Server::start(Arc::new(SnapshotEngine::new()), cfg, "127.0.0.1:0").unwrap();
    let mut idle: Vec<Client> = (0..idle_conns)
        .map(|i| {
            Client::connect(server.local_addr())
                .unwrap_or_else(|e| panic!("connection {i} refused: {e}"))
        })
        .collect();
    for (i, c) in idle.iter_mut().enumerate() {
        let reply = c.send("ping").unwrap_or_else(|e| panic!("connection {i} dead: {e}"));
        assert_eq!(reply.status, "OK pong", "connection {i}");
    }
    println!("# {idle_conns} connections open and answering on a {v1_cap}-connection v1 config");
    assert!(
        idle_conns >= 10 * v1_cap,
        "event loop must hold >= 10x the thread-per-connection capacity \
         ({idle_conns} open vs v1 cap {v1_cap})"
    );
    // A connection in the middle of the set still gets full service
    // while every other connection stays open.
    let mid = idle.len() / 2;
    let replies = idle[mid].send_batch(&["ping", "session", "ping"]).unwrap();
    assert!(replies.iter().all(|r| r.is_ok()));
    drop(idle);
    server.shutdown();

    // ---- cache-hit speedup -------------------------------------------
    // Same data, same query, two servers: one with the result cache off
    // (every count runs on the engine) and one with it on (every count
    // after the first is answered from the event loop).
    let cold_server = populated_server(0, interactions);
    let hot_server = populated_server(1024, interactions);
    let mut cold = Client::connect(cold_server.local_addr()).unwrap();
    let mut hot = Client::connect(hot_server.local_addr()).unwrap();
    let q = "count M(3,2) 30 0";
    let want = cold.send(q).unwrap();
    assert!(want.is_ok(), "{}", want.status);
    let warm = hot.send(q).unwrap();
    assert_eq!(warm.field("count"), want.field("count"), "engines diverged");

    group.bench(format!("cold count ({interactions} interactions)"), || {
        let reply = cold.send(q).unwrap();
        assert!(reply.is_ok(), "{}", reply.status);
        black_box(reply.data.len())
    });
    group.bench(format!("cache-hit count ({interactions} interactions)"), || {
        let reply = hot.send(q).unwrap();
        assert!(reply.is_ok(), "{}", reply.status);
        black_box(reply.data.len())
    });

    // The hit path really was the hit path.
    let metrics = hot.send("metrics").unwrap();
    let hits: f64 = metrics
        .data
        .iter()
        .find_map(|l| l.strip_prefix("flowmotif_serve_cache_hits_total").map(str::trim))
        .and_then(|v| v.parse().ok())
        .expect("cache_hits_total missing from metrics");
    assert!(hits >= 1.0, "no cache hits recorded: {hits}");

    let median = |needle: &str| {
        group
            .results()
            .iter()
            .find(|r| r.id.contains(needle))
            .map(|r| r.median.as_nanos())
            .expect("both benches ran")
    };
    let (cold_ns, hit_ns) = (median("cold "), median("cache-hit "));
    println!(
        "soak: cold {cold_ns} ns/count vs cache hit {hit_ns} ns/count ({:.1}x)",
        cold_ns as f64 / hit_ns.max(1) as f64,
    );
    assert!(
        cold_ns >= hit_ns * 10,
        "a cache-hit count must be >= 10x faster than the cold query end-to-end \
         (cold {cold_ns} ns, hit {hit_ns} ns)",
    );

    cold_server.shutdown();
    hot_server.shutdown();
    group.finish();
}
