//! Bounded query on a *sparse* window: each origin is active only in its
//! own slice of the timeline, so a fixed-length window always covers the
//! same handful of active origins no matter how many pairs the graph
//! holds. With the active-time origin index, query cost must stay flat
//! as the total pair count grows 8×; the unindexed baseline sweeps every
//! origin (and probes every pair's window activity), so it scales with
//! the graph.

use flowmotif_bench::{micro, BenchGroup};
use flowmotif_core::{catalog, enumerate_window_with_sink, CountSink, SearchOptions};
use flowmotif_graph::{GraphBuilder, TimeSeriesGraph, TimeWindow};
use std::hint::black_box;

/// Time units each origin's activity slice occupies.
const SLICE: i64 = 10;
/// Window length: covers ~5 origin slices wherever it lands.
const WINDOW: i64 = 50;

/// A chain graph where origin `i` connects to `i + 1` with events only
/// inside `[i*SLICE, i*SLICE + SLICE - 1]` — activity is a moving slice,
/// so any fixed window is sparse.
fn sliced_chain(origins: u32) -> TimeSeriesGraph {
    let mut b = GraphBuilder::new();
    for i in 0..origins {
        let t0 = i as i64 * SLICE;
        for k in 0..4i64 {
            b.add_interaction(i, i + 1, t0 + k * 2, 1.0 + k as f64);
        }
    }
    b.build_time_series_graph()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: [u32; 2] = if quick { [4_000, 32_000] } else { [20_000, 160_000] };
    let motif = catalog::by_name("M(3,2)", 20, 0.0).unwrap();

    let mut group = BenchGroup::new("sparse_window");
    group.measurement_time(std::time::Duration::from_secs(2));
    micro::header();

    for origins in sizes {
        let g = sliced_chain(origins);
        // Slide the window deterministically so no single cache-hot spot
        // is measured.
        for (label, use_index) in [("indexed", true), ("unindexed", false)] {
            let opts = SearchOptions::default().with_use_active_index(use_index);
            let mut at = 0i64;
            let span = origins as i64 * SLICE;
            group.bench(format!("bounded_query_{label}_pairs{origins}"), || {
                at = (at + 997 * SLICE) % (span - WINDOW);
                let w = TimeWindow::new(at, at + WINDOW);
                let mut sink = CountSink::default();
                enumerate_window_with_sink(&g, &motif, w, opts, &mut sink);
                black_box(sink.count)
            });
        }
    }

    let r = group.results();
    if let [idx_small, raw_small, idx_large, raw_large] = r {
        println!(
            "# pairs {}->{}: indexed {:.2}x (flat = window-local), unindexed {:.2}x (O(pairs)); \
             index speedup at {} pairs: {:.1}x",
            sizes[0],
            sizes[1],
            idx_large.median.as_secs_f64() / idx_small.median.as_secs_f64(),
            raw_large.median.as_secs_f64() / raw_small.median.as_secs_f64(),
            sizes[1],
            raw_large.median.as_secs_f64() / idx_large.median.as_secs_f64(),
        );
    }
    group.finish();
}
