//! The allocation gate: proves the steady-state P1→P2 pipeline is
//! allocation-free.
//!
//! The whole bench binary runs under a counting global allocator. Each
//! gated benchmark warms its [`SearchScratch`] (and, for top-k, the
//! sink's recycle pool) with one untimed run, then **panics** if any
//! subsequent iteration performs a single heap allocation — so `cargo
//! bench` (and therefore the CI bench-regression stage) fails the moment
//! a per-match allocation sneaks back into the hot path. The measured
//! wall times feed the ordinary regression gate via
//! `FLOWMOTIF_BENCH_JSON` like every other bench.
//!
//! Both the unbounded and the window-bounded (active-index) paths are
//! gated, for `enumerate` (counting sink) and `top_k`.

use flowmotif_bench::{allocations, micro, BenchGroup, CountingAllocator, ExpContext};
use flowmotif_core::enumerate::{CountSink, SearchOptions};
use flowmotif_core::topk::TopKSink;
use flowmotif_core::{
    count_instances, enumerate_window_with_sink_scratch, enumerate_with_sink_scratch, AtomicTrace,
    SearchScratch,
};
use flowmotif_datasets::Dataset;
use flowmotif_graph::TimeWindow;
use flowmotif_stream::StandingQueries;
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const SCALE: f64 = 0.25;

/// Runs `f` once as warm-up, then registers it as a benchmark that
/// asserts zero allocations on every timed (and warm-up) iteration.
fn gate<T>(group: &mut BenchGroup, id: &str, mut f: impl FnMut() -> T) {
    f(); // warm the scratch capacities outside the gate
    let mut checked = 0u64;
    group.bench(id.to_string(), move || {
        let before = allocations();
        let out = black_box(f());
        let after = allocations();
        checked += 1;
        assert_eq!(
            after - before,
            0,
            "alloc gate: `{id}` allocated {} time(s) on post-warm-up iteration {checked} — \
             the steady-state search path must not touch the heap",
            after - before,
        );
        out
    });
}

fn main() {
    let ctx = ExpContext::new(SCALE, 42);
    let mut group = BenchGroup::new("alloc_profile");
    group.measurement_time(std::time::Duration::from_secs(1));
    let d = Dataset::Facebook;
    let g = ctx.graph(d);
    let motif = ctx.motifs(d)[0].clone(); // M(3,2) at default δ/ϕ
    let (lo, hi) = g.time_span().expect("non-empty dataset");
    let mid = lo + (hi - lo) / 2;
    let window = TimeWindow::new(mid, mid + (hi - lo) / 4);
    let opts = SearchOptions::default();

    // Context for the gate: matches per pass (printed, not asserted).
    let (_, stats) = count_instances(&g, &motif);
    println!(
        "alloc_profile: {} structural matches / {} instances per unbounded pass",
        stats.structural_matches, stats.instances_emitted
    );
    micro::header();

    {
        let mut scratch = SearchScratch::default();
        let (g, motif) = (&g, &motif);
        gate(&mut group, "enumerate/unbounded", move || {
            let mut sink = CountSink::default();
            enumerate_with_sink_scratch(g, motif, opts, &mut sink, &mut scratch);
            sink.count
        });
    }
    {
        let mut scratch = SearchScratch::default();
        let (g, motif) = (&g, &motif);
        gate(&mut group, "enumerate/windowed_indexed", move || {
            let mut sink = CountSink::default();
            enumerate_window_with_sink_scratch(g, motif, window, opts, &mut sink, &mut scratch);
            sink.count
        });
    }
    {
        // Stage tracing records into a pre-leaked `AtomicTrace` — pure
        // atomics, so even the *traced* search path must stay off the
        // heap (the untraced path is already covered by the gates
        // above, which run with `SearchOptions::default()`, i.e. the
        // instrumented code with the sink compiled out to `None`).
        let trace: &'static AtomicTrace = Box::leak(Box::new(AtomicTrace::new()));
        let traced = opts.with_trace(Some(trace));
        let mut scratch = SearchScratch::default();
        let (g, motif) = (&g, &motif);
        gate(&mut group, "enumerate/windowed_traced", move || {
            trace.reset();
            let mut sink = CountSink::default();
            enumerate_window_with_sink_scratch(g, motif, window, traced, &mut sink, &mut scratch);
            sink.count
        });
    }
    {
        // Standing-query quiet path: an append that changes no standing
        // result set must not touch the heap — the per-append hot loop
        // behind the serve `subscribe` verb. Re-delivering the last
        // event of a pair the graph already contains is exactly that:
        // the anchored rescan runs, finds every instance already
        // stored, and emits nothing.
        let mut subs = StandingQueries::new();
        let (g, motif) = (&g, &motif);
        let id = subs.subscribe(g, motif.clone(), None);
        let (u, v) = g.pair(0);
        let t = g.series(0).last_time().expect("pair 0 has events");
        let mut out = Vec::with_capacity(4);
        gate(&mut group, "delta/quiet_append", move || {
            subs.on_append(g, u, v, t, &mut out);
            assert!(out.is_empty(), "the re-delivered event must be quiet");
            subs.get(id).unwrap().num_instances()
        });
    }
    {
        // Top-k steady state: `reset` parks the previous search's entries
        // in the sink's recycle pool, so every accept after the warm-up
        // run refills a pooled entry in place.
        let mut scratch = SearchScratch::default();
        let mut sink = TopKSink::new(10);
        let (g, motif) = (&g, &motif);
        gate(&mut group, "top_k/unbounded_k10", move || {
            sink.reset();
            enumerate_with_sink_scratch(g, motif, opts, &mut sink, &mut scratch);
            sink.kth_flow()
        });
    }
    group.finish();
}
