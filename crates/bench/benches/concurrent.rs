//! Concurrent readers: snapshot isolation vs a mutex-serialised engine.
//!
//! The serving layer's claim is that queries scale with reader threads
//! because they run on immutable `Arc`-swapped snapshots instead of
//! taking the engine lock. This bench measures a fixed batch of
//! window-bounded count queries executed by N reader threads
//!
//! * against [`SnapshotEngine`] snapshots (lock-free after acquisition),
//! * against a `Mutex<QueryEngine>` (every query serialised, the
//!   pre-snapshot architecture),
//!
//! and, separately, the same with a live writer appending throughout —
//! the snapshot path must keep the writer unblocked, the mutex path
//! stalls it behind every in-flight query.

use flowmotif_bench::{micro, BenchGroup};
use flowmotif_core::catalog;
use flowmotif_graph::TimeWindow;
use flowmotif_stream::{QueryEngine, SnapshotEngine};
use flowmotif_util::rng::{RngExt, SeedableRng, StdRng};
use std::hint::black_box;
use std::sync::{Arc, Mutex};

const INTERACTIONS: usize = 40_000;
const NODES: u32 = 4_000;
const READERS: usize = 4;
/// Queries per reader thread per measured iteration.
const QUERIES: usize = 8;
const QUERY_SPAN: i64 = 1_500;
/// Appends the live writer performs per measured iteration.
const WRITER_BATCH: usize = 500;

fn edges(n: usize, t0: i64, seed: u64) -> Vec<(u32, u32, i64, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let u = rng.random_range(0..NODES);
            let mut v = rng.random_range(0..NODES);
            while v == u {
                v = rng.random_range(0..NODES);
            }
            (u, v, t0 + i as i64, rng.random_range(1u32..100) as f64)
        })
        .collect()
}

/// N threads, each issuing `QUERIES` counts through `query_fn`, with
/// deterministic distinct look-back windows below the watermark `top`.
fn fan_out<F>(readers: usize, top: i64, query_fn: F) -> u64
where
    F: Fn(TimeWindow) -> u64 + Sync,
{
    std::thread::scope(|scope| {
        let query_fn = &query_fn;
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                scope.spawn(move || {
                    let mut total = 0u64;
                    for q in 0..QUERIES {
                        let hi = top - 1 - ((r * QUERIES + q) as i64 * 37);
                        total += query_fn(TimeWindow::new(hi - QUERY_SPAN, hi));
                    }
                    total
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { INTERACTIONS / 10 } else { INTERACTIONS };
    let motif = catalog::by_name("M(3,2)", 30, 50.0).unwrap();
    let motif = &motif;

    // Two identically loaded engines.
    let snapshot_engine = Arc::new(SnapshotEngine::new());
    snapshot_engine.ingest(edges(n, 0, 42)).unwrap();
    snapshot_engine.publish();
    let mutex_engine = Arc::new(Mutex::new(QueryEngine::new()));
    mutex_engine.lock().unwrap().ingest(edges(n, 0, 42)).unwrap();

    let mut group = BenchGroup::new("concurrent");
    group.measurement_time(std::time::Duration::from_secs(2));
    micro::header();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("# {n} resident interactions, {READERS} readers x {QUERIES} queries/iter");
    println!(
        "# {cores} hardware threads — reader scaling needs >1; on 1 the snapshot \
         path only demonstrates writer isolation, not throughput"
    );

    group.bench(format!("snapshot/{READERS}-readers"), || {
        let engine = Arc::clone(&snapshot_engine);
        fan_out(READERS, n as i64, move |w| engine.snapshot().count(motif, Some(w)).0)
    });
    group.bench(format!("mutex/{READERS}-readers"), || {
        let engine = Arc::clone(&mutex_engine);
        fan_out(READERS, n as i64, move |w| engine.lock().unwrap().count(motif, Some(w)).0)
    });

    // The same fan-out with a writer ingesting concurrently: the metric
    // is combined wall time per iteration — the mutex path serialises
    // the writer behind the readers, the snapshot path does not.
    let mut writer_t = n as i64;
    group.bench(format!("snapshot/{READERS}-readers+writer"), || {
        let engine = Arc::clone(&snapshot_engine);
        let batch = edges(WRITER_BATCH, writer_t, writer_t as u64);
        writer_t += WRITER_BATCH as i64;
        std::thread::scope(|scope| {
            let writer_engine = Arc::clone(&engine);
            let writer = scope.spawn(move || {
                writer_engine.ingest(batch).unwrap();
                writer_engine.publish();
            });
            let total = fan_out(READERS, n as i64, |w| engine.snapshot().count(motif, Some(w)).0);
            writer.join().unwrap();
            black_box(total)
        })
    });
    let mut writer_t = n as i64;
    group.bench(format!("mutex/{READERS}-readers+writer"), || {
        let engine = Arc::clone(&mutex_engine);
        let batch = edges(WRITER_BATCH, writer_t, writer_t as u64);
        writer_t += WRITER_BATCH as i64;
        std::thread::scope(|scope| {
            let writer_engine = Arc::clone(&engine);
            let writer = scope.spawn(move || {
                writer_engine.lock().unwrap().ingest(batch).unwrap();
            });
            let total =
                fan_out(READERS, n as i64, |w| engine.lock().unwrap().count(motif, Some(w)).0);
            writer.join().unwrap();
            black_box(total)
        })
    });

    group.finish();
}
