//! Criterion counterpart of experiment F8 (paper Fig. 8): two-phase
//! enumeration vs the join baseline, per dataset and motif.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowmotif_baseline::join_enumerate;
use flowmotif_bench::ExpContext;
use flowmotif_core::count_instances;
use flowmotif_datasets::Dataset;
use std::hint::black_box;

const SCALE: f64 = 0.25;
const MOTIFS: [&str; 4] = ["M(3,2)", "M(3,3)", "M(4,4)A", "M(5,5)A"];

fn bench(c: &mut Criterion) {
    let ctx = ExpContext::new(SCALE, 42);
    let mut group = c.benchmark_group("fig8_two_phase_vs_join");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for d in Dataset::ALL {
        let g = ctx.graph(d);
        for m in ctx
            .motifs(d)
            .into_iter()
            .filter(|m| MOTIFS.contains(&m.name().as_str()))
        {
            group.bench_with_input(
                BenchmarkId::new(format!("two_phase/{}", d.name()), m.name()),
                &m,
                |b, m| b.iter(|| black_box(count_instances(&g, m))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("join/{}", d.name()), m.name()),
                &m,
                |b, m| b.iter(|| black_box(join_enumerate(&g, m))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
