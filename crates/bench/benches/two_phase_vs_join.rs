//! Micro-bench counterpart of experiment F8 (paper Fig. 8): two-phase
//! enumeration vs the join baseline, per dataset and motif.

use flowmotif_baseline::join_enumerate;
use flowmotif_bench::{micro, BenchGroup, ExpContext};
use flowmotif_core::count_instances;
use flowmotif_datasets::Dataset;
use std::hint::black_box;

const SCALE: f64 = 0.25;
const MOTIFS: [&str; 4] = ["M(3,2)", "M(3,3)", "M(4,4)A", "M(5,5)A"];

fn main() {
    let ctx = ExpContext::new(SCALE, 42);
    let mut group = BenchGroup::new("fig8_two_phase_vs_join");
    group.measurement_time(std::time::Duration::from_secs(2));
    micro::header();
    for d in Dataset::ALL {
        let g = ctx.graph(d);
        for m in ctx.motifs(d).into_iter().filter(|m| MOTIFS.contains(&m.name().as_str())) {
            group.bench(format!("two_phase/{}/{}", d.name(), m.name()), || {
                black_box(count_instances(&g, &m))
            });
            group.bench(format!("join/{}/{}", d.name(), m.name()), || {
                black_box(join_enumerate(&g, &m))
            });
        }
    }
    group.finish();
}
