//! Streaming ingestion vs full rebuild: the cost of absorbing a batch of
//! appends *and* answering a window-bounded motif query, for (a) the
//! resident `QueryEngine` and (b) a from-scratch `GraphBuilder` rebuild of
//! the surviving edge log. At the default 100k-interaction steady state
//! the resident engine should win by a wide margin — the rebuild pays
//! O(window) per query, the engine O(batch) amortized.

use flowmotif_bench::{micro, BenchGroup};
use flowmotif_core::{catalog, count_instances_in_window};
use flowmotif_graph::{GraphBuilder, TimeWindow};
use flowmotif_stream::{QueryEngine, SlidingWindow};
use flowmotif_util::rng::{RngExt, SeedableRng, StdRng};
use std::collections::VecDeque;
use std::hint::black_box;

/// Steady-state window size (interactions) — and, since the stream emits
/// one interaction per time unit, also the retention horizon.
const WINDOW: usize = 100_000;
/// Appends absorbed per measured iteration.
const BATCH: usize = 1_000;
/// Queries look back over this many time units.
const QUERY_SPAN: i64 = 2_000;
const NODES: u32 = 200_000;

/// Deterministic open-ended interaction stream: one event per time unit,
/// ~6% delivered out of order by up to 50 time units.
struct Stream {
    rng: StdRng,
    t: i64,
}

impl Stream {
    fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), t: 0 }
    }

    fn next_batch(&mut self, n: usize) -> Vec<(u32, u32, i64, f64)> {
        (0..n)
            .map(|_| {
                self.t += 1;
                let u = self.rng.random_range(0..NODES);
                let mut v = self.rng.random_range(0..NODES);
                while v == u {
                    v = self.rng.random_range(0..NODES);
                }
                let t = if self.rng.random_range(0u32..16) == 0 {
                    self.t - self.rng.random_range(1i64..50)
                } else {
                    self.t
                };
                (u, v, t, self.rng.random_range(1u32..100) as f64)
            })
            .collect()
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let window = if quick { WINDOW / 10 } else { WINDOW };
    let horizon = window as i64;
    let motif = catalog::by_name("M(3,2)", 30, 50.0).unwrap();

    let mut group = BenchGroup::new("streaming");
    group.measurement_time(std::time::Duration::from_secs(2));
    micro::header();

    // Resident engine at steady state.
    let mut stream = Stream::new(42);
    let mut engine = QueryEngine::new().with_window(SlidingWindow::new(horizon));
    engine.ingest(stream.next_batch(window)).unwrap();
    println!(
        "# steady state: {} resident interactions, horizon {horizon}",
        engine.stats().interactions
    );
    group.bench(format!("engine/append{BATCH}+query (window {window})"), || {
        engine.ingest(stream.next_batch(BATCH)).unwrap();
        let wm = engine.stats().watermark.unwrap();
        black_box(engine.count(&motif, Some(TimeWindow::new(wm - QUERY_SPAN, wm))))
    });

    // Ingestion alone, for the per-append figure.
    let mut stream = Stream::new(43);
    let mut ingest_only = QueryEngine::new().with_window(SlidingWindow::new(horizon));
    ingest_only.ingest(stream.next_batch(window)).unwrap();
    group.bench(format!("engine/append{BATCH} only"), || {
        black_box(ingest_only.ingest(stream.next_batch(BATCH)).unwrap())
    });

    // The no-engine alternative: keep the surviving edge log, rebuild the
    // graph from scratch for every batch+query round.
    let mut stream = Stream::new(42);
    let mut log: VecDeque<(u32, u32, i64, f64)> = VecDeque::new();
    log.extend(stream.next_batch(window));
    group.bench(format!("rebuild/append{BATCH}+query (window {window})"), || {
        log.extend(stream.next_batch(BATCH));
        let wm = log.iter().map(|&(_, _, t, _)| t).max().unwrap();
        while log.front().is_some_and(|&(_, _, t, _)| t < wm - horizon) {
            log.pop_front();
        }
        let mut b = GraphBuilder::new();
        b.extend_interactions(log.iter().copied());
        let g = b.build_time_series_graph();
        black_box(count_instances_in_window(&g, &motif, TimeWindow::new(wm - QUERY_SPAN, wm)))
    });

    if let [engine_r, _, rebuild_r] = group.results() {
        let speedup = rebuild_r.mean.as_secs_f64() / engine_r.mean.as_secs_f64();
        println!("# resident engine speedup over full rebuild: {speedup:.1}x");
    }
    group.finish();
}
