//! Micro-bench counterpart of experiment F9 (paper Fig. 9): enumeration
//! cost as the duration constraint δ grows.

use flowmotif_bench::{micro, BenchGroup, ExpContext};
use flowmotif_core::{catalog, count_instances};
use flowmotif_datasets::Dataset;
use std::hint::black_box;

const SCALE: f64 = 0.25;

fn main() {
    let ctx = ExpContext::new(SCALE, 42);
    let mut group = BenchGroup::new("fig9_delta_sweep");
    group.measurement_time(std::time::Duration::from_secs(2));
    micro::header();
    for d in [Dataset::Bitcoin, Dataset::Passenger] {
        let g = ctx.graph(d);
        for delta in d.delta_sweep() {
            let motif = catalog::by_name("M(3,2)", delta, d.default_phi()).unwrap();
            group.bench(format!("{}/delta={delta}", d.name()), || {
                black_box(count_instances(&g, &motif))
            });
        }
    }
    group.finish();
}
