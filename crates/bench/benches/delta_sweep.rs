//! Criterion counterpart of experiment F9 (paper Fig. 9): enumeration
//! cost as the duration constraint δ grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowmotif_bench::ExpContext;
use flowmotif_core::{catalog, count_instances};
use flowmotif_datasets::Dataset;
use std::hint::black_box;

const SCALE: f64 = 0.25;

fn bench(c: &mut Criterion) {
    let ctx = ExpContext::new(SCALE, 42);
    let mut group = c.benchmark_group("fig9_delta_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for d in [Dataset::Bitcoin, Dataset::Passenger] {
        let g = ctx.graph(d);
        for delta in d.delta_sweep() {
            let motif = catalog::by_name("M(3,2)", delta, d.default_phi()).unwrap();
            group.bench_with_input(
                BenchmarkId::new(d.name(), format!("delta={delta}")),
                &motif,
                |b, m| b.iter(|| black_box(count_instances(&g, m))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
