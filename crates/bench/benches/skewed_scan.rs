//! Hub-skew benchmark for the parallel scheduler.
//!
//! The graph is deliberately skewed: one hub origin owns the vast
//! majority of the structural matches, plus a sea of light origins. The
//! legacy scheduler (origin blocks only, `hub_degree = u32::MAX`) puts
//! the whole hub into one task, so one worker serialises the scan; the
//! work-stealing scheduler splits the hub into pair-level chunks.
//!
//! Two kinds of evidence are produced:
//!
//! * **wall times** for the legacy and splitting schedulers at 1 and 8
//!   threads (recorded into the regression baseline like any bench);
//! * a **deterministic scheduler model** ([`scheduler_makespan`]): greedy
//!   list-scheduling of the real per-task match counts at 8 workers.
//!   The achievable speedup of a schedule is `total / makespan`, which is
//!   machine-independent — CI containers pinned to one core cannot
//!   demonstrate wall-clock scaling, but the model proves the schedule
//!   itself. The bench **asserts** that hub splitting makes the modelled
//!   8-thread scan ≥ 2x faster than the legacy block schedule, so a
//!   balance regression fails `cargo bench` (and CI) deterministically.

use flowmotif_bench::{micro, BenchGroup};
use flowmotif_core::parallel::{par_count_instances_with, scheduler_makespan, ParOptions};
use flowmotif_core::{catalog, count_instances, SearchOptions};
use flowmotif_graph::{GraphBuilder, TimeSeriesGraph};
use flowmotif_util::rng::{RngExt, SeedableRng, StdRng};
use std::hint::black_box;

/// One hub with `hub_deg` out-neighbours (each of which has a few
/// onward edges, so every hub pair roots many M(3,2)/M(3,3) walks),
/// plus `light` low-degree background origins.
fn hub_heavy_graph(hub_deg: u32, light: u32, seed: u64) -> TimeSeriesGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let hub = 0u32;
    let first_target = 1u32;
    for i in 0..hub_deg {
        let v = first_target + i;
        b.add_interaction(hub, v, rng.random_range(0..5000), rng.random_range(1..10) as f64);
        // Each hub target fans out to a handful of shared sinks, giving
        // the hub a quadratic share of the structural matches.
        for _ in 0..3 {
            let w = first_target + hub_deg + rng.random_range(0..64u32);
            b.add_interaction(v, w, rng.random_range(0..5000), rng.random_range(1..10) as f64);
        }
    }
    let base = first_target + hub_deg + 64;
    for i in 0..light {
        let u = base + i;
        let v = base + (i + 1) % light;
        b.add_interaction(u, v, rng.random_range(0..5000), rng.random_range(1..10) as f64);
    }
    b.build_time_series_graph()
}

fn main() {
    let mut group = BenchGroup::new("skewed_scan");
    group.measurement_time(std::time::Duration::from_secs(1));
    let g = hub_heavy_graph(1500, 2000, 7);
    let motif = catalog::by_name("M(3,2)", 400, 0.0).unwrap();
    let opts = SearchOptions::default();
    let legacy = |threads| ParOptions { threads, hub_degree: u32::MAX, ..ParOptions::default() };
    let stealing = |threads| ParOptions { threads, ..ParOptions::default() };

    // The deterministic scheduler model at 8 workers: the legacy
    // schedule is hub-bound (its makespan ≈ the hub's whole match
    // count); the splitting schedule is balanced.
    let blocks = scheduler_makespan(&g, &motif, legacy(8));
    let steal = scheduler_makespan(&g, &motif, stealing(8));
    assert_eq!(blocks.total, steal.total, "schedulers must cover the same match set");
    let speedup_blocks = blocks.total as f64 / blocks.makespan.max(1) as f64;
    let speedup_steal = steal.total as f64 / steal.makespan.max(1) as f64;
    println!(
        "skewed_scan: {} matches; legacy blocks: {} tasks, max task {}, 8-thread speedup bound \
         {speedup_blocks:.2}x; hub splitting: {} tasks, max task {}, 8-thread speedup bound \
         {speedup_steal:.2}x ({:.2}x better)",
        blocks.total,
        blocks.tasks,
        blocks.max_task,
        steal.tasks,
        steal.max_task,
        blocks.makespan as f64 / steal.makespan.max(1) as f64,
    );
    assert!(
        steal.makespan * 2 <= blocks.makespan,
        "hub splitting must make the modelled 8-thread scan at least 2x faster than the legacy \
         block schedule (legacy makespan {}, splitting makespan {})",
        blocks.makespan,
        steal.makespan,
    );

    // Sanity: both schedulers count exactly what the sequential scan counts.
    let (seq, _) = count_instances(&g, &motif);
    for par in [legacy(8), stealing(8)] {
        let (n, _) = par_count_instances_with(&g, &motif, opts, par);
        assert_eq!(n, seq, "{par:?}");
    }

    micro::header();
    for threads in [1usize, 8] {
        group.bench(format!("blocks/t{threads}"), || {
            black_box(par_count_instances_with(&g, &motif, opts, legacy(threads)))
        });
        group.bench(format!("worksteal/t{threads}"), || {
            black_box(par_count_instances_with(&g, &motif, opts, stealing(threads)))
        });
    }
    group.finish();
}
