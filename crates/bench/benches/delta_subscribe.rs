//! Standing-query delta evaluation vs naive re-query: the cost of
//! absorbing one appended interaction for (a) a registered subscription
//! maintained by anchored delta evaluation and (b) a poll-style client
//! that re-runs the full query after every append. At the 100k-resident
//! steady state the delta path only rescans structural matches using
//! the new pair, so it must beat the full re-query by a wide margin —
//! the ≥ 10x floor is asserted, not just measured.

use flowmotif_bench::{micro, BenchGroup};
use flowmotif_core::catalog;
use flowmotif_stream::{QueryEngine, SlidingWindow, SnapshotEngine, StandingQueries};
use flowmotif_util::rng::{RngExt, SeedableRng, StdRng};
use std::hint::black_box;

/// Steady-state resident interactions (one per time unit, so also the
/// retention horizon).
const WINDOW: usize = 100_000;

/// Deterministic open-ended interaction stream, ~6% out of order. The
/// node universe is sized so the pair set saturates during warm-up —
/// the steady state appends onto *existing* series, which is what a
/// long-running stream looks like (and what the delta path's per-append
/// asymptotics are about; a brand-new pair costs a CSR extension on
/// either path).
struct Stream {
    rng: StdRng,
    nodes: u32,
    t: i64,
}

impl Stream {
    fn new(seed: u64, nodes: u32) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), nodes, t: 0 }
    }

    fn next(&mut self) -> (u32, u32, i64, f64) {
        self.t += 1;
        let u = self.rng.random_range(0..self.nodes);
        let mut v = self.rng.random_range(0..self.nodes);
        while v == u {
            v = self.rng.random_range(0..self.nodes);
        }
        let t = if self.rng.random_range(0u32..16) == 0 {
            self.t - self.rng.random_range(1i64..50)
        } else {
            self.t
        };
        (u, v, t, self.rng.random_range(1u32..100) as f64)
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let window = if quick { WINDOW / 10 } else { WINDOW };
    let nodes: u32 = if quick { 50 } else { 150 };
    let motif = catalog::by_name("M(3,2)", 30, 50.0).unwrap();

    let mut group = BenchGroup::new("delta_subscribe");
    group.measurement_time(std::time::Duration::from_secs(2));
    micro::header();

    // Steady state shared by both sides: the sliding window keeps the
    // resident size constant while the benches keep appending.
    let engine = SnapshotEngine::with_engine(
        QueryEngine::new().with_window(SlidingWindow::new(window as i64)),
    );
    let mut stream = Stream::new(42, nodes);
    for _ in 0..window {
        let (u, v, t, f) = stream.next();
        engine.append(u, v, t, f).unwrap();
    }
    println!("# steady state: {} resident interactions", engine.stats().interactions);

    let mut subs = StandingQueries::new();
    engine.subscribe_standing(&mut subs, motif.clone(), None);
    let mut events = Vec::new();
    group.bench(format!("delta/append (window {window})"), || {
        let (u, v, t, f) = stream.next();
        engine.append_standing(u, v, t, f, &mut subs, &mut events).unwrap();
        black_box(events.drain(..).count())
    });

    // The poll-style alternative: append, then re-run the query from
    // scratch. Seeding a fresh subscription *is* exactly that full
    // re-query (it is the oracle the equivalence suite compares
    // against), minus even the cost of diffing against prior results.
    group.bench(format!("requery/append (window {window})"), || {
        let (u, v, t, f) = stream.next();
        engine.append(u, v, t, f).unwrap();
        let mut fresh = StandingQueries::new();
        let id = engine.subscribe_standing(&mut fresh, motif.clone(), None);
        black_box(fresh.get(id).unwrap().num_instances())
    });

    let median = |needle: &str| {
        group
            .results()
            .iter()
            .find(|r| r.id.contains(needle))
            .map(|r| r.median.as_nanos())
            .expect("both benches ran")
    };
    let (delta_ns, requery_ns) = (median("delta/"), median("requery/"));
    println!(
        "delta_subscribe: delta {delta_ns} ns/append vs re-query {requery_ns} ns/append \
         ({:.1}x)",
        requery_ns as f64 / delta_ns.max(1) as f64,
    );
    assert!(
        requery_ns >= delta_ns * 10,
        "per-append delta evaluation must be >= 10x faster than a naive full re-query \
         (delta {delta_ns} ns, re-query {requery_ns} ns)",
    );

    group.finish();
}
