//! Micro-bench counterpart of experiment T4 (paper Table 4): phase-P1
//! structural matching cost per motif.

use flowmotif_bench::{micro, BenchGroup, ExpContext};
use flowmotif_core::count_structural_matches;
use flowmotif_datasets::Dataset;
use std::hint::black_box;

const SCALE: f64 = 0.25;

fn main() {
    let ctx = ExpContext::new(SCALE, 42);
    let mut group = BenchGroup::new("table4_phase1");
    group.measurement_time(std::time::Duration::from_secs(2));
    micro::header();
    for d in Dataset::ALL {
        let g = ctx.graph(d);
        for m in ctx.motifs_quick(d) {
            group.bench(format!("{}/{}", d.name(), m.name()), || {
                black_box(count_structural_matches(&g, m.path()))
            });
        }
    }
    group.finish();
}
