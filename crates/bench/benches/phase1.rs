//! Criterion counterpart of experiment T4 (paper Table 4): phase-P1
//! structural matching cost per motif.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowmotif_bench::ExpContext;
use flowmotif_core::count_structural_matches;
use flowmotif_datasets::Dataset;
use std::hint::black_box;

const SCALE: f64 = 0.25;

fn bench(c: &mut Criterion) {
    let ctx = ExpContext::new(SCALE, 42);
    let mut group = c.benchmark_group("table4_phase1");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for d in Dataset::ALL {
        let g = ctx.graph(d);
        for m in ctx.motifs_quick(d) {
            group.bench_with_input(
                BenchmarkId::new(d.name(), m.name()),
                m.path(),
                |b, p| b.iter(|| black_box(count_structural_matches(&g, p))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
