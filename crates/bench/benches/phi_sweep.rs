//! Micro-bench counterpart of experiment F10 (paper Fig. 10): enumeration
//! cost as the flow constraint ϕ grows (prefix pruning bites earlier).

use flowmotif_bench::{micro, BenchGroup, ExpContext};
use flowmotif_core::{catalog, count_instances};
use flowmotif_datasets::Dataset;
use std::hint::black_box;

const SCALE: f64 = 0.25;

fn main() {
    let ctx = ExpContext::new(SCALE, 42);
    let mut group = BenchGroup::new("fig10_phi_sweep");
    group.measurement_time(std::time::Duration::from_secs(2));
    micro::header();
    for d in [Dataset::Bitcoin, Dataset::Facebook] {
        let g = ctx.graph(d);
        for phi in d.phi_sweep() {
            let motif = catalog::by_name("M(3,2)", d.default_delta(), phi).unwrap();
            group.bench(format!("{}/phi={phi}", d.name()), || {
                black_box(count_instances(&g, &motif))
            });
        }
    }
    group.finish();
}
