//! Criterion counterpart of experiment F10 (paper Fig. 10): enumeration
//! cost as the flow constraint ϕ grows (prefix pruning bites earlier).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowmotif_bench::ExpContext;
use flowmotif_core::{catalog, count_instances};
use flowmotif_datasets::Dataset;
use std::hint::black_box;

const SCALE: f64 = 0.25;

fn bench(c: &mut Criterion) {
    let ctx = ExpContext::new(SCALE, 42);
    let mut group = c.benchmark_group("fig10_phi_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for d in [Dataset::Bitcoin, Dataset::Facebook] {
        let g = ctx.graph(d);
        for phi in d.phi_sweep() {
            let motif = catalog::by_name("M(3,2)", d.default_delta(), phi).unwrap();
            group.bench_with_input(
                BenchmarkId::new(d.name(), format!("phi={phi}")),
                &motif,
                |b, m| b.iter(|| black_box(count_instances(&g, m))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
