//! Ablation benches for the design choices called out in `DESIGN.md`:
//!
//! * window-skip rule (guard 1) on/off;
//! * `ϕ` prefix pruning (Algorithm 1 line 16) on/off;
//! * sequential vs parallel phase P2.
//!
//! All variants return identical result sets; only the work differs.

use flowmotif_bench::{micro, BenchGroup, ExpContext};
use flowmotif_core::enumerate::{enumerate_with_sink, CountSink, SearchOptions};
use flowmotif_core::parallel::par_count_instances;
use flowmotif_core::shared::count_instances_shared;
use flowmotif_datasets::Dataset;
use std::hint::black_box;

const SCALE: f64 = 0.25;

fn main() {
    let ctx = ExpContext::new(SCALE, 42);
    let mut group = BenchGroup::new("ablation");
    group.measurement_time(std::time::Duration::from_secs(2));
    let d = Dataset::Facebook; // multi-edge-heavy: pruning matters most
    let g = ctx.graph(d);
    let motif = &ctx.motifs(d)[0]; // M(3,2) at default δ/ϕ

    let base = SearchOptions::default();
    let variants = [
        ("full", base),
        ("no_window_skip", base.with_skip_redundant_windows(false)),
        ("no_phi_prune", base.with_phi_prefix_pruning(false)),
        ("neither", base.with_skip_redundant_windows(false).with_phi_prefix_pruning(false)),
    ];
    micro::header();
    for (name, opts) in variants {
        group.bench(format!("options/{name}"), || {
            let mut sink = CountSink::default();
            black_box(enumerate_with_sink(&g, motif, opts, &mut sink));
            sink.count
        });
    }
    group.bench("shared_prefix", || black_box(count_instances_shared(&g, motif)));
    for threads in [1usize, 2, 4] {
        group.bench(format!("threads/{threads}"), || {
            black_box(par_count_instances(&g, motif, threads))
        });
    }
    group.finish();
}
