//! Micro-bench counterpart of experiment F13 (paper Fig. 13): enumeration
//! cost over growing time-prefix samples of each dataset.

use flowmotif_bench::{micro, BenchGroup, ExpContext};
use flowmotif_core::{catalog, count_instances};
use flowmotif_datasets::{time_prefix_samples, Dataset};
use std::hint::black_box;

const SCALE: f64 = 0.25;

fn main() {
    let ctx = ExpContext::new(SCALE, 42);
    let mut group = BenchGroup::new("fig13_scaling");
    group.measurement_time(std::time::Duration::from_secs(2));
    micro::header();
    for d in Dataset::ALL {
        let mg = ctx.multigraph(d);
        let motif = catalog::by_name("M(3,2)", d.default_delta(), d.default_phi()).unwrap();
        for s in time_prefix_samples(&mg, &d.prefix_fractions()) {
            group.bench(
                format!("{}/{} ({} interactions)", d.name(), s.label, s.num_interactions),
                || black_box(count_instances(&s.graph, &motif)),
            );
        }
    }
    group.finish();
}
