//! Criterion counterpart of experiment F13 (paper Fig. 13): enumeration
//! cost over growing time-prefix samples of each dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flowmotif_bench::ExpContext;
use flowmotif_core::{catalog, count_instances};
use flowmotif_datasets::{time_prefix_samples, Dataset};
use std::hint::black_box;

const SCALE: f64 = 0.25;

fn bench(c: &mut Criterion) {
    let ctx = ExpContext::new(SCALE, 42);
    let mut group = c.benchmark_group("fig13_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for d in Dataset::ALL {
        let mg = ctx.multigraph(d);
        let motif = catalog::by_name("M(3,2)", d.default_delta(), d.default_phi()).unwrap();
        for s in time_prefix_samples(&mg, &d.prefix_fractions()) {
            group.throughput(Throughput::Elements(s.num_interactions as u64));
            group.bench_with_input(
                BenchmarkId::new(d.name(), &s.label),
                &s.graph,
                |b, g| b.iter(|| black_box(count_instances(g, &motif))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
