//! Wire-level edge cases: everything here talks to a real server over a
//! real socket, exercising the framing, arity checking, admission
//! control and disconnect handling of the protocol loop.

use flowmotif_serve::{Client, Server, ServerConfig};
use flowmotif_stream::SnapshotEngine;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn server(config: ServerConfig) -> (Server, Arc<SnapshotEngine>) {
    let engine = Arc::new(SnapshotEngine::new());
    let server = Server::start(Arc::clone(&engine), config, "127.0.0.1:0").unwrap();
    (server, engine)
}

#[test]
fn empty_and_whitespace_lines_are_protocol_errors() {
    let (server, _) = server(ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    for line in ["", "   ", "\t"] {
        let reply = c.send(line).unwrap();
        assert!(reply.is_err(), "{line:?}: {}", reply.status);
        assert!(reply.status.contains("empty command"), "{}", reply.status);
    }
    // The session survives its own protocol errors.
    assert_eq!(c.send("ping").unwrap().status, "OK pong");
    let reply = c.send("session").unwrap();
    assert_eq!(reply.field("errors"), Some("3"));
    server.shutdown();
}

#[test]
fn bad_arity_and_unknown_commands() {
    let (server, _) = server(ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    for (line, needle) in [
        ("add 1 2 3", "takes 4 fields"),
        ("add 1 2 3 4 5", "takes 4 fields"),
        ("query M(3,2) 10", "takes 3 or 5 fields"),
        ("query M(3,2) 10 0 5", "takes 3 or 5 fields"),
        ("evict", "takes 1 fields"),
        ("stats please", "takes 0 fields"),
        ("frobnicate 1 2", "unknown command"),
        ("add 1 2 x 4", "field `x`"),
    ] {
        let reply = c.send(line).unwrap();
        assert!(reply.status.starts_with("ERR proto"), "{line}: {}", reply.status);
        assert!(reply.status.contains(needle), "{line}: {}", reply.status);
    }
    server.shutdown();
}

#[test]
fn oversized_query_window_is_refused_by_admission_control() {
    let (server, engine) = server(ServerConfig { max_window: Some(50), ..ServerConfig::default() });
    engine.ingest([(0u32, 1u32, 10i64, 5.0), (1, 2, 12, 4.0)]).unwrap();
    engine.publish();
    let mut c = Client::connect(server.local_addr()).unwrap();

    // Too wide, and unbounded: permanent admission errors.
    let reply = c.send("count M(3,2) 10 0 0 51").unwrap();
    assert!(reply.status.starts_with("ERR admission window length 51"), "{}", reply.status);
    let reply = c.send("query M(3,2) 10 0").unwrap();
    assert!(reply.status.starts_with("ERR admission unbounded"), "{}", reply.status);

    // At the cap: admitted and answered from the snapshot.
    let reply = c.send("count M(3,2) 10 0 0 50").unwrap();
    assert!(reply.is_ok(), "{}", reply.status);
    assert_eq!(reply.field("count"), Some("1"));
    server.shutdown();
}

#[test]
fn per_query_extension_order_override_round_trips() {
    let (server, engine) = server(ServerConfig::default());
    // A triangle plus a spare chain: cyclic M(3,3) engages the WCO
    // path, so both orders genuinely diverge in exploration here.
    engine
        .ingest([(0u32, 1u32, 10i64, 5.0), (1, 2, 12, 4.0), (2, 0, 14, 3.0), (3, 4, 10, 2.0)])
        .unwrap();
    engine.publish();
    let mut c = Client::connect(server.local_addr()).unwrap();

    // Both orders (and the server default) must agree verb by verb.
    let want = c.send("query M(3,3) 10 0").unwrap();
    assert!(want.is_ok(), "{}", want.status);
    for order in ["fixed", "cardinality"] {
        let reply = c.send(&format!("query M(3,3) 10 0 order={order}")).unwrap();
        assert_eq!((reply.status, reply.data), (want.status.clone(), want.data.clone()));
        let reply = c.send(&format!("count M(3,3) 10 0 order={order}")).unwrap();
        assert_eq!(reply.field("count"), Some("1"), "{}", reply.status);
        // Windowed form: the option stays the trailing token.
        let reply = c.send(&format!("count M(3,3) 10 0 0 20 order={order}")).unwrap();
        assert_eq!(reply.field("count"), Some("1"), "{}", reply.status);
    }

    // Bad value and misplaced token are protocol errors.
    let reply = c.send("count M(3,3) 10 0 order=random").unwrap();
    assert!(reply.status.starts_with("ERR proto"), "{}", reply.status);
    assert!(reply.status.contains("unknown extension order"), "{}", reply.status);
    let reply = c.send("query M(3,3) 10 order=fixed 0 20").unwrap();
    assert!(reply.status.starts_with("ERR proto"), "{}", reply.status);
    server.shutdown();
}

#[test]
fn oversized_request_line_closes_the_connection() {
    let (server, _) = server(ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    let huge = format!("ping {}", "x".repeat(70 * 1024));
    let reply = c.send(&huge).unwrap();
    assert!(reply.status.contains("line exceeds"), "{}", reply.status);
    // The server closed the stream afterwards.
    assert!(c.send("ping").is_err());
    // New connections still work.
    let mut c2 = Client::connect(server.local_addr()).unwrap();
    assert_eq!(c2.send("ping").unwrap().status, "OK pong");
    server.shutdown();
}

#[test]
fn newline_free_flood_is_rejected_at_the_cap() {
    // A client streams far more than MAX_LINE_BYTES without ever sending
    // a newline: the server must bound its buffering at the cap (not
    // accumulate the whole flood) and answer with a protocol error.
    let (server, _) = server(ServerConfig::default());
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let chunk = vec![b'x'; 64 * 1024];
    for _ in 0..4 {
        raw.write_all(&chunk).unwrap(); // 256 KiB, no newline anywhere
    }
    raw.flush().unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let mut reply = String::new();
    std::io::BufRead::read_line(&mut reader, &mut reply).unwrap();
    assert!(reply.contains("line exceeds"), "{reply}");
    // The connection is closed afterwards; the server stays healthy.
    let mut c = Client::connect(server.local_addr()).unwrap();
    assert_eq!(c.send("ping").unwrap().status, "OK pong");
    server.shutdown();
}

#[test]
fn mid_stream_disconnect_leaves_the_server_healthy() {
    let (server, _) = server(ServerConfig { workers: 2, ..ServerConfig::default() });
    // A client sends half a request and vanishes.
    {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(b"quer").unwrap();
        raw.flush().unwrap();
        // Dropped here without a newline: the worker must discard the
        // partial request and recycle itself.
    }
    // Another client vanishes mid-line after a successful request.
    {
        let mut c = Client::connect(server.local_addr()).unwrap();
        assert!(c.send("add 0 1 10 5").unwrap().is_ok());
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(b"add 1 2 12").unwrap();
        raw.flush().unwrap();
    }
    // Give the workers a beat to notice the disconnects.
    std::thread::sleep(Duration::from_millis(100));
    let mut c = Client::connect(server.local_addr()).unwrap();
    let reply = c.send("stats").unwrap();
    assert!(reply.is_ok(), "{}", reply.status);
    assert_eq!(reply.field("interactions"), Some("1"), "partial add must not have landed");
    server.shutdown();
}

#[test]
fn quit_closes_only_the_quitting_session() {
    let (server, _) = server(ServerConfig::default());
    let mut a = Client::connect(server.local_addr()).unwrap();
    let mut b = Client::connect(server.local_addr()).unwrap();
    assert_eq!(a.send("quit").unwrap().status, "OK bye");
    assert!(a.send("ping").is_err(), "server must hang up after quit");
    assert_eq!(b.send("ping").unwrap().status, "OK pong");
    server.shutdown();
}

#[test]
fn data_lines_are_capped_by_show_but_totals_are_exact() {
    let (server, engine) = server(ServerConfig { show: 2, ..ServerConfig::default() });
    // Several disjoint 2-hop chains, each one M(3,2) instance.
    let mut edges = Vec::new();
    for i in 0..5u32 {
        let base = i * 3;
        edges.push((base, base + 1, 10 * i as i64, 5.0));
        edges.push((base + 1, base + 2, 10 * i as i64 + 1, 5.0));
    }
    engine.ingest(edges).unwrap();
    engine.publish();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let reply = c.send("query M(3,2) 5 0").unwrap();
    assert_eq!(reply.field("instances"), Some("5"), "{}", reply.status);
    assert_eq!(reply.field("shown"), Some("2"));
    assert_eq!(reply.data.len(), 2);
    assert!(reply.data[0].starts_with("nodes="), "{}", reply.data[0]);
    server.shutdown();
}

#[test]
fn stats_reports_explicit_zero_publish_telemetry_before_first_publish() {
    // A fresh engine has never published: the publish-telemetry fields
    // must still be present, as explicit zeros, so dashboards scraping
    // `stats` never see the keys appear out of nowhere mid-run.
    let (server, engine) = server(ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    let reply = c.send("stats").unwrap();
    assert!(reply.is_ok(), "{}", reply.status);
    assert_eq!(reply.field("last_publish_ns"), Some("0"), "{}", reply.status);
    assert_eq!(reply.field("last_publish_dirty"), Some("0"), "{}", reply.status);
    assert_eq!(reply.field("epoch"), Some("0"));
    // After the first publish the fields turn live.
    engine.ingest([(0u32, 1u32, 10i64, 5.0)]).unwrap();
    engine.publish();
    let reply = c.send("stats").unwrap();
    assert_eq!(reply.field("last_publish_dirty"), Some("1"), "{}", reply.status);
    server.shutdown();
}

#[test]
fn slow_query_logging_keeps_the_wire_protocol_byte_identical() {
    // --slow-query-ms diagnostics go to stderr only: replies must not
    // grow extra DATA lines or status fields, even at threshold 0
    // (log everything) and across traced query/count/error paths.
    let (server, engine) =
        server(ServerConfig { slow_query_ms: Some(0), ..ServerConfig::default() });
    engine.ingest([(0u32, 1u32, 10i64, 5.0), (1, 2, 12, 4.0)]).unwrap();
    engine.publish();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let reply = c.send("count M(3,2) 10 0").unwrap();
    assert_eq!(reply.field("count"), Some("1"), "{}", reply.status);
    assert!(reply.data.is_empty(), "count must stay data-free: {:?}", reply.data);
    let reply = c.send("query M(3,2) 10 0 0 20").unwrap();
    assert_eq!(reply.field("instances"), Some("1"), "{}", reply.status);
    assert_eq!(reply.data.len(), 1);
    // Rejected queries never reach the traced search and stay intact.
    let reply = c.send("query M(9,9) 10 0").unwrap();
    assert!(reply.status.starts_with("ERR query"), "{}", reply.status);
    // The slow-query counter is visible over the metrics verb.
    let reply = c.send("metrics").unwrap();
    assert!(reply.is_ok(), "{}", reply.status);
    assert!(
        reply.data.iter().any(|l| l == "flowmotif_serve_slow_queries_total 2"),
        "expected slow-query count 2 in {:?}",
        reply.data
    );
    server.shutdown();
}

#[test]
fn metrics_verb_round_trips_prometheus_text_over_the_wire() {
    let (server, engine) = server(ServerConfig::default());
    engine.ingest([(0u32, 1u32, 10i64, 5.0)]).unwrap();
    engine.publish();
    let mut c = Client::connect(server.local_addr()).unwrap();
    assert!(c.send("count M(3,2) 10 0").unwrap().is_ok());
    let reply = c.send("metrics").unwrap();
    assert!(reply.is_ok(), "{}", reply.status);
    assert_eq!(reply.field("lines"), Some(&*reply.data.len().to_string()));
    // Every line is either a comment or `name[{labels}] value`.
    for line in &reply.data {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "bad comment: {line}"
            );
        } else {
            let (series, value) = line.rsplit_once(' ').expect("name value");
            assert!(!series.is_empty() && value.parse::<f64>().is_ok(), "bad sample: {line}");
        }
    }
    // One family per tier made it over the wire.
    for needle in [
        "flowmotif_serve_requests_total{verb=\"count\"} 1",
        "flowmotif_engine_epoch 1",
        "flowmotif_stream_epoch_age_seconds",
        "flowmotif_storage_segment_opens_total",
    ] {
        assert!(reply.data.iter().any(|l| l.starts_with(needle)), "missing {needle}");
    }
    server.shutdown();
}

/// `key=value` field of an `EVENT` payload or `DATA` line.
fn field_of(line: &str, key: &str) -> String {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .unwrap_or_else(|| panic!("no {key}= in {line}"))
        .to_string()
}

#[test]
fn subscribe_arity_unknown_motif_and_duplicates() {
    let (server, _) = server(ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    for (line, needle) in [
        ("subscribe", "takes 3 or 5 fields"),
        ("subscribe M(3,2) 10", "takes 3 or 5 fields"),
        ("subscribe M(3,2) 10 0 5", "takes 3 or 5 fields"),
        ("unsubscribe", "takes 1 fields"),
        ("unsubscribe one", "field `one`"),
    ] {
        let reply = c.send(line).unwrap();
        assert!(reply.status.starts_with("ERR proto"), "{line}: {}", reply.status);
        assert!(reply.status.contains(needle), "{line}: {}", reply.status);
    }
    // An unknown motif is a query error, like for one-shot queries.
    let reply = c.send("subscribe M(9,9) 10 0").unwrap();
    assert!(reply.status.starts_with("ERR query"), "{}", reply.status);
    // The same motif and window twice on one session is refused...
    assert_eq!(c.send("subscribe M(3,2) 10 0").unwrap().status, "OK subscribed id=1");
    let reply = c.send("subscribe M(3,2) 10 0").unwrap();
    assert!(reply.status.starts_with("ERR query already subscribed"), "{}", reply.status);
    // ...but a different window, or another session, is distinct.
    assert_eq!(c.send("subscribe M(3,2) 10 0 0 100").unwrap().status, "OK subscribed id=2");
    let mut c2 = Client::connect(server.local_addr()).unwrap();
    assert_eq!(c2.send("subscribe M(3,2) 10 0").unwrap().status, "OK subscribed id=3");
    server.shutdown();
}

#[test]
fn unsubscribe_twice_and_foreign_ids_are_query_errors() {
    let (server, _) = server(ServerConfig::default());
    let mut a = Client::connect(server.local_addr()).unwrap();
    let mut b = Client::connect(server.local_addr()).unwrap();
    assert_eq!(a.send("subscribe M(3,2) 10 0").unwrap().status, "OK subscribed id=1");
    // Another session cannot remove a subscription it does not own.
    let reply = b.send("unsubscribe 1").unwrap();
    assert!(reply.status.starts_with("ERR query no subscription 1"), "{}", reply.status);
    assert_eq!(a.send("unsubscribe 1").unwrap().status, "OK unsubscribed id=1");
    // Unsubscribing twice reads exactly like never having subscribed.
    let reply = a.send("unsubscribe 1").unwrap();
    assert!(reply.status.starts_with("ERR query no subscription 1"), "{}", reply.status);
    server.shutdown();
}

#[test]
fn subscriber_events_match_a_batch_requery() {
    let (server, _) = server(ServerConfig { show: 16, ..ServerConfig::default() });
    let mut sub = Client::connect(server.local_addr()).unwrap();
    assert_eq!(sub.send("subscribe M(3,2) 10 0").unwrap().status, "OK subscribed id=1");
    // Stream two disjoint 2-hop chains over the wire from another
    // session; each completion is one maximal instance entering the
    // standing result, hence one push notification.
    let mut feeder = Client::connect(server.local_addr()).unwrap();
    for (u, v, t, f) in [(0u32, 1u32, 1i64, 2.0), (1, 2, 2, 3.0), (3, 4, 20, 1.0), (4, 5, 21, 2.0)]
    {
        assert!(feeder.send(&format!("add {u} {v} {t} {f}")).unwrap().is_ok());
    }
    sub.set_read_timeout(Some(Duration::from_millis(1500))).unwrap();
    let mut events = Vec::new();
    while events.len() < 2 {
        match sub.recv_line() {
            Ok(Some(line)) if line.starts_with("EVENT ") => events.push(line),
            Ok(Some(line)) => panic!("unexpected non-event line {line:?}"),
            Ok(None) | Err(_) => break,
        }
    }
    events.sort();
    assert_eq!(
        events,
        [
            "EVENT id=1 match=0-1-2 flow=2 first=1 last=2 size=2",
            "EVENT id=1 match=3-4-5 flow=1 first=20 last=21 size=2",
        ],
        "push notifications diverged"
    );
    // The accumulated events are exactly what a batch re-query returns.
    assert!(feeder.send("publish").unwrap().is_ok());
    let reply = feeder.send("query M(3,2) 10 0").unwrap();
    assert_eq!(reply.field("instances"), Some("2"), "{}", reply.status);
    let mut batch: Vec<(String, String)> =
        reply.data.iter().map(|d| (field_of(d, "nodes"), field_of(d, "flow"))).collect();
    batch.sort();
    let mut pushed: Vec<(String, String)> =
        events.iter().map(|e| (field_of(e, "match"), field_of(e, "flow"))).collect();
    pushed.sort();
    assert_eq!(batch, pushed, "delta events ≠ batch re-query");
    server.shutdown();
}

#[test]
fn subscriber_disconnect_races_notifications_safely() {
    let (server, _) = server(ServerConfig { workers: 3, ..ServerConfig::default() });
    // A subscriber registers and vanishes without unsubscribing.
    {
        let mut sub = Client::connect(server.local_addr()).unwrap();
        assert!(sub.send("subscribe M(3,2) 100 0").unwrap().is_ok());
        // Dropped here, mid-stream: appends below race the cleanup.
    }
    let mut feeder = Client::connect(server.local_addr()).unwrap();
    for i in 0..50u32 {
        let reply = feeder.send(&format!("add {} {} {i} 1", i % 5, (i + 1) % 5)).unwrap();
        assert!(reply.is_ok(), "{}", reply.status);
    }
    // The dangling subscription is reaped once the worker notices the
    // disconnect; until then events are routed into a queue nobody
    // reads, which must stay bounded and harmless.
    let mut reaped = false;
    for _ in 0..100 {
        let m = feeder.send("metrics").unwrap();
        if m.data.iter().any(|l| l == "flowmotif_serve_subscriptions_active 0") {
            reaped = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(reaped, "subscription must be removed after its session disconnects");
    server.shutdown();
}

#[test]
fn subscribe_admission_and_busy_interplay() {
    let (server, _) =
        server(ServerConfig { max_window: Some(50), max_inflight: 1, ..ServerConfig::default() });
    let mut c = Client::connect(server.local_addr()).unwrap();
    // The per-query window cap governs standing queries too: they are
    // re-evaluated forever, so an over-wide one costs strictly more
    // than its one-shot counterpart.
    let reply = c.send("subscribe M(3,2) 10 0").unwrap();
    assert!(reply.status.starts_with("ERR admission unbounded"), "{}", reply.status);
    let reply = c.send("subscribe M(3,2) 10 0 0 51").unwrap();
    assert!(reply.status.starts_with("ERR admission window length 51"), "{}", reply.status);
    assert_eq!(c.send("subscribe M(3,2) 10 0 0 50").unwrap().status, "OK subscribed id=1");
    // The in-flight query cap does not throttle subscribe (it holds no
    // query slot), and admitted queries still work alongside it.
    let reply = c.send("count M(3,2) 10 0 0 50").unwrap();
    assert!(reply.is_ok(), "{}", reply.status);
    server.shutdown();
}

#[test]
fn metrics_expose_subscription_series() {
    let (server, _) = server(ServerConfig::default());
    let mut sub = Client::connect(server.local_addr()).unwrap();
    assert!(sub.send("subscribe M(3,2) 10 0").unwrap().is_ok());
    let mut feeder = Client::connect(server.local_addr()).unwrap();
    assert!(feeder.send("add 0 1 1 2").unwrap().is_ok());
    assert!(feeder.send("add 1 2 2 3").unwrap().is_ok());
    // The completed chain is one event; it counts as pushed once the
    // subscriber's worker writes it out (within one 50ms poll tick).
    let mut all_present = false;
    for _ in 0..100 {
        let m = feeder.send("metrics").unwrap();
        let has = |needle: &str| m.data.iter().any(|l| l == needle);
        if has("flowmotif_serve_subscriptions_active 1")
            && has("flowmotif_serve_events_pushed_total 1")
            && has("flowmotif_serve_events_dropped_total 0")
            && has("flowmotif_serve_requests_total{verb=\"subscribe\"} 1")
        {
            all_present = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(all_present, "subscription series missing from metrics");
    // Subscribe is a timed verb: its latency histogram recorded the
    // registration (which runs a full seeding query).
    let m = feeder.send("metrics").unwrap();
    assert!(
        m.data.iter().any(|l| l
            .starts_with("flowmotif_serve_request_duration_seconds_count{verb=\"subscribe\"} 1")),
        "missing subscribe latency sample"
    );
    // The unsubscribe verb is counted as well.
    assert_eq!(sub.send("unsubscribe 1").unwrap().status, "OK unsubscribed id=1");
    let m = feeder.send("metrics").unwrap();
    assert!(m.data.iter().any(|l| l == "flowmotif_serve_requests_total{verb=\"unsubscribe\"} 1"));
    server.shutdown();
}

#[test]
fn busy_reply_when_inflight_cap_saturated() {
    // Cap of 0 in-flight queries is "unlimited"; use a cap of 1 and hold
    // it with a slow query from another connection? Holding a query open
    // needs a genuinely slow search; instead, saturate deterministically
    // by setting the cap to 1 and issuing queries from many threads,
    // requiring that every reply is either OK or BUSY and at least the
    // cap-respecting invariant holds.
    let (server, engine) =
        server(ServerConfig { max_inflight: 1, workers: 4, ..ServerConfig::default() });
    let mut edges = Vec::new();
    for i in 0..400u32 {
        edges.push((i % 40, (i + 1) % 40, i as i64, 5.0));
    }
    engine.ingest(edges).unwrap();
    engine.publish();
    let addr = server.local_addr();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut ok = 0u32;
                let mut busy = 0u32;
                for _ in 0..50 {
                    let reply = c.send("count M(4,3) 40 0 0 400").unwrap();
                    if reply.is_busy() {
                        assert!(reply.status.contains("cap 1"), "{}", reply.status);
                        busy += 1;
                    } else {
                        assert!(reply.is_ok(), "{}", reply.status);
                        ok += 1;
                    }
                }
                (ok, busy)
            })
        })
        .collect();
    let mut total_ok = 0;
    for h in handles {
        let (ok, _busy) = h.join().unwrap();
        total_ok += ok;
    }
    assert!(total_ok > 0, "some queries must get through");
    server.shutdown();
}
