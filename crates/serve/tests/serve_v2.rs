//! Serve v2 behaviour: request pipelining on the event loop, the
//! epoch-keyed result cache, and tiered load shedding. Everything here
//! talks to a real server over a real socket, like
//! `protocol_edge_cases` — these are the additional contracts the
//! readiness-driven front-end introduces on top of the v1 protocol.

use flowmotif_core::{
    ExtensionOrder, Motif, MotifInstance, SearchScratch, SearchStats, StructuralMatch, TraceSink,
};
use flowmotif_graph::{Flow, GraphError, NodeId, TimeWindow, Timestamp};
use flowmotif_serve::{Client, EngineSnapshot, MotifEngine, Server, ServerConfig};
use flowmotif_stream::{
    EngineStats, PublishReport, QueryResult, Snapshot, SnapshotEngine, StandingEvent,
    StandingQueries,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn server(config: ServerConfig) -> (Server, Arc<SnapshotEngine>) {
    let engine = Arc::new(SnapshotEngine::new());
    let server = Server::start(Arc::clone(&engine), config, "127.0.0.1:0").unwrap();
    (server, engine)
}

/// Fetches one counter/gauge value from a `metrics` reply.
fn metric(c: &mut Client, name: &str) -> f64 {
    let reply = c.send("metrics").unwrap();
    assert!(reply.is_ok(), "{}", reply.status);
    reply
        .data
        .iter()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.trim().parse().ok()))
        .unwrap_or_else(|| panic!("metric {name} not found"))
}

// ---------------------------------------------------------------- pipelining

#[test]
fn pipelined_batch_replies_in_request_order() {
    let (server, _) = server(ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    let replies = c
        .send_batch(&[
            "ping",
            "add 0 1 10 5",
            "add 1 2 12 4",
            "publish",
            "count M(3,2) 10 0",
            "bogus",
            "session",
        ])
        .unwrap();
    assert_eq!(replies.len(), 7);
    assert_eq!(replies[0].status, "OK pong");
    assert_eq!(replies[1].status, "OK added watermark=10");
    assert_eq!(replies[2].status, "OK added watermark=12");
    assert_eq!(replies[3].status, "OK published epoch=1");
    assert_eq!(replies[4].field("count"), Some("1"), "{}", replies[4].status);
    assert!(replies[5].status.starts_with("ERR proto"), "{}", replies[5].status);
    // The session verb ran last and saw everything before it.
    assert_eq!(replies[6].field("queries"), Some("1"));
    assert_eq!(replies[6].field("appends"), Some("2"));
    assert_eq!(replies[6].field("errors"), Some("1"));
    server.shutdown();
}

#[test]
fn pipelined_burst_interleaves_events_only_between_frames() {
    let (server, _) = server(ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    assert_eq!(c.send("subscribe M(3,2) 10 0").unwrap().status, "OK subscribed id=1");
    // A pipelined chain 0->1->...->5: each add past the first completes
    // a longer walk and fires a notification at the subscriber, whose
    // own reply stream is mid-burst — events must ride between frames.
    let lines: Vec<String> = (0..5).map(|i| format!("add {i} {} {} 2", i + 1, 10 + i)).collect();
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let replies = c.send_batch(&refs).unwrap();
    let mut events = 0;
    for (i, reply) in replies.iter().enumerate() {
        assert!(reply.is_ok(), "add {i}: {}", reply.status);
        events += reply.events.len();
    }
    // Any notification not yet flushed when the last reply was framed
    // arrives right after it; `session` is a convenient sync point.
    let tail = c.send("session").unwrap();
    events += tail.events.len();
    assert_eq!(events, 4, "each add past the first grows the 0->..->5 chain");
    server.shutdown();
}

#[test]
fn mid_burst_disconnect_executes_complete_lines_and_discards_the_partial() {
    let (server, engine) = server(ServerConfig::default());
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    // Two complete requests and one torn-off line, then a hard close
    // without ever reading a reply.
    raw.write_all(b"add 0 1 10 5\nadd 1 2 12 4\nadd 2 3 14 ").unwrap();
    drop(raw);
    // The complete adds land even though the client is gone; the
    // partial third line is discarded, not executed.
    let deadline = Instant::now() + Duration::from_secs(2);
    while engine.stats().appended < 2 {
        assert!(Instant::now() < deadline, "complete pipelined adds never landed");
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(20));
    assert_eq!(engine.stats().appended, 2, "partial line must not execute");
    // The server stays healthy for new connections.
    let mut c = Client::connect(server.local_addr()).unwrap();
    assert_eq!(c.send("ping").unwrap().status, "OK pong");
    server.shutdown();
}

#[test]
fn oversized_line_mid_pipeline_answers_earlier_requests_first() {
    let (server, _) = server(ServerConfig::default());
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    // Two good requests, then a 70 KiB line, then another request that
    // will never be reached.
    let mut burst = Vec::from(&b"ping\nsession\n"[..]);
    burst.extend(std::iter::repeat_n(b'x', 70 * 1024));
    burst.extend(b"\nping\n");
    raw.write_all(&burst).unwrap();
    // Reply order is preserved: both pre-oversize requests answer
    // first, then the protocol error, then the connection closes.
    let mut lines = Vec::new();
    let mut reader = BufReader::new(raw);
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap() > 0 {
        lines.push(line.trim_end().to_string());
        line.clear();
    }
    assert_eq!(lines.first().map(String::as_str), Some("OK pong"), "{lines:?}");
    assert!(lines[1].starts_with("OK session"), "{lines:?}");
    assert!(lines[2].starts_with("ERR proto line exceeds"), "{lines:?}");
    assert_eq!(lines.len(), 3, "the request after the oversized line must not run: {lines:?}");
    server.shutdown();
}

// --------------------------------------------------------------- result cache

#[test]
fn cache_hits_repeat_queries_and_never_serves_a_stale_epoch() {
    let (server, _) = server(ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    let _ = c.send_batch(&["add 0 1 10 5", "add 1 2 12 4", "publish"]).unwrap();

    // Cold, then hot: the second identical query is a cache hit and its
    // reply is byte-identical.
    let cold = c.send("count M(3,2) 10 0").unwrap();
    assert_eq!(cold.field("count"), Some("1"), "{}", cold.status);
    let hot = c.send("count M(3,2) 10 0").unwrap();
    assert_eq!(hot.status, cold.status);
    assert_eq!(metric(&mut c, "flowmotif_serve_cache_hits_total"), 1.0);
    assert_eq!(metric(&mut c, "flowmotif_serve_cache_misses_total"), 1.0);
    assert_eq!(metric(&mut c, "flowmotif_serve_cache_entries"), 1.0);

    // A publish moves the epoch: the same query must re-run against the
    // new snapshot, never the cached epoch-1 reply.
    let _ = c.send_batch(&["add 2 3 14 3", "publish"]).unwrap();
    let fresh = c.send("count M(3,2) 10 0").unwrap();
    assert_eq!(fresh.field("count"), Some("2"), "stale cache reply served: {}", fresh.status);
    assert_eq!(fresh.field("epoch"), Some("2"));
    assert_eq!(metric(&mut c, "flowmotif_serve_cache_misses_total"), 2.0);

    // query and count cache independently (different reply shapes).
    let q = c.send("query M(3,2) 10 0").unwrap();
    assert!(q.is_ok(), "{}", q.status);
    assert_eq!(metric(&mut c, "flowmotif_serve_cache_misses_total"), 3.0);
    let q2 = c.send("query M(3,2) 10 0").unwrap();
    assert_eq!((q2.status, q2.data), (q.status, q.data));
    assert_eq!(metric(&mut c, "flowmotif_serve_cache_hits_total"), 2.0);
    server.shutdown();
}

#[test]
fn zero_cache_entries_disables_caching() {
    let (server, _) = server(ServerConfig { cache_entries: 0, ..ServerConfig::default() });
    let mut c = Client::connect(server.local_addr()).unwrap();
    let _ = c.send_batch(&["add 0 1 10 5", "publish"]).unwrap();
    let _ = c.send("count M(3,2) 10 0").unwrap();
    let _ = c.send("count M(3,2) 10 0").unwrap();
    assert_eq!(metric(&mut c, "flowmotif_serve_cache_hits_total"), 0.0);
    assert_eq!(metric(&mut c, "flowmotif_serve_cache_entries"), 0.0);
    server.shutdown();
}

// --------------------------------------------------------------- load shedding

/// Blocks query execution while closed, so tests can hold the worker
/// pool at an exact load. Everything else delegates to a real
/// [`SnapshotEngine`].
#[derive(Debug, Default)]
struct Gate {
    closed: AtomicBool,
    inside: AtomicUsize,
}

impl Gate {
    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    fn open(&self) {
        self.closed.store(false, Ordering::SeqCst);
    }

    fn block(&self) {
        self.inside.fetch_add(1, Ordering::SeqCst);
        while self.closed.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn wait_entered(&self, n: usize) {
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.inside.load(Ordering::SeqCst) < n {
            assert!(Instant::now() < deadline, "gated query never reached the worker");
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

#[derive(Debug)]
struct GatedEngine {
    inner: SnapshotEngine,
    gate: Arc<Gate>,
}

struct GatedSnapshot {
    inner: Arc<Snapshot>,
    gate: Arc<Gate>,
}

impl EngineSnapshot for GatedSnapshot {
    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    fn query_with(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
        trace: Option<&'static dyn TraceSink>,
        order: Option<ExtensionOrder>,
    ) -> QueryResult {
        self.gate.block();
        self.inner.query_with(motif, bounds, scratch, trace, order)
    }

    fn count_with(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
        trace: Option<&'static dyn TraceSink>,
        order: Option<ExtensionOrder>,
    ) -> (u64, SearchStats) {
        self.gate.block();
        self.inner.count_with(motif, bounds, scratch, trace, order)
    }

    fn describe(&self, sm: &StructuralMatch, inst: &MotifInstance) -> (String, String) {
        self.inner.describe(sm, inst)
    }
}

impl MotifEngine for GatedEngine {
    type Snapshot = GatedSnapshot;

    fn append(
        &self,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        flow: Flow,
    ) -> Result<Timestamp, GraphError> {
        MotifEngine::append(&self.inner, from, to, time, flow)
    }

    fn publish(&self) -> u64 {
        MotifEngine::publish(&self.inner)
    }

    fn published_epoch(&self) -> u64 {
        MotifEngine::published_epoch(&self.inner)
    }

    fn set_publish_hook(&self, hook: Box<dyn Fn(u64) + Send + Sync>) {
        MotifEngine::set_publish_hook(&self.inner, hook);
    }

    fn evict_before(&self, floor: Timestamp) -> usize {
        MotifEngine::evict_before(&self.inner, floor)
    }

    fn compact(&self) {
        MotifEngine::compact(&self.inner);
    }

    fn stats(&self) -> EngineStats {
        MotifEngine::stats(&self.inner)
    }

    fn publish_report(&self) -> PublishReport {
        MotifEngine::publish_report(&self.inner)
    }

    fn snapshot(&self) -> GatedSnapshot {
        GatedSnapshot { inner: MotifEngine::snapshot(&self.inner), gate: Arc::clone(&self.gate) }
    }

    fn subscribe_standing(
        &self,
        subs: &mut StandingQueries,
        motif: Motif,
        bounds: Option<TimeWindow>,
    ) -> u64 {
        MotifEngine::subscribe_standing(&self.inner, subs, motif, bounds)
    }

    fn append_standing(
        &self,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        flow: Flow,
        subs: &mut StandingQueries,
        out: &mut Vec<StandingEvent>,
    ) -> Result<Timestamp, GraphError> {
        MotifEngine::append_standing(&self.inner, from, to, time, flow, subs, out)
    }

    fn evict_standing(
        &self,
        floor: Timestamp,
        subs: &mut StandingQueries,
        out: &mut Vec<StandingEvent>,
    ) -> usize {
        MotifEngine::evict_standing(&self.inner, floor, subs, out)
    }
}

#[test]
fn shed_tiers_drop_cold_queries_first_and_always_admit_cache_hits() {
    let gate = Arc::new(Gate::default());
    let engine = Arc::new(GatedEngine { inner: SnapshotEngine::new(), gate: Arc::clone(&gate) });
    // backlog 2: at load 1 (amber) only unbounded cold queries shed; at
    // load 2 (red) every cold query does. One worker so queued jobs
    // stay queued while the gate is closed.
    let config = ServerConfig { workers: 1, backlog: 2, ..ServerConfig::default() };
    let server = Server::start(Arc::clone(&engine), config, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut warm = Client::connect(addr).unwrap();
    let _ = warm.send_batch(&["add 0 1 10 5", "add 1 2 12 4", "publish"]).unwrap();
    // Warm one windowed reply into the cache while the pool is idle.
    let cached = warm.send("count M(3,2) 10 0 0 80").unwrap();
    assert_eq!(cached.field("count"), Some("1"), "{}", cached.status);

    // Jam the single worker: connection A's query blocks on the gate.
    gate.close();
    let mut jam = TcpStream::connect(addr).unwrap();
    jam.write_all(b"count M(3,2) 999 0 0 50\n").unwrap();
    gate.wait_entered(1);

    // Amber (load 1, half the backlog): unbounded cold queries shed...
    let mut c = Client::connect(addr).unwrap();
    let reply = c.send("count M(3,2) 10 0").unwrap();
    assert!(reply.is_busy(), "amber must shed unbounded cold queries: {}", reply.status);
    assert!(reply.status.contains("retry_ms="), "{}", reply.status);
    // ...but windowed cold queries are still admitted (they queue).
    let mut queued = TcpStream::connect(addr).unwrap();
    queued.write_all(b"count M(3,2) 777 0 0 50\n").unwrap();

    // The admitted query brings the load to 2: red, everything cold is
    // shed — windowed or not. Probing with a windowed query before that
    // admission lands would race it for the second pool slot (and an
    // admitted probe's reply cannot arrive while the gate is closed),
    // so watch the load rise through the shed replies themselves: a
    // windowless cold query is shed at every tier while the gate holds
    // the worker, and its BUSY line reports the current queue depth.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let reply = c.send("count M(3,2) 10 0").unwrap();
        assert!(reply.is_busy(), "windowless cold queries shed at every tier: {}", reply.status);
        let load: usize = reply
            .status
            .strip_prefix("BUSY overloaded: ")
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unexpected BUSY shape: {}", reply.status));
        if load >= 2 {
            break;
        }
        assert!(Instant::now() < deadline, "queued job never dispatched");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Red engaged: now even windowed cold queries are shed.
    let reply = c.send("count M(3,2) 555 0 0 50").unwrap();
    assert!(reply.is_busy(), "red must shed windowed cold queries: {}", reply.status);
    assert!(reply.status.contains("retry_ms="), "{}", reply.status);

    // Cache hits and cheap verbs are always admitted, even at red.
    let hit = c.send("count M(3,2) 10 0 0 80").unwrap();
    assert_eq!(hit.status, cached.status, "cache hits must bypass shedding");
    assert_eq!(c.send("ping").unwrap().status, "OK pong");

    // Release the gate: the jammed and queued queries complete normally.
    gate.open();
    for raw in [jam, queued] {
        let mut reader = BufReader::new(raw);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK count="), "{line}");
    }
    assert!(metric(&mut c, "flowmotif_serve_load_shed_total") >= 2.0);
    assert!(metric(&mut c, "flowmotif_serve_cache_hits_total") >= 1.0);
    server.shutdown();
}

// ------------------------------------------------------------- connection cap

#[test]
fn connections_beyond_the_cap_are_refused_with_busy() {
    let (server, _) = server(ServerConfig { max_connections: 2, ..ServerConfig::default() });
    let addr = server.local_addr();
    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    assert_eq!(a.send("ping").unwrap().status, "OK pong");
    assert_eq!(b.send("ping").unwrap().status, "OK pong");
    // The third connection gets a BUSY line and a close, not service.
    let mut over = TcpStream::connect(addr).unwrap();
    let mut text = String::new();
    over.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("BUSY"), "{text:?}");
    // Dropping one admitted connection frees the slot.
    drop(a);
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let mut again = Client::connect(addr).unwrap();
        match again.send("ping") {
            Ok(reply) if reply.status == "OK pong" => break,
            _ => {
                assert!(Instant::now() < deadline, "freed connection slot never reusable");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    assert_eq!(b.send("ping").unwrap().status, "OK pong");
    server.shutdown();
}
