//! The headline integration test: N client threads query a live server
//! *while* edges stream in, and every answer — attributed to its
//! snapshot epoch — must equal a batch rebuild of exactly the stream
//! prefix that epoch published.
//!
//! The protocol makes this checkable: `publish` returns the new epoch,
//! and every `count`/`query` reply carries the epoch it was answered at.
//! The writer records the epoch → prefix-length mapping as it publishes;
//! at the end each concurrent result is re-derived offline with
//! `GraphBuilder` + `count_instances_in_window` over that prefix.

use flowmotif_core::{catalog, count_instances_in_window, enumerate_all};
use flowmotif_graph::{GraphBuilder, TimeWindow};
use flowmotif_serve::{Client, Server, ServerConfig};
use flowmotif_stream::SnapshotEngine;
use flowmotif_util::rng::{RngExt, SeedableRng, StdRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const NODES: u32 = 15;
const EDGES: usize = 300;
const BATCH: usize = 50;
const READERS: usize = 4;
/// Every query carries the same full window, so a batch rebuild of a
/// prefix answers it identically.
const WINDOW: (i64, i64) = (0, 1_000_000);
const QUERY: &str = "count M(3,2) 30 5 0 1000000";

/// Deterministic mostly-in-order edge stream with enough locality that
/// M(3,2) instances actually form.
fn edge_stream() -> Vec<(u32, u32, i64, f64)> {
    let mut rng = StdRng::seed_from_u64(7);
    let mut t = 0i64;
    (0..EDGES)
        .map(|_| {
            t += rng.random_range(0i64..3);
            let u = rng.random_range(0..NODES);
            let mut v = rng.random_range(0..NODES);
            while v == u {
                v = rng.random_range(0..NODES);
            }
            // ~10% stragglers arrive out of order.
            let jitter =
                if rng.random_range(0u32..10) == 0 { rng.random_range(1i64..20) } else { 0 };
            (u, v, (t - jitter).max(0), rng.random_range(1u32..10) as f64)
        })
        .collect()
}

fn batch_count(edges: &[(u32, u32, i64, f64)]) -> u64 {
    let motif = catalog::by_name("M(3,2)", 30, 5.0).unwrap();
    let mut b = GraphBuilder::new();
    b.extend_interactions(edges.iter().copied());
    let g = b.build_time_series_graph();
    count_instances_in_window(&g, &motif, TimeWindow::new(WINDOW.0, WINDOW.1)).0
}

#[test]
fn concurrent_clients_match_batch_rebuild_during_live_ingestion() {
    let engine = Arc::new(SnapshotEngine::new());
    let server = Server::start(
        Arc::clone(&engine),
        ServerConfig { workers: READERS + 2, show: usize::MAX, ..ServerConfig::default() },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr();
    let edges = Arc::new(edge_stream());

    // epoch -> number of stream-prefix edges that epoch contains.
    let prefix_of_epoch = Arc::new(Mutex::new(HashMap::from([(0u64, 0usize)])));
    let done = Arc::new(AtomicBool::new(false));

    // The writer: one client ingesting over the wire, publishing after
    // every batch and recording which prefix each epoch froze.
    let writer = {
        let edges = Arc::clone(&edges);
        let prefix_of_epoch = Arc::clone(&prefix_of_epoch);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            for (batch_idx, batch) in edges.chunks(BATCH).enumerate() {
                for &(u, v, t, f) in batch {
                    let reply = c.send(&format!("add {u} {v} {t} {f}")).unwrap();
                    assert!(reply.is_ok(), "{}", reply.status);
                }
                let reply = c.send("publish").unwrap();
                let epoch: u64 = reply.field("epoch").unwrap().parse().unwrap();
                let prefix = (batch_idx + 1) * BATCH;
                prefix_of_epoch.lock().unwrap().insert(epoch, prefix.min(edges.len()));
                // Hold each epoch open briefly so the readers demonstrably
                // interleave with several distinct snapshots.
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            done.store(true, Ordering::Release);
        })
    };

    // The readers: query concurrently with ingestion, recording
    // (epoch, count) pairs for offline verification.
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut observed: Vec<(u64, u64)> = Vec::new();
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let reply = c.send(QUERY).unwrap();
                    assert!(reply.is_ok(), "{}", reply.status);
                    let epoch: u64 = reply.field("epoch").unwrap().parse().unwrap();
                    let count: u64 = reply.field("count").unwrap().parse().unwrap();
                    observed.push((epoch, count));
                    // One guaranteed query *after* the final publish, so
                    // every reader also verifies the complete stream.
                    if finished {
                        return observed;
                    }
                }
            })
        })
        .collect();

    writer.join().unwrap();
    let results: Vec<Vec<(u64, u64)>> = readers.into_iter().map(|r| r.join().unwrap()).collect();

    // Offline verification: every concurrently observed count equals the
    // batch rebuild of the exact prefix its epoch published.
    let prefix_of_epoch = prefix_of_epoch.lock().unwrap();
    let mut expected_of_epoch: HashMap<u64, u64> = HashMap::new();
    let mut distinct_epochs = std::collections::HashSet::new();
    let mut total_queries = 0usize;
    for (reader_idx, observed) in results.iter().enumerate() {
        assert!(!observed.is_empty(), "reader {reader_idx} never completed a query");
        for &(epoch, count) in observed {
            let &prefix = prefix_of_epoch
                .get(&epoch)
                .unwrap_or_else(|| panic!("reader {reader_idx} saw unpublished epoch {epoch}"));
            let expected =
                *expected_of_epoch.entry(epoch).or_insert_with(|| batch_count(&edges[..prefix]));
            assert_eq!(
                count, expected,
                "reader {reader_idx}, epoch {epoch} (prefix {prefix}): served count diverged \
                 from batch rebuild"
            );
            distinct_epochs.insert(epoch);
            total_queries += 1;
        }
    }
    // The race must have been real: queries interleaved with ingestion
    // across multiple different snapshots, and the workload non-trivial.
    assert!(total_queries >= READERS, "at least one verified query per reader");
    assert!(
        distinct_epochs.len() >= 2,
        "readers only ever saw one epoch — no concurrency was exercised"
    );
    let final_epoch = (EDGES / BATCH) as u64;
    let final_count = expected_of_epoch.get(&final_epoch).copied();
    assert!(
        results.iter().flatten().any(|&(e, _)| e == final_epoch),
        "no reader observed the final epoch"
    );
    assert!(final_count.unwrap_or_else(|| batch_count(&edges)) > 0, "workload has no instances");

    // Full materialised equality on the final snapshot: the instance
    // lines served over the wire equal a local enumeration of the batch
    // rebuild, instance by instance.
    let mut c = Client::connect(addr).unwrap();
    let reply = c.send("query M(3,2) 30 5").unwrap();
    assert!(reply.is_ok(), "{}", reply.status);
    assert_eq!(reply.field("epoch"), Some(final_epoch.to_string().as_str()));

    let motif = catalog::by_name("M(3,2)", 30, 5.0).unwrap();
    let mut b = GraphBuilder::new();
    b.extend_interactions(edges.iter().copied());
    let g = b.build_time_series_graph();
    let (groups, _) = enumerate_all(&g, &motif);
    let mut expected_lines: Vec<String> = Vec::new();
    for (sm, insts) in &groups {
        let nodes: Vec<String> = sm.walk_nodes(&g).into_iter().map(|n| n.to_string()).collect();
        let nodes = nodes.join("-");
        for inst in insts {
            expected_lines.push(format!(
                "nodes={nodes} flow={} span={} sets={}",
                inst.flow,
                inst.span(),
                inst.display(&g)
            ));
        }
    }
    assert_eq!(reply.data, expected_lines, "served instances diverge from batch rebuild");
    assert_eq!(reply.field("instances"), Some(expected_lines.len().to_string().as_str()));

    server.shutdown();
}
