//! The engine abstraction the server talks to: anything that can
//! absorb appends and hand out immutable, epoch-stamped query views.
//!
//! Two implementations exist today, and the whole server front-end
//! (accept loop, admission control, reply formatting) is generic over
//! them:
//!
//! * [`flowmotif_stream::SnapshotEngine`] — the resident in-memory
//!   engine (epoch = copy-on-write clone of the compacted graph);
//! * [`flowmotif_stream::EpochEngine`] — the out-of-core engine
//!   (epoch = memory-mapped sealed segment + in-RAM delta overlay),
//!   behind `flowmotif serve <dir> --packed`.

use flowmotif_core::{
    ExtensionOrder, Motif, MotifInstance, SearchScratch, SearchStats, StructuralMatch, TraceSink,
};
use flowmotif_graph::{Flow, GraphError, GraphStore, NodeId, TimeWindow, Timestamp};
use flowmotif_stream::{
    EngineStats, EpochEngine, EpochSnapshot, PublishReport, QueryResult, Snapshot, SnapshotEngine,
    StandingEvent, StandingQueries,
};
use std::sync::Arc;

/// An immutable query view of one epoch. Implementors are cheap to
/// clone out of the engine and safe to search from many threads.
pub trait EngineSnapshot: Send + Sync {
    /// The publish sequence number of this view.
    fn epoch(&self) -> u64;

    /// Two-phase motif search, restricted to `bounds` when given,
    /// running out of the caller's search arena. `trace`, when set,
    /// receives the per-stage breakdown of this one query (the server's
    /// slow-query log); `None` keeps the search on the zero-overhead
    /// untraced path. `order`, when set, overrides the engine's P1
    /// extension order for this one query (the protocol's `order=`
    /// option).
    fn query_with(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
        trace: Option<&'static dyn TraceSink>,
        order: Option<ExtensionOrder>,
    ) -> QueryResult;

    /// Counts maximal instances without materialising them.
    fn count_with(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
        trace: Option<&'static dyn TraceSink>,
        order: Option<ExtensionOrder>,
    ) -> (u64, SearchStats);

    /// Renders one result for the wire: the `-`-joined walk nodes and
    /// the per-edge interaction sets (graph access stays behind the
    /// trait, so the reply formatter needs no graph type).
    fn describe(&self, sm: &StructuralMatch, inst: &MotifInstance) -> (String, String);
}

/// A query engine the server can front: appends, epoch publishing, and
/// snapshot handout. All methods take `&self` — the server shares the
/// engine across its worker pool.
pub trait MotifEngine: Send + Sync + 'static {
    /// The epoch view this engine hands out.
    type Snapshot: EngineSnapshot;

    /// Appends one interaction; returns the stream watermark after it.
    fn append(
        &self,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        flow: Flow,
    ) -> Result<Timestamp, GraphError>;

    /// Publishes buffered appends as a new epoch (no-op when clean).
    fn publish(&self) -> u64;

    /// Epoch of the currently published view.
    fn published_epoch(&self) -> u64;

    /// Registers a callback fired with the new epoch number on every
    /// epoch install (explicit publish, auto-publish, or compaction).
    /// At most one hook is kept. The hook may run while the engine's
    /// writer lock is held, so it must be cheap and must not call back
    /// into the engine — the server uses it to keep a lock-free copy of
    /// the current epoch for its result cache.
    fn set_publish_hook(&self, hook: Box<dyn Fn(u64) + Send + Sync>);

    /// Drops interactions older than `floor`, where supported; engines
    /// over immutable storage return 0.
    fn evict_before(&self, floor: Timestamp) -> usize;

    /// Consolidates storage (fold buffered tails, or reseal a segment).
    fn compact(&self);

    /// Live writer-side statistics.
    fn stats(&self) -> EngineStats;

    /// Cost telemetry of the most recent publish.
    fn publish_report(&self) -> PublishReport;

    /// The currently published epoch view.
    fn snapshot(&self) -> Self::Snapshot;

    /// Registers a standing query in `subs`, seeding it against the
    /// engine's *current* writer-side graph (not the published epoch —
    /// the subscription must see exactly the events later appends will
    /// delta against). Returns the subscription id.
    fn subscribe_standing(
        &self,
        subs: &mut StandingQueries,
        motif: Motif,
        bounds: Option<TimeWindow>,
    ) -> u64;

    /// Appends one interaction and delta-evaluates every standing query
    /// in `subs` against the post-append graph, pushing one
    /// [`StandingEvent`] per instance entering a result set. Returns
    /// the stream watermark, like [`MotifEngine::append`].
    fn append_standing(
        &self,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        flow: Flow,
        subs: &mut StandingQueries,
        out: &mut Vec<StandingEvent>,
    ) -> Result<Timestamp, GraphError>;

    /// Evicts interactions older than `floor` and delta-evaluates the
    /// standing queries against the post-eviction graph (instances can
    /// *become* maximal when older events leave their window). Engines
    /// over immutable storage return 0 without evaluating.
    fn evict_standing(
        &self,
        floor: Timestamp,
        subs: &mut StandingQueries,
        out: &mut Vec<StandingEvent>,
    ) -> usize;
}

fn describe_on<G: GraphStore>(
    g: &G,
    sm: &StructuralMatch,
    inst: &MotifInstance,
) -> (String, String) {
    let nodes: Vec<String> = sm.walk_nodes(g).into_iter().map(|n| n.to_string()).collect();
    (nodes.join("-"), inst.display(g))
}

impl EngineSnapshot for Arc<Snapshot> {
    fn epoch(&self) -> u64 {
        Snapshot::epoch(self)
    }

    fn query_with(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
        trace: Option<&'static dyn TraceSink>,
        order: Option<ExtensionOrder>,
    ) -> QueryResult {
        Snapshot::query_ordered(self, motif, bounds, scratch, trace, order)
    }

    fn count_with(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
        trace: Option<&'static dyn TraceSink>,
        order: Option<ExtensionOrder>,
    ) -> (u64, SearchStats) {
        Snapshot::count_ordered(self, motif, bounds, scratch, trace, order)
    }

    fn describe(&self, sm: &StructuralMatch, inst: &MotifInstance) -> (String, String) {
        describe_on(self.graph(), sm, inst)
    }
}

impl MotifEngine for SnapshotEngine {
    type Snapshot = Arc<Snapshot>;

    fn append(
        &self,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        flow: Flow,
    ) -> Result<Timestamp, GraphError> {
        SnapshotEngine::append(self, from, to, time, flow)
    }

    fn publish(&self) -> u64 {
        SnapshotEngine::publish(self)
    }

    fn published_epoch(&self) -> u64 {
        SnapshotEngine::published_epoch(self)
    }

    fn set_publish_hook(&self, hook: Box<dyn Fn(u64) + Send + Sync>) {
        SnapshotEngine::set_publish_hook(self, hook);
    }

    fn evict_before(&self, floor: Timestamp) -> usize {
        SnapshotEngine::evict_before(self, floor)
    }

    fn compact(&self) {
        SnapshotEngine::compact(self);
    }

    fn stats(&self) -> EngineStats {
        SnapshotEngine::stats(self)
    }

    fn publish_report(&self) -> PublishReport {
        SnapshotEngine::publish_report(self)
    }

    fn snapshot(&self) -> Arc<Snapshot> {
        SnapshotEngine::snapshot(self)
    }

    fn subscribe_standing(
        &self,
        subs: &mut StandingQueries,
        motif: Motif,
        bounds: Option<TimeWindow>,
    ) -> u64 {
        SnapshotEngine::subscribe_standing(self, subs, motif, bounds)
    }

    fn append_standing(
        &self,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        flow: Flow,
        subs: &mut StandingQueries,
        out: &mut Vec<StandingEvent>,
    ) -> Result<Timestamp, GraphError> {
        SnapshotEngine::append_standing(self, from, to, time, flow, subs, out)
    }

    fn evict_standing(
        &self,
        floor: Timestamp,
        subs: &mut StandingQueries,
        out: &mut Vec<StandingEvent>,
    ) -> usize {
        SnapshotEngine::evict_standing(self, floor, subs, out)
    }
}

impl EngineSnapshot for Arc<EpochSnapshot> {
    fn epoch(&self) -> u64 {
        EpochSnapshot::epoch(self)
    }

    fn query_with(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
        trace: Option<&'static dyn TraceSink>,
        order: Option<ExtensionOrder>,
    ) -> QueryResult {
        EpochSnapshot::query_ordered(self, motif, bounds, scratch, trace, order)
    }

    fn count_with(
        &self,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        scratch: &mut SearchScratch,
        trace: Option<&'static dyn TraceSink>,
        order: Option<ExtensionOrder>,
    ) -> (u64, SearchStats) {
        EpochSnapshot::count_ordered(self, motif, bounds, scratch, trace, order)
    }

    fn describe(&self, sm: &StructuralMatch, inst: &MotifInstance) -> (String, String) {
        describe_on(self.graph(), sm, inst)
    }
}

impl MotifEngine for EpochEngine {
    type Snapshot = Arc<EpochSnapshot>;

    fn append(
        &self,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        flow: Flow,
    ) -> Result<Timestamp, GraphError> {
        EpochEngine::append(self, from, to, time, flow)
    }

    fn publish(&self) -> u64 {
        EpochEngine::publish(self)
    }

    fn published_epoch(&self) -> u64 {
        EpochEngine::published_epoch(self)
    }

    fn set_publish_hook(&self, hook: Box<dyn Fn(u64) + Send + Sync>) {
        EpochEngine::set_publish_hook(self, hook);
    }

    /// Sealed segments are immutable; nothing is evicted.
    fn evict_before(&self, _floor: Timestamp) -> usize {
        0
    }

    /// Reseals base ∪ delta into a fresh segment. A reseal failure (an
    /// I/O error while writing the new file) leaves the current base
    /// and delta fully intact, so it is safe to swallow here — the
    /// engine keeps serving and the next compact retries.
    fn compact(&self) {
        let _ = self.reseal();
    }

    fn stats(&self) -> EngineStats {
        EpochEngine::stats(self)
    }

    fn publish_report(&self) -> PublishReport {
        EpochEngine::publish_report(self)
    }

    fn snapshot(&self) -> Arc<EpochSnapshot> {
        EpochEngine::snapshot(self)
    }

    fn subscribe_standing(
        &self,
        subs: &mut StandingQueries,
        motif: Motif,
        bounds: Option<TimeWindow>,
    ) -> u64 {
        EpochEngine::subscribe_standing(self, subs, motif, bounds)
    }

    fn append_standing(
        &self,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        flow: Flow,
        subs: &mut StandingQueries,
        out: &mut Vec<StandingEvent>,
    ) -> Result<Timestamp, GraphError> {
        EpochEngine::append_standing(self, from, to, time, flow, subs, out)
    }

    /// Sealed segments are immutable; nothing is evicted and no
    /// standing query can change.
    fn evict_standing(
        &self,
        _floor: Timestamp,
        _subs: &mut StandingQueries,
        _out: &mut Vec<StandingEvent>,
    ) -> usize {
        0
    }
}
