//! The server's metric surface: one [`MetricsRegistry`] per server,
//! rendered on demand by the `metrics` request.
//!
//! Serve-tier series (request counters, latency histograms, rejection
//! counters) are owned here and updated lock-free on the request path.
//! Stream-tier and storage-tier series are process-wide statics owned
//! by their crates (`flowmotif_stream::metrics`,
//! `flowmotif_graph::metrics`) and sampled through closures at render
//! time — if several servers share one process, each renders the same
//! process totals for those families.

use flowmotif_obs::{Counter, Histogram, MetricsRegistry};
use std::sync::Arc;
use std::time::Duration;

/// Every protocol verb, in the order the `flowmotif_serve_requests_total`
/// family is registered (one labeled series per verb).
const VERBS: [&str; 14] = [
    "ping",
    "add",
    "query",
    "count",
    "subscribe",
    "unsubscribe",
    "publish",
    "evict",
    "compact",
    "stats",
    "session",
    "metrics",
    "quit",
    "error",
];

/// Verbs whose wall-clock latency is worth a histogram: the ones that
/// touch the engine.
const TIMED_VERBS: [&str; 5] = ["query", "count", "add", "publish", "subscribe"];

/// Handles into the server's registry, indexed by verb where labeled.
#[derive(Debug)]
pub(crate) struct ServerMetrics {
    registry: MetricsRegistry,
    /// `flowmotif_serve_requests_total{verb=…}`, aligned with [`VERBS`].
    requests: Vec<(&'static str, Arc<Counter>)>,
    /// `flowmotif_serve_request_duration_seconds{verb=…}`, aligned with
    /// [`TIMED_VERBS`].
    latency: Vec<(&'static str, Arc<Histogram>)>,
    /// Transient `BUSY` query rejections (in-flight cap).
    pub busy: Arc<Counter>,
    /// Non-transient `ERR admission` query rejections (window cap).
    pub admission_rejected: Arc<Counter>,
    /// Queries that crossed the `--slow-query-ms` threshold.
    pub slow_queries: Arc<Counter>,
    /// Push `EVENT` lines written to subscriber connections.
    pub events_pushed: Arc<Counter>,
    /// Push `EVENT` lines dropped because a subscriber's notify queue
    /// was full (backpressure).
    pub events_dropped: Arc<Counter>,
    /// Queries answered from the epoch-keyed result cache.
    pub cache_hits: Arc<Counter>,
    /// Queries that missed the result cache and went to the engine.
    pub cache_misses: Arc<Counter>,
    /// Cold queries shed with a transient `BUSY` by the event loop
    /// (worker backlog tiers), as opposed to the in-flight cap.
    pub load_shed: Arc<Counter>,
}

impl ServerMetrics {
    /// Builds the registry with every serve-owned family plus the
    /// stream/storage statics; engine-specific gauges are added by the
    /// caller through [`ServerMetrics::registry`].
    pub(crate) fn new() -> Self {
        let registry = MetricsRegistry::new();
        let requests: Vec<(&'static str, Arc<Counter>)> = VERBS
            .iter()
            .map(|&verb| {
                let c = registry.counter_labeled(
                    "flowmotif_serve_requests_total",
                    Some(("verb", verb)),
                    "Requests handled, by protocol verb (`error` = unparsable line)",
                );
                (verb, c)
            })
            .collect();
        let latency: Vec<(&'static str, Arc<Histogram>)> = TIMED_VERBS
            .iter()
            .map(|&verb| {
                let h = registry.histogram_labeled(
                    "flowmotif_serve_request_duration_seconds",
                    Some(("verb", verb)),
                    "Wall-clock request latency, by engine-touching verb",
                );
                (verb, h)
            })
            .collect();
        let busy = registry.counter(
            "flowmotif_serve_busy_total",
            "Queries rejected with a transient BUSY (in-flight cap reached)",
        );
        let admission_rejected = registry.counter(
            "flowmotif_serve_admission_rejected_total",
            "Queries rejected with ERR admission (window wider than the server cap)",
        );
        let slow_queries = registry.counter(
            "flowmotif_serve_slow_queries_total",
            "Queries that crossed the --slow-query-ms threshold",
        );
        let events_pushed = registry.counter(
            "flowmotif_serve_events_pushed_total",
            "Push EVENT lines delivered to subscriber connections",
        );
        let events_dropped = registry.counter(
            "flowmotif_serve_events_dropped_total",
            "Push EVENT lines dropped on a full subscriber queue (backpressure)",
        );
        let cache_hits = registry.counter(
            "flowmotif_serve_cache_hits_total",
            "Queries answered from the epoch-keyed result cache",
        );
        let cache_misses = registry.counter(
            "flowmotif_serve_cache_misses_total",
            "Queries that missed the result cache and ran on the engine",
        );
        let load_shed = registry.counter(
            "flowmotif_serve_load_shed_total",
            "Cold queries shed with a transient BUSY under worker-backlog pressure",
        );

        use flowmotif_stream::metrics as stream;
        registry.counter_fn(
            "flowmotif_stream_publishes_total",
            "Non-no-op snapshot publishes (process-wide)",
            || stream::PUBLISHES_TOTAL.get(),
        );
        registry.gauge_fn(
            "flowmotif_stream_last_publish_seconds",
            "Duration of the most recent publish (publish lag)",
            || stream::LAST_PUBLISH_DURATION_NS.get() as f64 * 1e-9,
        );
        registry.gauge_fn(
            "flowmotif_stream_last_publish_dirty_pairs",
            "Dirty pairs folded in by the most recent publish",
            || stream::LAST_PUBLISH_DIRTY_PAIRS.get() as f64,
        );
        registry.gauge_fn(
            "flowmotif_stream_epoch_age_seconds",
            "Seconds since the most recent publish (0 before the first)",
            stream::epoch_age_seconds,
        );
        registry.counter_fn(
            "flowmotif_stream_reseals_total",
            "Segment reseals (base ∪ delta merges, process-wide)",
            || stream::RESEALS_TOTAL.get(),
        );
        registry.gauge_fn(
            "flowmotif_stream_last_reseal_seconds",
            "Duration of the most recent reseal",
            || stream::LAST_RESEAL_DURATION_NS.get() as f64 * 1e-9,
        );

        use flowmotif_graph::metrics as storage;
        registry.gauge_fn(
            "flowmotif_storage_segment_mapped_bytes",
            "Bytes of segment files currently memory-mapped (process-wide)",
            || storage::SEGMENT_MAPPED_BYTES.get() as f64,
        );
        registry.gauge_fn(
            "flowmotif_storage_segment_resident_bytes",
            "Estimated heap bytes resident per open segment store (index + headers)",
            || storage::SEGMENT_RESIDENT_BYTES.get() as f64,
        );
        registry.counter_fn(
            "flowmotif_storage_segment_section_reads_total",
            "Series reads against mapped segment sections (process-wide, batched per thread)",
            || storage::SEGMENT_SECTION_READS.get(),
        );
        registry.counter_fn(
            "flowmotif_storage_segment_opens_total",
            "Segment stores opened (process-wide)",
            || storage::SEGMENT_OPENS.get(),
        );

        Self {
            registry,
            requests,
            latency,
            busy,
            admission_rejected,
            slow_queries,
            events_pushed,
            events_dropped,
            cache_hits,
            cache_misses,
            load_shed,
        }
    }

    /// The underlying registry, for engine-specific `gauge_fn`s.
    pub(crate) fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Bumps the request counter of `verb` (a [`VERBS`] member).
    pub(crate) fn inc_verb(&self, verb: &str) {
        if let Some((_, c)) = self.requests.iter().find(|(v, _)| *v == verb) {
            c.inc();
        }
    }

    /// Records one request latency for `verb`; no-op for untimed verbs.
    pub(crate) fn observe(&self, verb: &str, elapsed: Duration) {
        if let Some((_, h)) = self.latency.iter().find(|(v, _)| *v == verb) {
            h.record(elapsed);
        }
    }

    /// Renders every family in the Prometheus text exposition format.
    pub(crate) fn render(&self) -> String {
        self.registry.render()
    }
}
