//! Network front-end for the resident motif query engine: a
//! dependency-free TCP line-protocol server over
//! [`flowmotif_stream::SnapshotEngine`].
//!
//! The paper positions flow-motif search as an analytics primitive over
//! live interaction networks; this crate turns the single-threaded
//! resident engine into a multi-client service:
//!
//! * [`Server`] — `std::net::TcpListener`, an accept thread and a
//!   **bounded worker pool** (thread-per-connection up to the pool size,
//!   excess connections queue, overflow is refused with `BUSY`).
//! * **Snapshot reads** — queries run against immutable epoch-stamped
//!   [`flowmotif_stream::Snapshot`]s, so readers never block the
//!   ingesting writer and a slow query never delays an append.
//! * **Admission control** — a cap on concurrently executing queries
//!   (transient `BUSY` reply, retryable) and a per-query time-window cap
//!   (permanent `ERR admission` reply), so one client cannot monopolise
//!   the pool with unbounded scans.
//! * [`Client`] — a tiny blocking client speaking the same protocol, used
//!   by `flowmotif client` and the integration tests.
//!
//! The wire protocol is one request line in, one framed reply out
//! (`DATA …` lines, then a single `OK`/`ERR`/`BUSY` status line); see
//! `PROTOCOL.md` next to this crate for the normative description.
//!
//! ```
//! use flowmotif_serve::{Client, Server, ServerConfig};
//! use flowmotif_stream::SnapshotEngine;
//! use std::sync::Arc;
//!
//! let engine = Arc::new(SnapshotEngine::new());
//! let server = Server::start(engine, ServerConfig::default(), "127.0.0.1:0").unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! client.send("add 0 1 10 5").unwrap();
//! client.send("add 1 2 12 4").unwrap();
//! client.send("publish").unwrap();
//! let reply = client.send("count M(3,2) 10 0").unwrap();
//! assert_eq!(reply.field("count"), Some("1"));
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
mod metrics;
pub mod protocol;
pub mod server;
pub mod source;

pub use client::Client;
pub use protocol::{ErrorCode, Reply, Request, MAX_LINE_BYTES};
pub use server::{Server, ServerConfig};
pub use source::{EngineSnapshot, MotifEngine};
