//! Network front-end for the resident motif query engine: a
//! dependency-free TCP line-protocol server over
//! [`flowmotif_stream::SnapshotEngine`].
//!
//! The paper positions flow-motif search as an analytics primitive over
//! live interaction networks; this crate turns the single-threaded
//! resident engine into a multi-client service:
//!
//! * [`Server`] — a **readiness-driven event loop** front-end: a fixed
//!   set of loop threads multiplexes every connection over `poll(2)`
//!   with nonblocking sockets, so thousands of idle connections cost a
//!   few fds and buffers, not threads. Engine-touching requests run on
//!   a **bounded worker pool**; cheap verbs, parse errors, load-shed
//!   rejections and result-cache hits answer on the loop itself.
//! * **Pipelining** — clients may write many request lines without
//!   waiting; replies come back in order. Per connection, execution
//!   stays serial (at most one request of a connection is on a worker
//!   at a time), which is what makes pipelining observably identical to
//!   one-at-a-time request/reply.
//! * **Snapshot reads** — queries run against immutable epoch-stamped
//!   [`flowmotif_stream::Snapshot`]s, so readers never block the
//!   ingesting writer and a slow query never delays an append.
//! * **Result cache** — framed `query`/`count` replies keyed by
//!   `(epoch, spec)`; a publish changes the key, which is the entire
//!   invalidation story, so a stale reply can never be served.
//! * **Admission control and load shedding** — a cap on concurrently
//!   executing queries and a per-query time-window cap, plus tiered
//!   shedding under worker-backlog pressure (unbounded cold queries go
//!   first, cache hits and cheap verbs are always admitted); transient
//!   rejections carry a `retry_ms=` hint.
//! * [`Client`] — a tiny blocking client speaking the same protocol
//!   (including [`Client::send_batch`] pipelining), used by
//!   `flowmotif client` and the integration tests.
//!
//! The wire protocol is one request line in, one framed reply out
//! (`DATA …` lines, then a single `OK`/`ERR`/`BUSY` status line); see
//! `PROTOCOL.md` next to this crate for the normative description.
//!
//! ```
//! use flowmotif_serve::{Client, Server, ServerConfig};
//! use flowmotif_stream::SnapshotEngine;
//! use std::sync::Arc;
//!
//! let engine = Arc::new(SnapshotEngine::new());
//! let server = Server::start(engine, ServerConfig::default(), "127.0.0.1:0").unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! client.send("add 0 1 10 5").unwrap();
//! client.send("add 1 2 12 4").unwrap();
//! client.send("publish").unwrap();
//! let reply = client.send("count M(3,2) 10 0").unwrap();
//! assert_eq!(reply.field("count"), Some("1"));
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cache;
pub mod client;
mod conn;
mod metrics;
mod poll;
pub mod protocol;
pub mod server;
pub mod source;

pub use client::Client;
pub use protocol::{ErrorCode, Reply, Request, MAX_LINE_BYTES};
pub use server::{Server, ServerConfig};
pub use source::{EngineSnapshot, MotifEngine};
