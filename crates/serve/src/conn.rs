//! The readiness-driven I/O core: a fixed set of event-loop threads
//! multiplexing every connection over [`poll(2)`](crate::poll), with
//! per-connection read/write buffers and a state machine that parses
//! many in-flight request lines (pipelining).
//!
//! Division of labour:
//!
//! * **Accept thread** — blocks in `poll` on the listener plus a waker
//!   (no sleep ticks), enforces the connection cap, and hands accepted
//!   sockets to the loops round-robin.
//! * **Event loops** — own the connections. They parse request lines,
//!   answer the cheap ones inline (`ping`, `session`, `quit`, parse
//!   errors, window-admission rejections, result-cache hits, load-shed
//!   `BUSY` replies) and never take an engine lock; everything else is
//!   dispatched to the worker pool. Replies and push `EVENT` lines are
//!   flushed on writability, so a slow reader can no longer pin a
//!   worker thread.
//! * **Worker pool** — executes engine-touching requests off a shared
//!   [`JobQueue`]. At most one job per connection is ever in flight
//!   (the session travels with the job), which preserves the
//!   protocol's strictly sequential reply order for free; pipelining
//!   wins come from syscall coalescing and from the loops overlapping
//!   parse/flush with execution.
//!
//! Wire semantics are bit-identical to the thread-per-connection
//! server; `tests/protocol_edge_cases.rs` is the contract.

use crate::poll::{poll_fds, PollFd, Waker, POLLIN, POLLOUT};
use crate::protocol::{parse_request, Request, MAX_LINE_BYTES};
use crate::server::{cache_key, handle_request, retry_hint, window_rejection, Session, Shared};
use crate::source::MotifEngine;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Parsed-but-unexecuted requests buffered per connection; beyond this
/// the loop stops reading (backpressure) until the queue drains.
const PIPELINE_MAX: usize = 128;

/// Unflushed reply bytes per connection before the loop stops reading
/// from that peer — a slow reader stalls itself, nobody else.
const WRITE_HIGH_WATER: usize = 256 * 1024;

/// One socket read per syscall.
const READ_CHUNK: usize = 16 * 1024;

/// An oversized line's tail is discarded up to this budget before the
/// error reply is sent regardless.
const DRAIN_BUDGET: usize = 16 * MAX_LINE_BYTES;

/// Quiet gap after which an oversized-line drain gives up waiting for
/// the terminating newline and sends the error reply (mirrors the old
/// per-read 50 ms timeout, and keeps the reply ahead of the close so
/// unread input cannot RST it away).
const DRAIN_QUIET: Duration = Duration::from_millis(50);

/// An engine-touching request in flight on the worker pool. The
/// session rides along: while it is checked out, the owning connection
/// cannot dispatch another job — the serial-per-connection invariant.
#[derive(Debug)]
pub(crate) struct Job {
    slot: usize,
    gen: u64,
    loop_idx: usize,
    request: Request,
    session: Box<Session>,
}

/// A finished job on its way back to the owning event loop.
#[derive(Debug)]
struct Completion {
    slot: usize,
    gen: u64,
    reply: String,
    close: bool,
    session: Box<Session>,
}

/// The bounded worker pool's shared queue. `load` counts queued plus
/// executing jobs — the signal the load-shedding tiers key off.
#[derive(Debug, Default)]
pub(crate) struct JobQueue {
    q: Mutex<VecDeque<Job>>,
    cv: Condvar,
    load: AtomicUsize,
    stopped: AtomicBool,
}

impl JobQueue {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Queued plus currently executing jobs.
    pub(crate) fn load(&self) -> usize {
        self.load.load(Ordering::Acquire)
    }

    fn push(&self, job: Job) {
        self.load.fetch_add(1, Ordering::AcqRel);
        self.q.lock().unwrap().push_back(job);
        self.cv.notify_one();
    }

    /// Blocks for the next job; `None` once stopped (queued jobs left
    /// behind at shutdown are dropped, like the old pool dropped its
    /// connection backlog).
    fn pop(&self) -> Option<Job> {
        let mut q = self.q.lock().unwrap();
        loop {
            if self.stopped.load(Ordering::Acquire) {
                return None;
            }
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            q = self.cv.wait(q).unwrap();
        }
    }

    fn done(&self) {
        self.load.fetch_sub(1, Ordering::AcqRel);
    }

    pub(crate) fn stop(&self) {
        self.stopped.store(true, Ordering::Release);
        self.cv.notify_all();
    }
}

/// One event loop's mailbox: sockets from the accept thread and
/// completions from the workers, plus the waker that interrupts its
/// `poll` wait.
#[derive(Debug)]
pub(crate) struct LoopInbox {
    new_conns: Mutex<Vec<TcpStream>>,
    completions: Mutex<Vec<Completion>>,
    pub(crate) waker: Waker,
}

impl LoopInbox {
    pub(crate) fn new() -> io::Result<Self> {
        Ok(Self {
            new_conns: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        })
    }
}

/// Read-side state of one connection.
#[derive(Debug)]
enum ConnState {
    /// Parsing request lines normally.
    Open,
    /// An over-cap line is being discarded; the error reply goes out
    /// once its newline (or EOF, the budget, or a quiet gap) is seen.
    Draining { drained: usize, quiet_since: Option<Instant> },
    /// An oversized line was detected while a job was still in flight:
    /// the error reply waits for that job's reply so frames stay
    /// ordered.
    FailWait,
    /// Reply bytes are flushing; close when the buffer empties.
    Closing,
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    /// Session id, kept outside the session so disconnect cleanup can
    /// run while the session is checked out to a worker.
    sid: u64,
    /// `None` while a job is in flight on the worker pool.
    session: Option<Box<Session>>,
    /// The session's notify queue (shared `Arc`), reachable even while
    /// the session itself is checked out, so push `EVENT` lines flush
    /// between frames without waiting for the job.
    notify: Arc<crate::server::NotifyQueue>,
    state: ConnState,
    /// Peer sent FIN: no more requests, but complete lines already
    /// received still execute and their replies still flush.
    read_closed: bool,
    /// Connection is unusable (I/O error, invalid UTF-8); freed as soon
    /// as no job is in flight.
    dead: bool,
    read_buf: Vec<u8>,
    pending: VecDeque<String>,
    write_buf: Vec<u8>,
    write_pos: usize,
}

impl Conn {
    fn wants_read(&self) -> bool {
        if self.read_closed || self.dead {
            return false;
        }
        match self.state {
            ConnState::Open => {
                self.pending.len() < PIPELINE_MAX && self.buffered_write() < WRITE_HIGH_WATER
            }
            ConnState::Draining { .. } => true,
            ConnState::FailWait | ConnState::Closing => false,
        }
    }

    fn buffered_write(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    fn push_reply(&mut self, reply: &str) {
        self.write_buf.extend_from_slice(reply.as_bytes());
    }

    /// Enters the oversized-line error path: queue the protocol error
    /// and close. Requests that arrived *before* the oversized line
    /// still run first (old sequential-server semantics), so while any
    /// are pending — or one is in flight on the pool — the error is
    /// deferred behind their frames ([`ConnState::FailWait`]).
    fn fail_oversized(&mut self) {
        self.read_buf.clear();
        if self.session.is_none() || !self.pending.is_empty() {
            self.state = ConnState::FailWait;
            return;
        }
        self.push_reply("ERR proto line exceeds 65536 bytes\n");
        self.state = ConnState::Closing;
    }

    /// Writes out as much buffered reply/event data as the socket
    /// accepts right now.
    fn try_flush(&mut self) {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        } else if self.write_pos > WRITE_HIGH_WATER {
            // Reclaim flushed prefix space without reallocating.
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
    }

    /// Reads available bytes and splits them into pending request
    /// lines, switching to the draining state at the line-length cap.
    fn fill_read(&mut self) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if !matches!(self.state, ConnState::Open) || !self.wants_read() {
                return;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    // A partial trailing line is discarded, never
                    // executed — mid-stream disconnect semantics.
                    self.read_buf.clear();
                    return;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    self.extract_lines();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    fn extract_lines(&mut self) {
        loop {
            match self.read_buf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    // The protocol cap counts the newline, like the old
                    // budgeted `read_line` did.
                    if i + 1 > MAX_LINE_BYTES {
                        self.fail_oversized();
                        return;
                    }
                    let line: Vec<u8> = self.read_buf.drain(..=i).collect();
                    let text = match std::str::from_utf8(&line) {
                        Ok(t) => t,
                        Err(_) => {
                            // Matches the old reader: a non-UTF-8 line
                            // is a transport-level failure, closed
                            // without a reply.
                            self.dead = true;
                            return;
                        }
                    };
                    self.pending.push_back(text.trim_end_matches(['\r', '\n']).to_string());
                }
                None => {
                    if self.read_buf.len() > MAX_LINE_BYTES {
                        // Requests already split off stay pending and
                        // still run; only the over-cap line (and
                        // whatever follows it) is lost.
                        let drained = self.read_buf.len();
                        self.read_buf.clear();
                        self.state = ConnState::Draining { drained, quiet_since: None };
                    }
                    return;
                }
            }
        }
    }

    /// Discards the tail of an oversized line until its newline, EOF,
    /// the budget, or (via the caller's deadline check) a quiet gap.
    fn drain_oversized(&mut self) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let ConnState::Draining { drained, .. } = self.state else { return };
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    self.fail_oversized();
                    return;
                }
                Ok(n) => {
                    let total = drained + n;
                    if chunk[..n].contains(&b'\n') || total > DRAIN_BUDGET {
                        self.fail_oversized();
                        return;
                    }
                    self.state = ConnState::Draining { drained: total, quiet_since: None };
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.state = ConnState::Draining { drained, quiet_since: Some(Instant::now()) };
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }
}

/// A slab slot. `gen` increments on every free so a completion for a
/// previous occupant can never be misdelivered to a new connection.
#[derive(Debug, Default)]
struct Slot {
    gen: u64,
    conn: Option<Conn>,
}

/// The accept thread: blocks in `poll` on the listener and a waker —
/// no sleep ticks — and distributes sockets round-robin across the
/// event loops, refusing connections beyond the configured cap.
pub(crate) fn accept_loop<E: MotifEngine>(
    listener: &TcpListener,
    shared: &Shared<E>,
    waker: &Waker,
    shutdown: &AtomicBool,
) {
    let mut next = 0usize;
    let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN), PollFd::new(waker.fd(), POLLIN)];
    while !shutdown.load(Ordering::Acquire) {
        for fd in &mut fds {
            fd.revents = 0;
        }
        if poll_fds(&mut fds, -1).is_err() {
            return;
        }
        waker.drain();
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        loop {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    if shared.conn_count.load(Ordering::Acquire) >= shared.config.max_connections {
                        // Admission control at the connection level.
                        let _ = stream.write_all(b"BUSY connection backlog full, retry later\n");
                        continue;
                    }
                    shared.conn_count.fetch_add(1, Ordering::AcqRel);
                    let inbox = &shared.inboxes[next % shared.inboxes.len()];
                    next = next.wrapping_add(1);
                    inbox.new_conns.lock().unwrap().push(stream);
                    inbox.waker.wake();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }
}

/// A pool worker: executes engine-touching requests and mails the
/// framed reply (and the session) back to the owning event loop.
pub(crate) fn worker_loop<E: MotifEngine>(shared: &Shared<E>) {
    while let Some(mut job) = shared.pool.pop() {
        let (reply, close) = handle_request(job.request, shared, &mut job.session);
        let inbox = &shared.inboxes[job.loop_idx];
        inbox.completions.lock().unwrap().push(Completion {
            slot: job.slot,
            gen: job.gen,
            reply,
            close,
            session: job.session,
        });
        shared.pool.done();
        inbox.waker.wake();
    }
}

/// One event loop thread: multiplexes its share of the connections.
pub(crate) fn event_loop<E: MotifEngine>(
    shared: &Shared<E>,
    loop_idx: usize,
    shutdown: &AtomicBool,
) {
    let inbox = Arc::clone(&shared.inboxes[loop_idx]);
    let mut slots: Vec<Slot> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut fds: Vec<PollFd> = Vec::new();
    let mut fd_slots: Vec<usize> = Vec::new();
    loop {
        // Poll-set construction: the waker first, then every connection
        // with any current interest (idle connections always watch for
        // input, so hangups are noticed promptly).
        fds.clear();
        fd_slots.clear();
        fds.push(PollFd::new(inbox.waker.fd(), POLLIN));
        let mut timeout_ms: i32 = -1;
        for (idx, slot) in slots.iter().enumerate() {
            let Some(conn) = &slot.conn else { continue };
            let mut events = 0i16;
            if conn.wants_read() {
                events |= POLLIN;
            }
            if conn.buffered_write() > 0 {
                events |= POLLOUT;
            }
            if let ConnState::Draining { quiet_since: Some(t0), .. } = conn.state {
                let elapsed = t0.elapsed();
                let left = DRAIN_QUIET.saturating_sub(elapsed).as_millis() as i32 + 1;
                timeout_ms = if timeout_ms < 0 { left } else { timeout_ms.min(left) };
            }
            if events != 0 {
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                fd_slots.push(idx);
            }
        }
        if poll_fds(&mut fds, timeout_ms).is_err() {
            return;
        }
        inbox.waker.drain();
        if shutdown.load(Ordering::Acquire) {
            return; // dropping the slab closes every connection
        }

        // Intake: sockets from the accept thread.
        for stream in inbox.new_conns.lock().unwrap().drain(..) {
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                shared.conn_count.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
            shared.sessions.fetch_add(1, Ordering::Relaxed);
            let sid = shared.next_session.fetch_add(1, Ordering::Relaxed) + 1;
            let session = Box::new(Session { id: sid, ..Session::default() });
            let notify = Arc::clone(&session.queue);
            let conn = Conn {
                stream,
                sid,
                session: Some(session),
                notify,
                state: ConnState::Open,
                read_closed: false,
                dead: false,
                read_buf: Vec::new(),
                pending: VecDeque::new(),
                write_buf: Vec::new(),
                write_pos: 0,
            };
            match free.pop() {
                Some(idx) => slots[idx].conn = Some(conn),
                None => slots.push(Slot { gen: 0, conn: Some(conn) }),
            }
        }

        // Intake: finished jobs from the worker pool.
        for comp in inbox.completions.lock().unwrap().drain(..) {
            let Some(slot) = slots.get_mut(comp.slot) else { continue };
            if slot.gen != comp.gen {
                continue; // stale completion for a freed connection
            }
            let Some(conn) = slot.conn.as_mut() else { continue };
            conn.session = Some(comp.session);
            if !conn.dead {
                conn.push_reply(&comp.reply);
                if comp.close {
                    conn.state = ConnState::Closing;
                    conn.pending.clear();
                } else if matches!(conn.state, ConnState::FailWait) {
                    // An oversized line arrived behind this job: emit
                    // the deferred protocol error after its frame.
                    conn.fail_oversized();
                }
            }
        }

        // Socket readiness.
        for (fd, &idx) in fds.iter().skip(1).zip(&fd_slots) {
            let Some(conn) = slots[idx].conn.as_mut() else { continue };
            if fd.writable() {
                conn.try_flush();
            }
            if fd.readable() {
                match conn.state {
                    ConnState::Open => conn.fill_read(),
                    ConnState::Draining { .. } => conn.drain_oversized(),
                    ConnState::FailWait | ConnState::Closing => {}
                }
            }
        }

        // Per-connection turn: expire drain deadlines, run inline work,
        // dispatch to the pool, flush events and replies, and reap.
        for (idx, slot) in slots.iter_mut().enumerate() {
            let gen = slot.gen;
            let Some(conn) = slot.conn.as_mut() else { continue };
            if let ConnState::Draining { quiet_since: Some(t0), .. } = conn.state {
                if t0.elapsed() >= DRAIN_QUIET {
                    conn.fail_oversized();
                }
            }
            process_pending(conn, shared, idx, gen, loop_idx);
            let conn = slot.conn.as_mut().unwrap();
            if matches!(conn.state, ConnState::FailWait)
                && conn.pending.is_empty()
                && conn.session.is_some()
            {
                conn.fail_oversized(); // backlog drained: emit the error
            }
            flush_events(conn, shared);
            conn.try_flush();
            let finished = conn.dead
                || (matches!(conn.state, ConnState::Closing) && conn.buffered_write() == 0)
                || (conn.read_closed
                    && conn.pending.is_empty()
                    && conn.buffered_write() == 0
                    && matches!(conn.state, ConnState::Open));
            if finished && conn.session.is_some() {
                free_slot(slot, shared);
                free.push(idx);
            }
            // A finished connection with its session still on the pool
            // waits here; the completion brings the session home and
            // the next turn frees the slot.
        }
    }
}

/// Appends any pending push notifications as framed `EVENT` lines.
/// Only whole frames and whole lines ever enter the write buffer, so
/// an `EVENT` can appear between reply frames but never inside one.
fn flush_events<E>(conn: &mut Conn, shared: &Shared<E>) {
    if conn.dead || !conn.notify.has_pending() {
        return;
    }
    let mut buf = String::new();
    let n = conn.notify.drain_into(&mut buf);
    if n > 0 {
        conn.push_reply(&buf);
        shared.metrics.events_pushed.add(n as u64);
    }
}

/// Runs buffered requests in arrival order: inline ones answer on the
/// spot; an engine-touching one takes the session and goes to the pool
/// (one at a time per connection, preserving reply order).
fn process_pending<E: MotifEngine>(
    conn: &mut Conn,
    shared: &Shared<E>,
    slot: usize,
    gen: u64,
    loop_idx: usize,
) {
    loop {
        // Draining/FailWait still run their pre-oversize backlog; only
        // a closing connection stops early.
        if conn.dead
            || matches!(conn.state, ConnState::Closing)
            || conn.session.is_none()
            || conn.pending.is_empty()
            || conn.buffered_write() >= WRITE_HIGH_WATER
        {
            return;
        }
        let line = conn.pending.pop_front().unwrap();
        // The session leaves the connection for the duration of one
        // request: inline handlers put it straight back, a pool
        // dispatch sends it along with the job.
        let mut session = conn.session.take().unwrap();
        let request = match parse_request(&line) {
            Ok(request) => request,
            Err(e) => {
                session.errors += 1;
                shared.metrics.inc_verb("error");
                conn.push_reply(&format!("{}\n", e.status_line()));
                conn.session = Some(session);
                continue;
            }
        };
        match request {
            Request::Ping => {
                shared.metrics.inc_verb("ping");
                conn.push_reply("OK pong\n");
                conn.session = Some(session);
            }
            Request::Session => {
                shared.metrics.inc_verb("session");
                conn.push_reply(&format!(
                    "OK session queries={} appends={} errors={}\n",
                    session.queries, session.appends, session.errors
                ));
                conn.session = Some(session);
            }
            Request::Quit => {
                shared.metrics.inc_verb("quit");
                conn.push_reply("OK bye\n");
                conn.state = ConnState::Closing;
                conn.pending.clear();
                conn.session = Some(session);
            }
            Request::Query(ref spec) | Request::Count(ref spec) => {
                let materialise = matches!(request, Request::Query(_));
                let verb = if materialise { "query" } else { "count" };
                let started = Instant::now();
                if let Some(reject) = window_rejection(spec, shared, &mut session) {
                    shared.metrics.inc_verb(verb);
                    conn.push_reply(&reject);
                    shared.metrics.observe(verb, started.elapsed());
                    conn.session = Some(session);
                    continue;
                }
                let epoch = shared.current_epoch.load(Ordering::Acquire);
                let key = (epoch, cache_key(spec, materialise));
                if let Some(reply) = shared.cache.get(&key) {
                    shared.metrics.inc_verb(verb);
                    shared.metrics.cache_hits.inc();
                    session.queries += 1;
                    shared.queries.fetch_add(1, Ordering::Relaxed);
                    conn.push_reply(&reply);
                    shared.metrics.observe(verb, started.elapsed());
                    conn.session = Some(session);
                    continue;
                }
                shared.metrics.cache_misses.inc();
                let load = shared.pool.load();
                let backlog = shared.config.backlog.max(1);
                // Shed tiers: red (load at the backlog cap) sheds every
                // cold query; amber (half the cap) sheds only unbounded
                // — windowless — ones. The expensive cold scans go
                // first; cache hits and cheap verbs are always admitted
                // above.
                let shed = load >= backlog || (2 * load >= backlog && spec.window.is_none());
                if shed {
                    shared.metrics.inc_verb(verb);
                    session.errors += 1;
                    shared.metrics.busy.inc();
                    shared.metrics.load_shed.inc();
                    conn.push_reply(&format!(
                        "BUSY overloaded: {load} jobs queued (backlog {backlog}), retry_ms={}\n",
                        retry_hint(load)
                    ));
                    shared.metrics.observe(verb, started.elapsed());
                    conn.session = Some(session);
                    continue;
                }
                shared.pool.push(Job { slot, gen, loop_idx, request, session });
                return; // session checked out: wait for the completion
            }
            request => {
                shared.pool.push(Job { slot, gen, loop_idx, request, session });
                return;
            }
        }
    }
}

/// Reclaims a finished connection: standing-query cleanup, connection
/// count, generation bump. Only called with the session checked in, so
/// cleanup can never race a still-executing `subscribe`.
fn free_slot<E>(slot: &mut Slot, shared: &Shared<E>) {
    let conn = slot.conn.take().expect("free_slot on an empty slot");
    slot.gen += 1;
    shared.conn_count.fetch_sub(1, Ordering::AcqRel);
    // A gone subscriber must stop costing delta evaluation, and its
    // queue must become unreachable.
    let mut st = shared.standing.lock().unwrap();
    let (subs, routes) = st.parts();
    routes.retain(|r| {
        if r.session_id == conn.sid {
            subs.unsubscribe(r.id);
            false
        } else {
            true
        }
    });
}
