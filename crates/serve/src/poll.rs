//! Minimal `poll(2)` binding and a self-pipe waker — the readiness
//! primitives behind the event loop, hand-declared so the crate keeps
//! its zero-dependency invariant (no `libc`, no `mio`).
//!
//! Unix-only, like the rest of the event-loop tier: the repo targets
//! Linux, and `poll` plus `UnixStream::pair` are the smallest portable
//! POSIX surface that gives us level-triggered readiness over an
//! arbitrary fd set with an interruptible wait.

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;

/// `struct pollfd` — layout fixed by POSIX.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollFd {
    pub fd: RawFd,
    pub events: i16,
    pub revents: i16,
}

impl PollFd {
    pub(crate) fn new(fd: RawFd, events: i16) -> Self {
        Self { fd, events, revents: 0 }
    }

    /// Readable, or in an error/hang-up state that a read will surface.
    pub(crate) fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP) != 0
    }

    /// Writable, or in an error state that a write will surface.
    pub(crate) fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }
}

pub(crate) const POLLIN: i16 = 0x001;
pub(crate) const POLLOUT: i16 = 0x004;
pub(crate) const POLLERR: i16 = 0x008;
pub(crate) const POLLHUP: i16 = 0x010;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: std::os::raw::c_int) -> i32;
}

/// Blocks until at least one fd in `fds` is ready, `timeout_ms` elapses
/// (`-1` = forever), or a wakeup arrives; retries transparent `EINTR`s.
/// Returns how many entries have non-zero `revents`.
pub(crate) fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let r = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, timeout_ms) };
        if r >= 0 {
            return Ok(r as usize);
        }
        let e = io::Error::last_os_error();
        if e.kind() != io::ErrorKind::Interrupted {
            return Err(e);
        }
    }
}

/// A self-pipe registered in a poll set: any thread can [`Waker::wake`]
/// the owning loop out of its `poll` wait. Built on
/// `UnixStream::pair` (pure `std`), both ends nonblocking, so a wake
/// never blocks the waker — a full pipe already guarantees the sleeper
/// will see readiness.
#[derive(Debug)]
pub(crate) struct Waker {
    tx: UnixStream,
    rx: UnixStream,
}

impl Waker {
    pub(crate) fn new() -> io::Result<Self> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Self { tx, rx })
    }

    /// The fd to register with `POLLIN` in the sleeper's poll set.
    pub(crate) fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Nudges the sleeper. Coalesces: a pipe that already holds a byte
    /// reports `WouldBlock` eventually, which is fine — readiness is
    /// level-triggered and one pending byte is enough.
    pub(crate) fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Drains every pending wake token (call once per loop iteration).
    pub(crate) fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}
