//! The TCP server: event-loop front-end, bounded worker pool, admission
//! control, load shedding, the epoch-keyed result cache, and request
//! handling.
//!
//! The I/O core (readiness loops, connection state machine, pipelining)
//! lives in the private `conn` module; this module owns the shared
//! state, the request semantics, and the [`Server`] lifecycle.

use crate::cache::ResultCache;
use crate::conn::{accept_loop, event_loop, worker_loop, JobQueue, LoopInbox};
use crate::metrics::ServerMetrics;
use crate::poll::Waker;
use crate::protocol::{parse_request, ErrorCode, QuerySpec, Request};
use crate::source::{EngineSnapshot, MotifEngine};
use flowmotif_core::{AtomicTrace, SearchScratch, TraceSink, TraceStage};
use flowmotif_graph::{Flow, GraphError, NodeId, Timestamp};
use flowmotif_stream::{StandingEvent, StandingQueries};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Push notifications a subscriber connection has not yet drained.
/// Bounded: once a slow or stalled reader falls this far behind,
/// further events are dropped (counted in
/// `flowmotif_serve_events_dropped_total`) instead of pinning
/// unbounded server memory.
const NOTIFY_QUEUE_CAP: usize = 1024;

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing engine-touching requests. Connections
    /// no longer pin workers — a worker is busy only while a request
    /// is actually running.
    pub workers: usize,
    /// Load-shedding threshold on the worker job queue (queued plus
    /// executing requests). At half this depth, unbounded (windowless)
    /// cold queries are shed with a transient `BUSY`; at the full
    /// depth, every cold query is. Cache hits and cheap verbs are
    /// always admitted.
    pub backlog: usize,
    /// Maximum queries (`query`/`count`) executing at once across all
    /// sessions; further queries get a transient `BUSY` reply. 0 means
    /// unlimited.
    pub max_inflight: usize,
    /// Per-query cap on the explicit time-window length. When set,
    /// queries must carry a window no longer than this; unbounded queries
    /// are rejected with `ERR admission`. `None` admits everything.
    pub max_window: Option<i64>,
    /// Maximum `DATA` instance lines per `query` reply (the total count
    /// is always reported in the status line).
    ///
    /// Snapshot freshness is configured on the engine itself (e.g.
    /// `SnapshotEngine::publish_every`), not here: the engine may be
    /// shared with non-server writers that publish on their own schedule.
    pub show: usize,
    /// When set, every `query`/`count` runs with per-stage tracing, and
    /// any query taking at least this many milliseconds is logged to
    /// stderr with its P1/P2/DP breakdown (0 logs every query). `None`
    /// keeps queries on the zero-overhead untraced path.
    pub slow_query_ms: Option<u64>,
    /// Event-loop threads multiplexing the connections. Each loop owns
    /// its share of the sockets; two are plenty until well past ten
    /// thousand connections.
    pub event_loop_threads: usize,
    /// Capacity of the epoch-keyed result cache (framed `query`/`count`
    /// replies). 0 disables caching.
    pub cache_entries: usize,
    /// Open-connection cap; connections beyond it are refused with a
    /// `BUSY` line at accept time.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            backlog: 16,
            max_inflight: 0,
            max_window: None,
            show: 5,
            slow_query_ms: None,
            event_loop_threads: 2,
            cache_entries: 1024,
            max_connections: 4096,
        }
    }
}

/// Rendered `EVENT` payloads awaiting delivery to one subscriber
/// connection. The producer is whichever session's `add`/`evict`
/// triggered the delta; the consumer is the subscriber's event loop,
/// which drains between reply frames.
#[derive(Debug, Default)]
pub(crate) struct NotifyQueue {
    lines: Mutex<VecDeque<String>>,
    /// Mirror of `lines.len()`, so event loops can scan thousands of
    /// idle connections without taking their queue locks.
    pending: AtomicUsize,
    /// Events dropped on overflow since the subscription was created
    /// (also summed process-wide in the metrics registry).
    dropped: AtomicU64,
}

impl NotifyQueue {
    /// Enqueues one payload; reports whether it was accepted or dropped
    /// on a full queue.
    pub(crate) fn push(&self, payload: String) -> bool {
        let mut q = self.lines.lock().unwrap();
        if q.len() >= NOTIFY_QUEUE_CAP {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            false
        } else {
            q.push_back(payload);
            self.pending.store(q.len(), Ordering::Release);
            true
        }
    }

    /// Appends every pending payload to `out` as framed `EVENT` lines;
    /// returns how many were drained.
    pub(crate) fn drain_into(&self, out: &mut String) -> usize {
        let mut q = self.lines.lock().unwrap();
        let n = q.len();
        for payload in q.drain(..) {
            out.push_str("EVENT ");
            out.push_str(&payload);
            out.push('\n');
        }
        self.pending.store(0, Ordering::Release);
        n
    }

    /// Lock-free emptiness probe for the event loops' per-iteration
    /// scan.
    pub(crate) fn has_pending(&self) -> bool {
        self.pending.load(Ordering::Acquire) > 0
    }
}

/// One subscription's delivery route: which session owns it and where
/// its events go.
#[derive(Debug)]
pub(crate) struct Route {
    /// Subscription id (assigned by [`StandingQueries`], never reused).
    pub(crate) id: u64,
    /// Owning session; only it may unsubscribe, and disconnect cleanup
    /// removes all of its routes.
    pub(crate) session_id: u64,
    /// Duplicate-subscribe key: motif walk, δ, ϕ and window.
    key: String,
    queue: Arc<NotifyQueue>,
}

/// The server's standing queries plus their delivery routes, mutated
/// together under one lock: `subscribe`/`unsubscribe` and every
/// `add`/`evict` that evaluates deltas serialize here, so each event
/// is routed exactly once and routes never dangle.
#[derive(Debug, Default)]
pub(crate) struct StandingState {
    subs: StandingQueries,
    routes: Vec<Route>,
}

impl StandingState {
    /// Split borrow for callers that walk routes while mutating subs.
    pub(crate) fn parts(&mut self) -> (&mut StandingQueries, &mut Vec<Route>) {
        (&mut self.subs, &mut self.routes)
    }
}

/// State shared by the event loops and the worker pool.
#[derive(Debug)]
pub(crate) struct Shared<E> {
    pub(crate) engine: Arc<E>,
    pub(crate) config: ServerConfig,
    /// Queries currently executing (gauge). `Arc`'d so the metrics
    /// registry can sample it from a render-time closure.
    inflight: Arc<AtomicUsize>,
    /// Connections served over the server's lifetime.
    pub(crate) sessions: Arc<AtomicU64>,
    /// Queries answered over the server's lifetime (admitted ones,
    /// including cache hits).
    pub(crate) queries: Arc<AtomicU64>,
    /// Standing queries and their notification routes.
    pub(crate) standing: Arc<Mutex<StandingState>>,
    /// Session id allocator (ids are per-server and never reused).
    pub(crate) next_session: AtomicU64,
    /// This server's metric registry and request-path handles.
    pub(crate) metrics: ServerMetrics,
    /// The epoch-keyed result cache; hits answer on the event loop.
    pub(crate) cache: Arc<ResultCache>,
    /// Lock-free copy of the engine's published epoch, advanced by the
    /// engine's publish hook — cache lookups on the event loop never
    /// touch an engine lock.
    pub(crate) current_epoch: Arc<AtomicU64>,
    /// The worker pool's job queue; its load drives the shed tiers.
    pub(crate) pool: Arc<JobQueue>,
    /// One mailbox per event loop (empty in unit tests that exercise
    /// request handling without a running server).
    pub(crate) inboxes: Vec<Arc<LoopInbox>>,
    /// Open connections across all loops (the `max_connections` cap).
    pub(crate) conn_count: Arc<AtomicUsize>,
}

/// Decrements the in-flight gauge when an admitted query finishes.
#[derive(Debug)]
struct InflightGuard<'a, E>(&'a Shared<E>);

impl<E> Drop for InflightGuard<'_, E> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<E: MotifEngine> Shared<E> {
    /// Builds the shared state, registers the engine-backed gauges
    /// (epoch, resident interactions/pairs) plus the server's own
    /// in-flight/session/query/cache series into the metrics registry,
    /// and hooks the engine's publish notification to keep
    /// `current_epoch` fresh.
    pub(crate) fn new(
        engine: Arc<E>,
        config: ServerConfig,
        pool: Arc<JobQueue>,
        inboxes: Vec<Arc<LoopInbox>>,
    ) -> Self {
        let metrics = ServerMetrics::new();
        let inflight = Arc::new(AtomicUsize::new(0));
        let sessions = Arc::new(AtomicU64::new(0));
        let queries = Arc::new(AtomicU64::new(0));
        let standing = Arc::new(Mutex::new(StandingState::default()));
        let cache = Arc::new(ResultCache::new(config.cache_entries));
        let current_epoch = Arc::new(AtomicU64::new(engine.published_epoch()));
        {
            // Publish → readiness notification: the loop-side epoch copy
            // advances without any engine lock on the lookup path.
            // `fetch_max` tolerates hooks firing out of order.
            let ce = Arc::clone(&current_epoch);
            engine.set_publish_hook(Box::new(move |epoch| {
                ce.fetch_max(epoch, Ordering::AcqRel);
            }));
        }
        let r = metrics.registry();
        {
            let e = Arc::clone(&engine);
            r.gauge_fn("flowmotif_engine_epoch", "Currently published epoch", move || {
                e.published_epoch() as f64
            });
        }
        {
            let e = Arc::clone(&engine);
            r.gauge_fn(
                "flowmotif_engine_interactions",
                "Interactions currently held by the engine (resident + buffered)",
                move || e.stats().interactions as f64,
            );
        }
        {
            let e = Arc::clone(&engine);
            r.gauge_fn(
                "flowmotif_engine_pairs",
                "Connected pairs currently indexed by the engine",
                move || e.stats().pairs as f64,
            );
        }
        {
            let i = Arc::clone(&inflight);
            r.gauge_fn(
                "flowmotif_serve_inflight_queries",
                "Queries executing right now across all sessions",
                move || i.load(Ordering::Acquire) as f64,
            );
        }
        {
            let s = Arc::clone(&sessions);
            r.counter_fn("flowmotif_serve_sessions_total", "Connections served", move || {
                s.load(Ordering::Relaxed)
            });
        }
        {
            let q = Arc::clone(&queries);
            r.counter_fn("flowmotif_serve_queries_total", "Admitted queries answered", move || {
                q.load(Ordering::Relaxed)
            });
        }
        {
            let st = Arc::clone(&standing);
            r.gauge_fn(
                "flowmotif_serve_subscriptions_active",
                "Standing queries currently registered",
                move || st.lock().unwrap().subs.len() as f64,
            );
        }
        {
            let c = Arc::clone(&cache);
            r.gauge_fn(
                "flowmotif_serve_cache_entries",
                "Replies currently held by the result cache",
                move || c.len() as f64,
            );
        }
        {
            let c = Arc::clone(&cache);
            r.counter_fn(
                "flowmotif_serve_cache_evictions_total",
                "Result-cache entries evicted under capacity pressure",
                move || c.evictions(),
            );
        }
        Self {
            engine,
            config,
            inflight,
            sessions,
            queries,
            standing,
            next_session: AtomicU64::new(0),
            metrics,
            cache,
            current_epoch,
            pool,
            inboxes,
            conn_count: Arc::new(AtomicUsize::new(0)),
        }
    }
}

impl<E> Shared<E> {
    /// Admission check for one query: bumps the in-flight gauge or
    /// reports how many queries are already running.
    fn try_admit(&self) -> Result<InflightGuard<'_, E>, usize> {
        let max = self.config.max_inflight;
        let mut current = self.inflight.load(Ordering::Acquire);
        loop {
            if max > 0 && current >= max {
                return Err(current);
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(InflightGuard(self)),
                Err(observed) => current = observed,
            }
        }
    }
}

/// The retry-after hint (milliseconds) carried by transient `BUSY`
/// replies, scaled to the observed congestion.
pub(crate) fn retry_hint(load: usize) -> u64 {
    ((10 + 2 * load) as u64).min(1000)
}

/// The canonical spec string a `query`/`count` reply is cached under
/// (combined with the epoch): everything that selects the reply bytes.
pub(crate) fn cache_key(spec: &QuerySpec, materialise: bool) -> String {
    format!(
        "{}|{}|{}|{}|{:?}|{:?}",
        if materialise { "query" } else { "count" },
        spec.motif.path(),
        spec.motif.delta(),
        spec.motif.phi(),
        spec.window,
        spec.order,
    )
}

/// A running motif query server. Dropping (or [`Server::shutdown`])
/// stops the accept loop, drains the workers and joins all threads;
/// [`Server::join`] instead blocks forever (the CLI's foreground mode).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_waker: Arc<Waker>,
    inboxes: Vec<Arc<LoopInbox>>,
    pool: Arc<JobQueue>,
    accept: Option<JoinHandle<()>>,
    loops: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, port 0 picks a free port)
    /// and starts the accept thread, `config.event_loop_threads` event
    /// loops and `config.workers` workers. The `engine` — any
    /// [`MotifEngine`]: the in-memory
    /// [`flowmotif_stream::SnapshotEngine`] or the segment-backed
    /// [`flowmotif_stream::EpochEngine`] — is shared; the caller may
    /// keep ingesting into it directly while the server runs.
    pub fn start<E: MotifEngine, A: ToSocketAddrs>(
        engine: Arc<E>,
        config: ServerConfig,
        addr: A,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let loop_threads = config.event_loop_threads.max(1);
        let worker_threads = config.workers.max(1);
        let pool = Arc::new(JobQueue::new());
        let inboxes: Vec<Arc<LoopInbox>> =
            (0..loop_threads).map(|_| LoopInbox::new().map(Arc::new)).collect::<io::Result<_>>()?;
        let accept_waker = Arc::new(Waker::new()?);
        let shared = Arc::new(Shared::new(engine, config, Arc::clone(&pool), inboxes.clone()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let loops: Vec<JoinHandle<()>> = (0..loop_threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || event_loop(&shared, i, &shutdown))
            })
            .collect();
        let workers: Vec<JoinHandle<()>> = (0..worker_threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            let shutdown = Arc::clone(&shutdown);
            let waker = Arc::clone(&accept_waker);
            std::thread::spawn(move || accept_loop(&listener, &shared, &waker, &shutdown))
        };
        Ok(Server {
            addr,
            shutdown,
            accept_waker,
            inboxes,
            pool,
            accept: Some(accept),
            loops,
            workers,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes every session and joins every thread.
    /// A request already executing on a worker finishes first.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks the calling thread until the server shuts down (which, with
    /// the handle consumed, is when the process exits) — the foreground
    /// mode behind `flowmotif serve`.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.loops.drain(..) {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.accept_waker.wake();
        for inbox in &self.inboxes {
            inbox.waker.wake();
        }
        self.pool.stop();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.loops.drain(..) {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Per-connection counters, reported by the `session` command, plus the
/// session's private search arena: snapshots are shared and immutable,
/// so the reusable P1→P2 buffers live with the session — after its
/// first query, a session's searches run allocation-free per match no
/// matter how many snapshot epochs go by. The session travels with a
/// dispatched job and returns with its completion, which is what makes
/// per-connection execution serial.
#[derive(Debug, Default)]
pub(crate) struct Session {
    /// Per-server unique id; ties this session to its [`Route`]s.
    pub(crate) id: u64,
    pub(crate) queries: u64,
    pub(crate) appends: u64,
    pub(crate) errors: u64,
    pub(crate) scratch: SearchScratch,
    /// This connection's pending push notifications. Shared with every
    /// route the session subscribes; drained by the event loop between
    /// reply frames.
    pub(crate) queue: Arc<NotifyQueue>,
}

/// Processes one request line into a framed reply (every returned string
/// ends with the status line + `\n`). The bool asks the caller to close
/// the connection after writing.
///
/// This is the reference one-line-in/one-reply-out semantics the event
/// loop's pipelined path must be observably identical to; the unit tests
/// below exercise request handling through it. The live server goes
/// through `crate::conn` instead, which needs the parsed [`Request`] to
/// route between loop-inline and worker execution.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn handle_line<E: MotifEngine>(
    line: &str,
    shared: &Shared<E>,
    session: &mut Session,
) -> (String, bool) {
    match parse_request(line) {
        Ok(request) => handle_request(request, shared, session),
        Err(e) => {
            session.errors += 1;
            shared.metrics.inc_verb("error");
            (format!("{}\n", e.status_line()), false)
        }
    }
}

/// The metrics label of a request (a `VERBS` member in `metrics.rs`).
fn verb_of(request: &Request) -> &'static str {
    match request {
        Request::Ping => "ping",
        Request::Add { .. } => "add",
        Request::Query(_) => "query",
        Request::Count(_) => "count",
        Request::Subscribe(_) => "subscribe",
        Request::Unsubscribe(_) => "unsubscribe",
        Request::Publish => "publish",
        Request::Evict(_) => "evict",
        Request::Compact => "compact",
        Request::Stats => "stats",
        Request::Session => "session",
        Request::Metrics => "metrics",
        Request::Quit => "quit",
    }
}

pub(crate) fn handle_request<E: MotifEngine>(
    request: Request,
    shared: &Shared<E>,
    session: &mut Session,
) -> (String, bool) {
    let engine = &shared.engine;
    let verb = verb_of(&request);
    shared.metrics.inc_verb(verb);
    // Engine-touching verbs get a latency sample; the rest answer from
    // local state and would only measure clock overhead.
    let timed = matches!(
        request,
        Request::Add { .. }
            | Request::Query(_)
            | Request::Count(_)
            | Request::Publish
            | Request::Subscribe(_)
    );
    let started = timed.then(Instant::now);
    let reply = match request {
        Request::Ping => ("OK pong\n".to_string(), false),
        Request::Add { from, to, time, flow } => {
            session.appends += 1;
            match append_with_standing(shared, from, to, time, flow) {
                Ok(watermark) => (format!("OK added watermark={watermark}\n"), false),
                Err(e) => {
                    session.errors += 1;
                    (format!("ERR {} {e}\n", ErrorCode::Data.token()), false)
                }
            }
        }
        Request::Query(spec) => run_query(&spec, shared, session, true),
        Request::Count(spec) => run_query(&spec, shared, session, false),
        Request::Subscribe(spec) => subscribe(spec, shared, session),
        Request::Unsubscribe(id) => unsubscribe(id, shared, session),
        Request::Publish => (format!("OK published epoch={}\n", engine.publish()), false),
        Request::Evict(floor) => {
            (format!("OK evicted={}\n", evict_with_standing(shared, floor)), false)
        }
        Request::Compact => {
            engine.compact();
            ("OK compacted\n".to_string(), false)
        }
        Request::Stats => {
            let s = engine.stats();
            let p = engine.publish_report();
            let fmt_t = |t: Option<i64>| t.map_or_else(|| "-".to_string(), |t| t.to_string());
            (
                format!(
                    "OK stats interactions={} pairs={} watermark={} floor={} appended={} \
                     evicted={} epoch={} inflight={} sessions={} queries={} last_publish_ns={} \
                     last_publish_dirty={}\n",
                    s.interactions,
                    s.pairs,
                    fmt_t(s.watermark),
                    fmt_t(s.floor),
                    s.appended,
                    s.evicted,
                    engine.published_epoch(),
                    shared.inflight.load(Ordering::Acquire),
                    shared.sessions.load(Ordering::Relaxed),
                    shared.queries.load(Ordering::Relaxed),
                    p.duration.as_nanos(),
                    p.dirty_pairs,
                ),
                false,
            )
        }
        Request::Metrics => {
            let text = shared.metrics.render();
            let mut reply = String::with_capacity(text.len() + 64);
            let mut lines = 0usize;
            for line in text.lines() {
                reply.push_str("DATA ");
                reply.push_str(line);
                reply.push('\n');
                lines += 1;
            }
            reply.push_str(&format!("OK metrics lines={lines}\n"));
            (reply, false)
        }
        Request::Session => (
            format!(
                "OK session queries={} appends={} errors={}\n",
                session.queries, session.appends, session.errors
            ),
            false,
        ),
        Request::Quit => ("OK bye\n".to_string(), true),
    };
    if let Some(t0) = started {
        shared.metrics.observe(verb, t0.elapsed());
    }
    reply
}

/// Per-query window cap: a non-transient admission error, applied to
/// `query`/`count` and `subscribe` alike (a standing query is a query
/// re-evaluated forever — admitting an over-wide one would be worse
/// than admitting it once). Returns the rejection reply, if any.
pub(crate) fn window_rejection<E>(
    spec: &QuerySpec,
    shared: &Shared<E>,
    session: &mut Session,
) -> Option<String> {
    let cap = shared.config.max_window?;
    let admission = ErrorCode::Admission.token();
    match spec.window {
        None => {
            session.errors += 1;
            shared.metrics.admission_rejected.inc();
            Some(format!(
                "ERR {admission} unbounded query refused: supply a window of at most {cap} \
                 time units\n"
            ))
        }
        Some(w) if w.length() > cap => {
            session.errors += 1;
            shared.metrics.admission_rejected.inc();
            Some(format!(
                "ERR {admission} window length {} exceeds the per-query cap {cap}\n",
                w.length()
            ))
        }
        Some(_) => None,
    }
}

/// Routes each delta event to its subscription's notify queue (drops,
/// with a counter, when the subscriber has fallen [`NOTIFY_QUEUE_CAP`]
/// events behind), then nudges every event loop so delivery does not
/// wait for unrelated socket traffic.
fn dispatch_events<E>(events: &[StandingEvent], routes: &[Route], shared: &Shared<E>) {
    if events.is_empty() {
        return;
    }
    for ev in events {
        if let Some(route) = routes.iter().find(|r| r.id == ev.subscription) {
            if !route.queue.push(ev.to_string()) {
                shared.metrics.events_dropped.inc();
            }
        }
    }
    for inbox in &shared.inboxes {
        inbox.waker.wake();
    }
}

/// Appends one interaction, delta-evaluating the standing queries when
/// any are registered. The standing lock is held across the append so
/// concurrent `subscribe`s cannot miss or double-see an event.
fn append_with_standing<E: MotifEngine>(
    shared: &Shared<E>,
    from: NodeId,
    to: NodeId,
    time: Timestamp,
    flow: Flow,
) -> Result<Timestamp, GraphError> {
    let mut st = shared.standing.lock().unwrap();
    if st.subs.is_empty() {
        // Quiet path: no subscribers, no delta work.
        return shared.engine.append(from, to, time, flow);
    }
    let StandingState { subs, routes } = &mut *st;
    let mut events = Vec::new();
    let watermark = shared.engine.append_standing(from, to, time, flow, subs, &mut events)?;
    dispatch_events(&events, routes, shared);
    Ok(watermark)
}

/// Evicts below `floor`, delta-evaluating the standing queries when any
/// are registered (evicting old events can make a smaller instance
/// maximal).
fn evict_with_standing<E: MotifEngine>(shared: &Shared<E>, floor: Timestamp) -> usize {
    let mut st = shared.standing.lock().unwrap();
    if st.subs.is_empty() {
        return shared.engine.evict_before(floor);
    }
    let StandingState { subs, routes } = &mut *st;
    let mut events = Vec::new();
    let evicted = shared.engine.evict_standing(floor, subs, &mut events);
    dispatch_events(&events, routes, shared);
    evicted
}

/// Registers a standing query for this session: admission-checked like
/// a one-shot query, rejected as a duplicate if the session already
/// subscribed the same motif and window, then seeded silently against
/// the engine's current graph.
fn subscribe<E: MotifEngine>(
    spec: QuerySpec,
    shared: &Shared<E>,
    session: &mut Session,
) -> (String, bool) {
    if let Some(reject) = window_rejection(&spec, shared, session) {
        return (reject, false);
    }
    let key = format!(
        "{}|{}|{}|{:?}",
        spec.motif.path(),
        spec.motif.delta(),
        spec.motif.phi(),
        spec.window
    );
    let mut st = shared.standing.lock().unwrap();
    if st.routes.iter().any(|r| r.session_id == session.id && r.key == key) {
        session.errors += 1;
        return (
            format!(
                "ERR {} already subscribed to this motif and window on this session\n",
                ErrorCode::Query.token()
            ),
            false,
        );
    }
    let StandingState { subs, routes } = &mut *st;
    let id = shared.engine.subscribe_standing(subs, spec.motif, spec.window);
    routes.push(Route { id, session_id: session.id, key, queue: Arc::clone(&session.queue) });
    (format!("OK subscribed id={id}\n"), false)
}

/// Removes a standing query; only the owning session may do so.
fn unsubscribe<E>(id: u64, shared: &Shared<E>, session: &mut Session) -> (String, bool) {
    let mut st = shared.standing.lock().unwrap();
    let owned = st.routes.iter().position(|r| r.id == id && r.session_id == session.id);
    match owned {
        Some(pos) => {
            st.routes.remove(pos);
            st.subs.unsubscribe(id);
            (format!("OK unsubscribed id={id}\n"), false)
        }
        None => {
            session.errors += 1;
            (
                format!("ERR {} no subscription {id} on this session\n", ErrorCode::Query.token()),
                false,
            )
        }
    }
}

/// Admission control plus the actual snapshot search, shared by `query`
/// (instances on `DATA` lines) and `count` (status line only). A clean
/// reply is stored in the result cache under the epoch it ran against,
/// so identical queries at the same epoch are answered by the event
/// loop without reaching this function again.
fn run_query<E: MotifEngine>(
    spec: &QuerySpec,
    shared: &Shared<E>,
    session: &mut Session,
    materialise: bool,
) -> (String, bool) {
    if let Some(reject) = window_rejection(spec, shared, session) {
        return (reject, false);
    }
    // In-flight cap: a transient, retryable rejection.
    let _guard = match shared.try_admit() {
        Ok(guard) => guard,
        Err(inflight) => {
            session.errors += 1;
            shared.metrics.busy.inc();
            return (
                format!(
                    "BUSY {inflight} queries in flight (cap {}), retry_ms={}\n",
                    shared.config.max_inflight,
                    retry_hint(inflight)
                ),
                false,
            );
        }
    };
    session.queries += 1;
    shared.queries.fetch_add(1, Ordering::Relaxed);

    // Slow-query tracing: this worker's leaked trace arena, reset per
    // query. `None` (the default) keeps the search entirely untraced.
    let trace = shared.config.slow_query_ms.map(|_| worker_trace());
    let started = trace.map(|t| {
        t.reset();
        Instant::now()
    });
    let sink: Option<&'static dyn TraceSink> = trace.map(|t| t as &'static dyn TraceSink);

    // The query runs on an immutable snapshot: no writer lock is held, and
    // concurrent appends/publishes cannot change what this query sees.
    let snapshot = shared.engine.snapshot();
    let epoch = snapshot.epoch();
    let motif = &spec.motif;
    if !materialise {
        let (count, stats) =
            snapshot.count_with(motif, spec.window, &mut session.scratch, sink, spec.order);
        note_slow("count", spec, epoch, trace, started, shared);
        let reply =
            format!("OK count={count} matches={} epoch={epoch}\n", stats.structural_matches);
        shared.cache.insert((epoch, cache_key(spec, false)), Arc::from(reply.as_str()));
        return (reply, false);
    }
    let result = snapshot.query_with(motif, spec.window, &mut session.scratch, sink, spec.order);
    note_slow("query", spec, epoch, trace, started, shared);
    let total = result.num_instances();
    let mut reply = String::new();
    let mut shown = 0usize;
    'outer: for (sm, instances) in &result.groups {
        for inst in instances {
            if shown >= shared.config.show {
                break 'outer;
            }
            let (nodes, sets) = snapshot.describe(sm, inst);
            reply.push_str(&format!(
                "DATA nodes={nodes} flow={} span={} sets={sets}\n",
                inst.flow,
                inst.span(),
            ));
            shown += 1;
        }
    }
    reply.push_str(&format!(
        "OK query instances={total} shown={shown} matches={} epoch={epoch}\n",
        result.stats.structural_matches
    ));
    shared.cache.insert((epoch, cache_key(spec, true)), Arc::from(reply.as_str()));
    (reply, false)
}

/// This worker thread's trace arena, allocated once and leaked: the
/// search hook needs a `&'static` sink, and the worker pool is fixed,
/// so the leak is bounded by the thread count.
fn worker_trace() -> &'static AtomicTrace {
    thread_local! {
        static TRACE: &'static AtomicTrace = Box::leak(Box::new(AtomicTrace::new()));
    }
    TRACE.with(|t| *t)
}

/// Logs one finished query to stderr if it crossed the
/// `slow_query_ms` threshold, with its per-stage breakdown.
fn note_slow<E: MotifEngine>(
    verb: &'static str,
    spec: &QuerySpec,
    epoch: u64,
    trace: Option<&'static AtomicTrace>,
    started: Option<Instant>,
    shared: &Shared<E>,
) {
    let (Some(trace), Some(started), Some(threshold_ms)) =
        (trace, started, shared.config.slow_query_ms)
    else {
        return;
    };
    let elapsed = started.elapsed();
    if (elapsed.as_millis() as u64) < threshold_ms {
        return;
    }
    shared.metrics.slow_queries.inc();
    let window =
        spec.window.map_or_else(|| "-".to_string(), |w| format!("[{},{}]", w.start, w.end));
    eprintln!(
        "slow-query verb={verb} window={window} epoch={epoch} total_us={} p1_us={} p2_us={} \
         dp_us={} matches={} instances={}",
        elapsed.as_micros(),
        trace.nanos(TraceStage::P1) / 1_000,
        trace.nanos(TraceStage::P2) / 1_000,
        trace.nanos(TraceStage::Dp) / 1_000,
        trace.count(TraceStage::P1),
        trace.count(TraceStage::P2),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared(config: ServerConfig) -> Shared<flowmotif_stream::SnapshotEngine> {
        Shared::new(
            Arc::new(flowmotif_stream::SnapshotEngine::new()),
            config,
            Arc::new(JobQueue::new()),
            Vec::new(),
        )
    }

    #[test]
    fn inflight_gauge_caps_and_releases() {
        let s = shared(ServerConfig { max_inflight: 2, ..ServerConfig::default() });
        let a = s.try_admit().unwrap();
        let _b = s.try_admit().unwrap();
        assert_eq!(s.try_admit().unwrap_err(), 2);
        drop(a);
        let _c = s.try_admit().unwrap();
        assert_eq!(s.inflight.load(Ordering::Acquire), 2);
    }

    #[test]
    fn unlimited_inflight_still_counts() {
        let s = shared(ServerConfig::default());
        let g = s.try_admit().unwrap();
        assert_eq!(s.inflight.load(Ordering::Acquire), 1);
        drop(g);
        assert_eq!(s.inflight.load(Ordering::Acquire), 0);
    }

    #[test]
    fn window_cap_rejects_wide_and_unbounded_queries() {
        let s = shared(ServerConfig { max_window: Some(100), ..ServerConfig::default() });
        let mut session = Session::default();
        let (reply, close) = handle_line("count M(3,2) 10 0", &s, &mut session);
        assert!(reply.starts_with("ERR admission unbounded"), "{reply}");
        assert!(!close);
        let (reply, _) = handle_line("count M(3,2) 10 0 0 101", &s, &mut session);
        assert!(reply.starts_with("ERR admission window length 101"), "{reply}");
        let (reply, _) = handle_line("count M(3,2) 10 0 0 100", &s, &mut session);
        assert!(reply.starts_with("OK count=0"), "{reply}");
        assert_eq!(session.errors, 2);
        assert_eq!(session.queries, 1);
    }

    #[test]
    fn session_and_stats_replies() {
        let s = shared(ServerConfig::default());
        let mut session = Session::default();
        let (r, _) = handle_line("add 0 1 10 5", &s, &mut session);
        assert_eq!(r, "OK added watermark=10\n");
        let (r, _) = handle_line("publish", &s, &mut session);
        assert_eq!(r, "OK published epoch=1\n");
        let (r, _) = handle_line("query M(3,2) 10 0", &s, &mut session);
        assert!(r.ends_with("OK query instances=0 shown=0 matches=0 epoch=1\n"), "{r}");
        let (r, _) = handle_line("bogus", &s, &mut session);
        assert!(r.starts_with("ERR proto"), "{r}");
        let (r, _) = handle_line("session", &s, &mut session);
        assert_eq!(r, "OK session queries=1 appends=1 errors=1\n");
        let (r, _) = handle_line("stats", &s, &mut session);
        assert!(r.contains("interactions=1"), "{r}");
        assert!(r.contains("epoch=1"), "{r}");
        // Publish telemetry: epoch 1 published one dirty pair, and the
        // duration field is present (any value).
        assert!(r.contains("last_publish_dirty=1"), "{r}");
        assert!(r.contains("last_publish_ns="), "{r}");
        let (r, close) = handle_line("quit", &s, &mut session);
        assert_eq!(r, "OK bye\n");
        assert!(close);
    }

    #[test]
    fn metrics_reply_covers_every_tier() {
        let s = shared(ServerConfig::default());
        let mut session = Session::default();
        let _ = handle_line("add 0 1 10 5", &s, &mut session);
        let _ = handle_line("publish", &s, &mut session);
        let _ = handle_line("query M(3,2) 10 0", &s, &mut session);
        let _ = handle_line("bogus", &s, &mut session);
        let (r, close) = handle_line("metrics", &s, &mut session);
        assert!(!close);
        assert!(r.ends_with(&format!("OK metrics lines={}\n", r.lines().count() - 1)), "{r}");
        let body: Vec<&str> = r.lines().filter_map(|l| l.strip_prefix("DATA ")).collect();
        // Prometheus text framing: HELP/TYPE headers once per family.
        assert!(body.contains(&"# TYPE flowmotif_serve_requests_total counter"), "{r}");
        assert!(body.contains(&"# TYPE flowmotif_serve_request_duration_seconds histogram"));
        // Serve tier: per-verb counters saw the requests above.
        assert!(body.contains(&"flowmotif_serve_requests_total{verb=\"query\"} 1"), "{r}");
        assert!(body.contains(&"flowmotif_serve_requests_total{verb=\"add\"} 1"));
        assert!(body.contains(&"flowmotif_serve_requests_total{verb=\"error\"} 1"));
        // The query latency histogram recorded one sample.
        assert!(
            body.iter().any(|l| l
                .starts_with("flowmotif_serve_request_duration_seconds_count{verb=\"query\"} 1")),
            "{r}"
        );
        // Engine gauges come from the live engine.
        assert!(body.contains(&"flowmotif_engine_epoch 1"), "{r}");
        assert!(body.contains(&"flowmotif_engine_interactions 1"));
        // The result cache's series: the query above was inserted once.
        assert!(body.contains(&"flowmotif_serve_cache_entries 1"), "{r}");
        assert!(body.contains(&"flowmotif_serve_cache_hits_total 0"), "{r}");
        assert!(body.contains(&"flowmotif_serve_cache_evictions_total 0"), "{r}");
        // Stream and storage families are present (process-wide values).
        assert!(body.iter().any(|l| l.starts_with("flowmotif_stream_publishes_total ")));
        assert!(body.iter().any(|l| l.starts_with("flowmotif_storage_segment_mapped_bytes ")));
    }

    #[test]
    fn rejection_counters_track_busy_and_admission() {
        let s = shared(ServerConfig {
            max_inflight: 1,
            max_window: Some(100),
            ..ServerConfig::default()
        });
        let mut session = Session::default();
        let (r, _) = handle_line("count M(3,2) 10 0", &s, &mut session);
        assert!(r.starts_with("ERR admission"), "{r}");
        assert_eq!(s.metrics.admission_rejected.get(), 1);
        let _held = s.try_admit().unwrap();
        let (r, _) = handle_line("count M(3,2) 10 0 0 50", &s, &mut session);
        assert!(r.starts_with("BUSY"), "{r}");
        assert!(r.contains("retry_ms="), "{r}");
        assert_eq!(s.metrics.busy.get(), 1);
    }

    #[test]
    fn run_query_fills_the_result_cache() {
        let s = shared(ServerConfig::default());
        let mut session = Session::default();
        let _ = handle_line("add 0 1 10 5", &s, &mut session);
        let _ = handle_line("add 1 2 12 4", &s, &mut session);
        let _ = handle_line("publish", &s, &mut session);
        // The publish hook advanced the loop-side epoch copy.
        assert_eq!(s.current_epoch.load(Ordering::Acquire), 1);
        let (r, _) = handle_line("count M(3,2) 10 0", &s, &mut session);
        assert!(r.starts_with("OK count=1"), "{r}");
        let spec = match parse_request("count M(3,2) 10 0").unwrap() {
            Request::Count(spec) => spec,
            _ => unreachable!(),
        };
        let key = (1u64, cache_key(&spec, false));
        assert_eq!(s.cache.get(&key).as_deref(), Some(r.as_str()));
        // A different epoch is a different key: nothing stale to serve.
        assert!(s.cache.get(&(2u64, cache_key(&spec, false))).is_none());
    }

    #[test]
    fn slow_query_threshold_zero_logs_and_counts_every_query() {
        let s = shared(ServerConfig { slow_query_ms: Some(0), ..ServerConfig::default() });
        let mut session = Session::default();
        let _ = handle_line("add 0 1 10 5", &s, &mut session);
        let _ = handle_line("publish", &s, &mut session);
        let (r, _) = handle_line("count M(3,2) 10 0", &s, &mut session);
        assert!(r.starts_with("OK count="), "{r}");
        let (r, _) = handle_line("query M(3,2) 10 0", &s, &mut session);
        assert!(r.contains("OK query"), "{r}");
        assert_eq!(s.metrics.slow_queries.get(), 2);
        // A huge threshold traces but never logs.
        let s = shared(ServerConfig { slow_query_ms: Some(u64::MAX), ..ServerConfig::default() });
        let (r, _) = handle_line("count M(3,2) 10 0", &s, &mut session);
        assert!(r.starts_with("OK count="), "{r}");
        assert_eq!(s.metrics.slow_queries.get(), 0);
    }

    #[test]
    fn subscribe_append_pushes_events_and_unsubscribe_stops_them() {
        let s = shared(ServerConfig::default());
        let mut session = Session::default();
        let (r, _) = handle_line("subscribe M(3,2) 10 0", &s, &mut session);
        assert_eq!(r, "OK subscribed id=1\n");
        // The same motif and window twice on one session is a mistake.
        let (r, _) = handle_line("subscribe M(3,2) 10 0", &s, &mut session);
        assert!(r.starts_with("ERR query already subscribed"), "{r}");
        // A different window is a distinct subscription.
        let (r, _) = handle_line("subscribe M(3,2) 10 0 0 100", &s, &mut session);
        assert_eq!(r, "OK subscribed id=2\n");
        assert!(s.metrics.render().contains("flowmotif_serve_subscriptions_active 2"));

        // Completing a 0->1->2 chain notifies both subscriptions.
        let (r, _) = handle_line("add 0 1 1 2", &s, &mut session);
        assert_eq!(r, "OK added watermark=1\n");
        let _ = handle_line("add 1 2 2 3", &s, &mut session);
        let mut buf = String::new();
        assert!(session.queue.has_pending());
        assert_eq!(session.queue.drain_into(&mut buf), 2);
        assert!(!session.queue.has_pending());
        assert!(buf.contains("EVENT id=1 match=0-1-2 flow=2 first=1 last=2 size=2\n"), "{buf}");
        assert!(buf.contains("EVENT id=2 match=0-1-2 flow=2 first=1 last=2 size=2\n"), "{buf}");

        let (r, _) = handle_line("unsubscribe 1", &s, &mut session);
        assert_eq!(r, "OK unsubscribed id=1\n");
        let (r, _) = handle_line("unsubscribe 1", &s, &mut session);
        assert!(r.starts_with("ERR query no subscription 1"), "{r}");
        // Unknown ids and other sessions' ids read the same way.
        let (r, _) = handle_line("unsubscribe 99", &s, &mut session);
        assert!(r.starts_with("ERR query no subscription 99"), "{r}");

        // Only the surviving subscription sees the next instance.
        let _ = handle_line("add 2 3 3 4", &s, &mut session);
        buf.clear();
        assert_eq!(session.queue.drain_into(&mut buf), 1);
        assert_eq!(buf, "EVENT id=2 match=1-2-3 flow=3 first=2 last=3 size=2\n");
        assert!(s.metrics.render().contains("flowmotif_serve_subscriptions_active 1"));
    }

    #[test]
    fn subscribe_respects_window_admission() {
        let s = shared(ServerConfig { max_window: Some(100), ..ServerConfig::default() });
        let mut session = Session::default();
        let (r, _) = handle_line("subscribe M(3,2) 10 0", &s, &mut session);
        assert!(r.starts_with("ERR admission unbounded"), "{r}");
        let (r, _) = handle_line("subscribe M(3,2) 10 0 0 101", &s, &mut session);
        assert!(r.starts_with("ERR admission window length 101"), "{r}");
        assert_eq!(s.metrics.admission_rejected.get(), 2);
        let (r, _) = handle_line("subscribe M(3,2) 10 0 0 100", &s, &mut session);
        assert_eq!(r, "OK subscribed id=1\n");
    }

    #[test]
    fn notify_queue_drops_past_capacity_with_counter() {
        let q = NotifyQueue::default();
        for i in 0..NOTIFY_QUEUE_CAP {
            assert!(q.push(format!("ev{i}")));
        }
        assert!(!q.push("overflow".to_string()));
        assert_eq!(q.dropped.load(Ordering::Relaxed), 1);
        let mut buf = String::new();
        assert_eq!(q.drain_into(&mut buf), NOTIFY_QUEUE_CAP);
        assert!(buf.starts_with("EVENT ev0\n"), "oldest survives, newest is shed");
        assert!(q.push("after drain".to_string()));
    }

    #[test]
    fn add_rejections_are_data_errors() {
        let s = shared(ServerConfig::default());
        let mut session = Session::default();
        let (r, _) = handle_line("add 0 0 10 5", &s, &mut session);
        assert!(r.starts_with("ERR data"), "{r}");
        let (r, _) = handle_line("add 0 1 10 -5", &s, &mut session);
        assert!(r.starts_with("ERR data"), "{r}");
        assert_eq!(session.errors, 2);
    }
}
