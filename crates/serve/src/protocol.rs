//! Request parsing and reply framing for the wire protocol.
//!
//! A request is one `\n`-terminated line of whitespace-separated fields.
//! A reply is zero or more `DATA `-prefixed payload lines followed by
//! exactly one status line starting with `OK`, `ERR` or `BUSY` — so a
//! client reads lines until it sees a status prefix (status-last
//! framing; see `PROTOCOL.md` for the normative grammar).

use flowmotif_core::{catalog, ExtensionOrder, Motif};
use flowmotif_graph::{Flow, NodeId, TimeWindow, Timestamp};
use std::io::{self, BufRead};

/// Hard cap on the length of one request line; longer lines are a
/// protocol error and close the connection (the stream cannot be
/// resynchronised reliably).
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Error categories carried by `ERR <code> <message>` status lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed request: unknown command, bad arity, unparsable field,
    /// empty or oversized line.
    Proto,
    /// Well-formed request with an invalid query: unknown motif spec,
    /// inverted time window.
    Query,
    /// Valid command rejected by the data layer (e.g. non-positive flow,
    /// self-loop).
    Data,
    /// Rejected by admission control for a non-transient reason (e.g.
    /// query window wider than the server cap). Transient overload uses
    /// the `BUSY` status instead.
    Admission,
}

impl ErrorCode {
    /// The on-wire token (`proto`, `query`, `data`, `admission`).
    pub fn token(self) -> &'static str {
        match self {
            ErrorCode::Proto => "proto",
            ErrorCode::Query => "query",
            ErrorCode::Data => "data",
            ErrorCode::Admission => "admission",
        }
    }
}

/// A parse or validation failure, rendered as an `ERR` status line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Error category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    fn proto(message: impl Into<String>) -> Self {
        Self { code: ErrorCode::Proto, message: message.into() }
    }

    fn query(message: impl Into<String>) -> Self {
        Self { code: ErrorCode::Query, message: message.into() }
    }

    /// The status line for this error.
    pub fn status_line(&self) -> String {
        format!("ERR {} {}", self.code.token(), self.message)
    }
}

/// A motif search request: the parsed motif plus an optional explicit
/// time window.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The motif (spec, δ and ϕ already folded in).
    pub motif: Motif,
    /// Closed time window restricting the search, if given.
    pub window: Option<TimeWindow>,
    /// Per-query P1 extension-order override (a trailing
    /// `order=fixed|cardinality` option token); `None` keeps the
    /// server's default.
    pub order: Option<ExtensionOrder>,
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// `ping` — liveness check.
    Ping,
    /// `add <u> <v> <t> <f>` — append one interaction.
    Add {
        /// Source node.
        from: NodeId,
        /// Target node.
        to: NodeId,
        /// Timestamp.
        time: Timestamp,
        /// Flow value.
        flow: Flow,
    },
    /// `query <motif> <delta> <phi> [<from> <to>]` — enumerate instances.
    Query(QuerySpec),
    /// `count <motif> <delta> <phi> [<from> <to>]` — count instances.
    Count(QuerySpec),
    /// `publish` — publish a fresh snapshot, making recent appends
    /// visible to queries.
    Publish,
    /// `evict <t>` — drop interactions older than `t` (writer side).
    Evict(Timestamp),
    /// `compact` — consolidate the writer-side graph.
    Compact,
    /// `stats` — server-wide statistics.
    Stats,
    /// `metrics` — every registered metric in the Prometheus text
    /// exposition format, one `DATA` line per text line.
    Metrics,
    /// `session` — statistics of this connection.
    Session,
    /// `subscribe <motif> <delta> <phi> [<from> <to>]` — register a
    /// standing query; matching instances arriving later are pushed as
    /// `EVENT` lines between reply frames.
    Subscribe(QuerySpec),
    /// `unsubscribe <id>` — remove a standing query owned by this
    /// session.
    Unsubscribe(u64),
    /// `quit` — close the connection after an `OK bye`.
    Quit,
}

/// Parses one request line (without its terminating newline).
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    let Some(&command) = fields.first() else {
        return Err(RequestError::proto("empty command".to_string()));
    };
    let args = &fields[1..];
    let exact = |n: usize| {
        if args.len() == n {
            Ok(())
        } else {
            Err(RequestError::proto(format!("`{command}` takes {n} fields, got {}", args.len())))
        }
    };
    match command {
        "ping" => exact(0).map(|()| Request::Ping),
        "add" => {
            exact(4)?;
            Ok(Request::Add {
                from: field(args, 0, command)?,
                to: field(args, 1, command)?,
                time: field(args, 2, command)?,
                flow: field(args, 3, command)?,
            })
        }
        "query" => parse_query_spec(command, args).map(Request::Query),
        "count" => parse_query_spec(command, args).map(Request::Count),
        "subscribe" => parse_query_spec(command, args).map(Request::Subscribe),
        "unsubscribe" => {
            exact(1)?;
            Ok(Request::Unsubscribe(field(args, 0, command)?))
        }
        "publish" => exact(0).map(|()| Request::Publish),
        "evict" => {
            exact(1)?;
            Ok(Request::Evict(field(args, 0, command)?))
        }
        "compact" => exact(0).map(|()| Request::Compact),
        "stats" => exact(0).map(|()| Request::Stats),
        "metrics" => exact(0).map(|()| Request::Metrics),
        "session" => exact(0).map(|()| Request::Session),
        "quit" => exact(0).map(|()| Request::Quit),
        other => Err(RequestError::proto(format!("unknown command `{other}`"))),
    }
}

fn field<T: std::str::FromStr>(args: &[&str], i: usize, command: &str) -> Result<T, RequestError>
where
    T::Err: std::fmt::Display,
{
    let raw = args[i];
    raw.parse().map_err(|e| RequestError::proto(format!("`{command}` field `{raw}`: {e}")))
}

/// Parses `<motif> <delta> <phi> [<from> <to>] [order=fixed|cardinality]`
/// — the same grammar as the `flowmotif stream` script's `query`
/// operation plus the trailing option token; shared by `query`, `count`
/// and `subscribe`.
fn parse_query_spec(command: &str, args: &[&str]) -> Result<QuerySpec, RequestError> {
    let (args, order) = match args.last().and_then(|a| a.strip_prefix("order=")) {
        Some(raw) => {
            let order = raw
                .parse::<ExtensionOrder>()
                .map_err(|e| RequestError::proto(format!("`{command}` option `order`: {e}")))?;
            (&args[..args.len() - 1], Some(order))
        }
        None => (args, None),
    };
    if args.len() != 3 && args.len() != 5 {
        return Err(RequestError::proto(format!(
            "`{command} <motif> <delta> <phi> [<from> <to>] [order=<o>]` \
             takes 3 or 5 fields, got {}",
            args.len()
        )));
    }
    let delta: Timestamp = field(args, 1, command)?;
    let phi: Flow = field(args, 2, command)?;
    let motif = catalog::parse_motif(args[0], delta, phi)
        .map_err(|e| RequestError::query(e.to_string()))?;
    let window = if args.len() == 5 {
        let from: Timestamp = field(args, 3, command)?;
        let to: Timestamp = field(args, 4, command)?;
        if to < from {
            return Err(RequestError::query(format!(
                "window [{from}, {to}] ends before it starts"
            )));
        }
        Some(TimeWindow::new(from, to))
    } else {
        None
    };
    Ok(QuerySpec { motif, window, order })
}

/// One framed reply: the `DATA` payload lines (prefix stripped), any
/// push `EVENT` lines that arrived ahead of or inside the frame, and the
/// final status line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Payload lines, in order, without their `DATA ` prefix.
    pub data: Vec<String>,
    /// Standing-query notifications collected while reading this frame,
    /// without their `EVENT ` prefix (empty unless the connection has
    /// active subscriptions).
    pub events: Vec<String>,
    /// The status line (`OK …`, `ERR …` or `BUSY …`).
    pub status: String,
}

impl Reply {
    /// Whether the status line reports success.
    pub fn is_ok(&self) -> bool {
        self.status == "OK" || self.status.starts_with("OK ")
    }

    /// Whether the status line is a transient `BUSY` rejection (the
    /// request may be retried verbatim).
    pub fn is_busy(&self) -> bool {
        self.status == "BUSY" || self.status.starts_with("BUSY ")
    }

    /// Whether the status line reports a permanent error.
    pub fn is_err(&self) -> bool {
        self.status == "ERR" || self.status.starts_with("ERR ")
    }

    /// Looks up a `key=value` field in the status line.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.status
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
    }
}

/// Reads one framed reply: `DATA` lines until the `OK`/`ERR`/`BUSY`
/// status line. Push `EVENT` lines (delivered between frames on
/// subscribed connections) are collected into [`Reply::events`] rather
/// than consumed as data. Fails with `UnexpectedEof` if the peer closes
/// mid-reply.
pub fn read_reply<R: BufRead>(reader: &mut R) -> io::Result<Reply> {
    let mut data = Vec::new();
    let mut events = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-reply",
            ));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if let Some(payload) = line.strip_prefix("DATA ") {
            data.push(payload.to_string());
        } else if let Some(payload) = line.strip_prefix("EVENT ") {
            events.push(payload.to_string());
        } else {
            return Ok(Reply { data, events, status: line.to_string() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert!(matches!(parse_request("ping").unwrap(), Request::Ping));
        assert!(matches!(
            parse_request("add 0 1 10 2.5").unwrap(),
            Request::Add { from: 0, to: 1, time: 10, .. }
        ));
        let Request::Query(q) = parse_request("query M(3,2) 10 0.5").unwrap() else {
            panic!("not a query")
        };
        assert_eq!(q.motif.delta(), 10);
        assert!(q.window.is_none());
        let Request::Count(q) = parse_request("count 0-1-2-0 10 0 5 25").unwrap() else {
            panic!("not a count")
        };
        assert_eq!(q.window, Some(TimeWindow::new(5, 25)));
        let Request::Subscribe(q) = parse_request("subscribe M(3,3) 10 7 0 30").unwrap() else {
            panic!("not a subscribe")
        };
        assert_eq!(q.window, Some(TimeWindow::new(0, 30)));
        assert!(matches!(parse_request("unsubscribe 3").unwrap(), Request::Unsubscribe(3)));
        assert!(matches!(parse_request("publish").unwrap(), Request::Publish));
        assert!(matches!(parse_request("evict 42").unwrap(), Request::Evict(42)));
        assert!(matches!(parse_request("compact").unwrap(), Request::Compact));
        assert!(matches!(parse_request("stats").unwrap(), Request::Stats));
        assert!(matches!(parse_request("metrics").unwrap(), Request::Metrics));
        assert!(matches!(parse_request("session").unwrap(), Request::Session));
        assert!(matches!(parse_request("quit").unwrap(), Request::Quit));
    }

    #[test]
    fn parses_order_option() {
        // Trailing `order=` token on every query-spec command, with or
        // without a window.
        let Request::Query(q) = parse_request("query M(3,2) 10 0 order=fixed").unwrap() else {
            panic!("not a query")
        };
        assert_eq!(q.order, Some(ExtensionOrder::Fixed));
        assert!(q.window.is_none());
        let Request::Count(q) = parse_request("count M(3,2) 10 0 5 25 order=cardinality").unwrap()
        else {
            panic!("not a count")
        };
        assert_eq!(q.order, Some(ExtensionOrder::Cardinality));
        assert_eq!(q.window, Some(TimeWindow::new(5, 25)));
        let Request::Subscribe(q) = parse_request("subscribe M(3,3) 10 7 order=fixed").unwrap()
        else {
            panic!("not a subscribe")
        };
        assert_eq!(q.order, Some(ExtensionOrder::Fixed));
        // Absent token: no override.
        let Request::Query(q) = parse_request("query M(3,2) 10 0").unwrap() else {
            panic!("not a query")
        };
        assert_eq!(q.order, None);
        // Bad values and misplaced tokens are protocol errors.
        let err = parse_request("query M(3,2) 10 0 order=random").unwrap_err();
        assert_eq!(err.code, ErrorCode::Proto);
        assert!(err.message.contains("unknown extension order"), "{}", err.message);
        let err = parse_request("query M(3,2) 10 0 order=fixed 5 25").unwrap_err();
        assert_eq!(err.code, ErrorCode::Proto, "order token must come last");
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, expect) in [
            ("", "empty command"),
            ("   ", "empty command"),
            ("frobnicate", "unknown command"),
            ("add 0 1 10", "takes 4 fields"),
            ("add 0 1 10 2.5 extra", "takes 4 fields"),
            ("add 0 one 10 2.5", "field `one`"),
            ("query M(3,2)", "takes 3 or 5 fields"),
            ("query M(3,2) 10 0 5", "takes 3 or 5 fields"),
            ("subscribe M(3,2)", "takes 3 or 5 fields"),
            ("unsubscribe", "takes 1 fields"),
            ("unsubscribe one", "field `one`"),
            ("evict", "takes 1 fields"),
            ("ping pong", "takes 0 fields"),
            ("metrics now", "takes 0 fields"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::Proto, "{line}");
            assert!(err.message.contains(expect), "{line}: {}", err.message);
        }
        // Query-level (not protocol-level) failures.
        let err = parse_request("query M(9,9) 10 0").unwrap_err();
        assert_eq!(err.code, ErrorCode::Query);
        let err = parse_request("query M(3,2) 10 0 30 5").unwrap_err();
        assert_eq!(err.code, ErrorCode::Query);
        assert!(err.message.contains("ends before"));
        assert!(err.status_line().starts_with("ERR query "));
    }

    #[test]
    fn reply_framing_round_trips() {
        let wire = "DATA first\nDATA second payload\nOK query instances=2 epoch=7\n";
        let reply = read_reply(&mut wire.as_bytes()).unwrap();
        assert_eq!(reply.data, vec!["first", "second payload"]);
        assert!(reply.is_ok());
        assert_eq!(reply.field("instances"), Some("2"));
        assert_eq!(reply.field("epoch"), Some("7"));
        assert_eq!(reply.field("missing"), None);

        let reply = read_reply(&mut "BUSY 3 queries in flight\n".as_bytes()).unwrap();
        assert!(reply.is_busy() && !reply.is_ok() && !reply.is_err());

        let reply = read_reply(&mut "ERR proto unknown command `x`\n".as_bytes()).unwrap();
        assert!(reply.is_err());

        let eof = read_reply(&mut "DATA never finished\n".as_bytes());
        assert_eq!(eof.unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn event_lines_are_collected_not_consumed_as_data() {
        let wire = "EVENT id=1 match=0-1-2 flow=3 first=2 last=3 size=2\n\
                    DATA payload\nEVENT id=2 match=1-2-3 flow=4 first=5 last=6 size=2\nOK added watermark=3\n";
        let reply = read_reply(&mut wire.as_bytes()).unwrap();
        assert!(reply.is_ok());
        assert_eq!(reply.data, vec!["payload"]);
        assert_eq!(
            reply.events,
            vec![
                "id=1 match=0-1-2 flow=3 first=2 last=3 size=2",
                "id=2 match=1-2-3 flow=4 first=5 last=6 size=2"
            ]
        );
    }
}
