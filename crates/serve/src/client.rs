//! A minimal blocking client for the wire protocol: send one request
//! line, read one framed reply.

use crate::protocol::{read_reply, Reply};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One protocol connection. Requests are strictly sequential
/// (send → reply); open several clients for concurrency.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running [`crate::Server`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/reply round trips are latency-bound: never batch the
        // tiny request segments behind Nagle's algorithm.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { writer: stream, reader })
    }

    /// Sends one request line (without a trailing newline) and reads the
    /// framed reply. `ERR`/`BUSY` statuses are returned as normal
    /// [`Reply`] values, not `Err` — only transport failures error.
    pub fn send(&mut self, line: &str) -> io::Result<Reply> {
        if line.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "request must be a single line",
            ));
        }
        // One write per request: a split line + newline pair would
        // otherwise stall on Nagle + delayed-ACK interaction.
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()?;
        read_reply(&mut self.reader)
    }

    /// Pipelines a batch: writes every request line in one flush, then
    /// reads the replies back in order. The server guarantees reply
    /// order matches request order on a connection, so this is
    /// observably identical to [`Client::send`] in a loop minus the
    /// per-request round-trip latency — the point of pipelining.
    /// `ERR`/`BUSY` replies come back as values like in `send`; a
    /// transport failure abandons the rest of the batch.
    pub fn send_batch(&mut self, lines: &[&str]) -> io::Result<Vec<Reply>> {
        let mut framed = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
        for line in lines {
            if line.contains('\n') {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "each request must be a single line",
                ));
            }
            framed.push_str(line);
            framed.push('\n');
        }
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()?;
        let mut replies = Vec::with_capacity(lines.len());
        for _ in lines {
            replies.push(read_reply(&mut self.reader)?);
        }
        Ok(replies)
    }

    /// Sets (or clears) the read timeout governing [`Client::recv_line`]
    /// and [`Client::send`]. A timed-out read returns an error of kind
    /// [`io::ErrorKind::WouldBlock`] or [`io::ErrorKind::TimedOut`].
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Reads one raw line off the connection — the subscriber side of
    /// `subscribe`: after the `OK subscribed` reply, the server pushes
    /// unsolicited `EVENT <payload>` lines, which [`Client::send`] would
    /// only surface attached to the *next* reply. Returns the line
    /// without its trailing newline, or `None` on a clean server close.
    pub fn recv_line(&mut self) -> io::Result<Option<String>> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }
}
