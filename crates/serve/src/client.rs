//! A minimal blocking client for the wire protocol: send one request
//! line, read one framed reply.

use crate::protocol::{read_reply, Reply};
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One protocol connection. Requests are strictly sequential
/// (send → reply); open several clients for concurrency.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running [`crate::Server`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/reply round trips are latency-bound: never batch the
        // tiny request segments behind Nagle's algorithm.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { writer: stream, reader })
    }

    /// Sends one request line (without a trailing newline) and reads the
    /// framed reply. `ERR`/`BUSY` statuses are returned as normal
    /// [`Reply`] values, not `Err` — only transport failures error.
    pub fn send(&mut self, line: &str) -> io::Result<Reply> {
        if line.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "request must be a single line",
            ));
        }
        // One write per request: a split line + newline pair would
        // otherwise stall on Nagle + delayed-ACK interaction.
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()?;
        read_reply(&mut self.reader)
    }
}
