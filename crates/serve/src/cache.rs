//! The epoch-keyed result cache: framed `query`/`count` replies keyed
//! by `(epoch, spec)`, served straight from the event loop on a hit.
//!
//! Snapshots are immutable and epoch-stamped, so an exact-match lookup
//! keyed by the *currently published* epoch can never serve stale data:
//! a publish changes the key, which is the entire invalidation story.
//! Entries for superseded epochs linger harmlessly until capacity
//! pressure evicts them (least-recently-used first).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A cache key: the published epoch plus the canonical spec string
/// (verb, motif walk, δ, ϕ, window, extension order — everything that
/// selects a reply, see [`crate::server`]'s `cache_key`).
pub(crate) type CacheKey = (u64, String);

#[derive(Debug)]
struct Entry {
    reply: Arc<str>,
    /// Logical access clock at last touch; the eviction victim is the
    /// entry with the smallest stamp.
    touched: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
}

/// A bounded LRU of framed replies. `get` is O(1); `insert` pays an
/// O(capacity) victim scan only when full — amortised against the cold
/// engine query whose result it is storing, this is noise, and it keeps
/// the structure a plain map instead of an intrusive list.
#[derive(Debug)]
pub(crate) struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` replies; 0 disables caching
    /// (every lookup misses, every insert is dropped).
    pub(crate) fn new(capacity: usize) -> Self {
        Self { inner: Mutex::new(Inner::default()), capacity, evictions: AtomicU64::new(0) }
    }

    /// Looks up a reply, refreshing its recency on a hit.
    pub(crate) fn get(&self, key: &CacheKey) -> Option<Arc<str>> {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        let e = inner.map.get_mut(key)?;
        e.touched = clock;
        Some(Arc::clone(&e.reply))
    }

    /// Stores a reply, evicting the least-recently-used entry when full.
    pub(crate) fn insert(&self, key: CacheKey, reply: Arc<str>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(victim) =
                inner.map.iter().min_by_key(|(_, e)| e.touched).map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(key, Entry { reply, touched: clock });
    }

    /// Entries currently held (the `cache_entries` gauge).
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Entries evicted under capacity pressure since construction.
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(epoch: u64, s: &str) -> CacheKey {
        (epoch, s.to_string())
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let c = ResultCache::new(2);
        c.insert(key(1, "a"), "ra".into());
        c.insert(key(1, "b"), "rb".into());
        assert_eq!(c.get(&key(1, "a")).as_deref(), Some("ra")); // refresh a
        c.insert(key(1, "c"), "rc".into()); // evicts b
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.get(&key(1, "b")).is_none());
        assert_eq!(c.get(&key(1, "a")).as_deref(), Some("ra"));
        assert_eq!(c.get(&key(1, "c")).as_deref(), Some("rc"));
    }

    #[test]
    fn epoch_is_part_of_the_key() {
        let c = ResultCache::new(8);
        c.insert(key(1, "q"), "old".into());
        c.insert(key(2, "q"), "new".into());
        assert_eq!(c.get(&key(1, "q")).as_deref(), Some("old"));
        assert_eq!(c.get(&key(2, "q")).as_deref(), Some("new"));
        assert!(c.get(&key(3, "q")).is_none());
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let c = ResultCache::new(0);
        c.insert(key(1, "q"), "r".into());
        assert_eq!(c.len(), 0);
        assert!(c.get(&key(1, "q")).is_none());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let c = ResultCache::new(2);
        c.insert(key(1, "a"), "ra".into());
        c.insert(key(1, "b"), "rb".into());
        c.insert(key(1, "a"), "ra2".into());
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&key(1, "a")).as_deref(), Some("ra2"));
        assert_eq!(c.get(&key(1, "b")).as_deref(), Some("rb"));
    }
}
