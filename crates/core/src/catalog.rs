//! The motif catalog of paper Fig. 3: the ten walk-shaped motifs used
//! throughout the experimental evaluation.
//!
//! Fig. 3 provides only drawings; the exact walks of the M(4,4) and M(5,5)
//! variants are fixed here as documented in `DESIGN.md`:
//!
//! | name | walk | shape |
//! |---|---|---|
//! | M(3,2)  | `0-1-2`       | 3-chain |
//! | M(3,3)  | `0-1-2-0`     | triangle (cyclic transactions) |
//! | M(4,3)  | `0-1-2-3`     | 4-chain |
//! | M(4,4)A | `0-1-2-3-0`   | 4-cycle |
//! | M(4,4)B | `0-1-2-0-3`   | triangle + out-edge |
//! | M(4,4)C | `0-1-2-3-1`   | chain + back-edge to the 2nd node |
//! | M(5,4)  | `0-1-2-3-4`   | 5-chain |
//! | M(5,5)A | `0-1-2-3-4-0` | 5-cycle |
//! | M(5,5)B | `0-1-2-3-0-4` | 4-cycle + out-edge |
//! | M(5,5)C | `0-1-2-3-4-2` | chain + back-edge to the 3rd node |

use crate::error::MotifError;
use crate::motif::{Motif, MotifNode, SpanningPath};

/// Names and walks of the ten catalog motifs, in the order of Fig. 3's
/// evaluation charts.
pub const CATALOG: [(&str, &[MotifNode]); 10] = [
    ("M(3,2)", &[0, 1, 2]),
    ("M(3,3)", &[0, 1, 2, 0]),
    ("M(4,3)", &[0, 1, 2, 3]),
    ("M(4,4)A", &[0, 1, 2, 3, 0]),
    ("M(4,4)B", &[0, 1, 2, 0, 3]),
    ("M(4,4)C", &[0, 1, 2, 3, 1]),
    ("M(5,4)", &[0, 1, 2, 3, 4]),
    ("M(5,5)A", &[0, 1, 2, 3, 4, 0]),
    ("M(5,5)B", &[0, 1, 2, 3, 0, 4]),
    ("M(5,5)C", &[0, 1, 2, 3, 4, 2]),
];

/// Returns all ten catalog motifs with the given constraints.
pub fn all_motifs(delta: i64, phi: f64) -> Vec<Motif> {
    CATALOG
        .iter()
        .map(|(name, walk)| {
            Motif::from_walk(walk, delta, phi).expect("catalog walks are valid").with_name(*name)
        })
        .collect()
}

/// Looks a catalog motif up by name, e.g. `"M(4,4)B"`. Matching is
/// case-insensitive and ignores whitespace; the suffix letter of the
/// single-variant motifs may be omitted.
pub fn by_name(name: &str, delta: i64, phi: f64) -> Result<Motif, MotifError> {
    let needle: String =
        name.chars().filter(|c| !c.is_whitespace()).collect::<String>().to_uppercase();
    for (n, walk) in CATALOG {
        if n.to_uppercase() == needle {
            return Ok(Motif::from_walk(walk, delta, phi)?.with_name(n));
        }
    }
    Err(MotifError::UnknownMotifName(name.to_string()))
}

/// Parses a motif from either a catalog name or an explicit walk such as
/// `"0-1-2-0"` (dash- or space-separated vertex labels).
pub fn parse_motif(spec: &str, delta: i64, phi: f64) -> Result<Motif, MotifError> {
    if let Ok(m) = by_name(spec, delta, phi) {
        return Ok(m);
    }
    let labels: Result<Vec<MotifNode>, _> = spec
        .split(|c: char| c == '-' || c.is_whitespace())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<MotifNode>())
        .collect();
    match labels {
        Ok(walk) if walk.len() >= 2 => Motif::new(SpanningPath::new(walk)?, delta, phi),
        _ => Err(MotifError::UnknownMotifName(spec.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_walks_are_valid_and_sized_as_named() {
        for (name, walk) in CATALOG {
            let p = SpanningPath::new(walk.to_vec()).unwrap();
            // Parse "M(n,m)" out of the name.
            let inner = &name[2..name.find(')').unwrap()];
            let (n, m) = inner.split_once(',').unwrap();
            assert_eq!(p.num_nodes(), n.parse::<usize>().unwrap(), "{name}");
            assert_eq!(p.num_edges(), m.parse::<usize>().unwrap(), "{name}");
        }
    }

    #[test]
    fn all_motifs_returns_ten_named_motifs() {
        let ms = all_motifs(600, 5.0);
        assert_eq!(ms.len(), 10);
        assert_eq!(ms[1].name(), "M(3,3)");
        assert!(ms.iter().all(|m| m.delta() == 600 && m.phi() == 5.0));
    }

    #[test]
    fn chains_are_acyclic_cycles_are_not() {
        let ms = all_motifs(1, 0.0);
        let cyclic: Vec<_> = ms.iter().filter(|m| m.path().has_cycle()).map(|m| m.name()).collect();
        assert_eq!(
            cyclic,
            vec!["M(3,3)", "M(4,4)A", "M(4,4)B", "M(4,4)C", "M(5,5)A", "M(5,5)B", "M(5,5)C"]
        );
    }

    #[test]
    fn by_name_is_forgiving() {
        assert_eq!(by_name("m(4,4)b", 10, 0.0).unwrap().name(), "M(4,4)B");
        assert_eq!(by_name(" M(3,3) ", 10, 0.0).unwrap().name(), "M(3,3)");
        assert!(by_name("M(6,6)", 10, 0.0).is_err());
    }

    #[test]
    fn parse_motif_accepts_walks() {
        let m = parse_motif("0-1-2-0", 10, 2.0).unwrap();
        assert_eq!(m.path().walk(), &[0, 1, 2, 0]);
        let m = parse_motif("0 1 2 3", 10, 2.0).unwrap();
        assert_eq!(m.num_edges(), 3);
        assert!(parse_motif("garbage", 10, 2.0).is_err());
        assert!(parse_motif("0-0", 10, 2.0).is_err());
    }
}
