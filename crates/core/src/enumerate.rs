//! Phase P2: enumeration of maximal flow motif instances inside each
//! structural match — Algorithm 1 of the paper.
//!
//! # How instances are enumerated
//!
//! For one structural match `G_s`, a window of length `δ` slides along the
//! timeline, anchored at successive elements of `R(e_1)`. Within a window
//! `[a, a + δ]`, every maximal instance is a sequence of *split points*
//! `a = s_0 ≤ s_1 < s_2 < … < s_{m-1}`: motif edge `e_i` takes **all**
//! elements of its series in `(s_{i-1}, s_i]` (with `e_1` starting
//! inclusively at the anchor and `e_m` running to the window end). The
//! recursion of `FindInstances` (paper Algorithm 1) enumerates the splits —
//! the "prefixes" of the paper — pruning by the flow constraint `ϕ` at
//! every prefix (line 16).
//!
//! # Maximality
//!
//! Three guards make the output exactly the set of *maximal* instances
//! (paper Def. 3.3):
//!
//! 1. **Window skipping** — a window position whose `R(e_m)` gains no new
//!    element over the previously processed window is skipped (the paper's
//!    `[13, 23]` example): any instance found there could absorb an earlier
//!    `R(e_1)` element and is therefore non-maximal.
//! 2. **Prefix admissibility** — a split after element `j` of `e_i` is
//!    admissible only if some `e_{i+1}` element lies strictly between
//!    element `j` and element `j+1` of `e_i`; otherwise element `j+1`
//!    could be added to `e_i` without disturbing `e_{i+1}` (the paper's
//!    "no element of e2 between (13,2) and (15,3)" example).
//! 3. **Prepend guard** — an assembled instance is rejected if the
//!    `R(e_1)` element immediately before the window anchor could be
//!    prepended without exceeding `δ`; the enclosing window anchored at
//!    that element emits the enlarged instance instead.

use crate::instance::{EdgeSet, InstanceView, MotifInstance, StructuralMatch};
use crate::matcher::{ExtensionOrder, P1Driver};
use crate::motif::Motif;
use crate::scratch::SearchScratch;
use crate::trace::{TraceSink, TraceStage};
use flowmotif_graph::{Flow, GraphStore, SeriesRef, TimeWindow, Timestamp};
use std::ops::Range;

/// Tuning knobs for the enumerator. The defaults implement the paper's
/// Algorithm 1; the toggles exist for the ablation experiments.
///
/// The struct is `#[non_exhaustive]`: downstream crates construct it via
/// [`SearchOptions::default`] or [`SearchOptions::builder`] and derive
/// variants with the `with_*` combinators, so new knobs can land without
/// breaking them.
#[derive(Clone, Copy)]
#[non_exhaustive]
pub struct SearchOptions {
    /// Skip window positions that contribute no new `R(e_m)` element
    /// (guard 1 above). Disabling processes every anchor; the result set
    /// is unchanged (the prepend guard still rejects non-maximal
    /// instances) but more work is done.
    pub skip_redundant_windows: bool,
    /// Apply the `ϕ` check at every prefix (Algorithm 1 line 16).
    /// Disabling defers all flow checking to instance assembly; the
    /// result set is unchanged but the search space is not pruned.
    pub phi_prefix_pruning: bool,
    /// Drive window-bounded phase P1 from the graph's active-time origin
    /// index ([`flowmotif_graph::TimeSeriesGraph::active_origins_in`])
    /// instead of sweeping every origin. The result set and emission
    /// order are unchanged; disabling exists for A/B comparisons (the
    /// CLI's `--no-index`). Ignored by unbounded searches.
    pub use_active_index: bool,
    /// Optional stage-level trace hook ([`crate::trace`]). `None` (the
    /// default) costs one branch per structural match and nothing else —
    /// no clocks, no atomics — keeping the steady-state loop
    /// allocation-free and bench-neutral. The `'static` bound keeps the
    /// options `Copy` and freely shareable across worker threads; serve
    /// and the CLI leak one [`crate::trace::AtomicTrace`] per
    /// worker/process and reset it between queries.
    pub trace: Option<&'static dyn TraceSink>,
    /// How phase P1 picks the motif edge extending each DFS prefix
    /// ([`crate::matcher::ExtensionOrder`]). The default,
    /// `Cardinality`, is the worst-case-optimal order; `Fixed` is the
    /// paper's walk order, kept for A/B runs. The result set, emission
    /// order and [`SearchStats`] are identical either way.
    pub extension_order: ExtensionOrder,
}

impl SearchOptions {
    /// A builder starting from the defaults.
    pub fn builder() -> SearchOptionsBuilder {
        SearchOptionsBuilder::default()
    }

    /// This options value with the trace hook replaced. Out-of-crate
    /// callers use this instead of a functional-update literal, which
    /// `#[non_exhaustive]` forbids there.
    #[must_use]
    pub fn with_trace(mut self, trace: Option<&'static dyn TraceSink>) -> Self {
        self.trace = trace;
        self
    }

    /// This options value with the P1 extension order replaced.
    #[must_use]
    pub fn with_extension_order(mut self, order: ExtensionOrder) -> Self {
        self.extension_order = order;
        self
    }

    /// This options value with guard-1 window skipping replaced.
    #[must_use]
    pub fn with_skip_redundant_windows(mut self, v: bool) -> Self {
        self.skip_redundant_windows = v;
        self
    }

    /// This options value with `ϕ` prefix pruning replaced.
    #[must_use]
    pub fn with_phi_prefix_pruning(mut self, v: bool) -> Self {
        self.phi_prefix_pruning = v;
        self
    }

    /// This options value with the active-index toggle replaced.
    #[must_use]
    pub fn with_use_active_index(mut self, v: bool) -> Self {
        self.use_active_index = v;
        self
    }
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            skip_redundant_windows: true,
            phi_prefix_pruning: true,
            use_active_index: true,
            trace: None,
            extension_order: ExtensionOrder::default(),
        }
    }
}

/// Builder for [`SearchOptions`] — the construction path that stays
/// source-compatible as knobs are added.
///
/// ```
/// use flowmotif_core::{ExtensionOrder, SearchOptions};
///
/// let opts = SearchOptions::builder()
///     .phi_prefix_pruning(false)
///     .extension_order(ExtensionOrder::Fixed)
///     .build();
/// assert_eq!(opts, SearchOptions::default()
///     .with_extension_order(ExtensionOrder::Fixed)
///     .with_phi_prefix_pruning(false));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchOptionsBuilder {
    opts: SearchOptions,
}

impl SearchOptionsBuilder {
    /// Sets [`SearchOptions::skip_redundant_windows`].
    pub fn skip_redundant_windows(mut self, v: bool) -> Self {
        self.opts.skip_redundant_windows = v;
        self
    }

    /// Sets [`SearchOptions::phi_prefix_pruning`].
    pub fn phi_prefix_pruning(mut self, v: bool) -> Self {
        self.opts.phi_prefix_pruning = v;
        self
    }

    /// Sets [`SearchOptions::use_active_index`].
    pub fn use_active_index(mut self, v: bool) -> Self {
        self.opts.use_active_index = v;
        self
    }

    /// Sets [`SearchOptions::trace`].
    pub fn trace(mut self, trace: Option<&'static dyn TraceSink>) -> Self {
        self.opts.trace = trace;
        self
    }

    /// Sets [`SearchOptions::extension_order`].
    pub fn extension_order(mut self, order: ExtensionOrder) -> Self {
        self.opts.extension_order = order;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> SearchOptions {
        self.opts
    }
}

// Manual impls: `dyn TraceSink` has no `PartialEq`/`Debug`, so the trace
// hook compares by sink identity (thin-pointer equality — two options
// tracing into the same sink are interchangeable) and prints as a flag.
impl PartialEq for SearchOptions {
    fn eq(&self, other: &Self) -> bool {
        let thin =
            |t: Option<&'static dyn TraceSink>| t.map(|s| s as *const dyn TraceSink as *const ());
        self.skip_redundant_windows == other.skip_redundant_windows
            && self.phi_prefix_pruning == other.phi_prefix_pruning
            && self.use_active_index == other.use_active_index
            && thin(self.trace) == thin(other.trace)
            && self.extension_order == other.extension_order
    }
}

impl Eq for SearchOptions {}

impl std::fmt::Debug for SearchOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchOptions")
            .field("skip_redundant_windows", &self.skip_redundant_windows)
            .field("phi_prefix_pruning", &self.phi_prefix_pruning)
            .field("use_active_index", &self.use_active_index)
            .field("trace", &self.trace.is_some())
            .field("extension_order", &self.extension_order)
            .finish()
    }
}

/// Counters describing one enumeration run; useful for the ablation
/// benchmarks and for sanity-checking scalability claims.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Structural matches processed (phase P1 results).
    pub structural_matches: u64,
    /// Window positions recursed into.
    pub windows_processed: u64,
    /// Window positions skipped by guard 1.
    pub windows_skipped: u64,
    /// Prefixes discarded by the `ϕ` / top-k threshold check.
    pub prefixes_pruned_by_flow: u64,
    /// Prefixes discarded by admissibility guard 2.
    pub prefixes_skipped_nonmaximal: u64,
    /// Assembled instances rejected by prepend guard 3.
    pub instances_rejected_nonmaximal: u64,
    /// Assembled instances rejected by the final flow check (only when
    /// prefix pruning is disabled or a floating threshold rose mid-window).
    pub instances_rejected_by_flow: u64,
    /// Valid maximal instances delivered to the sink.
    pub instances_emitted: u64,
}

impl SearchStats {
    /// Merges counters from another run (used by parallel drivers).
    pub fn merge(&mut self, o: &SearchStats) {
        self.structural_matches += o.structural_matches;
        self.windows_processed += o.windows_processed;
        self.windows_skipped += o.windows_skipped;
        self.prefixes_pruned_by_flow += o.prefixes_pruned_by_flow;
        self.prefixes_skipped_nonmaximal += o.prefixes_skipped_nonmaximal;
        self.instances_rejected_nonmaximal += o.instances_rejected_nonmaximal;
        self.instances_rejected_by_flow += o.instances_rejected_by_flow;
        self.instances_emitted += o.instances_emitted;
    }
}

/// Receives instances as they are found.
///
/// The sink also supplies a *floating* pruning threshold, which the top-k
/// search (paper §5) raises as better instances accumulate; plain
/// enumeration leaves it at `-∞`.
///
/// Both arguments of [`InstanceSink::accept`] are *borrowed views into
/// enumerator scratch buffers*, valid only for the duration of the call:
/// the enumerator mutates them in place for the next match/instance, so a
/// sink that keeps results copies explicitly ([`StructuralMatch::clone`],
/// [`InstanceView::to_instance`] / [`InstanceView::write_to`]) and a sink
/// that only counts, filters or aggregates touches the heap not at all —
/// this is what makes the steady-state P1→P2 loop allocation-free.
pub trait InstanceSink {
    /// Prefixes (and final instances) whose aggregated flow is `<=` this
    /// value cannot contribute; `-∞` disables the extra pruning.
    fn prune_threshold(&self) -> Flow {
        f64::NEG_INFINITY
    }

    /// Called for every valid maximal instance.
    fn accept(&mut self, sm: &StructuralMatch, inst: InstanceView<'_>);
}

/// Sink that only counts (the "counting instances without constructing
/// them" use-case of the paper's future work runs through this fast path).
#[derive(Debug, Default)]
pub struct CountSink {
    /// Number of accepted instances.
    pub count: u64,
}

impl InstanceSink for CountSink {
    fn accept(&mut self, _sm: &StructuralMatch, _inst: InstanceView<'_>) {
        self.count += 1;
    }
}

/// Sink that groups collected instances per structural match.
#[derive(Debug, Default)]
pub struct CollectSink {
    /// `(match, its instances)` in discovery order.
    pub groups: Vec<(StructuralMatch, Vec<MotifInstance>)>,
}

impl CollectSink {
    /// Total number of collected instances.
    pub fn num_instances(&self) -> usize {
        self.groups.iter().map(|(_, v)| v.len()).sum()
    }

    /// Flattens into `(match index, instance)` pairs. The group's owned
    /// match moves into its last instance's pair; only the preceding
    /// instances of a group clone it.
    pub fn into_flat(self) -> Vec<(StructuralMatch, MotifInstance)> {
        let mut out = Vec::with_capacity(self.groups.iter().map(|(_, v)| v.len()).sum());
        for (m, insts) in self.groups {
            let mut it = insts.into_iter();
            let Some(mut prev) = it.next() else { continue };
            for next in it {
                out.push((m.clone(), prev));
                prev = next;
            }
            out.push((m, prev));
        }
        out
    }
}

impl InstanceSink for CollectSink {
    fn accept(&mut self, sm: &StructuralMatch, inst: InstanceView<'_>) {
        let inst = inst.to_instance();
        match self.groups.last_mut() {
            Some((m, v)) if m == sm => v.push(inst),
            _ => self.groups.push((sm.clone(), vec![inst])),
        }
    }
}

/// Adapter turning a closure into a sink.
#[derive(Debug)]
pub struct FnSink<F>(pub F);

impl<F: FnMut(&StructuralMatch, InstanceView<'_>)> InstanceSink for FnSink<F> {
    fn accept(&mut self, sm: &StructuralMatch, inst: InstanceView<'_>) {
        (self.0)(sm, inst)
    }
}

/// Reusable phase-P2 buffers shared across the many structural matches of
/// one search: the prefix stack of Algorithm 1 and the flat edge-set
/// buffer emitted instances are assembled in. Lifetime-free, so drivers
/// (streaming engines, server sessions) can hold one across queries over
/// different graphs; see [`crate::SearchScratch`] for the full-pipeline
/// arena.
#[derive(Debug, Default, Clone)]
pub struct EnumerationScratch {
    stack: Vec<(EdgeSet, Flow)>,
    edge_sets: Vec<EdgeSet>,
}

/// The unbounded search window: every timestamp is admissible. Searching
/// with these bounds is exactly the paper's Algorithm 1.
const UNBOUNDED: TimeWindow = TimeWindow { start: Timestamp::MIN, end: Timestamp::MAX };

/// Enumerates all maximal instances of `motif` inside the single
/// structural match `sm`, delivering them to `sink`. Generic over the
/// [`GraphStore`] backend like the rest of the pipeline.
pub fn enumerate_in_match<G: GraphStore, S: InstanceSink>(
    g: &G,
    motif: &Motif,
    sm: &StructuralMatch,
    opts: SearchOptions,
    sink: &mut S,
    stats: &mut SearchStats,
) {
    let mut scratch = EnumerationScratch::default();
    enumerate_in_match_reusing(g, motif, sm, opts, sink, stats, &mut scratch);
}

/// [`enumerate_in_match`] with caller-provided scratch buffers; use this
/// when iterating over many matches (see [`enumerate_with_sink`]).
pub fn enumerate_in_match_reusing<G: GraphStore, S: InstanceSink>(
    g: &G,
    motif: &Motif,
    sm: &StructuralMatch,
    opts: SearchOptions,
    sink: &mut S,
    stats: &mut SearchStats,
    scratch: &mut EnumerationScratch,
) {
    enumerate_in_match_bounded(g, motif, sm, UNBOUNDED, opts, sink, stats, scratch);
}

/// [`enumerate_in_match_reusing`] restricted to the closed time window
/// `bounds`: the result is exactly what Algorithm 1 would produce on the
/// sub-network of interactions with `bounds.start <= time <= bounds.end`,
/// but computed by *borrowing* the resident graph — no rebuild, no
/// copying. Window anchors, the prepend guard and all series ranges are
/// clamped to the bounds, so maximality is judged relative to the
/// restricted edge set (an instance extendable only by out-of-window
/// elements is still reported). Requires `motif.delta() >= 0`.
#[allow(clippy::too_many_arguments)] // mirrors enumerate_in_match_reusing + bounds
pub fn enumerate_in_match_bounded<G: GraphStore, S: InstanceSink>(
    g: &G,
    motif: &Motif,
    sm: &StructuralMatch,
    bounds: TimeWindow,
    opts: SearchOptions,
    sink: &mut S,
    stats: &mut SearchStats,
    scratch: &mut EnumerationScratch,
) {
    if sm.pairs.iter().any(|&p| g.series(p).is_empty()) {
        return;
    }
    let EnumerationScratch { stack, edge_sets } = scratch;
    stack.clear();
    let mut e = MatchEnumerator {
        g,
        motif,
        sm,
        opts,
        sink,
        stats,
        window: TimeWindow::new(0, 0),
        bounds,
        anchor_time: 0,
        anchor_prev: None,
        stack,
        edge_sets,
    };
    e.run();
}

struct MatchEnumerator<'a, 'g, G, S: InstanceSink> {
    g: &'g G,
    motif: &'a Motif,
    sm: &'a StructuralMatch,
    opts: SearchOptions,
    sink: &'a mut S,
    stats: &'a mut SearchStats,
    window: TimeWindow,
    /// Only interactions inside these closed bounds participate; the
    /// unbounded window recovers plain Algorithm 1.
    bounds: TimeWindow,
    anchor_time: Timestamp,
    anchor_prev: Option<Timestamp>,
    /// Chosen `(edge-set, aggregated flow)` for motif edges `0..k`.
    stack: &'a mut Vec<(EdgeSet, Flow)>,
    /// Flat buffer emitted instances are assembled in (borrowed by the
    /// [`InstanceView`] handed to the sink).
    edge_sets: &'a mut Vec<EdgeSet>,
}

impl<'g, G: GraphStore, S: InstanceSink> MatchEnumerator<'_, 'g, G, S> {
    /// The interaction series instantiating motif edge `k`.
    #[inline]
    fn series(&self, k: usize) -> SeriesRef<'g> {
        self.g.series(self.sm.pairs[k])
    }

    fn run(&mut self) {
        let m = self.motif.num_edges();
        let delta = self.motif.delta();
        let e1 = self.series(0);
        let em = self.series(m - 1);
        // Anchor only at R(e_1) elements inside the bounds; clamping every
        // window end to `bounds.end` makes the recursion see exactly the
        // in-bounds elements of every series (range starts always move
        // forward from the anchor, so the lower bound needs no clamping).
        let first = e1.idx_at_or_after(self.bounds.start);
        let last = e1.idx_after(self.bounds.end);
        let mut prev_end: Option<Timestamp> = None;
        for a_idx in first..last {
            let t_a = e1.time(a_idx);
            let w = TimeWindow::new(t_a, t_a.saturating_add(delta).min(self.bounds.end));
            // Guard 1: require a new R(e_m) element vs the last processed
            // window; otherwise every instance here is non-maximal.
            if self.opts.skip_redundant_windows {
                if let Some(pe) = prev_end {
                    if em.range_open_closed(pe, w.end).is_empty() {
                        self.stats.windows_skipped += 1;
                        continue;
                    }
                }
            }
            self.window = w;
            self.anchor_time = t_a;
            // The prepend guard must only see in-bounds R(e_1) elements: a
            // predecessor outside the bounds does not exist in the
            // restricted network and cannot make an instance non-maximal.
            self.anchor_prev = (a_idx > first).then(|| e1.time(a_idx - 1));
            self.stats.windows_processed += 1;
            let r = a_idx..e1.idx_after(w.end);
            self.recurse(0, r);
            prev_end = Some(w.end);
        }
    }

    /// `FindInstances` (paper Algorithm 1): edge `k` takes elements from
    /// `range` of its series; earlier edges are fixed on `self.stack`.
    fn recurse(&mut self, k: usize, range: Range<usize>) {
        debug_assert!(!range.is_empty());
        let m = self.motif.num_edges();
        let s = self.series(k);
        if k + 1 == m {
            self.emit_last(range);
            return;
        }
        let next = self.series(k + 1);
        let next_end = next.idx_after(self.window.end);
        let phi = self.motif.phi();
        let mut acc = 0.0;
        for j in range.clone() {
            acc += s.event(j).flow;
            let split = s.time(j);
            let nstart = next.idx_after(split);
            if nstart >= next_end {
                // Later splits only shrink the next edge's sub-window.
                break;
            }
            if self.opts.phi_prefix_pruning && (acc < phi || acc <= self.sink.prune_threshold()) {
                self.stats.prefixes_pruned_by_flow += 1;
                continue;
            }
            // Guard 2: if e_k has another element strictly before the
            // first e_{k+1} element, this prefix yields only non-maximal
            // instances (element j+1 could join the prefix). When the two
            // tie, element j+1 can NOT be added — order between motif
            // edges is strict — so the prefix must be kept.
            if j + 1 < range.end && next.time(nstart) > s.time(j + 1) {
                self.stats.prefixes_skipped_nonmaximal += 1;
                continue;
            }
            self.stack.push((
                EdgeSet { pair: self.sm.pairs[k], start: range.start as u32, end: (j + 1) as u32 },
                acc,
            ));
            self.recurse(k + 1, nstart..next_end);
            self.stack.pop();
        }
    }

    /// Last motif edge: takes *all* remaining elements, then assembles
    /// the instance in the reusable flat buffer and hands the sink a
    /// borrowed view — the steady-state emission path allocates nothing.
    fn emit_last(&mut self, range: Range<usize>) {
        let m = self.motif.num_edges();
        let s = self.series(m - 1);
        let set_flow = s.flow_of_range(range.clone());
        let flow = self.stack.iter().map(|&(_, f)| f).fold(set_flow, Flow::min);
        if flow < self.motif.phi() || flow <= self.sink.prune_threshold() {
            self.stats.instances_rejected_by_flow += 1;
            return;
        }
        let last_time = s.time(range.end - 1);
        // Guard 3: reject if the previous R(e_1) element fits within δ —
        // the window anchored there emits the enlarged instance.
        if let Some(tp) = self.anchor_prev {
            if last_time - tp <= self.motif.delta() {
                self.stats.instances_rejected_nonmaximal += 1;
                return;
            }
        }
        self.edge_sets.clear();
        self.edge_sets.extend(self.stack.iter().map(|&(es, _)| es));
        self.edge_sets.push(EdgeSet {
            pair: self.sm.pairs[m - 1],
            start: range.start as u32,
            end: range.end as u32,
        });
        let view = InstanceView {
            edge_sets: self.edge_sets,
            flow,
            first_time: self.anchor_time,
            last_time,
        };
        self.stats.instances_emitted += 1;
        self.sink.accept(self.sm, view);
    }
}

/// Runs the full two-phase search (P1 + P2), streaming instances to `sink`.
pub fn enumerate_with_sink<G: GraphStore, S: InstanceSink>(
    g: &G,
    motif: &Motif,
    opts: SearchOptions,
    sink: &mut S,
) -> SearchStats {
    enumerate_window_with_sink(g, motif, UNBOUNDED, opts, sink)
}

/// Runs the two-phase search restricted to the closed time window
/// `bounds`, streaming instances to `sink`.
///
/// All inputs are taken by shared reference and all of them are `Sync`,
/// so any number of threads may run bounded searches over one graph
/// concurrently — this is the entry point behind the snapshot reads of
/// `flowmotif-stream`/`flowmotif-serve` (each thread brings its own
/// sink and gets its own stats back):
///
/// ```
/// use flowmotif_core::{catalog, enumerate_window_with_sink, CountSink, SearchOptions};
/// use flowmotif_graph::{GraphBuilder, TimeWindow};
///
/// let mut b = GraphBuilder::new();
/// b.extend_interactions([
///     (0u32, 1u32, 10i64, 5.0), (1, 2, 12, 4.0), // one 2-hop chain ...
///     (5, 6, 30, 2.0), (6, 7, 35, 1.0),          // ... and a later one
/// ]);
/// let g = b.build_time_series_graph();
/// let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
///
/// // Two threads, two windows, one shared graph.
/// let counts: Vec<u64> = std::thread::scope(|scope| {
///     [TimeWindow::new(0, 20), TimeWindow::new(25, 40)]
///         .map(|w| {
///             let (g, motif) = (&g, &motif);
///             scope.spawn(move || {
///                 let mut sink = CountSink::default();
///                 enumerate_window_with_sink(g, motif, w, SearchOptions::default(), &mut sink);
///                 sink.count
///             })
///         })
///         .map(|h| h.join().unwrap())
///         .to_vec()
/// });
/// assert_eq!(counts, vec![1, 1]); // 0->1->2 in [0,20]; 5->6->7 in [25,40]
/// ```
///
/// Instances are exactly those a
/// batch rebuild of the in-window interactions would produce (see
/// [`enumerate_in_match_bounded`]); only `SearchStats::structural_matches`
/// may differ from such a rebuild, because phase P1 runs on the resident
/// graph with window pruning
/// (a bounded [`crate::matcher::P1Driver`] run), so its cost —
/// and its visit count — scales with the structure active inside the
/// window rather than with everything retained.
pub fn enumerate_window_with_sink<G: GraphStore, S: InstanceSink>(
    g: &G,
    motif: &Motif,
    bounds: TimeWindow,
    opts: SearchOptions,
    sink: &mut S,
) -> SearchStats {
    let mut scratch = SearchScratch::default();
    enumerate_window_with_sink_scratch(g, motif, bounds, opts, sink, &mut scratch)
}

/// [`enumerate_with_sink`] running out of a caller-provided
/// [`SearchScratch`]: after the first (warm-up) call, repeated searches
/// perform zero heap allocations beyond what the sink itself keeps.
pub fn enumerate_with_sink_scratch<G: GraphStore, S: InstanceSink>(
    g: &G,
    motif: &Motif,
    opts: SearchOptions,
    sink: &mut S,
    scratch: &mut SearchScratch,
) -> SearchStats {
    enumerate_window_with_sink_scratch(g, motif, UNBOUNDED, opts, sink, scratch)
}

/// Traced runs clock one P2 call in this many (always including the
/// first), scaling the sample up to estimate total P2 time; per-match
/// clock reads would cost more than the work they measure.
const P2_SAMPLE_EVERY: u64 = 64;

/// [`enumerate_window_with_sink`] running out of a caller-provided
/// [`SearchScratch`] — the allocation-free steady-state entry point the
/// streaming engine and server sessions reuse across queries.
pub fn enumerate_window_with_sink_scratch<G: GraphStore, S: InstanceSink>(
    g: &G,
    motif: &Motif,
    bounds: TimeWindow,
    opts: SearchOptions,
    sink: &mut S,
    scratch: &mut SearchScratch,
) -> SearchStats {
    let mut stats = SearchStats::default();
    // Split the arena: phase P1 walks out of `p1` while each match's
    // phase P2 runs out of `p2`.
    let SearchScratch { p1, p2, .. } = scratch;
    // The traced path times the whole scan plus the inside of a 1-in-64
    // *sample* of P2 calls (two clock reads per structural match would
    // dominate short windows; the `metrics` bench gates the traced path
    // at <5% over untraced). P2 time is the sampled total scaled up by
    // the sampling ratio, and P1 falls out as total − P2. The untraced
    // path is the original loop: one well-predicted branch per match,
    // no clocks.
    let start = opts.trace.map(|_| std::time::Instant::now());
    let mut p2_sampled_nanos = 0u64;
    let mut p2_sampled = 0u64;
    // P1 trace accounting happens here (total − sampled P2), so the
    // driver runs untraced.
    let driver = P1Driver::new(motif.path())
        .bounds(bounds)
        .use_index(opts.use_active_index)
        .extension_order(opts.extension_order);
    driver.run(g, p1, &mut |sm| {
        stats.structural_matches += 1;
        if opts.trace.is_some() && (stats.structural_matches - 1) % P2_SAMPLE_EVERY == 0 {
            let t0 = std::time::Instant::now();
            enumerate_in_match_bounded(g, motif, sm, bounds, opts, sink, &mut stats, p2);
            p2_sampled_nanos += t0.elapsed().as_nanos() as u64;
            p2_sampled += 1;
        } else {
            enumerate_in_match_bounded(g, motif, sm, bounds, opts, sink, &mut stats, p2);
        }
    });
    if let (Some(trace), Some(start)) = (opts.trace, start) {
        let total = start.elapsed().as_nanos() as u64;
        // Scale the sample to the full match count, clamped to the
        // measured total so P1 = total − P2 can never underflow.
        let p2_nanos = p2_sampled_nanos
            .saturating_mul(stats.structural_matches)
            .checked_div(p2_sampled)
            .map_or(0, |v| v.min(total));
        trace.record(TraceStage::P1, total - p2_nanos, stats.structural_matches);
        trace.record(TraceStage::P2, p2_nanos, stats.instances_emitted);
    }
    stats
}

/// Convenience: collects the maximal instances inside `bounds`, grouped by
/// structural match.
pub fn enumerate_all_in_window<G: GraphStore>(
    g: &G,
    motif: &Motif,
    bounds: TimeWindow,
) -> (Vec<(StructuralMatch, Vec<MotifInstance>)>, SearchStats) {
    let mut sink = CollectSink::default();
    let stats = enumerate_window_with_sink(g, motif, bounds, SearchOptions::default(), &mut sink);
    (sink.groups, stats)
}

/// Convenience: counts the maximal instances inside `bounds`.
pub fn count_instances_in_window<G: GraphStore>(
    g: &G,
    motif: &Motif,
    bounds: TimeWindow,
) -> (u64, SearchStats) {
    let mut sink = CountSink::default();
    let stats = enumerate_window_with_sink(g, motif, bounds, SearchOptions::default(), &mut sink);
    (sink.count, stats)
}

/// Convenience: collects all maximal instances grouped by structural match.
pub fn enumerate_all<G: GraphStore>(
    g: &G,
    motif: &Motif,
) -> (Vec<(StructuralMatch, Vec<MotifInstance>)>, SearchStats) {
    let mut sink = CollectSink::default();
    let stats = enumerate_with_sink(g, motif, SearchOptions::default(), &mut sink);
    (sink.groups, stats)
}

/// Convenience: counts all maximal instances.
pub fn count_instances<G: GraphStore>(g: &G, motif: &Motif) -> (u64, SearchStats) {
    let mut sink = CountSink::default();
    let stats = enumerate_with_sink(g, motif, SearchOptions::default(), &mut sink);
    (sink.count, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::instance::StructuralMatch;
    use flowmotif_graph::{GraphBuilder, TimeSeriesGraph};

    /// The structural match of paper Fig. 7: a 3-cycle 0 -> 1 -> 2 -> 0
    /// with R(e1) = {(10,5),(13,2),(15,3),(18,7)},
    /// R(e2) = {(9,4),(11,3),(16,3)},
    /// R(e3) = {(14,4),(19,6),(24,3),(25,2)}.
    fn fig7() -> (TimeSeriesGraph, StructuralMatch) {
        let mut b = GraphBuilder::new();
        for (t, f) in [(10, 5.0), (13, 2.0), (15, 3.0), (18, 7.0)] {
            b.add_interaction(0, 1, t, f);
        }
        for (t, f) in [(9, 4.0), (11, 3.0), (16, 3.0)] {
            b.add_interaction(1, 2, t, f);
        }
        for (t, f) in [(14, 4.0), (19, 6.0), (24, 3.0), (25, 2.0)] {
            b.add_interaction(2, 0, t, f);
        }
        let g = b.build_time_series_graph();
        let sm = StructuralMatch {
            nodes: vec![0, 1, 2],
            pairs: vec![
                g.pair_id(0, 1).unwrap(),
                g.pair_id(1, 2).unwrap(),
                g.pair_id(2, 0).unwrap(),
            ],
        };
        (g, sm)
    }

    fn run_fig7(phi: f64) -> (Vec<MotifInstance>, SearchStats) {
        let (g, sm) = fig7();
        let motif = catalog::by_name("M(3,3)", 10, phi).unwrap();
        let mut sink = CollectSink::default();
        let mut stats = SearchStats::default();
        enumerate_in_match(&g, &motif, &sm, SearchOptions::default(), &mut sink, &mut stats);
        let insts = sink.groups.pop().map(|(_, v)| v).unwrap_or_default();
        (insts, stats)
    }

    fn rendered(g: &TimeSeriesGraph, insts: &[MotifInstance]) -> Vec<String> {
        insts.iter().map(|i| i.display(g)).collect()
    }

    #[test]
    fn fig7_phi0_produces_the_four_maximal_instances() {
        let (g, _) = fig7();
        let (insts, stats) = run_fig7(0.0);
        let shown = rendered(&g, &insts);
        assert_eq!(
            shown,
            vec![
                // Window [10,20], paper's two instances for prefix {(10,5)}:
                "[e1 <- {(10, 5)}, e2 <- {(11, 3)}, e3 <- {(14, 4), (19, 6)}]",
                "[e1 <- {(10, 5)}, e2 <- {(11, 3), (16, 3)}, e3 <- {(19, 6)}]",
                // ...and the three-element prefix:
                "[e1 <- {(10, 5), (13, 2), (15, 3)}, e2 <- {(16, 3)}, e3 <- {(19, 6)}]",
                // Window [15,25]:
                "[e1 <- {(15, 3)}, e2 <- {(16, 3)}, e3 <- {(19, 6), (24, 3), (25, 2)}]",
            ]
        );
        // The paper notes window [13,23] is skipped as redundant; [18,28]
        // is skipped too.
        assert_eq!(stats.windows_processed, 2);
        assert_eq!(stats.windows_skipped, 2);
    }

    #[test]
    fn fig7_phi5_keeps_only_the_flow5_instance() {
        let (g, _) = fig7();
        let (insts, _) = run_fig7(5.0);
        let shown = rendered(&g, &insts);
        // Paper §4: "the latter instance would be rejected for ϕ = 5";
        // Table 2's top-1 instance is the survivor.
        assert_eq!(shown, vec!["[e1 <- {(10, 5)}, e2 <- {(11, 3), (16, 3)}, e3 <- {(19, 6)}]"]);
        assert_eq!(insts[0].flow, 5.0);
        assert_eq!(insts[0].first_time, 10);
        assert_eq!(insts[0].last_time, 19);
        assert_eq!(insts[0].span(), 9);
    }

    #[test]
    fn fig7_no_prefix_stranded_between_e2_elements() {
        // Guard 2 regression: no instance contains the first two elements
        // of e1 but not the third, because no e2 element lies between
        // (13,2) and (15,3) (paper's own remark).
        let (g, _) = fig7();
        let (insts, stats) = run_fig7(0.0);
        for i in &insts {
            let e1_events = i.edge_sets[0].events(&g);
            let times: Vec<_> = e1_events.iter().map(|e| e.time).collect();
            assert_ne!(times, vec![10, 13]);
        }
        assert!(stats.prefixes_skipped_nonmaximal > 0);
    }

    #[test]
    fn options_do_not_change_results() {
        let (g, sm) = fig7();
        let motif = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        let mut expected = None;
        for skip in [true, false] {
            for prune in [true, false] {
                let opts = SearchOptions::builder()
                    .skip_redundant_windows(skip)
                    .phi_prefix_pruning(prune)
                    .build();
                let mut sink = CollectSink::default();
                let mut stats = SearchStats::default();
                enumerate_in_match(&g, &motif, &sm, opts, &mut sink, &mut stats);
                let shown = rendered(&g, &sink.groups.pop().map(|(_, v)| v).unwrap_or_default());
                match &expected {
                    None => expected = Some(shown),
                    Some(e) => assert_eq!(&shown, e, "skip={skip} prune={prune}"),
                }
            }
        }
    }

    #[test]
    fn full_search_over_fig5_graph() {
        // End-to-end two-phase run on the paper's Fig. 2/5 bitcoin example
        // with the Fig. 4 parameters δ=10, ϕ=7.
        let mut b = GraphBuilder::new();
        b.extend_interactions([
            (0u32, 1u32, 13i64, 5.0),
            (0, 1, 15, 7.0),
            (2, 0, 10, 10.0),
            (3, 2, 1, 2.0),
            (3, 2, 3, 5.0),
            (3, 0, 11, 10.0),
            (1, 2, 18, 20.0),
            (2, 3, 19, 5.0),
            (2, 3, 21, 4.0),
            (1, 3, 23, 7.0),
        ]);
        let g = b.build_time_series_graph();
        let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();
        let (groups, stats) = enumerate_all(&g, &motif);
        assert_eq!(stats.structural_matches, 6);
        // The Fig. 4(a) instance: u3 -> u1 -> u2 -> u3 with edge-sets
        // {(10,10)}, {(13,5),(15,7)}, {(18,20)} and flow 10.
        let gr = &g;
        let all: Vec<_> = groups
            .iter()
            .flat_map(|(sm, v)| v.iter().map(move |i| (sm.walk_nodes(gr), i)))
            .collect();
        assert_eq!(all.len(), 1, "exactly one valid maximal instance");
        let (walk, inst) = &all[0];
        assert_eq!(walk, &vec![2, 0, 1, 2]);
        assert_eq!(
            inst.display(&g),
            "[e1 <- {(10, 10)}, e2 <- {(13, 5), (15, 7)}, e3 <- {(18, 20)}]"
        );
        assert_eq!(inst.flow, 10.0);
        // Fig. 4(b)'s subset (e2 <- {(15,7)} only) must NOT appear: it is
        // non-maximal.
    }

    #[test]
    fn empty_series_short_circuits() {
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 1i64, 1.0)]);
        let g = b.build_time_series_graph();
        let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let (count, stats) = count_instances(&g, &motif);
        assert_eq!(count, 0);
        assert_eq!(stats.structural_matches, 0);
    }

    #[test]
    fn chain_motif_counts() {
        // 0 -> 1 at t=1 (f=2), 1 -> 2 at t=2 (f=3): a single M(3,2)
        // instance if δ >= 1 and ϕ <= 2.
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 1i64, 2.0), (1, 2, 2, 3.0)]);
        let g = b.build_time_series_graph();
        let m = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        assert_eq!(count_instances(&g, &m).0, 1);
        let m = catalog::by_name("M(3,2)", 10, 2.0).unwrap();
        assert_eq!(count_instances(&g, &m).0, 1);
        let m = catalog::by_name("M(3,2)", 10, 2.5).unwrap();
        assert_eq!(count_instances(&g, &m).0, 0, "ϕ=2.5 kills the e1 flow of 2");
        let m = catalog::by_name("M(3,2)", 0, 0.0).unwrap();
        assert_eq!(count_instances(&g, &m).0, 0, "δ=0 cannot span t=1..2");
    }

    #[test]
    fn time_order_is_strict() {
        // Equal timestamps do not satisfy t(e_i) < t(e_j).
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 5i64, 1.0), (1, 2, 5, 1.0)]);
        let g = b.build_time_series_graph();
        let m = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        assert_eq!(count_instances(&g, &m).0, 0);
    }

    #[test]
    fn tied_timestamps_regression() {
        // Regression for the guard-2 tie bug: with 30-second-bucketed
        // timestamps (the Facebook aggregation), an e2 element can tie
        // with the *next* e1 element. The tied e1 element can NOT join
        // the prefix (order between motif edges is strict), so the
        // prefix must not be skipped. Verified against the brute-force
        // reference.
        use crate::validate::brute_force_instances;
        let mut b = GraphBuilder::new();
        b.extend_interactions([
            (0u32, 1u32, 30i64, 2.0),
            (0, 1, 60, 3.0), // ties with the e2 element below
            (1, 2, 60, 4.0),
            (1, 2, 90, 1.0),
        ]);
        let g = b.build_time_series_graph();
        let motif = catalog::by_name("M(3,2)", 120, 0.0).unwrap();
        let sm = StructuralMatch {
            nodes: vec![0, 1, 2],
            pairs: vec![g.pair_id(0, 1).unwrap(), g.pair_id(1, 2).unwrap()],
        };
        let mut sink = CollectSink::default();
        let mut stats = SearchStats::default();
        enumerate_in_match(&g, &motif, &sm, SearchOptions::default(), &mut sink, &mut stats);
        let mut algo: Vec<String> = sink
            .groups
            .pop()
            .map(|(_, v)| v)
            .unwrap_or_default()
            .iter()
            .map(|i| i.display(&g))
            .collect();
        let mut brute: Vec<String> =
            brute_force_instances(&g, &motif, &sm).iter().map(|i| i.display(&g)).collect();
        algo.sort();
        brute.sort();
        assert_eq!(algo, brute);
        // The instance [e1 <- {(30,2)}, e2 <- {(60,4),(90,1)}] is maximal:
        // the tied (60,3) e1 element cannot be added (order is strict).
        assert!(
            algo.iter().any(|s| s == "[e1 <- {(30, 2)}, e2 <- {(60, 4), (90, 1)}]"),
            "{algo:?}"
        );
    }

    /// Renders every instance with its walk so outputs of different graph
    /// builds (different pair ids) compare structurally.
    fn canonical(
        g: &TimeSeriesGraph,
        groups: &[(StructuralMatch, Vec<MotifInstance>)],
    ) -> Vec<String> {
        let mut out: Vec<String> = groups
            .iter()
            .flat_map(|(sm, v)| {
                v.iter().map(move |i| format!("{:?} {}", sm.walk_nodes(g), i.display(g)))
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn unbounded_window_reproduces_plain_search() {
        let mut b = GraphBuilder::new();
        b.extend_interactions([
            (0u32, 1u32, 13i64, 5.0),
            (0, 1, 15, 7.0),
            (2, 0, 10, 10.0),
            (1, 2, 18, 20.0),
        ]);
        let g = b.build_time_series_graph();
        let motif = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        let (plain, plain_stats) = enumerate_all(&g, &motif);
        let w = TimeWindow::new(Timestamp::MIN, Timestamp::MAX);
        let (windowed, win_stats) = enumerate_all_in_window(&g, &motif, w);
        assert_eq!(canonical(&g, &plain), canonical(&g, &windowed));
        assert_eq!(plain_stats, win_stats);
    }

    #[test]
    fn windowed_search_equals_rebuild_on_restricted_edges() {
        // The Fig. 7 fixture, queried over several windows: the borrowed
        // windowed search must agree with a batch rebuild of only the
        // in-window interactions.
        let edges = [
            (0u32, 1u32, 10i64, 5.0),
            (0, 1, 13, 2.0),
            (0, 1, 15, 3.0),
            (0, 1, 18, 7.0),
            (1, 2, 9, 4.0),
            (1, 2, 11, 3.0),
            (1, 2, 16, 3.0),
            (2, 0, 14, 4.0),
            (2, 0, 19, 6.0),
            (2, 0, 24, 3.0),
            (2, 0, 25, 2.0),
        ];
        let mut b = GraphBuilder::new();
        b.extend_interactions(edges);
        let g = b.build_time_series_graph();
        let motif = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        for (a, z) in [(9, 25), (10, 20), (12, 24), (14, 16), (0, 5), (11, 19)] {
            let (windowed, _) = enumerate_all_in_window(&g, &motif, TimeWindow::new(a, z));
            let mut rb = GraphBuilder::new();
            rb.extend_interactions(edges.iter().copied().filter(|&(_, _, t, _)| a <= t && t <= z));
            let rg = rb.build_time_series_graph();
            let (rebuilt, _) = enumerate_all(&rg, &motif);
            assert_eq!(canonical(&g, &windowed), canonical(&rg, &rebuilt), "window [{a}, {z}]");
        }
    }

    #[test]
    fn windowed_search_reports_instances_cut_by_the_bound() {
        // 0 -> 1 at t=10, 1 -> 2 at t=12 and t=30. Restricted to [5, 20],
        // the t=30 element is invisible: the M(3,2) instance is
        // {(10)},{(12)} — and it IS maximal relative to the window.
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 10i64, 1.0), (1, 2, 12, 2.0), (1, 2, 30, 4.0)]);
        let g = b.build_time_series_graph();
        let motif = catalog::by_name("M(3,2)", 100, 0.0).unwrap();
        let (groups, _) = enumerate_all_in_window(&g, &motif, TimeWindow::new(5, 20));
        let insts: Vec<_> = groups.iter().flat_map(|(_, v)| v.iter()).collect();
        assert_eq!(insts.len(), 1);
        assert_eq!(insts[0].display(&g), "[e1 <- {(10, 1)}, e2 <- {(12, 2)}]");
        // Whole-span query sees the full instance instead.
        let (groups, _) = enumerate_all_in_window(&g, &motif, TimeWindow::new(0, 100));
        let insts: Vec<_> = groups.iter().flat_map(|(_, v)| v.iter()).collect();
        assert_eq!(insts.len(), 1);
        assert_eq!(insts[0].display(&g), "[e1 <- {(10, 1)}, e2 <- {(12, 2), (30, 4)}]");
    }

    #[test]
    fn stats_merge() {
        let mut a =
            SearchStats { windows_processed: 2, instances_emitted: 3, ..Default::default() };
        let b = SearchStats { windows_processed: 5, windows_skipped: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.windows_processed, 7);
        assert_eq!(a.windows_skipped, 1);
        assert_eq!(a.instances_emitted, 3);
    }
}
