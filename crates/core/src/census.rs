//! Motif census: enumerate *all* canonical walk-shaped motif structures
//! of a given size and count their instances in a graph — the
//! FANMOD-style census (paper §2) transplanted to flow motifs. The ten
//! motifs of Fig. 3 are exactly the census shapes with 2–5 edges whose
//! walks visit 3–5 vertices, so this module also generates the catalog
//! programmatically.

use crate::matcher::count_structural_matches;
use crate::motif::{Motif, MotifNode, SpanningPath};
use crate::shared::count_instances_shared;
use flowmotif_graph::{Flow, TimeSeriesGraph, Timestamp};

/// Enumerates every canonical spanning path with exactly `num_edges`
/// edges. Canonical means vertex labels appear in first-appearance order,
/// so each isomorphism class appears exactly once.
pub fn all_walk_shapes(num_edges: usize) -> Vec<SpanningPath> {
    assert!(num_edges >= 1, "a motif needs at least one edge");
    assert!(num_edges <= 8, "census beyond 8 edges is combinatorially explosive");
    let mut out = Vec::new();
    let mut walk: Vec<MotifNode> = vec![0];
    extend(&mut walk, num_edges, &mut out);
    out
}

fn extend(walk: &mut Vec<MotifNode>, remaining: usize, out: &mut Vec<SpanningPath>) {
    if remaining == 0 {
        if let Ok(p) = SpanningPath::new(walk.clone()) {
            out.push(p);
        }
        return;
    }
    // Next vertex: any already-used label or the next fresh one.
    let max_used = *walk.iter().max().expect("non-empty walk");
    for next in 0..=max_used.saturating_add(1) {
        let last = *walk.last().expect("non-empty walk");
        if next == last {
            continue; // self-loop step, invalid anyway
        }
        // Repeated directed pair would be rejected by SpanningPath::new;
        // prune it here to keep the search tight.
        if walk.windows(2).any(|w| w[0] == last && w[1] == next) {
            continue;
        }
        walk.push(next);
        extend(walk, remaining - 1, out);
        walk.pop();
    }
}

/// One census row.
#[derive(Debug, Clone, PartialEq)]
pub struct CensusRow {
    /// The motif shape (canonical walk).
    pub shape: SpanningPath,
    /// Number of maximal instances under the census δ/ϕ.
    pub instances: u64,
    /// Structural matches examined.
    pub structural_matches: u64,
}

flowmotif_util::impl_to_json!(CensusRow { shape, instances, structural_matches });

/// Counts the maximal instances of *every* walk shape with `num_edges`
/// edges in `g`, under a common `δ`/`ϕ`. Rows are sorted by instance
/// count, descending. Uses the shared-prefix search for speed.
pub fn walk_census(
    g: &TimeSeriesGraph,
    num_edges: usize,
    delta: Timestamp,
    phi: Flow,
) -> Vec<CensusRow> {
    let mut rows: Vec<CensusRow> = all_walk_shapes(num_edges)
        .into_iter()
        .map(|shape| {
            let motif = Motif::new(shape.clone(), delta, phi).expect("valid census motif");
            // The shared-prefix search never materialises whole matches,
            // so count them separately (phase P1 is cheap).
            let structural_matches = count_structural_matches(g, &shape);
            let (instances, _) = count_instances_shared(g, &motif);
            CensusRow { shape, instances, structural_matches }
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.instances));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CATALOG;
    use flowmotif_graph::GraphBuilder;

    #[test]
    fn shape_counts_for_small_sizes() {
        // m=1: only 0-1.
        assert_eq!(all_walk_shapes(1).len(), 1);
        // m=2: 0-1-0 and 0-1-2.
        let s2: Vec<String> = all_walk_shapes(2).iter().map(|p| p.to_string()).collect();
        assert_eq!(s2, vec!["0-1-0", "0-1-2"]);
        // m=3: walks of length 3 with unique directed steps.
        let s3: Vec<String> = all_walk_shapes(3).iter().map(|p| p.to_string()).collect();
        assert_eq!(s3, vec!["0-1-0-2", "0-1-2-0", "0-1-2-1", "0-1-2-3"]);
    }

    #[test]
    fn shapes_are_unique_and_valid() {
        for m in 1..=5 {
            let shapes = all_walk_shapes(m);
            let mut keys: Vec<String> = shapes.iter().map(|p| p.to_string()).collect();
            let n = keys.len();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), n, "m={m}: duplicate shapes");
            for s in &shapes {
                assert_eq!(s.num_edges(), m);
            }
        }
    }

    #[test]
    fn census_contains_the_paper_catalog() {
        // Every Fig. 3 motif appears among the census shapes of its size.
        for (name, walk) in CATALOG {
            let m = walk.len() - 1;
            let shapes = all_walk_shapes(m);
            let target = SpanningPath::new(walk.to_vec()).unwrap();
            assert!(shapes.contains(&target), "{name} missing from census of size {m}");
        }
    }

    #[test]
    fn census_counts_on_a_small_graph() {
        let mut b = GraphBuilder::new();
        b.extend_interactions([
            (0u32, 1u32, 1i64, 5.0),
            (1, 2, 2, 5.0),
            (2, 0, 3, 5.0),
            (1, 0, 4, 5.0),
        ]);
        let g = b.build_time_series_graph();
        let rows = walk_census(&g, 2, 10, 0.0);
        // Shapes: 0-1-0 (ping-pong) and 0-1-2 (chain).
        assert_eq!(rows.len(), 2);
        let chain = rows.iter().find(|r| r.shape.to_string() == "0-1-2").unwrap();
        let pingpong = rows.iter().find(|r| r.shape.to_string() == "0-1-0").unwrap();
        // Edges by time: (0,1)@1, (1,2)@2, (2,0)@3, (1,0)@4. The
        // time-respecting chains are 0-1-2 (1 < 2) and 1-2-0 (2 < 3);
        // 2-0-1 fails because (0,1)@1 precedes (2,0)@3.
        assert_eq!(chain.instances, 2);
        // Ping-pong: 0-1-0 via (0,1)@1 then (1,0)@4.
        assert_eq!(pingpong.instances, 1);
        // Rows sorted by count desc.
        assert!(rows[0].instances >= rows[1].instances);
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn zero_edges_panics() {
        all_walk_shapes(0);
    }
}
