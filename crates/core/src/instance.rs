//! Structural matches (phase P1 output) and flow motif instances (phase P2
//! output) — paper Def. 3.2.

use flowmotif_graph::{Event, Flow, GraphStore, NodeId, PairId, Timestamp};

/// A structural match `G_s` of a motif in `G_T` (paper phase P1, Fig. 6):
/// a mapping from motif vertices and edges to graph vertices and `G_T`
/// pairs that respects the motif structure, ignoring time and flow.
#[derive(Debug, Default, PartialEq, Eq, Hash)]
pub struct StructuralMatch {
    /// `nodes[w]` is the graph vertex that motif vertex `w` maps to (the
    /// bijection µ of Def. 3.2). Distinct motif vertices map to distinct
    /// graph vertices.
    pub nodes: Vec<NodeId>,
    /// `pairs[i]` is the `G_T` pair instantiating motif edge `e_{i+1}`.
    pub pairs: Vec<PairId>,
}

// Hand-written so `clone_from` recycles the destination's vectors (the
// derive's `clone_from` falls back to a fresh clone) — the top-k sink
// and the DP driver overwrite a retained match per improvement and must
// not re-allocate in steady state.
impl Clone for StructuralMatch {
    fn clone(&self) -> Self {
        Self { nodes: self.nodes.clone(), pairs: self.pairs.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        self.nodes.clone_from(&source.nodes);
        self.pairs.clone_from(&source.pairs);
    }
}

impl StructuralMatch {
    /// Number of motif edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.pairs.len()
    }

    /// The graph-vertex walk of this match (source of each edge plus the
    /// final target), derived from the graph.
    pub fn walk_nodes<G: GraphStore>(&self, g: &G) -> Vec<NodeId> {
        let mut walk = Vec::with_capacity(self.pairs.len() + 1);
        for (i, &p) in self.pairs.iter().enumerate() {
            let (u, v) = g.pair(p);
            if i == 0 {
                walk.push(u);
            }
            walk.push(v);
        }
        walk
    }
}

/// The elements instantiating one motif edge: a contiguous index range into
/// the interaction series of `G_T` pair `pair`.
///
/// Contiguity is not a restriction — in a *maximal* instance every edge-set
/// is exactly the elements of its series falling in a sub-window (see
/// `enumerate.rs`), which is a contiguous run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeSet {
    /// The `G_T` pair this motif edge maps to.
    pub pair: PairId,
    /// First element index (inclusive) in the pair's series.
    pub start: u32,
    /// One past the last element index.
    pub end: u32,
}

impl EdgeSet {
    /// Number of graph edges aggregated into this motif edge.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the set is empty (never true for a valid instance).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The `(t, f)` elements of this edge-set.
    pub fn events<'g, G: GraphStore>(&self, g: &'g G) -> &'g [Event] {
        &g.series(self.pair).events()[self.start as usize..self.end as usize]
    }

    /// Aggregated flow of the set, in O(1) via the series prefix sums.
    pub fn flow<G: GraphStore>(&self, g: &G) -> Flow {
        g.series(self.pair).flow_of_range(self.start as usize..self.end as usize)
    }
}

/// A flow motif instance `G_I` (paper Def. 3.2): one non-empty,
/// time-respecting edge-set per motif edge, within a `δ` window, each set
/// aggregating at least `ϕ` flow.
#[derive(Debug, Clone, PartialEq)]
pub struct MotifInstance {
    /// Edge-sets in motif-edge label order.
    pub edge_sets: Vec<EdgeSet>,
    /// Instance flow `f(G_I)`: the minimum aggregated flow over all
    /// edge-sets (paper Eq. 1).
    pub flow: Flow,
    /// Timestamp of the temporally first element (always on edge `e_1`).
    pub first_time: Timestamp,
    /// Timestamp of the temporally last element (always on edge `e_m`).
    pub last_time: Timestamp,
}

impl MotifInstance {
    /// Time spanned by the instance; at most `δ` for a valid instance.
    #[inline]
    pub fn span(&self) -> Timestamp {
        self.last_time - self.first_time
    }

    /// Total number of graph edges across all edge-sets.
    pub fn num_graph_edges(&self) -> usize {
        self.edge_sets.iter().map(EdgeSet::len).sum()
    }

    /// Renders the instance in the paper's notation
    /// `[e1 <- {(t,f),...}, e2 <- {...}]`.
    pub fn display<G: GraphStore>(&self, g: &G) -> String {
        use std::fmt::Write;
        let mut s = String::from("[");
        for (i, es) in self.edge_sets.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            write!(s, "e{} <- {{", i + 1).unwrap();
            for (j, e) in es.events(g).iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                write!(s, "({}, {})", e.time, e.flow).unwrap();
            }
            s.push('}');
        }
        s.push(']');
        s
    }
}

/// A borrowed, allocation-free view of one motif instance, as handed to
/// [`crate::InstanceSink::accept`]: the edge-sets live in a scratch buffer
/// owned by the enumerator and are only valid for the duration of the
/// call. Sinks that keep instances copy explicitly —
/// [`InstanceView::to_instance`] for a fresh allocation, or
/// [`InstanceView::write_to`] to recycle an existing
/// [`MotifInstance`]'s buffers (zero heap traffic once its capacity is
/// warm). Counting or filtering sinks touch the heap not at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceView<'a> {
    /// Edge-sets in motif-edge label order (borrowed scratch).
    pub edge_sets: &'a [EdgeSet],
    /// Instance flow `f(G_I)` (paper Eq. 1).
    pub flow: Flow,
    /// Timestamp of the temporally first element.
    pub first_time: Timestamp,
    /// Timestamp of the temporally last element.
    pub last_time: Timestamp,
}

impl InstanceView<'_> {
    /// Copies the view into a freshly allocated owned instance.
    pub fn to_instance(&self) -> MotifInstance {
        MotifInstance {
            edge_sets: self.edge_sets.to_vec(),
            flow: self.flow,
            first_time: self.first_time,
            last_time: self.last_time,
        }
    }

    /// Copies the view into `dst`, reusing `dst.edge_sets`' capacity —
    /// the recycle path top-k eviction uses to stay allocation-free in
    /// steady state.
    pub fn write_to(&self, dst: &mut MotifInstance) {
        dst.edge_sets.clear();
        dst.edge_sets.extend_from_slice(self.edge_sets);
        dst.flow = self.flow;
        dst.first_time = self.first_time;
        dst.last_time = self.last_time;
    }
}

impl MotifInstance {
    /// Borrows this instance as an [`InstanceView`] (e.g. to re-offer a
    /// stored instance to a sink).
    pub fn as_view(&self) -> InstanceView<'_> {
        InstanceView {
            edge_sets: &self.edge_sets,
            flow: self.flow,
            first_time: self.first_time,
            last_time: self.last_time,
        }
    }
}

flowmotif_util::impl_to_json!(StructuralMatch { nodes, pairs });
flowmotif_util::impl_to_json!(EdgeSet { pair, start, end });
flowmotif_util::impl_to_json!(MotifInstance { edge_sets, flow, first_time, last_time });

#[cfg(test)]
mod tests {
    use super::*;
    use flowmotif_graph::{GraphBuilder, TimeSeriesGraph};

    fn tiny_graph() -> TimeSeriesGraph {
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 10i64, 5.0), (0, 1, 12, 3.0), (1, 2, 14, 4.0)]);
        b.build_time_series_graph()
    }

    #[test]
    fn edge_set_accessors() {
        let g = tiny_graph();
        let p01 = g.pair_id(0, 1).unwrap();
        let es = EdgeSet { pair: p01, start: 0, end: 2 };
        assert_eq!(es.len(), 2);
        assert!(!es.is_empty());
        assert_eq!(es.flow(&g), 8.0);
        assert_eq!(es.events(&g).len(), 2);
        let empty = EdgeSet { pair: p01, start: 1, end: 1 };
        assert!(empty.is_empty());
        assert_eq!(empty.flow(&g), 0.0);
    }

    #[test]
    fn instance_span_and_display() {
        let g = tiny_graph();
        let p01 = g.pair_id(0, 1).unwrap();
        let p12 = g.pair_id(1, 2).unwrap();
        let inst = MotifInstance {
            edge_sets: vec![
                EdgeSet { pair: p01, start: 0, end: 2 },
                EdgeSet { pair: p12, start: 0, end: 1 },
            ],
            flow: 4.0,
            first_time: 10,
            last_time: 14,
        };
        assert_eq!(inst.span(), 4);
        assert_eq!(inst.num_graph_edges(), 3);
        let s = inst.display(&g);
        assert_eq!(s, "[e1 <- {(10, 5), (12, 3)}, e2 <- {(14, 4)}]");
    }

    #[test]
    fn walk_nodes_reconstruction() {
        let g = tiny_graph();
        let m = StructuralMatch {
            nodes: vec![0, 1, 2],
            pairs: vec![g.pair_id(0, 1).unwrap(), g.pair_id(1, 2).unwrap()],
        };
        assert_eq!(m.walk_nodes(&g), vec![0, 1, 2]);
        assert_eq!(m.num_edges(), 2);
    }
}
