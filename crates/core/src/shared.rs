//! Shared-prefix search — the paper's future-work optimization (§7):
//! "two or more structural matches may share the same prefix; we can
//! compute the flow instances of their common prefix simultaneously
//! before expanding these instances to complete ones".
//!
//! Instead of running phase P2 once per structural match, this module
//! interleaves the structural DFS with the prefix enumeration of
//! Algorithm 1: a motif edge's pair is chosen structurally, its element
//! prefixes are enumerated, and only *viable* prefixes recurse into the
//! structural expansion of the next motif edge. Matches sharing the pair
//! prefix `pairs[0..j]` therefore share all enumeration work up to edge
//! `j` — and, crucially, structurally valid matches with no temporally
//! compatible elements are pruned before they are ever fully matched.
//!
//! The result set is identical to [`crate::enumerate_with_sink`]
//! (verified by property tests); only the work differs. The redundant-
//! window skip rule needs the *last* edge's series, which is unknown at
//! anchor time here, so it is not applied — the prepend guard alone is
//! sufficient for exact maximality (see `enumerate.rs`).

use crate::enumerate::{CountSink, InstanceSink, SearchStats};
use crate::instance::{EdgeSet, InstanceView, StructuralMatch};
use crate::motif::Motif;
use flowmotif_graph::{Flow, NodeId, TimeSeriesGraph, TimeWindow, Timestamp};

/// Runs the shared-prefix search, streaming instances to `sink`.
///
/// Notes vs [`crate::enumerate_with_sink`]: `structural_matches` in the
/// returned stats stays 0 (matches are never completed separately), and a
/// [`crate::CollectSink`] may hold several groups for the same structural
/// match (instances of one match found in different windows are not
/// adjacent in the emission order).
pub fn enumerate_shared_with_sink<S: InstanceSink>(
    g: &TimeSeriesGraph,
    motif: &Motif,
    sink: &mut S,
) -> SearchStats {
    let mut stats = SearchStats::default();
    let walk = motif.path().walk();
    let n = motif.num_nodes();
    let mut e = SharedEnumerator {
        g,
        motif,
        walk,
        sink,
        stats: &mut stats,
        assign: vec![0; n],
        assigned: vec![false; n],
        pairs: Vec::with_capacity(motif.num_edges()),
        stack: Vec::with_capacity(motif.num_edges()),
        window: TimeWindow::new(0, 0),
        anchor_time: 0,
        anchor_prev: None,
        sm_buf: StructuralMatch { nodes: vec![0; n], pairs: Vec::new() },
        edge_sets_buf: Vec::with_capacity(motif.num_edges()),
    };
    e.run();
    stats
}

/// Counts all maximal instances via the shared-prefix search.
pub fn count_instances_shared(g: &TimeSeriesGraph, motif: &Motif) -> (u64, SearchStats) {
    let mut sink = CountSink::default();
    let stats = enumerate_shared_with_sink(g, motif, &mut sink);
    (sink.count, stats)
}

struct SharedEnumerator<'a, 'g, S: InstanceSink> {
    g: &'g TimeSeriesGraph,
    motif: &'a Motif,
    walk: &'a [u8],
    sink: &'a mut S,
    stats: &'a mut SearchStats,
    /// Motif-vertex -> graph-vertex assignment (structural DFS state).
    assign: Vec<NodeId>,
    assigned: Vec<bool>,
    /// Pair chosen for each matched motif edge so far.
    pairs: Vec<u32>,
    /// Chosen `(edge-set, flow)` per enumerated motif edge so far.
    stack: Vec<(EdgeSet, Flow)>,
    window: TimeWindow,
    anchor_time: Timestamp,
    anchor_prev: Option<Timestamp>,
    /// Reusable emission buffers: the match view and the flat edge-set
    /// buffer the [`InstanceView`] borrows — one per-instance allocation
    /// less on every emit.
    sm_buf: StructuralMatch,
    edge_sets_buf: Vec<EdgeSet>,
}

impl<S: InstanceSink> SharedEnumerator<'_, '_, S> {
    fn run(&mut self) {
        let w0 = self.walk[0] as usize;
        let w1 = self.walk[1] as usize;
        for u in 0..self.g.num_nodes() as NodeId {
            if self.g.out_degree(u) == 0 {
                continue;
            }
            self.assign[w0] = u;
            self.assigned[w0] = true;
            for p0 in self.g.out_pair_range(u) {
                let v = self.g.pair(p0).1;
                if v == u {
                    continue; // motif edges connect distinct vertices
                }
                self.assign[w1] = v;
                self.assigned[w1] = true;
                self.pairs.push(p0);
                self.windows_for_first_edge(p0);
                self.pairs.pop();
                self.assigned[w1] = false;
            }
            self.assigned[w0] = false;
        }
    }

    /// Anchored-window sweep over the first edge's series, then prefix
    /// enumeration for edge 0 inside each window.
    fn windows_for_first_edge(&mut self, p0: u32) {
        let e1 = self.g.series(p0);
        let delta = self.motif.delta();
        let phi = self.motif.phi();
        for a_idx in 0..e1.len() {
            let t_a = e1.time(a_idx);
            self.window = TimeWindow::anchored(t_a, delta);
            self.anchor_time = t_a;
            self.anchor_prev = a_idx.checked_sub(1).map(|i| e1.time(i));
            self.stats.windows_processed += 1;
            let range = a_idx..e1.idx_after(self.window.end);
            if self.motif.num_edges() == 1 {
                // Single-edge motif: the whole in-window range is the set.
                self.emit_last_range(p0, range);
                continue;
            }
            let mut acc = 0.0;
            for j in range.clone() {
                acc += e1.event(j).flow;
                if acc < phi || acc <= self.sink.prune_threshold() {
                    self.stats.prefixes_pruned_by_flow += 1;
                    continue;
                }
                let split = e1.time(j);
                let t_next = if j + 1 < range.end { Some(e1.time(j + 1)) } else { None };
                self.stack.push((
                    EdgeSet { pair: p0, start: range.start as u32, end: (j + 1) as u32 },
                    acc,
                ));
                self.extend_edge(1, split, t_next);
                self.stack.pop();
            }
        }
    }

    /// Structurally chooses the pair for motif edge `k`, then enumerates
    /// its element prefixes; `split` is the previous edge's split time and
    /// `t_prev_next` the previous edge's next element (guard 2).
    fn extend_edge(&mut self, k: usize, split: Timestamp, t_prev_next: Option<Timestamp>) {
        let src = self.assign[self.walk[k] as usize];
        let tgt_label = self.walk[k + 1] as usize;
        if self.assigned[tgt_label] {
            if let Some(p) = self.g.pair_id(src, self.assign[tgt_label]) {
                self.try_pair(k, p, split, t_prev_next, None);
            }
        } else {
            for p in self.g.out_pair_range(src) {
                let v = self.g.pair(p).1;
                if self.assign.iter().zip(self.assigned.iter()).any(|(&a, &set)| set && a == v) {
                    continue;
                }
                self.try_pair(k, p, split, t_prev_next, Some((tgt_label, v)));
            }
        }
    }

    /// Runs edge `k` on candidate pair `p`; `fresh` is a newly assigned
    /// (label, vertex) binding to undo afterwards.
    fn try_pair(
        &mut self,
        k: usize,
        p: u32,
        split: Timestamp,
        t_prev_next: Option<Timestamp>,
        fresh: Option<(usize, NodeId)>,
    ) {
        let s = self.g.series(p);
        let range = s.range_open_closed(split, self.window.end);
        if range.is_empty() {
            return;
        }
        // Guard 2 (deferred from the previous edge's prefix choice): if
        // this edge's first usable element lies strictly after the
        // previous edge's next element, that element could have joined
        // the previous prefix — non-maximal.
        if let Some(tn) = t_prev_next {
            if s.time(range.start) > tn {
                self.stats.prefixes_skipped_nonmaximal += 1;
                return;
            }
        }
        if let Some((label, v)) = fresh {
            self.assign[label] = v;
            self.assigned[label] = true;
        }
        self.pairs.push(p);
        if k + 1 == self.motif.num_edges() {
            self.emit_last_range(p, range);
        } else {
            let phi = self.motif.phi();
            let mut acc = 0.0;
            for j in range.clone() {
                acc += s.event(j).flow;
                if acc < phi || acc <= self.sink.prune_threshold() {
                    self.stats.prefixes_pruned_by_flow += 1;
                    continue;
                }
                let t_next = if j + 1 < range.end { Some(s.time(j + 1)) } else { None };
                self.stack.push((
                    EdgeSet { pair: p, start: range.start as u32, end: (j + 1) as u32 },
                    acc,
                ));
                self.extend_edge(k + 1, s.time(j), t_next);
                self.stack.pop();
            }
        }
        self.pairs.pop();
        if let Some((label, _)) = fresh {
            self.assigned[label] = false;
        }
    }

    /// The last motif edge takes all remaining in-window elements; apply
    /// the flow and prepend checks and emit.
    fn emit_last_range(&mut self, p: u32, range: std::ops::Range<usize>) {
        let s = self.g.series(p);
        let set_flow = s.flow_of_range(range.clone());
        let flow = self.stack.iter().map(|&(_, f)| f).fold(set_flow, Flow::min);
        if flow < self.motif.phi() || flow <= self.sink.prune_threshold() {
            self.stats.instances_rejected_by_flow += 1;
            return;
        }
        let last_time = s.time(range.end - 1);
        if let Some(tp) = self.anchor_prev {
            if last_time - tp <= self.motif.delta() {
                self.stats.instances_rejected_nonmaximal += 1;
                return;
            }
        }
        self.edge_sets_buf.clear();
        self.edge_sets_buf.extend(self.stack.iter().map(|&(es, _)| es));
        self.edge_sets_buf.push(EdgeSet {
            pair: p,
            start: range.start as u32,
            end: range.end as u32,
        });
        let view = InstanceView {
            edge_sets: &self.edge_sets_buf,
            flow,
            first_time: self.anchor_time,
            last_time,
        };
        self.sm_buf.nodes.clear();
        self.sm_buf.nodes.extend_from_slice(&self.assign);
        self.sm_buf.pairs.clear();
        self.sm_buf.pairs.extend_from_slice(&self.pairs);
        self.stats.instances_emitted += 1;
        self.sink.accept(&self.sm_buf, view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::enumerate::{count_instances, enumerate_all, CollectSink};
    use crate::topk::TopKSink;
    use flowmotif_graph::GraphBuilder;
    use flowmotif_util::rng::StdRng;
    use flowmotif_util::rng::{RngExt, SeedableRng};

    fn random_graph(nodes: u32, edges: usize, seed: u64) -> TimeSeriesGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        for _ in 0..edges {
            let u = rng.random_range(0..nodes);
            let mut v = rng.random_range(0..nodes);
            while v == u {
                v = rng.random_range(0..nodes);
            }
            b.add_interaction(u, v, rng.random_range(0..300), rng.random_range(1..10) as f64);
        }
        b.build_time_series_graph()
    }

    #[test]
    fn shared_matches_per_match_counts() {
        let g = random_graph(15, 250, 3);
        for name in ["M(3,2)", "M(3,3)", "M(4,3)", "M(4,4)A", "M(4,4)B", "M(5,4)"] {
            for (delta, phi) in [(30, 0.0), (30, 5.0), (80, 3.0)] {
                let m = catalog::by_name(name, delta, phi).unwrap();
                let (per_match, _) = count_instances(&g, &m);
                let (shared, _) = count_instances_shared(&g, &m);
                assert_eq!(per_match, shared, "{name} δ={delta} ϕ={phi}");
            }
        }
    }

    #[test]
    fn shared_collects_identical_instance_sets() {
        let g = random_graph(12, 200, 9);
        let m = catalog::by_name("M(3,3)", 60, 2.0).unwrap();
        let (groups, _) = enumerate_all(&g, &m);
        let mut a: Vec<String> = groups
            .iter()
            .flat_map(|(sm, v)| v.iter().map(move |i| format!("{:?}|{:?}", sm.pairs, i.edge_sets)))
            .collect();
        let mut sink = CollectSink::default();
        enumerate_shared_with_sink(&g, &m, &mut sink);
        let mut b: Vec<String> = sink
            .groups
            .iter()
            .flat_map(|(sm, v)| v.iter().map(move |i| format!("{:?}|{:?}", sm.pairs, i.edge_sets)))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn shared_supports_topk_with_floating_threshold() {
        let g = random_graph(12, 200, 5);
        let m = catalog::by_name("M(3,2)", 60, 0.0).unwrap();
        let mut shared_sink = TopKSink::new(5);
        enumerate_shared_with_sink(&g, &m, &mut shared_sink);
        let shared: Vec<f64> = shared_sink.into_sorted().iter().map(|r| r.instance.flow).collect();
        let (seq, _) = crate::topk::top_k(&g, &m, 5);
        let want: Vec<f64> = seq.iter().map(|r| r.instance.flow).collect();
        assert_eq!(shared, want);
    }

    #[test]
    fn shared_single_edge_motif() {
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 1i64, 2.0), (0, 1, 3, 3.0), (0, 1, 30, 4.0)]);
        let g = b.build_time_series_graph();
        let m = catalog::parse_motif("0-1", 5, 0.0).unwrap();
        let (n, _) = count_instances_shared(&g, &m);
        let (want, _) = count_instances(&g, &m);
        assert_eq!(n, want);
    }

    #[test]
    fn shared_on_fig7_fixture() {
        let mut b = GraphBuilder::new();
        for (t, f) in [(10, 5.0), (13, 2.0), (15, 3.0), (18, 7.0)] {
            b.add_interaction(0, 1, t, f);
        }
        for (t, f) in [(9, 4.0), (11, 3.0), (16, 3.0)] {
            b.add_interaction(1, 2, t, f);
        }
        for (t, f) in [(14, 4.0), (19, 6.0), (24, 3.0), (25, 2.0)] {
            b.add_interaction(2, 0, t, f);
        }
        let g = b.build_time_series_graph();
        for phi in [0.0, 5.0] {
            let m = catalog::by_name("M(3,3)", 10, phi).unwrap();
            assert_eq!(count_instances_shared(&g, &m).0, count_instances(&g, &m).0, "phi={phi}");
        }
    }
}
