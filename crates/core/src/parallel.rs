//! Multi-threaded two-phase search.
//!
//! Both phases shard naturally by the *origin node* of the structural
//! match walk: disjoint origin ranges partition the match set, so workers
//! pull blocks of origin nodes from a shared counter and run P1+P2 for
//! their blocks with private sinks and scratch buffers — no match
//! materialisation, no locks on the hot path. (The paper's future work §7
//! suggests batching structural matches; sharding them is the
//! embarrassingly parallel version.)

use crate::enumerate::{
    enumerate_in_match_reusing, CollectSink, CountSink, EnumerationScratch, InstanceSink,
    SearchOptions, SearchStats,
};
use crate::instance::{MotifInstance, StructuralMatch};
use crate::matcher::for_each_structural_match_in_node_range;
use crate::motif::Motif;
use crate::topk::{RankedInstance, TopKSink};
use flowmotif_graph::{NodeId, TimeSeriesGraph};
use std::sync::atomic::{AtomicU32, Ordering};

/// Origin nodes are handed to workers in blocks of this size; small
/// enough to balance skewed hubs, large enough to amortise the atomic.
const BLOCK: u32 = 64;

/// Picks a worker count: `threads = 0` means "all available cores".
fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// Runs the two-phase search with one sink per worker; returns the sinks
/// and the merged stats.
fn par_scan<S: InstanceSink + Send>(
    g: &TimeSeriesGraph,
    motif: &Motif,
    opts: SearchOptions,
    sinks: Vec<S>,
) -> (Vec<S>, SearchStats) {
    let n = g.num_nodes() as u32;
    let next_block = AtomicU32::new(0);
    let results: Vec<(S, SearchStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = sinks
            .into_iter()
            .map(|mut sink| {
                let next_block = &next_block;
                scope.spawn(move || {
                    let mut stats = SearchStats::default();
                    let mut scratch = EnumerationScratch::default();
                    loop {
                        let lo = next_block.fetch_add(1, Ordering::Relaxed).saturating_mul(BLOCK);
                        if lo >= n {
                            break;
                        }
                        let hi = (lo + BLOCK).min(n);
                        for_each_structural_match_in_node_range(
                            g,
                            motif.path(),
                            lo as NodeId..hi as NodeId,
                            &mut |sm| {
                                stats.structural_matches += 1;
                                enumerate_in_match_reusing(
                                    g,
                                    motif,
                                    sm,
                                    opts,
                                    &mut sink,
                                    &mut stats,
                                    &mut scratch,
                                );
                            },
                        );
                    }
                    (sink, stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut stats = SearchStats::default();
    let mut sinks = Vec::with_capacity(results.len());
    for (s, st) in results {
        stats.merge(&st);
        sinks.push(s);
    }
    (sinks, stats)
}

/// Parallel instance counting. `threads = 0` uses all cores.
pub fn par_count_instances(
    g: &TimeSeriesGraph,
    motif: &Motif,
    threads: usize,
) -> (u64, SearchStats) {
    let workers = effective_threads(threads);
    let sinks = (0..workers).map(|_| CountSink::default()).collect();
    let (sinks, stats) = par_scan(g, motif, SearchOptions::default(), sinks);
    (sinks.iter().map(|s| s.count).sum(), stats)
}

/// Parallel full enumeration. Groups arrive in worker order (i.e. not
/// globally sorted); each structural match still owns one contiguous
/// group.
pub fn par_enumerate_all(
    g: &TimeSeriesGraph,
    motif: &Motif,
    threads: usize,
) -> (Vec<(StructuralMatch, Vec<MotifInstance>)>, SearchStats) {
    let workers = effective_threads(threads);
    let sinks = (0..workers).map(|_| CollectSink::default()).collect();
    let (sinks, stats) = par_scan(g, motif, SearchOptions::default(), sinks);
    let mut groups = Vec::new();
    for s in sinks {
        groups.extend(s.groups);
    }
    (groups, stats)
}

/// Parallel top-k: each worker keeps a local top-k heap; heaps are merged
/// at the end. The floating threshold is per-worker, so pruning is weaker
/// than in the sequential version, but results are identical.
pub fn par_top_k(
    g: &TimeSeriesGraph,
    motif: &Motif,
    k: usize,
    threads: usize,
) -> (Vec<RankedInstance>, SearchStats) {
    let workers = effective_threads(threads);
    let sinks = (0..workers).map(|_| TopKSink::new(k)).collect();
    let (sinks, stats) = par_scan(g, motif, SearchOptions::default(), sinks);
    let mut all: Vec<RankedInstance> = Vec::new();
    for s in sinks {
        all.extend(s.into_sorted());
    }
    all.sort_by(|a, b| b.instance.flow.total_cmp(&a.instance.flow));
    all.truncate(k);
    (all, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::enumerate::{count_instances, enumerate_all};
    use crate::topk::top_k;
    use flowmotif_graph::GraphBuilder;
    use flowmotif_util::rng::StdRng;
    use flowmotif_util::rng::{RngExt, SeedableRng};

    fn random_graph(nodes: u32, edges: usize, seed: u64) -> TimeSeriesGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        for _ in 0..edges {
            let u = rng.random_range(0..nodes);
            let mut v = rng.random_range(0..nodes);
            while v == u {
                v = rng.random_range(0..nodes);
            }
            b.add_interaction(u, v, rng.random_range(0..500), rng.random_range(1..10) as f64);
        }
        b.build_time_series_graph()
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let g = random_graph(200, 900, 7);
        for name in ["M(3,2)", "M(3,3)", "M(4,3)"] {
            let m = catalog::by_name(name, 50, 3.0).unwrap();
            let (seq, seq_stats) = count_instances(&g, &m);
            for threads in [1, 2, 4] {
                let (par, par_stats) = par_count_instances(&g, &m, threads);
                assert_eq!(par, seq, "{name} threads={threads}");
                assert_eq!(par_stats.structural_matches, seq_stats.structural_matches);
                assert_eq!(par_stats.instances_emitted, seq_stats.instances_emitted);
            }
        }
    }

    #[test]
    fn parallel_enumeration_collects_same_instances() {
        let g = random_graph(150, 700, 11);
        let m = catalog::by_name("M(3,2)", 60, 2.0).unwrap();
        let (seq, _) = enumerate_all(&g, &m);
        let (par, _) = par_enumerate_all(&g, &m, 3);
        let norm = |groups: &[(StructuralMatch, Vec<MotifInstance>)]| {
            let mut v: Vec<String> = groups
                .iter()
                .flat_map(|(sm, is)| {
                    is.iter().map(move |i| format!("{:?}|{:?}", sm.pairs, i.edge_sets))
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(&seq), norm(&par));
    }

    #[test]
    fn parallel_top_k_matches_sequential_flows() {
        let g = random_graph(120, 800, 13);
        let m = catalog::by_name("M(3,2)", 60, 0.0).unwrap();
        for k in [1, 5, 20] {
            let (seq, _) = top_k(&g, &m, k);
            let (par, _) = par_top_k(&g, &m, k, 4);
            let sf: Vec<_> = seq.iter().map(|r| r.instance.flow).collect();
            let pf: Vec<_> = par.iter().map(|r| r.instance.flow).collect();
            assert_eq!(sf, pf, "k={k}");
        }
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let g = random_graph(60, 300, 17);
        let m = catalog::by_name("M(3,2)", 60, 0.0).unwrap();
        let (seq, _) = count_instances(&g, &m);
        let (par, _) = par_count_instances(&g, &m, 0);
        assert_eq!(par, seq);
    }

    #[test]
    fn node_range_partition_covers_all_matches() {
        use crate::matcher::{count_structural_matches, for_each_structural_match_in_node_range};
        let g = random_graph(100, 400, 23);
        let path = catalog::by_name("M(3,2)", 1, 0.0).unwrap();
        let total = count_structural_matches(&g, path.path());
        let mut split = 0u64;
        for lo in (0..100u32).step_by(17) {
            let hi = (lo + 17).min(100);
            for_each_structural_match_in_node_range(&g, path.path(), lo..hi, &mut |_| split += 1);
        }
        assert_eq!(split, total);
    }
}
