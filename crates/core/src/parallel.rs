//! Multi-threaded two-phase search.
//!
//! Both phases shard naturally by the *origin node* of the structural
//! match walk: disjoint origin ranges partition the match set. The
//! scheduler builds a deterministic task list at **two granularities** —
//! blocks of origin nodes, plus *pair-level* sub-tasks for heavy hubs
//! (an origin whose out-degree exceeds [`ParOptions::hub_degree`] is
//! split into chunks of its out-pair slice, so no single worker ever
//! owns a whole hub) — and workers steal tasks from a shared atomic
//! queue until it drains. Sinks and scratch arenas are worker-private;
//! no match materialisation, no locks on the hot path. The emitted
//! instance set and the merged [`SearchStats`] are independent of the
//! thread count, block size and hub splitting (every match belongs to
//! exactly one task), which the determinism suite pins down.
//!
//! Bounded scans ([`par_count_instances_in_window`],
//! [`par_enumerate_window`]) run the window-pruned phase P1: each task
//! pulls only its own origin shard out of the active-origin index
//! ([`flowmotif_graph::TimeSeriesGraph::active_origins_in_range`]), so
//! parallel queries never materialise one global candidate list.

use crate::enumerate::{
    enumerate_in_match_bounded, CollectSink, CountSink, InstanceSink, SearchOptions, SearchStats,
};
use crate::instance::{MotifInstance, StructuralMatch};
use crate::matcher::P1Driver;
use crate::motif::Motif;
use crate::scratch::SearchScratch;
use crate::topk::{RankedInstance, TopKSink};
use crate::trace::TraceStage;
use flowmotif_graph::{GraphStore, NodeId, TimeWindow, Timestamp};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The unbounded window (plain Algorithm 1 semantics).
const UNBOUNDED: TimeWindow = TimeWindow { start: Timestamp::MIN, end: Timestamp::MAX };

/// Scheduling knobs for the parallel drivers. The defaults suit skewed
/// real-world degree distributions; the fields exist for benchmarks,
/// A/B comparisons and the determinism suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParOptions {
    /// Worker threads; `0` means "all available cores".
    pub threads: usize,
    /// Origins per block task: small enough to balance, large enough to
    /// amortise the queue atomic.
    pub block: u32,
    /// Out-degree above which an origin is split into pair-level
    /// sub-tasks instead of riding inside a block. `u32::MAX` disables
    /// hub splitting — the legacy fixed-block scheduler, kept for the
    /// `skewed_scan` A/B benchmark.
    pub hub_degree: u32,
    /// Out-pairs per hub sub-task.
    pub hub_chunk: u32,
}

impl Default for ParOptions {
    fn default() -> Self {
        Self { threads: 0, block: 64, hub_degree: 128, hub_chunk: 16 }
    }
}

impl ParOptions {
    /// `ParOptions` with everything default but the thread count (the
    /// shape of the legacy `threads: usize` APIs).
    pub fn with_threads(threads: usize) -> Self {
        Self { threads, ..Self::default() }
    }
}

/// Picks a worker count: `threads = 0` means "all available cores".
fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// One unit of schedulable work. Disjoint tasks partition the structural
/// match set: a match belongs to the task owning its walk origin — or,
/// for a split hub, the task owning its first-step pair.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Task {
    /// Phase P1+P2 over a contiguous origin range.
    Origins(std::ops::Range<NodeId>),
    /// One chunk of a heavy hub: matches of `origin` whose first walk
    /// step uses a pair in `pairs`.
    HubPairs {
        /// The hub origin node.
        origin: NodeId,
        /// Positional sub-range of the origin's out-pair list
        /// (`0..out_degree`), so the split works on any backend.
        pairs: std::ops::Range<u32>,
    },
}

/// Builds the deterministic task list: origin blocks, with every hub
/// flushed out of its block and split into pair chunks.
fn build_tasks<G: GraphStore>(g: &G, opts: ParOptions) -> Vec<Task> {
    let n = g.num_nodes() as u32;
    let block = opts.block.max(1);
    let chunk = opts.hub_chunk.max(1);
    let mut tasks = Vec::new();
    let mut run_start = 0u32;
    for u in 0..n {
        let deg = g.out_degree(u);
        if opts.hub_degree != u32::MAX && deg > opts.hub_degree {
            if run_start < u {
                tasks.push(Task::Origins(run_start..u));
            }
            let mut lo = 0u32;
            while lo < deg {
                let hi = (lo + chunk).min(deg);
                tasks.push(Task::HubPairs { origin: u, pairs: lo..hi });
                lo = hi;
            }
            run_start = u + 1;
        } else if u + 1 - run_start >= block {
            tasks.push(Task::Origins(run_start..u + 1));
            run_start = u + 1;
        }
    }
    if run_start < n {
        tasks.push(Task::Origins(run_start..n));
    }
    tasks
}

/// Runs one task's P1+P2 into the worker's sink/stats/scratch.
#[allow(clippy::too_many_arguments)] // the worker loop's full private state
fn run_task<G: GraphStore, S: InstanceSink>(
    g: &G,
    motif: &Motif,
    bounds: TimeWindow,
    opts: SearchOptions,
    task: &Task,
    sink: &mut S,
    stats: &mut SearchStats,
    scratch: &mut SearchScratch,
) {
    let SearchScratch { p1, p2, .. } = scratch;
    // Traced runs time the task total and the inside of every P2 call
    // (P1 = total − P2), mirroring the sequential driver; stats are
    // cumulative across a worker's tasks, so counts are deltas.
    let start = opts.trace.map(|_| std::time::Instant::now());
    let mut p2_nanos = 0u64;
    let (sm0, em0) = (stats.structural_matches, stats.instances_emitted);
    let mut visit = |sm: &StructuralMatch| {
        stats.structural_matches += 1;
        if opts.trace.is_some() {
            let t0 = std::time::Instant::now();
            enumerate_in_match_bounded(g, motif, sm, bounds, opts, sink, stats, p2);
            p2_nanos += t0.elapsed().as_nanos() as u64;
        } else {
            enumerate_in_match_bounded(g, motif, sm, bounds, opts, sink, stats, p2);
        }
    };
    let driver = P1Driver::new(motif.path())
        .bounds(bounds)
        .use_index(opts.use_active_index)
        .extension_order(opts.extension_order);
    let driver = match task {
        Task::Origins(r) => driver.origins(r.clone()),
        Task::HubPairs { origin, pairs } => driver.from_origin(*origin, pairs.clone()),
    };
    driver.run(g, p1, &mut visit);
    if let (Some(trace), Some(start)) = (opts.trace, start) {
        let total = start.elapsed().as_nanos() as u64;
        trace.record(
            TraceStage::P1,
            total.saturating_sub(p2_nanos),
            stats.structural_matches - sm0,
        );
        trace.record(TraceStage::P2, p2_nanos, stats.instances_emitted - em0);
    }
}

/// Runs the two-phase search with one sink per worker; returns the sinks
/// and the merged stats. Workers steal tasks from a shared queue (an
/// atomic cursor over the deterministic task list), so a straggler hub
/// chunk never serialises the scan.
fn par_scan<G: GraphStore + Sync, S: InstanceSink + Send>(
    g: &G,
    motif: &Motif,
    bounds: TimeWindow,
    opts: SearchOptions,
    par: ParOptions,
    sinks: Vec<S>,
) -> (Vec<S>, SearchStats) {
    let tasks = build_tasks(g, par);
    let next = AtomicUsize::new(0);
    let results: Vec<(S, SearchStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = sinks
            .into_iter()
            .enumerate()
            .map(|(wi, mut sink)| {
                let (next, tasks) = (&next, &tasks);
                scope.spawn(move || {
                    let mut stats = SearchStats::default();
                    let mut scratch = SearchScratch::default();
                    // Per-worker steal count and busy time for the
                    // scheduler trace (untraced: two dead counters).
                    let (mut claimed, mut busy) = (0u64, 0u64);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(i) else { break };
                        claimed += 1;
                        if opts.trace.is_some() {
                            let t0 = std::time::Instant::now();
                            run_task(
                                g,
                                motif,
                                bounds,
                                opts,
                                task,
                                &mut sink,
                                &mut stats,
                                &mut scratch,
                            );
                            busy += t0.elapsed().as_nanos() as u64;
                        } else {
                            run_task(
                                g,
                                motif,
                                bounds,
                                opts,
                                task,
                                &mut sink,
                                &mut stats,
                                &mut scratch,
                            );
                        }
                    }
                    if let Some(trace) = opts.trace {
                        trace.worker(wi, claimed, busy);
                    }
                    (sink, stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut stats = SearchStats::default();
    let mut sinks = Vec::with_capacity(results.len());
    for (s, st) in results {
        stats.merge(&st);
        sinks.push(s);
    }
    (sinks, stats)
}

/// Parallel instance counting. `threads = 0` uses all cores.
pub fn par_count_instances<G: GraphStore + Sync>(
    g: &G,
    motif: &Motif,
    threads: usize,
) -> (u64, SearchStats) {
    par_count_instances_with(g, motif, SearchOptions::default(), ParOptions::with_threads(threads))
}

/// [`par_count_instances`] with explicit search and scheduling options.
pub fn par_count_instances_with<G: GraphStore + Sync>(
    g: &G,
    motif: &Motif,
    opts: SearchOptions,
    par: ParOptions,
) -> (u64, SearchStats) {
    par_count_instances_in_window(g, motif, UNBOUNDED, opts, par)
}

/// Parallel instance counting restricted to the closed window `bounds`:
/// the bounded, index-assisted phase P1 with per-shard candidate pulls.
pub fn par_count_instances_in_window<G: GraphStore + Sync>(
    g: &G,
    motif: &Motif,
    bounds: TimeWindow,
    opts: SearchOptions,
    par: ParOptions,
) -> (u64, SearchStats) {
    let workers = effective_threads(par.threads);
    let sinks = (0..workers).map(|_| CountSink::default()).collect();
    let (sinks, stats) = par_scan(g, motif, bounds, opts, par, sinks);
    (sinks.iter().map(|s| s.count).sum(), stats)
}

/// Parallel full enumeration. Groups arrive in worker order (i.e. not
/// globally sorted); each structural match still owns one contiguous
/// group per worker (a split hub's matches stay whole — chunks partition
/// matches, never one match's instances).
pub fn par_enumerate_all<G: GraphStore + Sync>(
    g: &G,
    motif: &Motif,
    threads: usize,
) -> (Vec<(StructuralMatch, Vec<MotifInstance>)>, SearchStats) {
    par_enumerate_all_with(g, motif, SearchOptions::default(), ParOptions::with_threads(threads))
}

/// [`par_enumerate_all`] with explicit search and scheduling options.
pub fn par_enumerate_all_with<G: GraphStore + Sync>(
    g: &G,
    motif: &Motif,
    opts: SearchOptions,
    par: ParOptions,
) -> (Vec<(StructuralMatch, Vec<MotifInstance>)>, SearchStats) {
    par_enumerate_window(g, motif, UNBOUNDED, opts, par)
}

/// Parallel enumeration restricted to the closed window `bounds`.
pub fn par_enumerate_window<G: GraphStore + Sync>(
    g: &G,
    motif: &Motif,
    bounds: TimeWindow,
    opts: SearchOptions,
    par: ParOptions,
) -> (Vec<(StructuralMatch, Vec<MotifInstance>)>, SearchStats) {
    let workers = effective_threads(par.threads);
    let sinks = (0..workers).map(|_| CollectSink::default()).collect();
    let (sinks, stats) = par_scan(g, motif, bounds, opts, par, sinks);
    let mut groups = Vec::new();
    for s in sinks {
        groups.extend(s.groups);
    }
    (groups, stats)
}

/// Parallel top-k: each worker keeps a local top-k heap; heaps are merged
/// at the end. The floating threshold is per-worker, so pruning is weaker
/// than in the sequential version, but results are identical.
pub fn par_top_k<G: GraphStore + Sync>(
    g: &G,
    motif: &Motif,
    k: usize,
    threads: usize,
) -> (Vec<RankedInstance>, SearchStats) {
    par_top_k_with(g, motif, k, SearchOptions::default(), ParOptions::with_threads(threads))
}

/// [`par_top_k`] with explicit search and scheduling options.
pub fn par_top_k_with<G: GraphStore + Sync>(
    g: &G,
    motif: &Motif,
    k: usize,
    opts: SearchOptions,
    par: ParOptions,
) -> (Vec<RankedInstance>, SearchStats) {
    let workers = effective_threads(par.threads);
    let sinks = (0..workers).map(|_| TopKSink::new(k)).collect();
    let (sinks, stats) = par_scan(g, motif, UNBOUNDED, opts, par, sinks);
    let mut all: Vec<RankedInstance> = Vec::new();
    for s in sinks {
        all.extend(s.into_sorted());
    }
    all.sort_by(|a, b| b.instance.flow.total_cmp(&a.instance.flow));
    all.truncate(k);
    (all, stats)
}

/// A deterministic model of the scheduler, for benches and tests on
/// machines whose core count cannot demonstrate wall-clock scaling: the
/// cost of each task is its structural-match count, and tasks are
/// list-scheduled greedily onto `threads` workers exactly as the shared
/// queue hands them out (the next task goes to the earliest-available
/// worker). The achievable parallel speedup of a schedule is
/// `total / makespan`, so comparing makespans of two schedulers compares
/// their skew-proofness machine-independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerModel {
    /// Structural matches in the whole scan (the total work).
    pub total: u64,
    /// Number of tasks the scheduler produced.
    pub tasks: usize,
    /// Cost of the heaviest single task (a lower bound on the makespan).
    pub max_task: u64,
    /// Greedy list-scheduling makespan at the modelled thread count.
    pub makespan: u64,
}

/// Computes the [`SchedulerModel`] of an unbounded scan under `par`.
pub fn scheduler_makespan<G: GraphStore>(g: &G, motif: &Motif, par: ParOptions) -> SchedulerModel {
    let workers = effective_threads(par.threads);
    let tasks = build_tasks(g, par);
    let mut scratch = SearchScratch::default();
    let mut finish = vec![0u64; workers.max(1)];
    let (mut total, mut max_task) = (0u64, 0u64);
    for task in &tasks {
        let mut cost = 0u64;
        let mut count = |_: &StructuralMatch| cost += 1;
        let driver = match task {
            Task::Origins(r) => P1Driver::new(motif.path()).origins(r.clone()),
            Task::HubPairs { origin, pairs } => {
                P1Driver::new(motif.path()).from_origin(*origin, pairs.clone())
            }
        };
        driver.run(g, &mut scratch.p1, &mut count);
        total += cost;
        max_task = max_task.max(cost);
        // List scheduling: the next task goes to the worker that frees
        // up first.
        let i = (0..finish.len()).min_by_key(|&i| finish[i]).expect("at least one worker");
        finish[i] += cost;
    }
    let makespan = finish.into_iter().max().unwrap_or(0);
    SchedulerModel { total, tasks: tasks.len(), max_task, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::enumerate::{count_instances, enumerate_all};
    use crate::topk::top_k;
    use flowmotif_graph::{GraphBuilder, TimeSeriesGraph};
    use flowmotif_util::rng::StdRng;
    use flowmotif_util::rng::{RngExt, SeedableRng};

    fn random_graph(nodes: u32, edges: usize, seed: u64) -> TimeSeriesGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        for _ in 0..edges {
            let u = rng.random_range(0..nodes);
            let mut v = rng.random_range(0..nodes);
            while v == u {
                v = rng.random_range(0..nodes);
            }
            b.add_interaction(u, v, rng.random_range(0..500), rng.random_range(1..10) as f64);
        }
        b.build_time_series_graph()
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let g = random_graph(200, 900, 7);
        for name in ["M(3,2)", "M(3,3)", "M(4,3)"] {
            let m = catalog::by_name(name, 50, 3.0).unwrap();
            let (seq, seq_stats) = count_instances(&g, &m);
            for threads in [1, 2, 4] {
                let (par, par_stats) = par_count_instances(&g, &m, threads);
                assert_eq!(par, seq, "{name} threads={threads}");
                assert_eq!(par_stats.structural_matches, seq_stats.structural_matches);
                assert_eq!(par_stats.instances_emitted, seq_stats.instances_emitted);
            }
        }
    }

    #[test]
    fn parallel_enumeration_collects_same_instances() {
        let g = random_graph(150, 700, 11);
        let m = catalog::by_name("M(3,2)", 60, 2.0).unwrap();
        let (seq, _) = enumerate_all(&g, &m);
        let (par, _) = par_enumerate_all(&g, &m, 3);
        let norm = |groups: &[(StructuralMatch, Vec<MotifInstance>)]| {
            let mut v: Vec<String> = groups
                .iter()
                .flat_map(|(sm, is)| {
                    is.iter().map(move |i| format!("{:?}|{:?}", sm.pairs, i.edge_sets))
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(&seq), norm(&par));
    }

    #[test]
    fn parallel_top_k_matches_sequential_flows() {
        let g = random_graph(120, 800, 13);
        let m = catalog::by_name("M(3,2)", 60, 0.0).unwrap();
        for k in [1, 5, 20] {
            let (seq, _) = top_k(&g, &m, k);
            let (par, _) = par_top_k(&g, &m, k, 4);
            let sf: Vec<_> = seq.iter().map(|r| r.instance.flow).collect();
            let pf: Vec<_> = par.iter().map(|r| r.instance.flow).collect();
            assert_eq!(sf, pf, "k={k}");
        }
    }

    #[test]
    fn trace_hook_records_stage_breakdown_and_steals() {
        use crate::trace::{AtomicTrace, TraceStage};
        let g = random_graph(80, 400, 29);
        let m = catalog::by_name("M(3,2)", 60, 0.0).unwrap();
        let trace: &'static AtomicTrace = Box::leak(Box::new(AtomicTrace::new()));
        let opts = SearchOptions::default().with_trace(Some(trace));
        let (traced, stats) = par_count_instances_with(&g, &m, opts, ParOptions::with_threads(2));
        let (plain, _) = par_count_instances(&g, &m, 2);
        assert_eq!(traced, plain, "tracing must not change results");
        assert_eq!(trace.count(TraceStage::P1), stats.structural_matches);
        assert_eq!(trace.count(TraceStage::P2), stats.instances_emitted);
        assert_eq!(trace.workers(), 2);
        let claimed: u64 = (0..trace.workers()).map(|i| trace.worker_tasks(i)).sum();
        assert_eq!(claimed as usize, build_tasks(&g, ParOptions::default()).len());
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let g = random_graph(60, 300, 17);
        let m = catalog::by_name("M(3,2)", 60, 0.0).unwrap();
        let (seq, _) = count_instances(&g, &m);
        let (par, _) = par_count_instances(&g, &m, 0);
        assert_eq!(par, seq);
    }

    #[test]
    fn node_range_partition_covers_all_matches() {
        use crate::matcher::count_structural_matches;
        let g = random_graph(100, 400, 23);
        let path = catalog::by_name("M(3,2)", 1, 0.0).unwrap();
        let total = count_structural_matches(&g, path.path());
        let mut split = 0u64;
        for lo in (0..100u32).step_by(17) {
            let hi = (lo + 17).min(100);
            P1Driver::new(path.path()).origins(lo..hi).for_each(&g, &mut |_| split += 1);
        }
        assert_eq!(split, total);
    }
}
