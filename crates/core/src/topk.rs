//! Top-k flow motif search (paper §5): replace the `ϕ` constraint by a
//! ranking — find the `k` maximal instances with the highest flow.
//!
//! The implementation is Algorithm 1 with two changes, exactly as the
//! paper prescribes: a size-`k` min-heap tracks the best instances found
//! so far, and the flow of the current `k`-th instance serves as a
//! *floating* pruning threshold in place of `ϕ`.

use crate::enumerate::{enumerate_with_sink, InstanceSink, SearchOptions, SearchStats};
use crate::instance::{InstanceView, MotifInstance, StructuralMatch};
use crate::motif::Motif;
use flowmotif_graph::{Flow, GraphStore};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One ranked result.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedInstance {
    /// The structural match the instance lives in.
    pub structural_match: StructuralMatch,
    /// The instance itself (its `flow` field is the ranking key).
    pub instance: MotifInstance,
}

/// Min-heap entry ordered by flow (ties broken by discovery order so runs
/// are deterministic).
#[derive(Debug)]
struct HeapEntry {
    flow: Flow,
    seq: u64,
    result: RankedInstance,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the *lowest* flow on
        // top for eviction.
        other.flow.total_cmp(&self.flow).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Sink maintaining the top-k instances by flow with a floating threshold.
///
/// Steady-state accepts are allocation-free: a candidate is cloned only
/// *after* it beats the current `k`-th flow, and once the heap is full
/// the evicted entry's buffers (`StructuralMatch` vectors, edge-set
/// vector) are recycled in place via `clone_from` instead of being freed
/// and reallocated. [`TopKSink::reset`] parks the entries of a finished
/// search in an internal pool so a reused sink starts its next search
/// with warm buffers too.
#[derive(Debug)]
pub struct TopKSink {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
    seq: u64,
    /// Retired entries whose buffers the next accepts recycle.
    pool: Vec<HeapEntry>,
}

impl TopKSink {
    /// Creates a sink keeping the best `k` instances.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k search needs k >= 1");
        // At most `k` entries ever exist (heap + pool combined), so the
        // pre-sized pool never reallocates on `reset`.
        Self { k, heap: BinaryHeap::with_capacity(k + 1), seq: 0, pool: Vec::with_capacity(k) }
    }

    /// Flow of the current `k`-th best instance (the floating threshold),
    /// or `-∞` while fewer than `k` instances have been seen.
    pub fn kth_flow(&self) -> Flow {
        if self.heap.len() == self.k {
            self.heap.peek().map_or(f64::NEG_INFINITY, |e| e.flow)
        } else {
            f64::NEG_INFINITY
        }
    }

    /// Clears the accumulated results for a fresh search while keeping
    /// every buffer (heap storage, entry vectors) warm in the recycle
    /// pool — after the first search a reused sink accepts without
    /// allocating.
    pub fn reset(&mut self) {
        self.seq = 0;
        self.pool.extend(self.heap.drain());
    }

    /// Finishes the search: results sorted by descending flow.
    pub fn into_sorted(self) -> Vec<RankedInstance> {
        let mut v: Vec<HeapEntry> = self.heap.into_vec();
        v.sort_by(|a, b| b.flow.total_cmp(&a.flow).then_with(|| a.seq.cmp(&b.seq)));
        v.into_iter().map(|e| e.result).collect()
    }

    /// Writes `(flow, seq, sm, inst)` into `e`, reusing its buffers.
    fn refill(
        e: &mut HeapEntry,
        flow: Flow,
        seq: u64,
        sm: &StructuralMatch,
        inst: InstanceView<'_>,
    ) {
        e.flow = flow;
        e.seq = seq;
        e.result.structural_match.clone_from(sm);
        inst.write_to(&mut e.result.instance);
    }
}

impl InstanceSink for TopKSink {
    fn prune_threshold(&self) -> Flow {
        self.kth_flow()
    }

    fn accept(&mut self, sm: &StructuralMatch, inst: InstanceView<'_>) {
        let flow = inst.flow;
        if self.heap.len() == self.k {
            // Clone only after the candidate beats the current k-th
            // flow. (The enumerator already prunes at the floating
            // threshold, so this guard only fires for direct callers.)
            if flow <= self.kth_flow() {
                return;
            }
            self.seq += 1;
            let mut e = self.heap.pop().expect("full heap");
            Self::refill(&mut e, flow, self.seq, sm, inst);
            self.heap.push(e);
        } else {
            self.seq += 1;
            let entry = match self.pool.pop() {
                Some(mut e) => {
                    Self::refill(&mut e, flow, self.seq, sm, inst);
                    e
                }
                None => HeapEntry {
                    flow,
                    seq: self.seq,
                    result: RankedInstance {
                        structural_match: sm.clone(),
                        instance: inst.to_instance(),
                    },
                },
            };
            self.heap.push(entry);
        }
    }
}

/// Finds the `k` maximal instances of `motif` with the highest flow.
///
/// `motif.phi()` still applies as a hard lower bound; pass `ϕ = 0` for the
/// paper's pure ranking semantics (§5 runs top-k with `ϕ = 0`).
pub fn top_k<G: GraphStore>(g: &G, motif: &Motif, k: usize) -> (Vec<RankedInstance>, SearchStats) {
    let mut sink = TopKSink::new(k);
    let stats = enumerate_with_sink(g, motif, SearchOptions::default(), &mut sink);
    (sink.into_sorted(), stats)
}

/// Convenience for Fig. 11: the flow of the `k`-th ranked instance, or
/// `None` if fewer than `k` instances exist.
pub fn kth_instance_flow<G: GraphStore>(g: &G, motif: &Motif, k: usize) -> Option<Flow> {
    let (ranked, _) = top_k(g, motif, k);
    (ranked.len() >= k).then(|| ranked[k - 1].instance.flow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::enumerate::{enumerate_with_sink, CollectSink};
    use flowmotif_graph::{GraphBuilder, TimeSeriesGraph};

    /// Builds a graph with several M(3,2) instances of distinct flows.
    fn chain_graph() -> TimeSeriesGraph {
        let mut b = GraphBuilder::new();
        // Three disjoint chains u -> v -> w at separated times, flows 5, 9, 2.
        let mut base = 0;
        for (i, f) in [5.0, 9.0, 2.0].into_iter().enumerate() {
            let n = (i * 3) as u32;
            b.add_interaction(n, n + 1, base, f);
            b.add_interaction(n + 1, n + 2, base + 1, f + 1.0);
            base += 100;
        }
        b.build_time_series_graph()
    }

    #[test]
    fn top_k_orders_by_flow() {
        let g = chain_graph();
        let m = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let (r, _) = top_k(&g, &m, 2);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].instance.flow, 9.0);
        assert_eq!(r[1].instance.flow, 5.0);
    }

    #[test]
    fn top_k_larger_than_result_set() {
        let g = chain_graph();
        let m = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let (r, _) = top_k(&g, &m, 10);
        assert_eq!(r.len(), 3);
        let flows: Vec<_> = r.iter().map(|x| x.instance.flow).collect();
        assert_eq!(flows, vec![9.0, 5.0, 2.0]);
    }

    #[test]
    fn kth_flow_matches_full_enumeration() {
        let g = chain_graph();
        let m = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        assert_eq!(kth_instance_flow(&g, &m, 1), Some(9.0));
        assert_eq!(kth_instance_flow(&g, &m, 3), Some(2.0));
        assert_eq!(kth_instance_flow(&g, &m, 4), None);
    }

    #[test]
    fn floating_threshold_agrees_with_sorted_enumeration() {
        // top-k flows == first k flows of the sorted full enumeration.
        let g = chain_graph();
        let m = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let mut all = CollectSink::default();
        enumerate_with_sink(&g, &m, SearchOptions::default(), &mut all);
        let mut flows: Vec<f64> =
            all.groups.iter().flat_map(|(_, v)| v.iter().map(|i| i.flow)).collect();
        flows.sort_by(|a, b| b.total_cmp(a));
        for k in 1..=flows.len() {
            let (r, _) = top_k(&g, &m, k);
            let got: Vec<_> = r.iter().map(|x| x.instance.flow).collect();
            assert_eq!(got, flows[..k].to_vec(), "k={k}");
        }
    }

    #[test]
    fn threshold_prunes_search() {
        let g = chain_graph();
        let m = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let (_, stats_k1) = top_k(&g, &m, 1);
        // With k=1 the threshold rises to 5 then 9, pruning later prefixes.
        assert!(stats_k1.prefixes_pruned_by_flow + stats_k1.instances_rejected_by_flow > 0);
    }

    #[test]
    fn phi_still_applies_as_floor() {
        let g = chain_graph();
        let m = catalog::by_name("M(3,2)", 10, 6.0).unwrap();
        let (r, _) = top_k(&g, &m, 10);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].instance.flow, 9.0);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn k_zero_panics() {
        TopKSink::new(0);
    }

    #[test]
    fn reset_recycles_buffers_and_reproduces_results() {
        let g = chain_graph();
        let m = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let mut sink = TopKSink::new(2);
        enumerate_with_sink(&g, &m, SearchOptions::default(), &mut sink);
        assert_eq!(sink.kth_flow(), 5.0);
        sink.reset();
        assert_eq!(sink.kth_flow(), f64::NEG_INFINITY, "reset empties the heap");
        enumerate_with_sink(&g, &m, SearchOptions::default(), &mut sink);
        let flows: Vec<f64> = sink.into_sorted().iter().map(|r| r.instance.flow).collect();
        assert_eq!(flows, vec![9.0, 5.0]);
    }

    #[test]
    fn direct_accept_below_the_threshold_is_a_noop() {
        use crate::instance::EdgeSet;
        let g = chain_graph();
        let m = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let mut sink = TopKSink::new(1);
        enumerate_with_sink(&g, &m, SearchOptions::default(), &mut sink);
        assert_eq!(sink.kth_flow(), 9.0);
        // Offer a weaker instance directly: it must be ignored (no clone,
        // no eviction) because it cannot beat the k-th flow.
        let sets = [EdgeSet { pair: 0, start: 0, end: 1 }];
        let weak = crate::instance::InstanceView {
            edge_sets: &sets,
            flow: 1.0,
            first_time: 0,
            last_time: 0,
        };
        let sm = StructuralMatch { nodes: vec![0, 1, 2], pairs: vec![0, 1] };
        sink.accept(&sm, weak);
        let flows: Vec<f64> = sink.into_sorted().iter().map(|r| r.instance.flow).collect();
        assert_eq!(flows, vec![9.0]);
    }
}
