//! Errors for motif construction and search configuration.

use std::fmt;

/// Errors raised when building a [`crate::Motif`] or configuring a search.
#[derive(Debug, Clone, PartialEq)]
pub enum MotifError {
    /// The walk has fewer than two vertices (a motif needs ≥ 1 edge).
    WalkTooShort,
    /// The walk contains a self-loop step `u -> u`.
    SelfLoopStep {
        /// Index of the offending step.
        step: usize,
    },
    /// The same directed pair appears twice in the walk; motif edges carry
    /// unique labels, so a pair cannot be traversed twice (Def. 3.1).
    RepeatedEdge {
        /// Index of the second traversal.
        step: usize,
    },
    /// Motif vertex labels must be dense `0..n` in order of first
    /// appearance.
    NonCanonicalLabels {
        /// The label found.
        found: u8,
        /// The label expected at that position.
        expected: u8,
    },
    /// A motif name could not be parsed (see [`crate::catalog`]).
    UnknownMotifName(String),
    /// `δ` must be non-negative.
    NegativeDelta(i64),
    /// `ϕ` must be non-negative and finite.
    InvalidPhi(f64),
}

impl fmt::Display for MotifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MotifError::WalkTooShort => write!(f, "motif walk needs at least two vertices"),
            MotifError::SelfLoopStep { step } => {
                write!(f, "walk step {step} is a self-loop; motif edges connect distinct vertices")
            }
            MotifError::RepeatedEdge { step } => write!(
                f,
                "walk step {step} repeats a directed pair; motif edge labels are unique (Def. 3.1)"
            ),
            MotifError::NonCanonicalLabels { found, expected } => write!(
                f,
                "walk labels must be dense in order of first appearance; found {found}, expected {expected}"
            ),
            MotifError::UnknownMotifName(s) => write!(f, "unknown motif name `{s}`"),
            MotifError::NegativeDelta(d) => write!(f, "duration constraint δ must be >= 0, got {d}"),
            MotifError::InvalidPhi(p) => write!(f, "flow constraint ϕ must be finite and >= 0, got {p}"),
        }
    }
}

impl std::error::Error for MotifError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_definition() {
        assert!(MotifError::RepeatedEdge { step: 2 }.to_string().contains("Def. 3.1"));
        assert!(MotifError::UnknownMotifName("M(9,9)".into()).to_string().contains("M(9,9)"));
    }
}
