//! The search arena: every reusable buffer of the P1→P2 pipeline in one
//! lifetime-free bundle.
//!
//! # Ownership model
//!
//! The two-phase search is a *streaming* pipeline: phase P1 mutates one
//! [`crate::StructuralMatch`] in place and hands the visitor a shared
//! reference at each leaf; phase P2 assembles each instance in a flat
//! [`crate::instance::EdgeSet`] buffer and hands the sink a borrowed
//! [`crate::InstanceView`]. Nothing emitted is owned by the callee —
//! callers that keep results copy explicitly, callers that count or
//! aggregate never touch the heap. All of those working buffers live
//! here, so one warm `SearchScratch` makes a full
//! [`crate::enumerate_with_sink_scratch`] /
//! [`crate::topk::top_k`] pass allocation-free per match (proven by the
//! `alloc_profile` bench, which runs under a counting global allocator).
//!
//! The arena deliberately borrows nothing from any graph (series are
//! re-resolved through [`crate::StructuralMatch::pairs`] on use), so a
//! long-lived driver — a streaming [`QueryEngine`], a server session, a
//! parallel worker — can hold one `SearchScratch` across queries against
//! *different* graphs or snapshots and still reuse every buffer.
//!
//! [`QueryEngine`]: ../../flowmotif_stream/struct.QueryEngine.html

use crate::dp::DpScratch;
use crate::enumerate::EnumerationScratch;
use crate::matcher::MatchScratch;

/// Reusable buffers for one whole search pipeline. `Default` starts
/// empty; capacities grow to the motif/graph shape on first use and stay
/// warm afterwards.
#[derive(Debug, Default, Clone)]
pub struct SearchScratch {
    /// Phase P1: the in-construction match, injectivity bitmap and the
    /// candidate-origin pull buffer of the indexed bounded path.
    pub p1: MatchScratch,
    /// Phase P2: the Algorithm-1 prefix stack and the instance emission
    /// buffer.
    pub p2: EnumerationScratch,
    /// The window-DP fast path buffers (Algorithm 2, used by
    /// [`crate::dp::dp_top1_scratch`]).
    pub dp: DpScratch,
}
