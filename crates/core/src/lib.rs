//! Flow motif search in temporal interaction networks.
//!
//! Implementation of *Flow Motifs in Interaction Networks* (Kosyfaki,
//! Mamoulis, Pitoura, Tsaparas — EDBT 2019): the flow motif model
//! (§3), the two-phase enumeration algorithm (§4), top-k search with a
//! floating flow threshold (§5) and the dynamic-programming top-1 module
//! (§5.1).
//!
//! # Overview
//!
//! A *flow motif* `M = (G_M, δ, ϕ)` is a small directed graph whose edges
//! are totally ordered (forming a *spanning path*), a duration bound `δ`,
//! and a minimum-flow bound `ϕ`. An *instance* of `M` maps every motif
//! edge to a **set** of graph edges between the mapped vertices such that
//! the sets respect the order, all timestamps fit in a `δ` window, and
//! every set aggregates at least `ϕ` flow. Only *maximal* instances are
//! reported (Def. 3.3).
//!
//! ```
//! use flowmotif_core::{catalog, enumerate_all};
//! use flowmotif_graph::GraphBuilder;
//!
//! // The paper's Fig. 2 bitcoin example.
//! let mut b = GraphBuilder::new();
//! b.extend_interactions([
//!     (0u32, 1u32, 13i64, 5.0), (0, 1, 15, 7.0), (2, 0, 10, 10.0),
//!     (3, 2, 1, 2.0), (3, 2, 3, 5.0), (3, 0, 11, 10.0),
//!     (1, 2, 18, 20.0), (2, 3, 19, 5.0), (2, 3, 21, 4.0), (1, 3, 23, 7.0),
//! ]);
//! let g = b.build_time_series_graph();
//!
//! // Cyclic transactions within δ=10 moving at least ϕ=7 per hop.
//! let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();
//! let (groups, stats) = enumerate_all(&g, &motif);
//! assert_eq!(stats.structural_matches, 6);
//! let instances: usize = groups.iter().map(|(_, v)| v.len()).sum();
//! assert_eq!(instances, 1); // the Fig. 4(a) instance
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analytics;
pub mod catalog;
pub mod census;
pub mod dag;
pub mod delta;
pub mod dp;
pub mod enumerate;
pub mod error;
pub mod gallop;
pub mod instance;
pub mod matcher;
pub mod motif;
pub mod parallel;
pub mod scratch;
pub mod shared;
pub mod topk;
pub mod trace;
pub mod validate;

pub use delta::{DeltaContext, DeltaEdge, DeltaInstance, DeltaStats};
pub use enumerate::{
    count_instances, count_instances_in_window, enumerate_all, enumerate_all_in_window,
    enumerate_in_match, enumerate_in_match_bounded, enumerate_in_match_reusing,
    enumerate_window_with_sink, enumerate_window_with_sink_scratch, enumerate_with_sink,
    enumerate_with_sink_scratch, CollectSink, CountSink, EnumerationScratch, FnSink, InstanceSink,
    SearchOptions, SearchOptionsBuilder, SearchStats,
};
pub use error::MotifError;
pub use instance::{EdgeSet, InstanceView, MotifInstance, StructuralMatch};
pub use matcher::{
    count_structural_matches, find_structural_matches, ExtensionOrder, MatchScratch, P1Driver,
};
#[allow(deprecated)] // re-exported for downstream users still on the shims
pub use matcher::{
    for_each_structural_match, for_each_structural_match_bounded,
    for_each_structural_match_bounded_with,
};
pub use motif::{Motif, MotifNode, SpanningPath};
pub use scratch::SearchScratch;
pub use shared::{count_instances_shared, enumerate_shared_with_sink};
pub use trace::{AtomicTrace, TraceSink, TraceStage};

// The search entry points are used from multi-threaded servers
// (snapshot reads in `flowmotif-serve`): everything a query needs to
// share across threads must stay `Send + Sync`. Compile-time assertion
// so a future interior-mutability change fails loudly here, not in a
// downstream crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<flowmotif_graph::TimeSeriesGraph>();
    assert_send_sync::<Motif>();
    assert_send_sync::<SearchOptions>();
    assert_send_sync::<SearchStats>();
    assert_send_sync::<StructuralMatch>();
    assert_send_sync::<MotifInstance>();
};
