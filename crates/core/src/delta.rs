//! Delta evaluation for standing queries: after one appended interaction,
//! refresh only the structural matches that can possibly have changed,
//! instead of re-running the whole two-phase search.
//!
//! # Why the anchor window is sound
//!
//! Every instance spans at most `δ` (Def. 3.2), so an instance using a
//! *new* event at time `t` lies entirely inside `W = [t − δ, t + δ]` —
//! and every pair of its structural match therefore carries at least one
//! interaction in `W`. Conversely, the per-match P2 result is a pure
//! function of the match's pair series, so a match whose pairs did not
//! change (and that cannot host an instance using the new event) keeps
//! its instance set verbatim. Hence the affected matches after appending
//! to pair `(u, v)` are exactly the `W`-active structural matches that
//! *use* `(u, v)` — found by anchoring phase P1 at the new pair
//! ([`crate::matcher::P1Driver::from_origin`] for matches whose first
//! motif edge is the new pair) plus a `W`-bounded sweep (a bounded
//! [`crate::matcher::P1Driver`] run) filtered to matches containing the
//! pair at a later position. Appends
//! can also *retire* instances (a grown edge-set subsumes a previously
//! maximal one), but only inside affected matches, for the same reason.
//!
//! Under **eviction** the affected matches are the *stored* ones touching
//! a drained pair: a post-eviction instance is also a valid pre-eviction
//! instance, so a match gaining a (newly maximal) instance from eviction
//! already had a maximal superset instance before — i.e. it is stored.
//!
//! # Identity stability
//!
//! `PairId`s remap on compaction and series indices shift on eviction, so
//! the context never stores either: matches are keyed by their graph
//! vertex walk and instances are canonicalized into [`DeltaInstance`]
//! (endpoints, boundary timestamps, event count and flow per edge-set,
//! plus a 64-bit hash folded over the full `(time, flow)` event list).
//! Compaction and segment reseals are therefore no-ops for the context.
//!
//! # Allocation discipline
//!
//! The steady state — an append whose affected matches all re-enumerate
//! to their stored instance sets — allocates nothing: the membership
//! check streams borrowed [`InstanceView`]s against the stored canonical
//! forms. Only a genuine change (new or retired instances) rebuilds that
//! match's stored vector. The `alloc_profile` bench gates the quiet path.

use crate::enumerate::{
    enumerate_in_match_bounded, enumerate_window_with_sink_scratch, FnSink, SearchOptions,
    SearchStats,
};
use crate::instance::{InstanceView, StructuralMatch};
use crate::matcher::P1Driver;
use crate::motif::Motif;
use crate::scratch::SearchScratch;
use flowmotif_graph::{Flow, GraphStore, NodeId, TimeWindow, Timestamp};
use flowmotif_util::{FxHashMap, FxHasher};
use std::hash::Hasher;

/// The unbounded window (every timestamp admissible).
const UNBOUNDED: TimeWindow = TimeWindow { start: Timestamp::MIN, end: Timestamp::MAX };

/// One motif edge of a canonicalized instance: graph endpoints plus the
/// shape of its edge-set, stable across `PairId` remaps and series index
/// shifts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaEdge {
    /// Source graph vertex of the pair this motif edge maps to.
    pub from: NodeId,
    /// Target graph vertex.
    pub to: NodeId,
    /// Timestamp of the edge-set's first element.
    pub first_time: Timestamp,
    /// Timestamp of the edge-set's last element.
    pub last_time: Timestamp,
    /// Number of elements aggregated into the set.
    pub count: u32,
    /// Aggregated flow of the set.
    pub flow: Flow,
}

/// A canonicalized motif instance as stored by [`DeltaContext`]:
/// graph-content identity only (no `PairId`s, no series indices), so it
/// survives compaction and eviction, plus a hash folded over the full
/// per-set `(time, flow)` event lists for exact-in-practice equality.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaInstance {
    /// Canonical hash over endpoints and every `(time, flow)` element.
    pub hash: u64,
    /// Instance flow `f(G_I)`.
    pub flow: Flow,
    /// Timestamp of the temporally first element.
    pub first_time: Timestamp,
    /// Timestamp of the temporally last element.
    pub last_time: Timestamp,
    /// Per-motif-edge canonical edge-sets, in label order.
    pub edges: Vec<DeltaEdge>,
}

impl DeltaInstance {
    /// Canonicalizes a borrowed enumerator view (allocates the edge vec).
    pub fn from_view<G: GraphStore>(g: &G, view: &InstanceView<'_>) -> Self {
        let edges = view
            .edge_sets
            .iter()
            .map(|es| {
                let (from, to) = g.pair(es.pair);
                let ev = es.events(g);
                DeltaEdge {
                    from,
                    to,
                    first_time: ev.first().expect("non-empty edge-set").time,
                    last_time: ev.last().expect("non-empty edge-set").time,
                    count: es.len() as u32,
                    flow: es.flow(g),
                }
            })
            .collect();
        Self {
            hash: hash_view(g, view),
            flow: view.flow,
            first_time: view.first_time,
            last_time: view.last_time,
            edges,
        }
    }

    /// Whether this stored instance is the canonical form of `view`
    /// (whose canonical hash is `view_hash`). Allocation-free.
    fn matches_view<G: GraphStore>(&self, g: &G, view: &InstanceView<'_>, view_hash: u64) -> bool {
        if self.hash != view_hash
            || self.flow != view.flow
            || self.first_time != view.first_time
            || self.last_time != view.last_time
            || self.edges.len() != view.edge_sets.len()
        {
            return false;
        }
        self.edges.iter().zip(view.edge_sets.iter()).all(|(de, es)| {
            let (from, to) = g.pair(es.pair);
            let ev = es.events(g);
            de.from == from
                && de.to == to
                && de.count as usize == ev.len()
                && de.first_time == ev.first().expect("non-empty").time
                && de.last_time == ev.last().expect("non-empty").time
                && de.flow == es.flow(g)
        })
    }
}

/// Folds the canonical identity of a view — endpoints plus every
/// `(time, flow)` element of every edge-set — into one 64-bit hash,
/// without allocating.
fn hash_view<G: GraphStore>(g: &G, view: &InstanceView<'_>) -> u64 {
    let mut h = FxHasher::default();
    for es in view.edge_sets {
        let (from, to) = g.pair(es.pair);
        h.write_u32(from);
        h.write_u32(to);
        for e in es.events(g) {
            h.write_u64(e.time as u64);
            h.write_u64(e.flow.to_bits());
        }
        // Length marker so adjacent sets cannot alias each other.
        h.write_u64(u64::MAX);
    }
    h.finish()
}

/// Counters describing one delta evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Structural matches visited by the anchored P1 scan.
    pub matches_scanned: u64,
    /// Matches whose stored instance set actually changed.
    pub matches_changed: u64,
    /// Instances newly entering the standing result (emitted).
    pub instances_emitted: u64,
    /// Previously stored instances retired (subsumed or evicted).
    pub instances_retired: u64,
}

impl DeltaStats {
    /// Merges counters from another evaluation.
    pub fn merge(&mut self, o: &DeltaStats) {
        self.matches_scanned += o.matches_scanned;
        self.matches_changed += o.matches_changed;
        self.instances_emitted += o.instances_emitted;
        self.instances_retired += o.instances_retired;
    }
}

/// The materialized result set of one standing query, maintained by delta
/// evaluation: per structural match (keyed by its stable vertex walk) the
/// canonical instances currently maximal. [`DeltaContext::on_append`] and
/// [`DeltaContext::on_pairs_evicted`] keep it equal to what a full
/// re-query would return — the invariant the `prop_delta_equivalence`
/// suite proves — and report every instance *entering* the set to an
/// emission callback (the push-notification feed).
#[derive(Debug, Default)]
pub struct DeltaContext {
    /// Stored matches with a non-empty instance set, keyed by walk nodes.
    matches: FxHashMap<Vec<NodeId>, Vec<DeltaInstance>>,
    /// Scratch: the walk-node key of the match being refreshed.
    key_buf: Vec<NodeId>,
    /// Scratch: keys of stored matches needing an eviction rescan.
    rescan: Vec<Vec<NodeId>>,
    /// Scratch: a structural match rebuilt from a stored key.
    sm_buf: StructuralMatch,
}

impl DeltaContext {
    /// An empty context (no stored instances).
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every stored match and instance.
    pub fn clear(&mut self) {
        self.matches.clear();
    }

    /// Total instances currently in the standing result set.
    pub fn num_instances(&self) -> usize {
        self.matches.values().map(Vec::len).sum()
    }

    /// Stored matches with at least one instance.
    pub fn num_matches(&self) -> usize {
        self.matches.len()
    }

    /// Visits every stored `(walk nodes, instance)` pair, in unspecified
    /// order (the equivalence suite sorts canonical renderings).
    pub fn for_each_instance(&self, mut f: impl FnMut(&[NodeId], &DeltaInstance)) {
        for (key, insts) in &self.matches {
            for di in insts {
                f(key, di);
            }
        }
    }

    /// Replaces the stored state with a full re-query of `g` (no
    /// emissions) — run once at subscribe time to materialize the view
    /// the deltas then maintain.
    pub fn seed<G: GraphStore>(
        &mut self,
        g: &G,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        opts: SearchOptions,
        scratch: &mut SearchScratch,
        stats: &mut SearchStats,
    ) {
        self.matches.clear();
        let Self { matches, key_buf, .. } = self;
        let walk = motif.path().walk();
        let mut sink = FnSink(|sm: &StructuralMatch, view: InstanceView<'_>| {
            key_buf.clear();
            key_buf.extend(walk.iter().map(|&l| sm.nodes[l as usize]));
            let di = DeltaInstance::from_view(g, &view);
            match matches.get_mut(key_buf.as_slice()) {
                Some(v) => v.push(di),
                None => {
                    matches.insert(key_buf.clone(), vec![di]);
                }
            }
        });
        let run = enumerate_window_with_sink_scratch(
            g,
            motif,
            bounds.unwrap_or(UNBOUNDED),
            opts,
            &mut sink,
            scratch,
        );
        stats.merge(&run);
    }

    /// Delta evaluation for one appended interaction `(from, to, time)`:
    /// refreshes exactly the structural matches that can have changed
    /// (see the module docs) and emits every instance entering the
    /// result set. The graph must already contain the new event.
    #[allow(clippy::too_many_arguments)] // the full standing-query state is the argument
    pub fn on_append<G: GraphStore>(
        &mut self,
        g: &G,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        opts: SearchOptions,
        from: NodeId,
        to: NodeId,
        time: Timestamp,
        scratch: &mut SearchScratch,
        stats: &mut SearchStats,
        mut emit: impl FnMut(&[NodeId], &DeltaInstance),
    ) -> DeltaStats {
        let mut ds = DeltaStats::default();
        if let Some(w) = bounds {
            if time < w.start || time > w.end {
                // The new event is invisible to the bounded query; the
                // bounded P2 results of every match are unchanged.
                return ds;
            }
        }
        let Some(target) = g.pair_id(from, to) else {
            return ds;
        };
        let p2_bounds = bounds.unwrap_or(UNBOUNDED);
        let delta = motif.delta();
        let anchor = TimeWindow::new(
            time.saturating_sub(delta).max(p2_bounds.start),
            time.saturating_add(delta).min(p2_bounds.end),
        );
        let Self { matches, key_buf, sm_buf: _, rescan: _ } = self;
        let SearchScratch { p1, p2, .. } = scratch;
        let walk = motif.path().walk();

        // Fast path: matches whose *first* motif edge is the new pair,
        // anchored directly at the pair's position in the origin's
        // out-list — no sweep at all.
        let pos = (0..g.out_degree(from)).find(|&i| g.out_pair_at(from, i) == target);
        if let Some(pos) = pos {
            P1Driver::new(motif.path())
                .bounds(anchor)
                .from_origin(from, pos..pos + 1)
                .use_index(opts.use_active_index)
                .extension_order(opts.extension_order)
                .run(g, p1, &mut |sm| {
                    ds.matches_scanned += 1;
                    refresh_match(
                        g, motif, walk, sm, p2_bounds, opts, matches, key_buf, p2, stats, &mut ds,
                        &mut emit,
                    );
                });
        }
        // General path: matches using the new pair at a later position.
        // Every pair of such a match is active inside the anchor window
        // (the instance using the new event fits in it), so the bounded
        // indexed sweep visits all of them.
        P1Driver::new(motif.path())
            .bounds(anchor)
            .use_index(opts.use_active_index)
            .extension_order(opts.extension_order)
            .run(g, p1, &mut |sm| {
                if sm.pairs[0] == target || !sm.pairs.contains(&target) {
                    return; // handled by the fast path / unaffected
                }
                ds.matches_scanned += 1;
                refresh_match(
                    g, motif, walk, sm, p2_bounds, opts, matches, key_buf, p2, stats, &mut ds,
                    &mut emit,
                );
            });
        ds
    }

    /// Delta evaluation after events were evicted from `drained` pairs:
    /// re-enumerates the *stored* matches using any drained pair (only
    /// those can gain or lose instances — see the module docs) and emits
    /// instances that became maximal through the eviction.
    #[allow(clippy::too_many_arguments)] // mirrors on_append
    pub fn on_pairs_evicted<G: GraphStore>(
        &mut self,
        g: &G,
        motif: &Motif,
        bounds: Option<TimeWindow>,
        opts: SearchOptions,
        drained: &[(NodeId, NodeId)],
        scratch: &mut SearchScratch,
        stats: &mut SearchStats,
        mut emit: impl FnMut(&[NodeId], &DeltaInstance),
    ) -> DeltaStats {
        let mut ds = DeltaStats::default();
        if drained.is_empty() || self.matches.is_empty() {
            return ds;
        }
        let p2_bounds = bounds.unwrap_or(UNBOUNDED);
        self.rescan.clear();
        for key in self.matches.keys() {
            let uses_drained =
                key.windows(2).any(|w| drained.iter().any(|&(u, v)| u == w[0] && v == w[1]));
            if uses_drained {
                self.rescan.push(key.clone());
            }
        }
        let Self { matches, key_buf, rescan, sm_buf } = self;
        let SearchScratch { p2, .. } = scratch;
        let walk = motif.path().walk();
        'keys: for key in rescan.drain(..) {
            ds.matches_scanned += 1;
            // Rebuild the structural match from the stable walk; a pair
            // compacted away means the match is structurally gone.
            sm_buf.nodes.clear();
            sm_buf.nodes.resize(motif.path().num_nodes(), 0);
            sm_buf.pairs.clear();
            for (i, &l) in walk.iter().enumerate() {
                sm_buf.nodes[l as usize] = key[i];
            }
            for w in key.windows(2) {
                match g.pair_id(w[0], w[1]) {
                    Some(p) => sm_buf.pairs.push(p),
                    None => {
                        if let Some(old) = matches.remove(key.as_slice()) {
                            ds.matches_changed += 1;
                            ds.instances_retired += old.len() as u64;
                        }
                        continue 'keys;
                    }
                }
            }
            refresh_match(
                g, motif, walk, sm_buf, p2_bounds, opts, matches, key_buf, p2, stats, &mut ds,
                &mut emit,
            );
        }
        ds
    }
}

/// Re-enumerates one structural match and reconciles the stored instance
/// set: a two-pass scheme whose first pass only *checks* (allocation-free
/// when nothing changed) and whose second pass rebuilds the stored vector
/// and emits the genuinely new instances.
#[allow(clippy::too_many_arguments)] // internal plumbing of DeltaContext
fn refresh_match<G: GraphStore>(
    g: &G,
    motif: &Motif,
    walk: &[u8],
    sm: &StructuralMatch,
    p2_bounds: TimeWindow,
    opts: SearchOptions,
    matches: &mut FxHashMap<Vec<NodeId>, Vec<DeltaInstance>>,
    key_buf: &mut Vec<NodeId>,
    p2: &mut crate::enumerate::EnumerationScratch,
    stats: &mut SearchStats,
    ds: &mut DeltaStats,
    emit: &mut impl FnMut(&[NodeId], &DeltaInstance),
) {
    key_buf.clear();
    key_buf.extend(walk.iter().map(|&l| sm.nodes[l as usize]));
    let stored: &[DeltaInstance] = matches.get(key_buf.as_slice()).map_or(&[], Vec::as_slice);
    // Pass 1: count how many enumerated instances are already stored. If
    // all are and the counts line up, the sets are equal — done, and not
    // a single byte was allocated.
    let (mut total, mut known) = (0usize, 0usize);
    {
        let mut sink = FnSink(|_sm: &StructuralMatch, view: InstanceView<'_>| {
            total += 1;
            let h = hash_view(g, &view);
            if stored.iter().any(|d| d.matches_view(g, &view, h)) {
                known += 1;
            }
        });
        enumerate_in_match_bounded(g, motif, sm, p2_bounds, opts, &mut sink, stats, p2);
    }
    if known == total && total == stored.len() {
        return;
    }
    ds.matches_changed += 1;
    // Pass 2: something changed — rebuild the stored set, emitting every
    // instance that was not previously stored. P2 is deterministic, so
    // the two passes see the same instances.
    let old = matches.remove(key_buf.as_slice()).unwrap_or_default();
    let mut fresh: Vec<DeltaInstance> = Vec::with_capacity(total);
    {
        let mut sink = FnSink(|_sm: &StructuralMatch, view: InstanceView<'_>| {
            let h = hash_view(g, &view);
            let di = DeltaInstance::from_view(g, &view);
            if !old.iter().any(|d| d.matches_view(g, &view, h)) {
                ds.instances_emitted += 1;
                emit(key_buf, &di);
            }
            fresh.push(di);
        });
        let mut resweep = SearchStats::default();
        enumerate_in_match_bounded(g, motif, sm, p2_bounds, opts, &mut sink, &mut resweep, p2);
    }
    ds.instances_retired += old.iter().filter(|o| !fresh.contains(o)).count() as u64;
    if !fresh.is_empty() {
        matches.insert(key_buf.clone(), fresh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use flowmotif_graph::GraphBuilder;

    fn canonicalize(
        g: &flowmotif_graph::TimeSeriesGraph,
        groups: &[(StructuralMatch, Vec<crate::MotifInstance>)],
    ) -> Vec<String> {
        let mut out: Vec<String> = groups
            .iter()
            .flat_map(|(sm, v)| {
                v.iter().map(move |i| {
                    format!(
                        "{:?} {:?}",
                        sm.walk_nodes(g),
                        DeltaInstance::from_view(g, &i.as_view())
                    )
                })
            })
            .collect();
        out.sort();
        out
    }

    fn dump(ctx: &DeltaContext) -> Vec<String> {
        let mut out = Vec::new();
        ctx.for_each_instance(|key, di| out.push(format!("{key:?} {di:?}")));
        out.sort();
        out
    }

    #[test]
    fn incremental_appends_track_full_requery() {
        // Stream the paper's Fig. 2 example edge by edge; after every
        // append the context must equal a full re-query.
        let edges: [(NodeId, NodeId, Timestamp, f64); 10] = [
            (3, 2, 1, 2.0),
            (3, 2, 3, 5.0),
            (2, 0, 10, 10.0),
            (3, 0, 11, 10.0),
            (0, 1, 13, 5.0),
            (0, 1, 15, 7.0),
            (1, 2, 18, 20.0),
            (2, 3, 19, 5.0),
            (2, 3, 21, 4.0),
            (1, 3, 23, 7.0),
        ];
        let motif = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        let mut ctx = DeltaContext::new();
        let mut scratch = SearchScratch::default();
        let mut stats = SearchStats::default();
        for n in 1..=edges.len() {
            let mut b = GraphBuilder::new();
            b.extend_interactions(edges[..n].iter().copied());
            let g = b.build_time_series_graph();
            let (u, v, t, _) = edges[n - 1];
            ctx.on_append(
                &g,
                &motif,
                None,
                SearchOptions::default(),
                u,
                v,
                t,
                &mut scratch,
                &mut stats,
                |_, _| {},
            );
            let (groups, _) = crate::enumerate_all(&g, &motif);
            assert_eq!(dump(&ctx), canonicalize(&g, &groups), "prefix {n}");
        }
        // The per-match P2 runs accumulate into the caller's SearchStats
        // (structural_matches is a P1-driver counter and stays zero here).
        assert!(stats.windows_processed > 0);
        assert!(stats.instances_emitted > 0);
    }

    #[test]
    fn emission_happens_once_per_instance() {
        let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let mut ctx = DeltaContext::new();
        let mut scratch = SearchScratch::default();
        let mut stats = SearchStats::default();
        let mut emitted = 0usize;
        let edges: [(NodeId, NodeId, Timestamp, f64); 2] = [(0, 1, 1, 2.0), (1, 2, 2, 3.0)];
        for n in 1..=2 {
            let mut b = GraphBuilder::new();
            b.extend_interactions(edges[..n].iter().copied());
            let g = b.build_time_series_graph();
            let (u, v, t, _) = edges[n - 1];
            ctx.on_append(
                &g,
                &motif,
                None,
                SearchOptions::default(),
                u,
                v,
                t,
                &mut scratch,
                &mut stats,
                |_, _| emitted += 1,
            );
        }
        assert_eq!(emitted, 1, "one instance, announced exactly once");
        assert_eq!(ctx.num_instances(), 1);
        // Re-processing the same append finds everything unchanged.
        let mut b = GraphBuilder::new();
        b.extend_interactions(edges);
        let g = b.build_time_series_graph();
        let ds = ctx.on_append(
            &g,
            &motif,
            None,
            SearchOptions::default(),
            1,
            2,
            2,
            &mut scratch,
            &mut stats,
            |_, _| emitted += 1,
        );
        assert_eq!(emitted, 1);
        assert_eq!(ds.matches_changed, 0);
        assert!(ds.matches_scanned >= 1);
    }

    #[test]
    fn growth_replaces_subsumed_instance() {
        // Appending a second e2 element within δ subsumes the previous
        // maximal instance: the enlarged instance is emitted, the old one
        // retired, and the view matches a re-query.
        let motif = catalog::by_name("M(3,2)", 100, 0.0).unwrap();
        let mut ctx = DeltaContext::new();
        let mut scratch = SearchScratch::default();
        let mut stats = SearchStats::default();
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 10i64, 1.0), (1, 2, 12, 2.0)]);
        let g = b.build_time_series_graph();
        ctx.seed(&g, &motif, None, SearchOptions::default(), &mut scratch, &mut stats);
        assert_eq!(ctx.num_instances(), 1);
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 10i64, 1.0), (1, 2, 12, 2.0), (1, 2, 30, 4.0)]);
        let g = b.build_time_series_graph();
        let mut emitted = Vec::new();
        let ds = ctx.on_append(
            &g,
            &motif,
            None,
            SearchOptions::default(),
            1,
            2,
            30,
            &mut scratch,
            &mut stats,
            |key, di| emitted.push((key.to_vec(), di.clone())),
        );
        assert_eq!(ds.instances_emitted, 1);
        assert_eq!(ds.instances_retired, 1);
        assert_eq!(ctx.num_instances(), 1);
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].1.edges[1].count, 2, "the enlarged e2 set");
        let (groups, _) = crate::enumerate_all(&g, &motif);
        assert_eq!(dump(&ctx), canonicalize(&g, &groups));
    }

    #[test]
    fn eviction_rescan_tracks_requery() {
        // Evicting the early e2 element can only change stored matches;
        // the rescan keeps the view equal to a re-query on the survivor.
        let motif = catalog::by_name("M(3,2)", 100, 0.0).unwrap();
        let mut ctx = DeltaContext::new();
        let mut scratch = SearchScratch::default();
        let mut stats = SearchStats::default();
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 10i64, 1.0), (1, 2, 12, 2.0), (1, 2, 30, 4.0)]);
        let g = b.build_time_series_graph();
        ctx.seed(&g, &motif, None, SearchOptions::default(), &mut scratch, &mut stats);
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 10i64, 1.0), (1, 2, 30, 4.0)]);
        let g = b.build_time_series_graph();
        let ds = ctx.on_pairs_evicted(
            &g,
            &motif,
            None,
            SearchOptions::default(),
            &[(1, 2)],
            &mut scratch,
            &mut stats,
            |_, _| {},
        );
        assert_eq!(ds.matches_scanned, 1);
        let (groups, _) = crate::enumerate_all(&g, &motif);
        assert_eq!(dump(&ctx), canonicalize(&g, &groups));
    }

    #[test]
    fn bounded_subscription_ignores_out_of_window_appends() {
        let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let mut ctx = DeltaContext::new();
        let mut scratch = SearchScratch::default();
        let mut stats = SearchStats::default();
        let bounds = Some(TimeWindow::new(0, 20));
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 10i64, 1.0), (1, 2, 12, 2.0), (1, 2, 50, 4.0)]);
        let g = b.build_time_series_graph();
        let ds = ctx.on_append(
            &g,
            &motif,
            bounds,
            SearchOptions::default(),
            1,
            2,
            50,
            &mut scratch,
            &mut stats,
            |_, _| panic!("out-of-window append must not emit"),
        );
        assert_eq!(ds.matches_scanned, 0);
    }
}
