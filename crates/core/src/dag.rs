//! DAG-shaped flow motifs — the paper's future-work generalization (§7):
//! "generalize the definition of flow motifs to capture other graph
//! structures besides paths (e.g., directed acyclic graphs with forks and
//! joins)".
//!
//! # Semantics
//!
//! A [`DagMotif`] is a connected directed motif graph whose edges carry
//! unique labels `1..m`. Order constraints follow Def. 3.2's wording,
//! applied to *adjacent* edges: for motif edges `a = (u, v)` and
//! `b = (v, w)` with `l(a) < l(b)`, every element instantiating `a` is
//! strictly before every element instantiating `b` — flow must arrive at
//! a vertex before it can leave it. Fork edges (same source) and join
//! edges (same target) are mutually unconstrained. `δ` bounds the overall
//! span and `ϕ` lower-bounds every edge-set's aggregated flow, exactly as
//! for path motifs. Maximality is Def. 3.3 verbatim.
//!
//! # Algorithm and complexity
//!
//! This is an exploratory extension, *not* the paper's optimized
//! Algorithm 1: structural matches are found by a DFS over edges in label
//! order; within each match, windows are anchored at every element
//! timestamp and bracket splits are enumerated per edge in label order,
//! with candidates checked by a generalized validity/maximality filter
//! and deduplicated. Worst-case exponential in `m`, intended for the
//! small motifs (≤ 6 edges) the flow-motif setting targets. On walk-
//! shaped motifs it provably returns exactly the output of the optimized
//! path algorithm (asserted by the cross-validation tests).

use crate::instance::{EdgeSet, MotifInstance, StructuralMatch};
use flowmotif_graph::{Flow, NodeId, TimeSeriesGraph, Timestamp};
use flowmotif_util::FxHashSet;

/// Errors raised when building a [`DagMotif`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagMotifError {
    /// A motif needs at least one edge.
    NoEdges,
    /// Edge endpoints must differ.
    SelfLoop(usize),
    /// The same directed pair appears twice (edge labels are unique).
    RepeatedEdge(usize),
    /// Every edge after the first must share a vertex with an earlier
    /// edge (connected, matchable in label order).
    Disconnected(usize),
    /// Vertex labels must be dense `0..n` in order of first appearance.
    NonCanonicalLabels(usize),
}

impl std::fmt::Display for DagMotifError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagMotifError::NoEdges => write!(f, "DAG motif needs at least one edge"),
            DagMotifError::SelfLoop(i) => write!(f, "edge {i} is a self-loop"),
            DagMotifError::RepeatedEdge(i) => write!(f, "edge {i} repeats a directed pair"),
            DagMotifError::Disconnected(i) => {
                write!(f, "edge {i} shares no vertex with any earlier edge")
            }
            DagMotifError::NonCanonicalLabels(i) => {
                write!(f, "edge {i} uses a vertex label out of first-appearance order")
            }
        }
    }
}

impl std::error::Error for DagMotifError {}

/// A DAG-shaped flow motif: labeled edges `(source, target)` in label
/// order, plus the usual `δ` and `ϕ`.
#[derive(Debug, Clone, PartialEq)]
pub struct DagMotif {
    edges: Vec<(u8, u8)>,
    delta: Timestamp,
    phi: Flow,
    /// `order[b]` lists the edges `a < b` that must temporally precede
    /// edge `b` (a's target == b's source).
    order: Vec<Vec<usize>>,
}

impl DagMotif {
    /// Builds and validates a DAG motif from its labeled edge list.
    pub fn new(edges: Vec<(u8, u8)>, delta: Timestamp, phi: Flow) -> Result<Self, DagMotifError> {
        if edges.is_empty() {
            return Err(DagMotifError::NoEdges);
        }
        let mut next_label = 0u8;
        let seen_vertex = |l: u8, next: &mut u8| -> bool {
            if l > *next {
                return false;
            }
            if l == *next {
                *next += 1;
            }
            true
        };
        for (i, &(u, v)) in edges.iter().enumerate() {
            if u == v {
                return Err(DagMotifError::SelfLoop(i));
            }
            if edges[..i].contains(&(u, v)) {
                return Err(DagMotifError::RepeatedEdge(i));
            }
            if !seen_vertex(u, &mut next_label) || !seen_vertex(v, &mut next_label) {
                return Err(DagMotifError::NonCanonicalLabels(i));
            }
            if i > 0 {
                let touches = edges[..i].iter().any(|&(a, b)| a == u || a == v || b == u || b == v);
                if !touches {
                    return Err(DagMotifError::Disconnected(i));
                }
            }
        }
        let order = (0..edges.len())
            .map(|b| (0..b).filter(|&a| edges[a].1 == edges[b].0).collect::<Vec<_>>())
            .collect();
        Ok(Self { edges, delta, phi, order })
    }

    /// Builds the walk-shaped DAG motif equivalent to a spanning path.
    pub fn from_path(
        path: &crate::motif::SpanningPath,
        delta: Timestamp,
        phi: Flow,
    ) -> Result<Self, DagMotifError> {
        Self::new(path.edges().collect(), delta, phi)
    }

    /// The labeled edges.
    pub fn edges(&self) -> &[(u8, u8)] {
        &self.edges
    }

    /// Number of motif edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of motif vertices.
    pub fn num_nodes(&self) -> usize {
        self.edges.iter().map(|&(u, v)| u.max(v) as usize + 1).max().unwrap_or(0)
    }

    /// Duration constraint δ.
    pub fn delta(&self) -> Timestamp {
        self.delta
    }

    /// Flow constraint ϕ.
    pub fn phi(&self) -> Flow {
        self.phi
    }

    /// Labels of the edges that must temporally precede edge `b`.
    pub fn predecessors(&self, b: usize) -> &[usize] {
        &self.order[b]
    }
}

/// Finds all structural matches of a DAG motif: vertex-injective
/// mappings with one `G_T` pair per motif edge.
pub fn dag_structural_matches(g: &TimeSeriesGraph, motif: &DagMotif) -> Vec<StructuralMatch> {
    let n = motif.num_nodes();
    let mut out = Vec::new();
    let mut assign: Vec<NodeId> = vec![0; n];
    let mut assigned = vec![false; n];
    let mut pairs = Vec::with_capacity(motif.num_edges());
    dag_match_dfs(g, motif, 0, &mut assign, &mut assigned, &mut pairs, &mut out);
    out
}

fn dag_match_dfs(
    g: &TimeSeriesGraph,
    motif: &DagMotif,
    k: usize,
    assign: &mut Vec<NodeId>,
    assigned: &mut Vec<bool>,
    pairs: &mut Vec<u32>,
    out: &mut Vec<StructuralMatch>,
) {
    if k == motif.num_edges() {
        out.push(StructuralMatch { nodes: assign.clone(), pairs: pairs.clone() });
        return;
    }
    let (su, sv) = motif.edges()[k];
    let (su, sv) = (su as usize, sv as usize);
    let injective_ok = |assign: &[NodeId], assigned: &[bool], label: usize, node: NodeId| {
        !assign
            .iter()
            .zip(assigned.iter())
            .enumerate()
            .any(|(l, (&a, &set))| set && l != label && a == node)
    };
    match (assigned[su], assigned[sv]) {
        (true, true) => {
            if let Some(p) = g.pair_id(assign[su], assign[sv]) {
                pairs.push(p);
                dag_match_dfs(g, motif, k + 1, assign, assigned, pairs, out);
                pairs.pop();
            }
        }
        (true, false) => {
            for p in g.out_pair_range(assign[su]) {
                let v = g.pair(p).1;
                if !injective_ok(assign, assigned, sv, v) {
                    continue;
                }
                assign[sv] = v;
                assigned[sv] = true;
                pairs.push(p);
                dag_match_dfs(g, motif, k + 1, assign, assigned, pairs, out);
                pairs.pop();
                assigned[sv] = false;
            }
        }
        (false, true) => {
            // Scan in-edges of the mapped target: pairs are CSR by source,
            // so walk all pairs of all nodes... instead iterate over
            // candidate sources by checking pair existence per node.
            // Graphs here are small-motif workloads; a reverse index would
            // be the production choice.
            for u in 0..g.num_nodes() as NodeId {
                if !injective_ok(assign, assigned, su, u) {
                    continue;
                }
                if let Some(p) = g.pair_id(u, assign[sv]) {
                    assign[su] = u;
                    assigned[su] = true;
                    pairs.push(p);
                    dag_match_dfs(g, motif, k + 1, assign, assigned, pairs, out);
                    pairs.pop();
                    assigned[su] = false;
                }
            }
        }
        (false, false) => {
            // First edge only (later edges always touch an assigned
            // vertex, enforced by DagMotif validation).
            debug_assert_eq!(k, 0);
            for u in 0..g.num_nodes() as NodeId {
                for p in g.out_pair_range(u) {
                    let v = g.pair(p).1;
                    if u == v {
                        continue;
                    }
                    assign[su] = u;
                    assigned[su] = true;
                    if !injective_ok(assign, assigned, sv, v) {
                        assigned[su] = false;
                        continue;
                    }
                    assign[sv] = v;
                    assigned[sv] = true;
                    pairs.push(p);
                    dag_match_dfs(g, motif, k + 1, assign, assigned, pairs, out);
                    pairs.pop();
                    assigned[su] = false;
                    assigned[sv] = false;
                }
            }
        }
    }
}

/// Checks Def. 3.2 (DAG variant) for a candidate instance.
fn dag_instance_valid(g: &TimeSeriesGraph, motif: &DagMotif, inst: &MotifInstance) -> bool {
    let mut t_min = Timestamp::MAX;
    let mut t_max = Timestamp::MIN;
    for es in &inst.edge_sets {
        if es.is_empty() {
            return false;
        }
        if es.flow(g) < motif.phi() {
            return false;
        }
        let ev = es.events(g);
        t_min = t_min.min(ev.first().expect("non-empty").time);
        t_max = t_max.max(ev.last().expect("non-empty").time);
    }
    if t_max - t_min > motif.delta() {
        return false;
    }
    for b in 0..motif.num_edges() {
        let first_b = inst.edge_sets[b].events(g).first().expect("non-empty").time;
        for &a in motif.predecessors(b) {
            let last_a = inst.edge_sets[a].events(g).last().expect("non-empty").time;
            if first_b <= last_a {
                return false;
            }
        }
    }
    true
}

/// Checks Def. 3.3 (DAG variant): no series element can join any edge-set
/// while keeping the instance valid.
#[allow(clippy::needless_range_loop)]
fn dag_instance_maximal(g: &TimeSeriesGraph, motif: &DagMotif, inst: &MotifInstance) -> bool {
    let m = motif.num_edges();
    // successors[a] = edges whose elements must come after edge a's.
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); m];
    for b in 0..m {
        for &a in motif.predecessors(b) {
            successors[a].push(b);
        }
    }
    for k in 0..m {
        let es = &inst.edge_sets[k];
        let series = g.series(es.pair);
        let lower = motif
            .predecessors(k)
            .iter()
            .map(|&a| inst.edge_sets[a].events(g).last().expect("non-empty").time)
            .max();
        let upper = successors[k]
            .iter()
            .map(|&b| inst.edge_sets[b].events(g).first().expect("non-empty").time)
            .min();
        for (idx, ev) in series.events().iter().enumerate() {
            if idx >= es.start as usize && idx < es.end as usize {
                continue;
            }
            if lower.is_some_and(|lo| ev.time <= lo) {
                continue;
            }
            if upper.is_some_and(|hi| ev.time >= hi) {
                continue;
            }
            let new_min = inst.first_time.min(ev.time);
            let new_max = inst.last_time.max(ev.time);
            if new_max - new_min <= motif.delta() {
                return false; // addable element found
            }
        }
    }
    true
}

/// Enumerates the maximal instances of a DAG motif inside one structural
/// match. Exponential reference algorithm; see the module docs.
pub fn dag_instances_in_match(
    g: &TimeSeriesGraph,
    motif: &DagMotif,
    sm: &StructuralMatch,
) -> Vec<MotifInstance> {
    let m = motif.num_edges();
    let series: Vec<_> = sm.pairs.iter().map(|&p| g.series(p)).collect();
    if series.iter().any(|s| s.is_empty()) {
        return Vec::new();
    }
    // Candidate windows: anchored at every element timestamp.
    let mut anchors: Vec<Timestamp> =
        series.iter().flat_map(|s| s.events().iter().map(|e| e.time)).collect();
    anchors.sort_unstable();
    anchors.dedup();

    let mut seen: FxHashSet<Vec<EdgeSet>> = FxHashSet::default();
    let mut out = Vec::new();
    for &anchor in &anchors {
        let end = anchor.saturating_add(motif.delta());
        // splits[k] = (first element idx, last element idx exclusive) per edge.
        let mut chosen: Vec<EdgeSet> = Vec::with_capacity(m);
        assemble(g, motif, sm, &series, anchor, end, 0, &mut chosen, &mut seen, &mut out);
    }
    out
}

/// Recursive bracket assignment in label order: edge `k` takes all its
/// elements in `(lo_k, split_k]`, where `lo_k` is the max split of its
/// order-predecessors (window start for source edges) and `split_k` is
/// the timestamp of one of its elements (or the window end).
#[allow(clippy::too_many_arguments)]
fn assemble(
    g: &TimeSeriesGraph,
    motif: &DagMotif,
    sm: &StructuralMatch,
    series: &[&flowmotif_graph::InteractionSeries],
    anchor: Timestamp,
    end: Timestamp,
    k: usize,
    chosen: &mut Vec<EdgeSet>,
    seen: &mut FxHashSet<Vec<EdgeSet>>,
    out: &mut Vec<MotifInstance>,
) {
    let m = motif.num_edges();
    if k == m {
        let mut t_min = Timestamp::MAX;
        let mut t_max = Timestamp::MIN;
        for es in chosen.iter() {
            let ev = es.events(g);
            t_min = t_min.min(ev.first().expect("non-empty").time);
            t_max = t_max.max(ev.last().expect("non-empty").time);
        }
        let flow = chosen.iter().map(|es| es.flow(g)).fold(f64::INFINITY, f64::min);
        let inst =
            MotifInstance { edge_sets: chosen.clone(), flow, first_time: t_min, last_time: t_max };
        if dag_instance_valid(g, motif, &inst)
            && dag_instance_maximal(g, motif, &inst)
            && seen.insert(inst.edge_sets.clone())
        {
            out.push(inst);
        }
        return;
    }
    let s = series[k];
    // Lower bound: strictly after every predecessor's last chosen element.
    let lo = motif
        .predecessors(k)
        .iter()
        .map(|&a| {
            let es = &chosen[a];
            s_time_last(g, es)
        })
        .max();
    let start = match lo {
        Some(t) => s.idx_after(t),
        None => s.idx_at_or_after(anchor),
    };
    let stop = s.idx_after(end);
    if start >= stop {
        return;
    }
    // Choose the split: each possible last element, plus "everything".
    for split_idx in start..stop {
        chosen.push(EdgeSet {
            pair: sm.pairs[k],
            start: start as u32,
            end: (split_idx + 1) as u32,
        });
        assemble(g, motif, sm, series, anchor, end, k + 1, chosen, seen, out);
        chosen.pop();
    }
}

fn s_time_last(g: &TimeSeriesGraph, es: &EdgeSet) -> Timestamp {
    es.events(g).last().expect("non-empty").time
}

/// Enumerates all maximal DAG-motif instances in the graph, grouped by
/// structural match.
pub fn dag_enumerate(
    g: &TimeSeriesGraph,
    motif: &DagMotif,
) -> Vec<(StructuralMatch, Vec<MotifInstance>)> {
    dag_structural_matches(g, motif)
        .into_iter()
        .filter_map(|sm| {
            let insts = dag_instances_in_match(g, motif, &sm);
            (!insts.is_empty()).then_some((sm, insts))
        })
        .collect()
}

/// Counts all maximal DAG-motif instances.
pub fn dag_count(g: &TimeSeriesGraph, motif: &DagMotif) -> u64 {
    dag_enumerate(g, motif).iter().map(|(_, v)| v.len() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::enumerate::enumerate_all;
    use flowmotif_graph::GraphBuilder;
    use flowmotif_util::rng::StdRng;
    use flowmotif_util::rng::{RngExt, SeedableRng};

    #[test]
    fn validation() {
        assert_eq!(DagMotif::new(vec![], 1, 0.0), Err(DagMotifError::NoEdges));
        assert_eq!(DagMotif::new(vec![(0, 0)], 1, 0.0), Err(DagMotifError::SelfLoop(0)));
        assert_eq!(
            DagMotif::new(vec![(0, 1), (0, 1)], 1, 0.0),
            Err(DagMotifError::RepeatedEdge(1))
        );
        assert_eq!(
            DagMotif::new(vec![(0, 1), (2, 3)], 1, 0.0),
            Err(DagMotifError::Disconnected(1))
        );
        assert_eq!(DagMotif::new(vec![(0, 2)], 1, 0.0), Err(DagMotifError::NonCanonicalLabels(0)));
        // Fork: 0 -> 1, then 1 -> 2 and 1 -> 3.
        let fork = DagMotif::new(vec![(0, 1), (1, 2), (1, 3)], 10, 0.0).unwrap();
        assert_eq!(fork.num_nodes(), 4);
        assert_eq!(fork.predecessors(1), &[0]);
        assert_eq!(fork.predecessors(2), &[0]);
        // Join: 0 -> 2 and 1 -> 2, then 2 -> 3.
        let join = DagMotif::new(vec![(0, 1), (2, 1), (1, 3)], 10, 0.0).unwrap();
        assert_eq!(join.predecessors(2), &[0, 1]);
    }

    fn random_graph(nodes: u32, edges: usize, seed: u64) -> TimeSeriesGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        for _ in 0..edges {
            let u = rng.random_range(0..nodes);
            let mut v = rng.random_range(0..nodes);
            while v == u {
                v = rng.random_range(0..nodes);
            }
            b.add_interaction(u, v, rng.random_range(0..100), rng.random_range(1..8) as f64);
        }
        b.build_time_series_graph()
    }

    #[test]
    fn walk_shaped_dag_equals_path_algorithm() {
        // On walk-shaped motifs the DAG semantics coincide with the
        // paper's; the outputs must match the optimized algorithm exactly.
        let g = random_graph(7, 45, 11);
        for name in ["M(3,2)", "M(3,3)", "M(4,3)"] {
            for (delta, phi) in [(20i64, 0.0), (20, 4.0), (50, 2.0)] {
                let path_motif = catalog::by_name(name, delta, phi).unwrap();
                let dag = DagMotif::from_path(path_motif.path(), delta, phi).unwrap();
                let (groups, _) = enumerate_all(&g, &path_motif);
                let mut a: Vec<String> = groups
                    .iter()
                    .flat_map(|(sm, v)| {
                        v.iter().map(move |i| format!("{:?}|{:?}", sm.pairs, i.edge_sets))
                    })
                    .collect();
                let mut b: Vec<String> = dag_enumerate(&g, &dag)
                    .iter()
                    .flat_map(|(sm, v)| {
                        v.iter().map(move |i| format!("{:?}|{:?}", sm.pairs, i.edge_sets))
                    })
                    .collect();
                a.sort();
                b.sort();
                assert_eq!(a, b, "{name} δ={delta} ϕ={phi}");
            }
        }
    }

    #[test]
    fn fork_motif_fixture() {
        // 0 pays 1; 1 then splits the money to 2 and 3 (classic layering
        // fan-out). Fork edges have no mutual order.
        let mut b = GraphBuilder::new();
        b.extend_interactions([
            (0u32, 1u32, 10i64, 10.0),
            (1, 2, 12, 6.0),
            (1, 3, 11, 4.0), // before the 1->2 transfer: allowed (fork)
        ]);
        let g = b.build_time_series_graph();
        let fork = DagMotif::new(vec![(0, 1), (1, 2), (1, 3)], 10, 0.0).unwrap();
        let groups = dag_enumerate(&g, &fork);
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        // The fork's two branches are automorphic, so the same subgraph
        // yields two structural matches — exactly like the paper counting
        // each triangle in three rotations (Fig. 6).
        assert_eq!(total, 2);
        for (_, insts) in &groups {
            assert_eq!(insts[0].flow, 4.0);
            assert_eq!(insts[0].span(), 2);
        }
        // With ϕ = 5 the weak branch kills it.
        let strict = DagMotif::new(vec![(0, 1), (1, 2), (1, 3)], 10, 5.0).unwrap();
        assert_eq!(dag_count(&g, &strict), 0);
    }

    #[test]
    fn join_motif_fixture() {
        // 0 and 2 both pay 1; 1 forwards the total to 3. Both inputs must
        // precede the output; their mutual order is free.
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 10i64, 3.0), (2, 1, 12, 4.0), (1, 3, 15, 7.0)]);
        let g = b.build_time_series_graph();
        let join = DagMotif::new(vec![(0, 1), (2, 1), (1, 3)], 10, 3.0).unwrap();
        // Two automorphic matches (the join's two inputs are symmetric).
        assert_eq!(dag_count(&g, &join), 2);
        // Moving the output before one input breaks the order constraint.
        let mut b = GraphBuilder::new();
        b.extend_interactions([
            (0u32, 1u32, 10i64, 3.0),
            (2, 1, 12, 4.0),
            (1, 3, 11, 7.0), // before the 2 -> 1 input
        ]);
        let g = b.build_time_series_graph();
        assert_eq!(dag_count(&g, &join), 0);
    }

    #[test]
    fn fork_order_is_genuinely_unconstrained() {
        // Two fork branches interleaved in time: still one instance, and
        // both branches aggregate their own multi-edges.
        let mut b = GraphBuilder::new();
        b.extend_interactions([
            (0u32, 1u32, 1i64, 8.0),
            (1, 2, 2, 1.0),
            (1, 3, 3, 2.0),
            (1, 2, 4, 1.0),
            (1, 3, 5, 2.0),
        ]);
        let g = b.build_time_series_graph();
        let fork = DagMotif::new(vec![(0, 1), (1, 2), (1, 3)], 10, 2.0).unwrap();
        let groups = dag_enumerate(&g, &fork);
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 2, "one instance per automorphic mapping");
        for (_, insts) in &groups {
            // Branch to 2 aggregates 1+1=2, branch to 3 aggregates 2+2=4.
            assert_eq!(insts[0].flow, 2.0);
        }
    }

    #[test]
    fn dag_instances_are_maximal() {
        let g = random_graph(6, 40, 3);
        let fork = DagMotif::new(vec![(0, 1), (1, 2), (1, 3)], 25, 0.0).unwrap();
        for (_, insts) in dag_enumerate(&g, &fork) {
            for inst in &insts {
                assert!(dag_instance_valid(&g, &fork, inst));
                assert!(dag_instance_maximal(&g, &fork, inst));
            }
        }
    }
}
