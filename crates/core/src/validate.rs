//! Independent validity and maximality checkers (paper Defs. 3.2 / 3.3),
//! plus a brute-force reference enumerator.
//!
//! These are deliberately written *against the definitions*, not against
//! the search algorithm, so the property tests can catch agreement bugs:
//! the checkers walk raw event lists with no window/prefix machinery.

use crate::instance::{MotifInstance, StructuralMatch};
use crate::motif::Motif;
use flowmotif_graph::{TimeSeriesGraph, Timestamp};

/// Checks that `sm` is a structural match of the motif in `g`:
/// edge endpoints consistent with the vertex mapping, and the mapping
/// injective.
pub fn check_structural_match(
    g: &TimeSeriesGraph,
    motif: &Motif,
    sm: &StructuralMatch,
) -> Result<(), String> {
    let walk = motif.path().walk();
    if sm.pairs.len() != motif.num_edges() {
        return Err(format!(
            "match has {} pairs, motif has {} edges",
            sm.pairs.len(),
            motif.num_edges()
        ));
    }
    if sm.nodes.len() != motif.num_nodes() {
        return Err(format!(
            "match maps {} nodes, motif has {}",
            sm.nodes.len(),
            motif.num_nodes()
        ));
    }
    for i in 0..sm.nodes.len() {
        for j in i + 1..sm.nodes.len() {
            if sm.nodes[i] == sm.nodes[j] {
                return Err(format!("mapping not injective: motif nodes {i} and {j}"));
            }
        }
    }
    for (k, &p) in sm.pairs.iter().enumerate() {
        let (u, v) = g.pair(p);
        let (mu, mv) = (walk[k] as usize, walk[k + 1] as usize);
        if sm.nodes[mu] != u || sm.nodes[mv] != v {
            return Err(format!(
                "edge {k} maps to pair ({u},{v}), expected ({},{})",
                sm.nodes[mu], sm.nodes[mv]
            ));
        }
    }
    Ok(())
}

/// Checks that `inst` is a valid instance per Def. 3.2: non-empty
/// edge-sets on the match's pairs, strictly time-respecting across
/// consecutive motif edges, spanning at most `δ`, and each set aggregating
/// at least `ϕ`.
pub fn check_instance_valid(
    g: &TimeSeriesGraph,
    motif: &Motif,
    sm: &StructuralMatch,
    inst: &MotifInstance,
) -> Result<(), String> {
    if inst.edge_sets.len() != motif.num_edges() {
        return Err("edge-set count != motif edge count".into());
    }
    let mut t_min = Timestamp::MAX;
    let mut t_max = Timestamp::MIN;
    let mut prev_last: Option<Timestamp> = None;
    for (k, es) in inst.edge_sets.iter().enumerate() {
        if es.pair != sm.pairs[k] {
            return Err(format!("edge {k} uses pair {} instead of {}", es.pair, sm.pairs[k]));
        }
        let series = g.series(es.pair);
        if es.end as usize > series.len() || es.start >= es.end {
            return Err(format!("edge {k} has an empty or out-of-bounds element range"));
        }
        let events = es.events(g);
        let first = events.first().expect("non-empty").time;
        let last = events.last().expect("non-empty").time;
        t_min = t_min.min(first);
        t_max = t_max.max(last);
        if let Some(pl) = prev_last {
            if first <= pl {
                return Err(format!(
                    "edge {k} starts at {first}, not strictly after previous edge's last {pl}"
                ));
            }
        }
        prev_last = Some(last);
        let flow = es.flow(g);
        if flow < motif.phi() {
            return Err(format!("edge {k} aggregates {flow} < ϕ = {}", motif.phi()));
        }
    }
    if t_max - t_min > motif.delta() {
        return Err(format!("span {} exceeds δ = {}", t_max - t_min, motif.delta()));
    }
    if inst.first_time != t_min || inst.last_time != t_max {
        return Err("recorded first/last times disagree with edge-sets".into());
    }
    let min_flow = inst.edge_sets.iter().map(|es| es.flow(g)).fold(f64::INFINITY, f64::min);
    if (inst.flow - min_flow).abs() > 1e-9 {
        return Err(format!("recorded flow {} != min edge-set flow {min_flow}", inst.flow));
    }
    Ok(())
}

/// Checks maximality per Def. 3.3: no single series element can be added
/// to any edge-set while keeping the instance valid. (Adding elements can
/// only raise flows, so only the order and duration constraints matter.)
pub fn check_instance_maximal(
    g: &TimeSeriesGraph,
    motif: &Motif,
    inst: &MotifInstance,
) -> Result<(), String> {
    let m = inst.edge_sets.len();
    for k in 0..m {
        let es = &inst.edge_sets[k];
        let series = g.series(es.pair);
        let prev_last = (k > 0).then(|| {
            let p = &inst.edge_sets[k - 1];
            p.events(g).last().expect("non-empty").time
        });
        let next_first = (k + 1 < m).then(|| {
            let n = &inst.edge_sets[k + 1];
            n.events(g).first().expect("non-empty").time
        });
        for (idx, ev) in series.events().iter().enumerate() {
            if idx >= es.start as usize && idx < es.end as usize {
                continue; // already in the set
            }
            // Would adding this element keep the instance valid?
            if let Some(pl) = prev_last {
                if ev.time <= pl {
                    continue;
                }
            }
            if let Some(nf) = next_first {
                if ev.time >= nf {
                    continue;
                }
            }
            let new_min = inst.first_time.min(ev.time);
            let new_max = inst.last_time.max(ev.time);
            if new_max - new_min <= motif.delta() {
                return Err(format!(
                    "not maximal: element ({}, {}) can join edge {k}",
                    ev.time, ev.flow
                ));
            }
        }
    }
    Ok(())
}

/// Brute-force reference enumerator of maximal instances inside one
/// structural match. Exponential; use only on tiny fixtures.
///
/// It enumerates every anchored window and every split-point combination
/// with *no* pruning or skipping, assembles the bracket-form candidate,
/// and keeps it only if the Def. 3.2 / 3.3 checkers accept it. Results are
/// deduplicated.
pub fn brute_force_instances(
    g: &TimeSeriesGraph,
    motif: &Motif,
    sm: &StructuralMatch,
) -> Vec<MotifInstance> {
    use crate::instance::EdgeSet;
    let series: Vec<_> = sm.pairs.iter().map(|&p| g.series(p)).collect();
    if series.iter().any(|s| s.is_empty()) {
        return Vec::new();
    }
    let mut out: Vec<MotifInstance> = Vec::new();
    let e1 = series[0];
    // splits[k] = chosen last-element time for edge k (k < m-1). One
    // stack for the whole call: the recursion leaves it empty between
    // anchors, so hoisting it out of the loop reuses its capacity.
    let mut stack: Vec<(usize, Timestamp)> = Vec::new(); // (edge, split)
    for a_idx in 0..e1.len() {
        let anchor = e1.time(a_idx);
        let end = anchor.saturating_add(motif.delta());
        #[allow(clippy::too_many_arguments)]
        fn rec(
            g: &TimeSeriesGraph,
            motif: &Motif,
            sm: &StructuralMatch,
            series: &[&flowmotif_graph::InteractionSeries],
            anchor: Timestamp,
            a_idx: usize,
            end: Timestamp,
            k: usize,
            lo: Timestamp,
            stack: &mut Vec<(usize, Timestamp)>,
            out: &mut Vec<MotifInstance>,
        ) {
            let m = motif.num_edges();
            if k == m - 1 {
                // Assemble candidate: each edge takes all elements in its
                // bracket; the last runs to the window end.
                let mut edge_sets = Vec::with_capacity(m);
                let mut cur_lo = anchor;
                for (kk, s) in series.iter().enumerate() {
                    let hi = stack.get(kk).map_or(end, |&(_, t)| t);
                    let r = if kk == 0 {
                        a_idx..s.idx_after(hi)
                    } else {
                        s.range_open_closed(cur_lo, hi)
                    };
                    if r.is_empty() {
                        return;
                    }
                    cur_lo = hi;
                    edge_sets.push(EdgeSet {
                        pair: sm.pairs[kk],
                        start: r.start as u32,
                        end: r.end as u32,
                    });
                }
                let first_time = series[0].time(edge_sets[0].start as usize);
                let last = &edge_sets[m - 1];
                let last_time = series[m - 1].time(last.end as usize - 1);
                let flow = edge_sets.iter().map(|es| es.flow(g)).fold(f64::INFINITY, f64::min);
                let inst = MotifInstance { edge_sets, flow, first_time, last_time };
                if check_instance_valid(g, motif, sm, &inst).is_ok()
                    && check_instance_maximal(g, motif, &inst).is_ok()
                    && !out.contains(&inst)
                {
                    out.push(inst);
                }
                return;
            }
            // Choose the split after edge k: any element time of edge k in
            // (lo, end] (inclusive anchor for k = 0).
            let s = series[k];
            let r = if k == 0 { a_idx..s.idx_after(end) } else { s.range_open_closed(lo, end) };
            for j in r {
                let split = s.time(j);
                stack.push((k, split));
                rec(g, motif, sm, series, anchor, a_idx, end, k + 1, split, stack, out);
                stack.pop();
            }
        }
        rec(g, motif, sm, &series, anchor, a_idx, end, 0, anchor, &mut stack, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::enumerate::{enumerate_in_match, CollectSink, SearchOptions, SearchStats};
    use flowmotif_graph::GraphBuilder;

    fn fig7() -> (TimeSeriesGraph, StructuralMatch) {
        let mut b = GraphBuilder::new();
        for (t, f) in [(10, 5.0), (13, 2.0), (15, 3.0), (18, 7.0)] {
            b.add_interaction(0, 1, t, f);
        }
        for (t, f) in [(9, 4.0), (11, 3.0), (16, 3.0)] {
            b.add_interaction(1, 2, t, f);
        }
        for (t, f) in [(14, 4.0), (19, 6.0), (24, 3.0), (25, 2.0)] {
            b.add_interaction(2, 0, t, f);
        }
        let g = b.build_time_series_graph();
        let sm = StructuralMatch {
            nodes: vec![0, 1, 2],
            pairs: vec![
                g.pair_id(0, 1).unwrap(),
                g.pair_id(1, 2).unwrap(),
                g.pair_id(2, 0).unwrap(),
            ],
        };
        (g, sm)
    }

    #[test]
    fn checkers_accept_algorithm_output() {
        let (g, sm) = fig7();
        let motif = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        check_structural_match(&g, &motif, &sm).unwrap();
        let mut sink = CollectSink::default();
        let mut stats = SearchStats::default();
        enumerate_in_match(&g, &motif, &sm, SearchOptions::default(), &mut sink, &mut stats);
        let insts = &sink.groups[0].1;
        assert_eq!(insts.len(), 4);
        for inst in insts {
            check_instance_valid(&g, &motif, &sm, inst).unwrap();
            check_instance_maximal(&g, &motif, inst).unwrap();
        }
    }

    #[test]
    fn checker_rejects_subset_instances() {
        // Fig. 4(b): dropping (13,5) from the Fig. 4(a) instance makes it
        // non-maximal.
        let mut b = GraphBuilder::new();
        b.extend_interactions([
            (2u32, 0u32, 10i64, 10.0),
            (0, 1, 13, 5.0),
            (0, 1, 15, 7.0),
            (1, 2, 18, 20.0),
        ]);
        let g = b.build_time_series_graph();
        let motif = catalog::by_name("M(3,3)", 10, 7.0).unwrap();
        let sm = StructuralMatch {
            nodes: vec![2, 0, 1],
            pairs: vec![
                g.pair_id(2, 0).unwrap(),
                g.pair_id(0, 1).unwrap(),
                g.pair_id(1, 2).unwrap(),
            ],
        };
        use crate::instance::EdgeSet;
        // Non-maximal: e2 takes only (15,7).
        let nonmax = MotifInstance {
            edge_sets: vec![
                EdgeSet { pair: sm.pairs[0], start: 0, end: 1 },
                EdgeSet { pair: sm.pairs[1], start: 1, end: 2 },
                EdgeSet { pair: sm.pairs[2], start: 0, end: 1 },
            ],
            flow: 7.0,
            first_time: 10,
            last_time: 18,
        };
        check_instance_valid(&g, &motif, &sm, &nonmax).unwrap();
        assert!(check_instance_maximal(&g, &motif, &nonmax).is_err());
        // Maximal: e2 takes both elements.
        let max = MotifInstance {
            edge_sets: vec![
                EdgeSet { pair: sm.pairs[0], start: 0, end: 1 },
                EdgeSet { pair: sm.pairs[1], start: 0, end: 2 },
                EdgeSet { pair: sm.pairs[2], start: 0, end: 1 },
            ],
            flow: 10.0,
            first_time: 10,
            last_time: 18,
        };
        check_instance_valid(&g, &motif, &sm, &max).unwrap();
        check_instance_maximal(&g, &motif, &max).unwrap();
    }

    #[test]
    fn checker_rejects_order_violations() {
        let (g, sm) = fig7();
        let motif = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        use crate::instance::EdgeSet;
        // e2 <- {(9,4)} is before e1 <- {(10,5)}: order violated.
        let bad = MotifInstance {
            edge_sets: vec![
                EdgeSet { pair: sm.pairs[0], start: 0, end: 1 },
                EdgeSet { pair: sm.pairs[1], start: 0, end: 1 },
                EdgeSet { pair: sm.pairs[2], start: 0, end: 1 },
            ],
            flow: 4.0,
            first_time: 9,
            last_time: 14,
        };
        assert!(check_instance_valid(&g, &motif, &sm, &bad).is_err());
    }

    #[test]
    fn brute_force_agrees_with_algorithm_on_fig7() {
        let (g, sm) = fig7();
        for phi in [0.0, 3.0, 5.0, 7.0] {
            let motif = catalog::by_name("M(3,3)", 10, phi).unwrap();
            let mut sink = CollectSink::default();
            let mut stats = SearchStats::default();
            enumerate_in_match(&g, &motif, &sm, SearchOptions::default(), &mut sink, &mut stats);
            let mut algo: Vec<_> = sink
                .groups
                .pop()
                .map(|(_, v)| v)
                .unwrap_or_default()
                .iter()
                .map(|i| i.display(&g))
                .collect();
            let mut brute: Vec<_> =
                brute_force_instances(&g, &motif, &sm).iter().map(|i| i.display(&g)).collect();
            algo.sort();
            brute.sort();
            assert_eq!(algo, brute, "phi={phi}");
        }
    }

    #[test]
    fn structural_checker_rejects_bad_mappings() {
        let (g, sm) = fig7();
        let motif = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        let mut bad = sm.clone();
        bad.nodes[1] = bad.nodes[0]; // not injective
        assert!(check_structural_match(&g, &motif, &bad).is_err());
        let mut bad = sm;
        bad.pairs.swap(0, 1); // endpoints disagree with mapping
        assert!(check_structural_match(&g, &motif, &bad).is_err());
    }
}
