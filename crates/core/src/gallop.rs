//! Galloping (exponential probe + binary search) primitives over
//! ascending `u32` sequences — the intersection kernel of the
//! worst-case-optimal P1 extension
//! ([`crate::matcher::ExtensionOrder::Cardinality`]).
//!
//! A seek costs O(log d) in the distance `d` it advances, so checking a
//! small proposer list against a huge sorted neighbor slice costs
//! O(small · log large) instead of the linear merge's O(large) — the
//! asymmetry worst-case-optimal joins rely on. The accessor-based form
//! ([`gallop_seek_by`]) exists because [`flowmotif_graph::GraphStore`]
//! adjacency is positional (`out_target_at`/`in_source_at`), not sliced.

/// First index `i` in `from..len` with `at(i) >= v`, where `at` is
/// ascending on `0..len`. Returns `len` when every element is smaller
/// and `from` when `from` is already past the end.
#[inline]
pub fn gallop_seek_by(at: impl Fn(u32) -> u32, len: u32, from: u32, v: u32) -> u32 {
    if from >= len {
        return len;
    }
    if at(from) >= v {
        return from;
    }
    // Gallop: double the probe offset until it lands at-or-past `v` (or
    // the end), keeping the invariant at(lo - 1) < v.
    let mut step = 1u64;
    let mut lo = from as u64 + 1;
    let mut hi;
    loop {
        hi = from as u64 + step;
        if hi >= len as u64 {
            hi = len as u64;
            break;
        }
        if at(hi as u32) >= v {
            break;
        }
        lo = hi + 1;
        step *= 2;
    }
    // Binary search of the bracketed range [lo, hi): first `i` with
    // at(i) >= v; `hi` itself is known to qualify (or is the end).
    while lo < hi {
        let mid = (lo + hi) / 2;
        if at(mid as u32) < v {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

/// [`gallop_seek_by`] over a slice.
#[inline]
pub fn gallop_seek(xs: &[u32], from: usize, v: u32) -> usize {
    gallop_seek_by(|i| xs[i as usize], xs.len() as u32, from as u32, v) as usize
}

/// Set-intersects two ascending slices (duplicates collapse — each common
/// value appears once) by galloping both cursors toward each other. The
/// behavioural contract is equality with [`merge_intersect_into`]; the
/// randomized suite in `tests/prop_wco_equivalence.rs` pins it.
pub fn gallop_intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let v = a[i];
        j = gallop_seek(b, j, v);
        if j == b.len() {
            break;
        }
        if b[j] == v {
            out.push(v);
            while j < b.len() && b[j] == v {
                j += 1;
            }
            while i < a.len() && a[i] == v {
                i += 1;
            }
        } else {
            i = gallop_seek(a, i, b[j]);
        }
    }
}

/// The linear-merge reference intersection (same set semantics as
/// [`gallop_intersect_into`]): O(|a| + |b|), no galloping.
pub fn merge_intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let v = a[i];
                out.push(v);
                while i < a.len() && a[i] == v {
                    i += 1;
                }
                while j < b.len() && b[j] == v {
                    j += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seek_finds_the_first_at_or_after_position() {
        let xs = [2u32, 4, 4, 7, 9, 12];
        assert_eq!(gallop_seek(&xs, 0, 0), 0);
        assert_eq!(gallop_seek(&xs, 0, 2), 0);
        assert_eq!(gallop_seek(&xs, 0, 3), 1);
        assert_eq!(gallop_seek(&xs, 0, 4), 1);
        assert_eq!(gallop_seek(&xs, 2, 4), 2, "starts at `from`, never before");
        assert_eq!(gallop_seek(&xs, 0, 8), 4);
        assert_eq!(gallop_seek(&xs, 0, 13), 6, "past-the-end when all smaller");
        assert_eq!(gallop_seek(&xs, 6, 1), 6, "`from` at the end stays put");
        assert_eq!(gallop_seek(&[], 0, 5), 0);
    }

    #[test]
    fn seek_agrees_with_partition_point_everywhere() {
        let xs: Vec<u32> = (0..200).map(|i| i * 3 % 97).collect::<Vec<_>>();
        let mut xs = xs;
        xs.sort_unstable();
        for from in [0, 1, 7, 63, 199, 200] {
            for v in 0..100 {
                let want = from + xs[from..].partition_point(|&x| x < v);
                assert_eq!(gallop_seek(&xs, from, v), want, "from={from} v={v}");
            }
        }
    }

    #[test]
    fn intersections_agree_on_fixed_adversarial_shapes() {
        let dense: Vec<u32> = (0..1000).collect();
        let cases: &[(&[u32], &[u32])] = &[
            (&[], &[]),
            (&[5], &[]),
            (&[], &[5]),
            (&[5], &[5]),
            (&[1, 2, 3], &[4, 5, 6]),
            (&[0, 500, 1500], &dense),
            (&[7, 7, 7, 7], &[7]),
            (&[1, 1, 2, 2, 3], &[2, 2, 3, 3, 4]),
        ];
        for &(a, b) in cases {
            let (mut g, mut m) = (Vec::new(), Vec::new());
            gallop_intersect_into(a, b, &mut g);
            merge_intersect_into(a, b, &mut m);
            assert_eq!(g, m, "a={a:?} b={b:?}");
        }
    }
}
