//! Stage-level search tracing.
//!
//! The paper's evaluation is a per-stage cost breakdown — phase P1
//! (structural matching) vs phase P2 (instance enumeration) vs the DP
//! top-1 module — and a live server wants the same breakdown per query.
//! [`TraceSink`] is the hook: an optional `&'static dyn TraceSink` rides
//! inside [`crate::SearchOptions`], and the drivers report elapsed nanos
//! and work counts per [`TraceStage`] to it. The hook is *off by
//! default* and the untraced hot path pays exactly one well-predicted
//! branch per structural match — no clocks, no atomics — so the
//! `alloc_profile` zero-allocation gate and the bench baselines are
//! unaffected when tracing is disabled.
//!
//! [`AtomicTrace`] is the bundled lock-free implementation: per-stage
//! relaxed counters plus fixed per-worker slots for the parallel
//! scheduler's steal counts. One leaked (or static) `AtomicTrace` can be
//! shared by every worker of a query and reset between queries.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A stage of the search pipeline, as broken down in the paper's
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceStage {
    /// Phase P1: structural (topology + order) matching.
    P1,
    /// Phase P2: per-match window sweep and instance assembly.
    P2,
    /// The dynamic-programming top-1 module (§5.1).
    Dp,
}

impl TraceStage {
    /// Dense index for table storage.
    pub const COUNT: usize = 3;

    /// This stage's dense index in `0..TraceStage::COUNT`.
    pub fn index(self) -> usize {
        match self {
            TraceStage::P1 => 0,
            TraceStage::P2 => 1,
            TraceStage::Dp => 2,
        }
    }

    /// Short stable label (`p1`, `p2`, `dp`) for metric names and tables.
    pub fn label(self) -> &'static str {
        match self {
            TraceStage::P1 => "p1",
            TraceStage::P2 => "p2",
            TraceStage::Dp => "dp",
        }
    }
}

/// Receives per-stage timing and work counts from the search drivers.
///
/// Implementations must be cheap and thread-safe: the parallel drivers
/// call them concurrently from every worker. `count` is the stage's
/// natural work unit — structural matches for P1, emitted instances for
/// P2, windows solved for DP.
pub trait TraceSink: Sync {
    /// Records `nanos` of wall time and `count` units of work for `stage`.
    fn record(&self, stage: TraceStage, nanos: u64, count: u64);

    /// Reports one parallel worker's share: `tasks` claimed from the
    /// shared queue (its steal count) and `nanos` spent busy. Default:
    /// ignored, so single-stage sinks need not care.
    fn worker(&self, _index: usize, _tasks: u64, _nanos: u64) {}
}

/// Per-worker slots tracked by [`AtomicTrace`]; workers beyond this are
/// folded into the last slot.
pub const MAX_TRACE_WORKERS: usize = 64;

/// A lock-free [`TraceSink`]: relaxed per-stage nanosecond/count
/// accumulators plus fixed per-worker task/busy slots. `const`-
/// constructible, so it can live in a `static` or be leaked once per
/// serve worker and reset per query.
#[derive(Debug)]
pub struct AtomicTrace {
    stage_nanos: [AtomicU64; TraceStage::COUNT],
    stage_count: [AtomicU64; TraceStage::COUNT],
    worker_tasks: [AtomicU64; MAX_TRACE_WORKERS],
    worker_nanos: [AtomicU64; MAX_TRACE_WORKERS],
    workers: AtomicUsize,
}

impl AtomicTrace {
    /// An all-zero trace.
    pub const fn new() -> Self {
        Self {
            stage_nanos: [const { AtomicU64::new(0) }; TraceStage::COUNT],
            stage_count: [const { AtomicU64::new(0) }; TraceStage::COUNT],
            worker_tasks: [const { AtomicU64::new(0) }; MAX_TRACE_WORKERS],
            worker_nanos: [const { AtomicU64::new(0) }; MAX_TRACE_WORKERS],
            workers: AtomicUsize::new(0),
        }
    }

    /// Total nanoseconds recorded for `stage`.
    pub fn nanos(&self, stage: TraceStage) -> u64 {
        self.stage_nanos[stage.index()].load(Ordering::Relaxed)
    }

    /// Total work units recorded for `stage`.
    pub fn count(&self, stage: TraceStage) -> u64 {
        self.stage_count[stage.index()].load(Ordering::Relaxed)
    }

    /// Number of distinct workers that reported (capped at
    /// [`MAX_TRACE_WORKERS`]).
    pub fn workers(&self) -> usize {
        self.workers.load(Ordering::Relaxed).min(MAX_TRACE_WORKERS)
    }

    /// Tasks claimed by worker `i`.
    pub fn worker_tasks(&self, i: usize) -> u64 {
        self.worker_tasks[i.min(MAX_TRACE_WORKERS - 1)].load(Ordering::Relaxed)
    }

    /// Busy nanoseconds of worker `i`.
    pub fn worker_nanos(&self, i: usize) -> u64 {
        self.worker_nanos[i.min(MAX_TRACE_WORKERS - 1)].load(Ordering::Relaxed)
    }

    /// Zeroes every accumulator (between queries; not linearizable with
    /// concurrent recording).
    pub fn reset(&self) {
        for a in &self.stage_nanos {
            a.store(0, Ordering::Relaxed);
        }
        for a in &self.stage_count {
            a.store(0, Ordering::Relaxed);
        }
        for a in &self.worker_tasks {
            a.store(0, Ordering::Relaxed);
        }
        for a in &self.worker_nanos {
            a.store(0, Ordering::Relaxed);
        }
        self.workers.store(0, Ordering::Relaxed);
    }
}

impl Default for AtomicTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for AtomicTrace {
    fn record(&self, stage: TraceStage, nanos: u64, count: u64) {
        self.stage_nanos[stage.index()].fetch_add(nanos, Ordering::Relaxed);
        self.stage_count[stage.index()].fetch_add(count, Ordering::Relaxed);
    }

    fn worker(&self, index: usize, tasks: u64, nanos: u64) {
        let slot = index.min(MAX_TRACE_WORKERS - 1);
        self.worker_tasks[slot].fetch_add(tasks, Ordering::Relaxed);
        self.worker_nanos[slot].fetch_add(nanos, Ordering::Relaxed);
        self.workers.fetch_max(index + 1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_round_trip_through_atomic_trace() {
        let t = AtomicTrace::new();
        t.record(TraceStage::P1, 100, 3);
        t.record(TraceStage::P1, 50, 1);
        t.record(TraceStage::P2, 7, 2);
        assert_eq!(t.nanos(TraceStage::P1), 150);
        assert_eq!(t.count(TraceStage::P1), 4);
        assert_eq!(t.nanos(TraceStage::P2), 7);
        assert_eq!(t.count(TraceStage::Dp), 0);
        t.reset();
        assert_eq!(t.nanos(TraceStage::P1), 0);
        assert_eq!(t.count(TraceStage::P1), 0);
    }

    #[test]
    fn worker_slots_accumulate_and_cap() {
        let t = AtomicTrace::new();
        t.worker(0, 5, 1000);
        t.worker(0, 2, 500);
        t.worker(3, 1, 10);
        assert_eq!(t.workers(), 4);
        assert_eq!(t.worker_tasks(0), 7);
        assert_eq!(t.worker_nanos(0), 1500);
        assert_eq!(t.worker_tasks(3), 1);
        // Out-of-range workers fold into the last slot.
        t.worker(MAX_TRACE_WORKERS + 10, 9, 9);
        assert_eq!(t.worker_tasks(MAX_TRACE_WORKERS - 1), 9);
        assert_eq!(t.workers(), MAX_TRACE_WORKERS);
    }

    #[test]
    fn trace_is_shareable_across_threads() {
        let t: &'static AtomicTrace = Box::leak(Box::new(AtomicTrace::new()));
        std::thread::scope(|s| {
            for i in 0..4 {
                s.spawn(move || {
                    for _ in 0..1000 {
                        t.record(TraceStage::P2, 1, 1);
                    }
                    t.worker(i, 1000, 0);
                });
            }
        });
        assert_eq!(t.nanos(TraceStage::P2), 4000);
        assert_eq!(t.count(TraceStage::P2), 4000);
        assert_eq!(t.workers(), 4);
        let total: u64 = (0..t.workers()).map(|i| t.worker_tasks(i)).sum();
        assert_eq!(total, 4000);
    }
}
