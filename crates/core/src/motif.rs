//! The flow motif model of paper §3: a directed graph whose edges carry a
//! total order forming a *spanning path*, plus the duration constraint `δ`
//! and flow constraint `ϕ`.

use crate::error::MotifError;
use flowmotif_graph::{Flow, Timestamp};

/// A vertex of the motif graph, labeled `0..n` in order of first appearance
/// along the spanning path.
pub type MotifNode = u8;

/// The graph structure `G_M` of a motif, encoded as its spanning path
/// `SP_M` — the walk `w_0 w_1 … w_m` visited by the edges in label order
/// (paper Table 1 / §3). The walk need not be simple: repeated vertices
/// express cycles, e.g. `0 1 2 0` is the triangle motif M(3,3).
///
/// Invariants (checked by [`SpanningPath::new`]):
/// * at least one edge;
/// * no self-loop steps;
/// * no directed pair traversed twice (edge labels are unique, Def. 3.1);
/// * vertex labels are dense and appear in first-appearance order, which
///   makes the encoding canonical: two isomorphic motifs have equal walks.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SpanningPath {
    walk: Vec<MotifNode>,
}

impl SpanningPath {
    /// Builds and validates a spanning path from its vertex walk.
    pub fn new(walk: Vec<MotifNode>) -> Result<Self, MotifError> {
        if walk.len() < 2 {
            return Err(MotifError::WalkTooShort);
        }
        let mut next_label: MotifNode = 0;
        for (i, &w) in walk.iter().enumerate() {
            if w > next_label {
                return Err(MotifError::NonCanonicalLabels { found: w, expected: next_label });
            }
            if w == next_label {
                next_label += 1;
            }
            if i > 0 {
                if walk[i - 1] == w {
                    return Err(MotifError::SelfLoopStep { step: i - 1 });
                }
                let pair = (walk[i - 1], w);
                if walk.windows(2).take(i - 1).any(|p| (p[0], p[1]) == pair) {
                    return Err(MotifError::RepeatedEdge { step: i - 1 });
                }
            }
        }
        Ok(Self { walk })
    }

    /// Builds a spanning path from any vertex walk by renaming vertices to
    /// first-appearance order (the canonical form).
    pub fn from_walk_relabeled(walk: &[impl Copy + Eq]) -> Result<Self, MotifError> {
        let mut seen: Vec<usize> = Vec::new();
        let mut canonical = Vec::with_capacity(walk.len());
        for (i, w) in walk.iter().enumerate() {
            let pos = walk[..i].iter().position(|x| x == w);
            match pos {
                Some(p) => canonical.push(canonical[p]),
                None => {
                    canonical.push(seen.len() as MotifNode);
                    seen.push(i);
                }
            }
        }
        Self::new(canonical)
    }

    /// The vertex walk `w_0 … w_m`.
    #[inline]
    pub fn walk(&self) -> &[MotifNode] {
        &self.walk
    }

    /// Number of motif edges `m = |E_M|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.walk.len() - 1
    }

    /// Number of distinct motif vertices `|V_M|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.walk.iter().map(|&w| w as usize + 1).max().unwrap_or(0)
    }

    /// The `i`-th motif edge `e_{i+1}` (0-based here; the paper labels
    /// edges 1-based) as a `(source, target)` vertex pair.
    #[inline]
    pub fn edge(&self, i: usize) -> (MotifNode, MotifNode) {
        (self.walk[i], self.walk[i + 1])
    }

    /// Iterates the edges in label order.
    pub fn edges(&self) -> impl Iterator<Item = (MotifNode, MotifNode)> + '_ {
        self.walk.windows(2).map(|w| (w[0], w[1]))
    }

    /// Whether any vertex repeats along the walk (the motif contains a
    /// cycle; cyclic motifs behave differently in the paper's evaluation,
    /// §6.2.2 and §6.3).
    pub fn has_cycle(&self) -> bool {
        self.num_nodes() < self.walk.len()
    }
}

impl flowmotif_util::ToJson for SpanningPath {
    /// Serializes as the canonical walk string, e.g. `"0-1-2-0"`.
    fn to_json(&self) -> flowmotif_util::Json {
        flowmotif_util::Json::Str(self.to_string())
    }
}

impl std::fmt::Display for SpanningPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for w in &self.walk {
            if !first {
                write!(f, "-")?;
            }
            write!(f, "{w}")?;
            first = false;
        }
        Ok(())
    }
}

/// A network flow motif `M = (G_M, δ, ϕ)` (paper Def. 3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Motif {
    /// The motif graph, encoded by its spanning path.
    path: SpanningPath,
    /// Duration constraint: max time difference between any two instance
    /// elements.
    delta: Timestamp,
    /// Flow constraint: minimum aggregated flow on every motif edge.
    phi: Flow,
    /// Optional human-readable name (e.g. `M(3,3)` for catalog motifs).
    name: Option<String>,
}

impl Motif {
    /// Creates a motif from a validated spanning path and constraints.
    pub fn new(path: SpanningPath, delta: Timestamp, phi: Flow) -> Result<Self, MotifError> {
        if delta < 0 {
            return Err(MotifError::NegativeDelta(delta));
        }
        if !(phi.is_finite() && phi >= 0.0) {
            return Err(MotifError::InvalidPhi(phi));
        }
        Ok(Self { path, delta, phi, name: None })
    }

    /// Creates a motif directly from a vertex walk.
    pub fn from_walk(walk: &[MotifNode], delta: Timestamp, phi: Flow) -> Result<Self, MotifError> {
        Self::new(SpanningPath::new(walk.to_vec())?, delta, phi)
    }

    /// Attaches a display name (used by the catalog).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Returns a copy with different `δ` and `ϕ` (parameter sweeps).
    pub fn with_constraints(&self, delta: Timestamp, phi: Flow) -> Result<Self, MotifError> {
        let mut m = Self::new(self.path.clone(), delta, phi)?;
        m.name = self.name.clone();
        Ok(m)
    }

    /// The spanning path `SP_M`.
    #[inline]
    pub fn path(&self) -> &SpanningPath {
        &self.path
    }

    /// Duration constraint `δ`.
    #[inline]
    pub fn delta(&self) -> Timestamp {
        self.delta
    }

    /// Flow constraint `ϕ`.
    #[inline]
    pub fn phi(&self) -> Flow {
        self.phi
    }

    /// Number of motif edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.path.num_edges()
    }

    /// Number of distinct motif vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.path.num_nodes()
    }

    /// Display name: the attached catalog name, or `M(n,m)/walk`.
    pub fn name(&self) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None => format!("M({},{})/{}", self.num_nodes(), self.num_edges(), self.path),
        }
    }
}

impl std::fmt::Display for Motif {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (δ={}, ϕ={})", self.name(), self.delta, self.phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_walks() {
        for walk in [vec![0, 1], vec![0, 1, 2], vec![0, 1, 2, 0], vec![0, 1, 2, 3, 1]] {
            let p = SpanningPath::new(walk.clone()).unwrap();
            assert_eq!(p.walk(), &walk[..]);
        }
    }

    #[test]
    fn edge_count_and_node_count() {
        let p = SpanningPath::new(vec![0, 1, 2, 0]).unwrap(); // M(3,3)
        assert_eq!(p.num_edges(), 3);
        assert_eq!(p.num_nodes(), 3);
        assert!(p.has_cycle());
        let p = SpanningPath::new(vec![0, 1, 2]).unwrap(); // M(3,2)
        assert!(!p.has_cycle());
    }

    #[test]
    fn edges_in_label_order() {
        let p = SpanningPath::new(vec![0, 1, 2, 0, 3]).unwrap(); // M(4,4)B
        let edges: Vec<_> = p.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0), (0, 3)]);
        assert_eq!(p.edge(2), (2, 0));
    }

    #[test]
    fn rejects_short_walks() {
        assert_eq!(SpanningPath::new(vec![]), Err(MotifError::WalkTooShort));
        assert_eq!(SpanningPath::new(vec![0]), Err(MotifError::WalkTooShort));
    }

    #[test]
    fn rejects_self_loops() {
        assert_eq!(SpanningPath::new(vec![0, 0]), Err(MotifError::SelfLoopStep { step: 0 }));
        assert_eq!(SpanningPath::new(vec![0, 1, 1]), Err(MotifError::SelfLoopStep { step: 1 }));
    }

    #[test]
    fn rejects_repeated_directed_pairs() {
        // 0->1, 1->0, 0->1 traverses (0,1) twice.
        assert_eq!(SpanningPath::new(vec![0, 1, 0, 1]), Err(MotifError::RepeatedEdge { step: 2 }));
        // The reverse pair is fine: 0->1, 1->0.
        assert!(SpanningPath::new(vec![0, 1, 0]).is_ok());
    }

    #[test]
    fn rejects_non_canonical_labels() {
        assert!(matches!(
            SpanningPath::new(vec![1, 0]),
            Err(MotifError::NonCanonicalLabels { found: 1, expected: 0 })
        ));
        assert!(matches!(
            SpanningPath::new(vec![0, 2, 1]),
            Err(MotifError::NonCanonicalLabels { found: 2, expected: 1 })
        ));
    }

    #[test]
    fn relabeling_makes_any_walk_canonical() {
        let p = SpanningPath::from_walk_relabeled(&[7u32, 3, 9, 7]).unwrap();
        assert_eq!(p.walk(), &[0, 1, 2, 0]);
    }

    #[test]
    fn motif_constraint_validation() {
        let p = SpanningPath::new(vec![0, 1, 2]).unwrap();
        assert!(Motif::new(p.clone(), -1, 0.0).is_err());
        assert!(Motif::new(p.clone(), 10, -0.5).is_err());
        assert!(Motif::new(p.clone(), 10, f64::NAN).is_err());
        let m = Motif::new(p, 10, 5.0).unwrap();
        assert_eq!(m.delta(), 10);
        assert_eq!(m.phi(), 5.0);
    }

    #[test]
    fn with_constraints_keeps_structure_and_name() {
        let m = Motif::from_walk(&[0, 1, 2, 0], 10, 5.0).unwrap().with_name("M(3,3)");
        let m2 = m.with_constraints(20, 1.0).unwrap();
        assert_eq!(m2.name(), "M(3,3)");
        assert_eq!(m2.delta(), 20);
        assert_eq!(m2.path(), m.path());
    }

    #[test]
    fn display_and_default_names() {
        let m = Motif::from_walk(&[0, 1, 2], 10, 5.0).unwrap();
        assert_eq!(m.name(), "M(3,2)/0-1-2");
        let named = m.with_name("M(3,2)");
        assert_eq!(named.to_string(), "M(3,2) (δ=10, ϕ=5)");
    }
}
