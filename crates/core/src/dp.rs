//! The dynamic-programming module for top-1 instance search (paper §5.1,
//! Algorithm 2 and Eq. 2).
//!
//! For a structural match `G_s` and a window `T = [t_1, t_1 + δ]`, let
//! `t_1 … t_τ` be the timestamps of the match's elements inside `T`.
//! `Flow([t_1, t_i], κ)` — the best flow of any instance of the motif
//! prefix `M_κ` within `[t_1, t_i]` — satisfies
//!
//! ```text
//! Flow([t1,ti],κ) = max_{1<j≤i} min( Flow([t1,t_{j-1}], κ-1),
//!                                    flow([t_j, t_i], κ) )
//! ```
//!
//! where `flow([t_j, t_i], κ)` aggregates the elements of `R(e_κ)` in
//! `[t_j, t_i]` (O(1) via prefix sums). The window enumeration is the same
//! anchored-at-`R(e_1)`-elements sweep as Algorithm 1.
//!
//! The returned top-1 *flow* equals the flow of the best maximal instance
//! found by full enumeration — extending an instance never decreases its
//! flow, so the maximum over all instances is attained at a maximal one.
//! The reconstructed witness instance, however, need not be maximal.

use crate::enumerate::SearchOptions;
use crate::instance::{EdgeSet, MotifInstance, StructuralMatch};
use crate::motif::Motif;
use crate::scratch::SearchScratch;
use crate::trace::TraceStage;
use flowmotif_graph::{Flow, GraphStore, SeriesRef, TimeWindow, Timestamp};

/// Counters for a DP run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpStats {
    /// Structural matches processed.
    pub structural_matches: u64,
    /// Windows the DP table was built for.
    pub windows_processed: u64,
    /// Windows skipped by the redundancy rule.
    pub windows_skipped: u64,
    /// Total `Flow([t1,ti],κ)` cells computed.
    pub cells_computed: u64,
}

/// The DP table of one window — exposed for the paper's Table 2 example
/// and for the "top-1 per window" extensibility use-case (§5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct DpTable {
    /// The timestamps `t_1 … t_τ` (sorted, deduplicated).
    pub timestamps: Vec<Timestamp>,
    /// `rows[κ-1][i] = Flow([t_1, t_i], κ)`.
    pub rows: Vec<Vec<Flow>>,
    /// `parents[κ-2][i]` = the split index `j` realizing row `κ` at `i`
    /// (only for `κ >= 2`); `u32::MAX` when no instance exists.
    pub parents: Vec<Vec<u32>>,
}

impl DpTable {
    /// The window's top-1 flow: `Flow([t_1, t_τ], m)`; `0.0` if the window
    /// holds no instance.
    pub fn top_flow(&self) -> Flow {
        self.rows.last().and_then(|r| r.last()).copied().unwrap_or(0.0)
    }
}

/// Builds the DP table for one window of one structural match.
///
/// `series` are borrowed views of the match's interaction series in
/// motif-edge order ([`flowmotif_graph::InteractionSeries::as_ref`] for
/// the in-memory backend, [`GraphStore::series`] for any backend).
pub fn dp_table(series: &[SeriesRef<'_>], window: TimeWindow, stats: &mut DpStats) -> DpTable {
    let m = series.len();
    // Gather t_1 … t_τ: all element timestamps inside the window.
    let mut ts: Vec<Timestamp> = Vec::new();
    for s in series {
        let r = s.range_closed(window.start, window.end);
        ts.extend(s.events()[r].iter().map(|e| e.time));
    }
    ts.sort_unstable();
    ts.dedup();
    let tau = ts.len();
    let mut rows: Vec<Vec<Flow>> = Vec::with_capacity(m);
    let mut parents: Vec<Vec<u32>> = Vec::with_capacity(m.saturating_sub(1));
    if tau == 0 {
        return DpTable { timestamps: ts, rows, parents };
    }

    // κ = 1: all R(e_1) elements in [t_1, t_i].
    let s0 = series[0];
    let a0 = s0.idx_at_or_after(window.start);
    let row0: Vec<Flow> = ts.iter().map(|&t| s0.flow_of_range(a0..s0.idx_after(t))).collect();
    stats.cells_computed += tau as u64;
    rows.push(row0);

    for sk in series.iter().skip(1) {
        // Element index of the first sk-element at or after each ts[j].
        let lo: Vec<usize> = ts.iter().map(|&t| sk.idx_at_or_after(t)).collect();
        let hi: Vec<usize> = ts.iter().map(|&t| sk.idx_after(t)).collect();
        let prev = rows.last().expect("at least one row");
        let mut row = vec![0.0; tau];
        let mut par = vec![u32::MAX; tau];
        for i in 0..tau {
            let mut best = 0.0;
            let mut best_j = u32::MAX;
            for j in 1..=i {
                let prev_flow = prev[j - 1];
                if prev_flow <= best {
                    // cand = min(prev, own) <= prev <= best: cannot win.
                    continue;
                }
                let own = if lo[j] < hi[i] { sk.flow_of_range(lo[j]..hi[i]) } else { 0.0 };
                if own == 0.0 {
                    // Later j only shrink [t_j, t_i]; stop.
                    break;
                }
                let cand = prev_flow.min(own);
                if cand > best {
                    best = cand;
                    best_j = j as u32;
                }
            }
            stats.cells_computed += 1;
            row[i] = best;
            par[i] = best_j;
        }
        rows.push(row);
        parents.push(par);
    }
    DpTable { timestamps: ts, rows, parents }
}

/// Reusable buffers for the window-scan fast path of the DP module.
/// Lifetime-free (series are re-resolved through pair ids), so one
/// `DpScratch` — usually inside a [`crate::SearchScratch`] — serves any
/// number of matches, graphs and snapshots without reallocating.
#[derive(Debug, Default, Clone)]
pub struct DpScratch {
    ts: Vec<Timestamp>,
    cur: Vec<Flow>,
    next: Vec<Flow>,
    lo: Vec<usize>,
    hi: Vec<usize>,
}

/// The flow of the best instance within one window, without parent
/// tracking (used by the window sweep; the winning window is re-solved
/// with [`dp_table`] for witness reconstruction). Returns early with `0`
/// once the running row maximum drops to `threshold` or below — the row
/// maxima are non-increasing in `κ`, so the window cannot beat it.
/// `pairs` are the match's pair ids in motif-edge order (resolved
/// through `g` on use, keeping this path free of per-match allocations).
fn dp_window_flow<G: GraphStore>(
    g: &G,
    pairs: &[flowmotif_graph::PairId],
    window: TimeWindow,
    threshold: Flow,
    scratch: &mut DpScratch,
    stats: &mut DpStats,
) -> Flow {
    let DpScratch { ts, cur, next, lo, hi } = scratch;
    ts.clear();
    for &p in pairs {
        let s = g.series(p);
        let r = s.range_closed(window.start, window.end);
        ts.extend(s.events()[r].iter().map(|e| e.time));
    }
    ts.sort_unstable();
    ts.dedup();
    let tau = ts.len();
    if tau == 0 {
        return 0.0;
    }
    let s0 = g.series(pairs[0]);
    let a0 = s0.idx_at_or_after(window.start);
    cur.clear();
    cur.extend(ts.iter().map(|&t| s0.flow_of_range(a0..s0.idx_after(t))));
    stats.cells_computed += tau as u64;
    for sk in pairs.iter().skip(1).map(|&p| g.series(p)) {
        if cur.last().copied().unwrap_or(0.0) <= threshold {
            return 0.0; // cur is non-decreasing; its last entry bounds the answer
        }
        lo.clear();
        hi.clear();
        lo.extend(ts.iter().map(|&t| sk.idx_at_or_after(t)));
        hi.extend(ts.iter().map(|&t| sk.idx_after(t)));
        next.clear();
        next.resize(tau, 0.0);
        let mut running_best = 0.0f64;
        for i in 0..tau {
            let mut best = running_best; // next is non-decreasing in i
            for j in 1..=i {
                let prev_flow = cur[j - 1];
                if prev_flow <= best {
                    continue;
                }
                let own = if lo[j] < hi[i] { sk.flow_of_range(lo[j]..hi[i]) } else { 0.0 };
                if own == 0.0 {
                    break;
                }
                let cand = prev_flow.min(own);
                if cand > best {
                    best = cand;
                }
            }
            stats.cells_computed += 1;
            next[i] = best;
            running_best = best;
        }
        std::mem::swap(cur, next);
    }
    cur.last().copied().unwrap_or(0.0)
}

/// Like [`dp_top1_in_match`] but with a pruning threshold: windows whose
/// admissible upper bound (the minimum per-edge in-window flow) cannot
/// strictly beat `threshold` are skipped, mirroring the floating
/// threshold of the top-k comparator. Returns the best flow above the
/// threshold and its window, if any.
pub fn dp_best_window_in_match<G: GraphStore>(
    g: &G,
    motif: &Motif,
    sm: &StructuralMatch,
    threshold: Flow,
    scratch: &mut DpScratch,
    stats: &mut DpStats,
) -> Option<(Flow, TimeWindow)> {
    let pairs = sm.pairs.as_slice();
    if pairs.iter().any(|&p| g.series(p).is_empty()) {
        return None;
    }
    // Match-level admissible bound: no instance can exceed the minimum
    // total series flow over the motif edges.
    let match_ub = pairs.iter().map(|&p| g.series(p).total_flow()).fold(f64::INFINITY, Flow::min);
    if match_ub <= threshold {
        return None;
    }
    let m = motif.num_edges();
    let e1 = g.series(pairs[0]);
    let em = g.series(pairs[m - 1]);
    let mut best: Option<(Flow, TimeWindow)> = None;
    let mut thr = threshold;
    let mut prev_end: Option<Timestamp> = None;
    for a_idx in 0..e1.len() {
        let w = TimeWindow::anchored(e1.time(a_idx), motif.delta());
        if let Some(pe) = prev_end {
            if em.range_open_closed(pe, w.end).is_empty() {
                stats.windows_skipped += 1;
                continue;
            }
        }
        prev_end = Some(w.end);
        // Window-level admissible bound.
        let ub = pairs
            .iter()
            .map(|&p| g.series(p).flow_in_closed(w.start, w.end))
            .fold(f64::INFINITY, Flow::min);
        if ub <= thr {
            stats.windows_skipped += 1;
            continue;
        }
        stats.windows_processed += 1;
        let f = dp_window_flow(g, pairs, w, thr, scratch, stats);
        if f > thr {
            thr = f;
            best = Some((f, w));
        }
    }
    best
}

/// Enumerates the DP windows of a structural match exactly like
/// Algorithm 1 (anchored at `R(e_1)` elements, skipping positions that
/// contribute no new `R(e_m)` element) and returns the best flow plus, if
/// any instance exists, a witness instance achieving it.
pub fn dp_top1_in_match<G: GraphStore>(
    g: &G,
    motif: &Motif,
    sm: &StructuralMatch,
    stats: &mut DpStats,
) -> Option<MotifInstance> {
    let mut scratch = DpScratch::default();
    let (flow, window) = dp_best_window_in_match(g, motif, sm, 0.0, &mut scratch, stats)?;
    let series: Vec<SeriesRef<'_>> = sm.pairs.iter().map(|&p| g.series(p)).collect();
    // Re-solve the winning window with parent tracking for the witness.
    let table = dp_table(&series, window, stats);
    debug_assert!((table.top_flow() - flow).abs() < 1e-9);
    Some(reconstruct(&series, sm, window, &table, flow))
}

/// Backtracks the witness instance out of a DP table.
fn reconstruct(
    series: &[SeriesRef<'_>],
    sm: &StructuralMatch,
    window: TimeWindow,
    table: &DpTable,
    flow: Flow,
) -> MotifInstance {
    let m = series.len();
    let ts = &table.timestamps;
    let mut brackets: Vec<(Timestamp, Timestamp)> = vec![(0, 0); m];
    let mut i = ts.len() - 1;
    for k in (1..m).rev() {
        let j = table.parents[k - 1][i] as usize;
        brackets[k] = (ts[j], ts[i]);
        i = j - 1;
    }
    brackets[0] = (window.start, ts[i]);
    let mut edge_sets = Vec::with_capacity(m);
    for (k, s) in series.iter().enumerate() {
        let (a, b) = brackets[k];
        let r = s.range_closed(a, b);
        debug_assert!(!r.is_empty(), "witness bracket must be non-empty");
        edge_sets.push(EdgeSet { pair: sm.pairs[k], start: r.start as u32, end: r.end as u32 });
    }
    let first_time = series[0].time(edge_sets[0].start as usize);
    let last_es = edge_sets[m - 1];
    let last_time = series[m - 1].time(last_es.end as usize - 1);
    MotifInstance { edge_sets, flow, first_time, last_time }
}

/// Runs Algorithm 2 over every structural match: the global top-1 instance
/// flow and a witness (paper §5.1). Returns `None` when the graph holds no
/// instance at all.
pub fn dp_top1<G: GraphStore>(
    g: &G,
    motif: &Motif,
) -> (Option<(StructuralMatch, MotifInstance)>, DpStats) {
    let mut scratch = SearchScratch::default();
    dp_top1_scratch(g, motif, &mut scratch)
}

/// [`dp_top1`] running out of a caller-provided [`SearchScratch`]: phase
/// P1 walks out of `scratch.p1` and the per-window DP out of
/// `scratch.dp`, so after warm-up a repeated top-1 query allocates only
/// for the returned witness.
pub fn dp_top1_scratch<G: GraphStore>(
    g: &G,
    motif: &Motif,
    scratch: &mut SearchScratch,
) -> (Option<(StructuralMatch, MotifInstance)>, DpStats) {
    dp_top1_with(g, motif, SearchOptions::default(), scratch)
}

/// [`dp_top1_scratch`] honouring [`SearchOptions`]: the phase P1 walk
/// follows `use_active_index`, and when a [`crate::trace::TraceSink`] is
/// attached the run reports P1 time (walk minus DP), DP time and the
/// windows-solved count to it. `None` trace costs one branch per match.
pub fn dp_top1_with<G: GraphStore>(
    g: &G,
    motif: &Motif,
    opts: SearchOptions,
    scratch: &mut SearchScratch,
) -> (Option<(StructuralMatch, MotifInstance)>, DpStats) {
    let mut stats = DpStats::default();
    let SearchScratch { p1, dp, .. } = scratch;
    let start = opts.trace.map(|_| std::time::Instant::now());
    let mut dp_nanos = 0u64;
    let mut best: Option<(Flow, StructuralMatch, TimeWindow)> = None;
    // The DP module does its own P1-vs-DP trace accounting below, so
    // the driver runs untraced.
    let driver = crate::matcher::P1Driver::new(motif.path())
        .use_index(opts.use_active_index)
        .extension_order(opts.extension_order);
    driver.run(g, p1, &mut |sm| {
        stats.structural_matches += 1;
        let thr = best.as_ref().map_or(0.0, |&(f, _, _)| f);
        let found = if opts.trace.is_some() {
            let t0 = std::time::Instant::now();
            let r = dp_best_window_in_match(g, motif, sm, thr, dp, &mut stats);
            dp_nanos += t0.elapsed().as_nanos() as u64;
            r
        } else {
            dp_best_window_in_match(g, motif, sm, thr, dp, &mut stats)
        };
        if let Some((f, w)) = found {
            // Recycle the previous best's buffers instead of
            // reallocating on every improvement.
            match &mut best {
                Some((bf, bsm, bw)) => {
                    *bf = f;
                    bsm.clone_from(sm);
                    *bw = w;
                }
                None => best = Some((f, sm.clone(), w)),
            }
        }
    });
    if let (Some(trace), Some(start)) = (opts.trace, start) {
        let total = start.elapsed().as_nanos() as u64;
        trace.record(TraceStage::P1, total.saturating_sub(dp_nanos), stats.structural_matches);
        trace.record(TraceStage::Dp, dp_nanos, stats.windows_processed);
    }
    match best {
        None => (None, stats),
        Some((flow, sm, window)) => {
            let series: Vec<SeriesRef<'_>> = sm.pairs.iter().map(|&p| g.series(p)).collect();
            let table = dp_table(&series, window, &mut stats);
            let inst = reconstruct(&series, &sm, window, &table, flow);
            (Some((sm, inst)), stats)
        }
    }
}

/// Convenience: just the maximum instance flow in the graph (`0.0` when no
/// instance exists). This is the quantity Algorithm 2 returns.
pub fn dp_max_flow<G: GraphStore>(g: &G, motif: &Motif) -> (Flow, DpStats) {
    let (best, stats) = dp_top1(g, motif);
    (best.map_or(0.0, |(_, i)| i.flow), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use flowmotif_graph::{GraphBuilder, TimeSeriesGraph};

    /// The Fig. 7 structural match (see `enumerate.rs` tests).
    fn fig7() -> (TimeSeriesGraph, StructuralMatch) {
        let mut b = GraphBuilder::new();
        for (t, f) in [(10, 5.0), (13, 2.0), (15, 3.0), (18, 7.0)] {
            b.add_interaction(0, 1, t, f);
        }
        for (t, f) in [(9, 4.0), (11, 3.0), (16, 3.0)] {
            b.add_interaction(1, 2, t, f);
        }
        for (t, f) in [(14, 4.0), (19, 6.0), (24, 3.0), (25, 2.0)] {
            b.add_interaction(2, 0, t, f);
        }
        let g = b.build_time_series_graph();
        let sm = StructuralMatch {
            nodes: vec![0, 1, 2],
            pairs: vec![
                g.pair_id(0, 1).unwrap(),
                g.pair_id(1, 2).unwrap(),
                g.pair_id(2, 0).unwrap(),
            ],
        };
        (g, sm)
    }

    #[test]
    fn table2_window_top_flow_is_5() {
        // Paper Table 2: the best instance of M(3,3) in window [10, 20]
        // has flow 5.
        let (g, sm) = fig7();
        let series: Vec<_> = sm.pairs.iter().map(|&p| g.series(p).as_ref()).collect();
        let mut stats = DpStats::default();
        let t = dp_table(&series, TimeWindow::new(10, 20), &mut stats);
        assert_eq!(t.timestamps, vec![10, 11, 13, 14, 15, 16, 18, 19]);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.top_flow(), 5.0);
        // Row κ=2 at t_i = 16 is min(5, 3+3) = 5 with t_j = 11 (paper's
        // worked example).
        let i16 = t.timestamps.iter().position(|&x| x == 16).unwrap();
        assert_eq!(t.rows[1][i16], 5.0);
        assert_eq!(t.timestamps[t.parents[0][i16] as usize], 11);
    }

    #[test]
    fn dp_matches_enumeration_maximum_on_fig7() {
        let (g, sm) = fig7();
        let motif = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        let mut stats = DpStats::default();
        let inst = dp_top1_in_match(&g, &motif, &sm, &mut stats).unwrap();
        assert_eq!(inst.flow, 5.0);
        // The witness is the paper's top-1 instance:
        // [e1 <- {(10,5)}, e2 <- {(11,3),(16,3)}, e3 <- {(19,6)}].
        assert_eq!(
            inst.display(&g),
            "[e1 <- {(10, 5)}, e2 <- {(11, 3), (16, 3)}, e3 <- {(19, 6)}]"
        );
        // Window sweep mirrors Algorithm 1 plus upper-bound pruning:
        // [10,20] is solved (top flow 5); [13,23] and [18,28] are skipped
        // as redundant, and [15,25] is skipped because its admissible
        // bound (min in-window edge flow = 3) cannot beat 5.
        assert_eq!(stats.windows_processed, 1);
        assert_eq!(stats.windows_skipped, 3);
    }

    #[test]
    fn dp_top1_over_whole_graph() {
        let (g, _) = fig7();
        let motif = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        let (best, stats) = dp_top1(&g, &motif);
        assert_eq!(stats.structural_matches, 3); // three rotations
        let (_, inst) = best.unwrap();
        assert_eq!(inst.flow, 5.0);
    }

    #[test]
    fn dp_on_graph_without_instances() {
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 100i64, 1.0), (1, 2, 1, 1.0)]);
        let g = b.build_time_series_graph();
        let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let (flow, _) = dp_max_flow(&g, &motif);
        assert_eq!(flow, 0.0);
        assert!(dp_top1(&g, &motif).0.is_none());
    }

    #[test]
    fn dp_single_edge_motif() {
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 1i64, 2.0), (0, 1, 3, 3.0), (0, 1, 20, 4.0)]);
        let g = b.build_time_series_graph();
        // Walk 0-1: one motif edge; best window aggregates (1,2)+(3,3)=5.
        let motif = catalog::parse_motif("0-1", 5, 0.0).unwrap();
        let (flow, _) = dp_max_flow(&g, &motif);
        assert_eq!(flow, 5.0);
    }

    #[test]
    fn dp_trace_records_windows_and_matches() {
        use crate::trace::{AtomicTrace, TraceStage};
        let (g, _) = fig7();
        let motif = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        let trace: &'static AtomicTrace = Box::leak(Box::new(AtomicTrace::new()));
        let opts = SearchOptions::default().with_trace(Some(trace));
        let mut scratch = SearchScratch::default();
        let (best, stats) = dp_top1_with(&g, &motif, opts, &mut scratch);
        assert_eq!(best.unwrap().1.flow, 5.0);
        assert_eq!(trace.count(TraceStage::P1), stats.structural_matches);
        // The witness re-solve happens after the trace is recorded, so
        // the DP count equals the sweep's windows_processed exactly.
        assert_eq!(trace.count(TraceStage::Dp), stats.windows_processed);
        assert_eq!(trace.count(TraceStage::P2), 0);
    }

    #[test]
    fn witness_flow_equals_min_edge_set_flow() {
        let (g, sm) = fig7();
        let motif = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        let mut stats = DpStats::default();
        let inst = dp_top1_in_match(&g, &motif, &sm, &mut stats).unwrap();
        let min_flow = inst.edge_sets.iter().map(|es| es.flow(&g)).fold(f64::INFINITY, f64::min);
        assert_eq!(inst.flow, min_flow);
    }
}
