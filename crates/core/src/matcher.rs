//! Phase P1: structural matching (paper §4, Fig. 6).
//!
//! Finds every subgraph of `G_T` that matches the motif graph structure,
//! disregarding timestamps and flows. Because motif edges form a spanning
//! path, matching is a depth-first walk enumeration: map every graph vertex
//! to the walk origin, then extend edge by edge, re-using the mapped vertex
//! when the motif walk revisits a label (cycles) and enforcing injectivity
//! between distinct motif vertices (the bijection µ of Def. 3.2).

use crate::instance::StructuralMatch;
use crate::motif::SpanningPath;
use flowmotif_graph::{GraphStore, NodeId, PairId, TimeWindow};

/// Streams every structural match of `path` in `g` to `visit`.
///
/// Matches are emitted in lexicographic order of their vertex walk, which
/// makes runs deterministic and testable. Like every phase-P1 driver, the
/// graph is any [`GraphStore`] backend — in-memory, memory-mapped segment,
/// or segment+delta overlay — and the match stream is identical across
/// backends holding the same graph.
pub fn for_each_structural_match<S, F>(g: &S, path: &SpanningPath, visit: &mut F)
where
    S: GraphStore,
    F: FnMut(&StructuralMatch),
{
    for_each_structural_match_in_node_range(g, path, 0..g.num_nodes() as NodeId, visit);
}

/// Streams the structural matches whose *walk origin* lies in `origins`.
/// Disjoint origin ranges partition the match set, which is how the
/// parallel drivers shard phase P1+P2 without materialising matches.
pub fn for_each_structural_match_in_node_range<S, F>(
    g: &S,
    path: &SpanningPath,
    origins: std::ops::Range<NodeId>,
    visit: &mut F,
) where
    S: GraphStore,
    F: FnMut(&StructuralMatch),
{
    for_each_structural_match_bounded(g, path, TimeWindow::new(i64::MIN, i64::MAX), origins, visit);
}

/// Streams the structural matches that can host an instance inside the
/// closed time window `bounds`: walks through pairs carrying no
/// interaction in the window are pruned mid-DFS, because every motif edge
/// of an in-window instance needs at least one in-window element. With
/// unbounded `bounds` this is plain phase P1. The pruning makes
/// window-restricted queries on a large resident graph cheap — cost
/// scales with the structure *active* in the window, not with everything
/// retained.
///
/// Candidate walk origins come from the store's active-time origin pull
/// ([`GraphStore::active_origins_in_range`]), so origins with no
/// in-window out-interaction are never visited at all — the per-query
/// sweep over every node (and every pair's window probe) is gone. Use
/// [`for_each_structural_match_bounded_with`] to disable the index for
/// A/B comparisons.
pub fn for_each_structural_match_bounded<S, F>(
    g: &S,
    path: &SpanningPath,
    bounds: TimeWindow,
    origins: std::ops::Range<NodeId>,
    visit: &mut F,
) where
    S: GraphStore,
    F: FnMut(&StructuralMatch),
{
    for_each_structural_match_bounded_with(g, path, bounds, origins, true, visit);
}

/// [`for_each_structural_match_bounded`] with an explicit `use_index`
/// switch: `false` falls back to sweeping every origin in `origins` and
/// probing each pair's window activity — the pre-index behaviour, kept
/// for ablation benchmarks and equivalence tests. Both settings emit
/// exactly the same matches in the same (lexicographic walk) order.
pub fn for_each_structural_match_bounded_with<S, F>(
    g: &S,
    path: &SpanningPath,
    bounds: TimeWindow,
    origins: std::ops::Range<NodeId>,
    use_index: bool,
    visit: &mut F,
) where
    S: GraphStore,
    F: FnMut(&StructuralMatch),
{
    let mut scratch = MatchScratch::default();
    for_each_structural_match_bounded_scratch(
        g,
        path,
        bounds,
        origins,
        use_index,
        &mut scratch,
        visit,
    );
}

/// Reusable phase-P1 buffers: the match under construction (whose fields
/// are mutated in place; the visitor gets a shared reference at each
/// leaf), the injectivity bitmap, and the candidate-origin pull buffer of
/// the indexed path. One `MatchScratch` threaded through many
/// enumerations (see [`crate::SearchScratch`]) makes the steady-state P1
/// loop allocation-free; the buffers re-size themselves to each motif.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    sm: StructuralMatch,
    assigned: Vec<bool>,
    origins: Vec<NodeId>,
}

impl MatchScratch {
    /// Sizes the match/assignment buffers for `path` (contents reset).
    fn prepare(&mut self, path: &SpanningPath) {
        let n = path.num_nodes();
        self.sm.nodes.clear();
        self.sm.nodes.resize(n, 0);
        self.sm.pairs.clear();
        self.sm.pairs.reserve(path.num_edges());
        self.assigned.clear();
        self.assigned.resize(n, false);
    }
}

/// [`for_each_structural_match_bounded_with`] running out of
/// caller-provided scratch buffers — the allocation-free form every
/// steady-state driver (sequential, parallel, streaming) goes through.
pub fn for_each_structural_match_bounded_scratch<S, F>(
    g: &S,
    path: &SpanningPath,
    bounds: TimeWindow,
    origins: std::ops::Range<NodeId>,
    use_index: bool,
    scratch: &mut MatchScratch,
    visit: &mut F,
) where
    S: GraphStore,
    F: FnMut(&StructuralMatch),
{
    let walk = path.walk();
    scratch.prepare(path);
    let MatchScratch { sm, assigned, origins: cands } = scratch;
    let bounded = bounds.start > i64::MIN || bounds.end < i64::MAX;
    let ctx = DfsCtx {
        g,
        walk,
        bounds: bounded.then_some(bounds),
        prune_spans: use_index,
        first_pairs: None,
    };

    let end = origins.end.min(g.num_nodes() as NodeId);
    let mut seed = |u: NodeId, sm: &mut StructuralMatch, assigned: &mut Vec<bool>| {
        let w0 = walk[0] as usize;
        sm.nodes[w0] = u;
        assigned[w0] = true;
        dfs(&ctx, 0, sm, assigned, visit);
        assigned[w0] = false;
    };
    if bounded && use_index {
        // Index-assisted P1: only origins with in-window out-activity are
        // even considered (ascending ids keep the emission order). The
        // pull is already restricted to this call's origin range, so a
        // parallel shard never materialises the window's full candidate
        // list.
        g.active_origins_in_range(bounds, origins.start..end, cands);
        for &u in cands.iter() {
            if g.out_degree(u) > 0 {
                seed(u, sm, assigned);
            }
        }
    } else {
        for u in origins.start..end {
            if g.out_degree(u) > 0 {
                seed(u, sm, assigned);
            }
        }
    }
}

/// Streams the structural matches of one walk origin whose *first-step
/// pair* sits at a position in `first_pairs` (a sub-range of
/// `0..out_degree(origin)`, indexing the origin's sorted out-list).
/// Disjoint position ranges partition the origin's match set — this is
/// how the parallel scheduler splits a heavy hub across workers instead
/// of handing the whole hub to one of them. Positions (not pair ids)
/// keep the split well-defined on composite stores whose out-lists are
/// not contiguous in id space. `use_index` mirrors the span pre-checks
/// of the indexed bounded path so a hub task emits exactly what the
/// block path would have.
#[allow(clippy::too_many_arguments)] // mirrors the bounded_scratch surface + the pair range
pub fn for_each_structural_match_from_origin<S, F>(
    g: &S,
    path: &SpanningPath,
    bounds: TimeWindow,
    origin: NodeId,
    first_pairs: std::ops::Range<u32>,
    use_index: bool,
    scratch: &mut MatchScratch,
    visit: &mut F,
) where
    S: GraphStore,
    F: FnMut(&StructuralMatch),
{
    if (origin as usize) >= g.num_nodes() || first_pairs.is_empty() {
        return;
    }
    debug_assert!(
        first_pairs.end <= g.out_degree(origin),
        "first_pairs {first_pairs:?} must lie inside origin {origin}'s out-list \
         (degree {})",
        g.out_degree(origin)
    );
    let bounded = bounds.start > i64::MIN || bounds.end < i64::MAX;
    if bounded && use_index && !g.origin_active_in(origin, bounds) {
        return;
    }
    let walk = path.walk();
    scratch.prepare(path);
    let MatchScratch { sm, assigned, .. } = scratch;
    let ctx = DfsCtx {
        g,
        walk,
        bounds: bounded.then_some(bounds),
        prune_spans: use_index,
        first_pairs: Some((first_pairs.start, first_pairs.end)),
    };
    let w0 = walk[0] as usize;
    sm.nodes[w0] = origin;
    assigned[w0] = true;
    dfs(&ctx, 0, sm, assigned, visit);
    assigned[w0] = false;
}

/// Whether pair `p` carries at least one interaction inside `bounds`
/// (`None` = unbounded, always true). A pair failing this cannot host any
/// motif-edge set of an in-window instance.
#[inline]
fn pair_active<S: GraphStore>(g: &S, p: PairId, bounds: Option<TimeWindow>) -> bool {
    match bounds {
        None => true,
        Some(w) => g.series(p).active_in(w.start, w.end),
    }
}

/// Immutable per-enumeration state shared by every DFS frame.
struct DfsCtx<'a, S> {
    g: &'a S,
    walk: &'a [u8],
    bounds: Option<TimeWindow>,
    /// Consult the per-origin active intervals before iterating a node's
    /// out-pairs (on for the indexed path, off for the A/B baseline).
    prune_spans: bool,
    /// When set, step 0 iterates only this `(start, end)` position range
    /// of the origin's out-list — hub tasks partition an origin's matches
    /// by first-step pair. Deeper steps are unaffected.
    first_pairs: Option<(u32, u32)>,
}

fn dfs<S, F>(
    ctx: &DfsCtx<'_, S>,
    step: usize,
    sm: &mut StructuralMatch,
    assigned: &mut Vec<bool>,
    visit: &mut F,
) where
    S: GraphStore,
    F: FnMut(&StructuralMatch),
{
    let (g, walk, bounds) = (ctx.g, ctx.walk, ctx.bounds);
    if step + 1 == walk.len() {
        visit(sm);
        return;
    }
    let src = sm.nodes[walk[step] as usize];
    let tgt_label = walk[step + 1] as usize;
    if assigned[tgt_label] {
        // Revisited motif vertex: the graph vertex is fixed; the edge must
        // exist (e.g. the cycle-closing check of M(3,3), paper §4 P1).
        if let Some(p) = g.pair_id(src, sm.nodes[tgt_label]) {
            if !pair_active(g, p, bounds) {
                return;
            }
            sm.pairs.push(p);
            dfs(ctx, step + 1, sm, assigned, visit);
            sm.pairs.pop();
        }
    } else {
        // Span pre-check: if none of `src`'s out-interactions fall inside
        // the bounds, no out-pair can be active — skip the whole slice.
        if ctx.prune_spans {
            if let Some(w) = bounds {
                if !g.origin_active_in(src, w) {
                    return;
                }
            }
        }
        let positions = match (step, ctx.first_pairs) {
            (0, Some((s, e))) => s..e,
            _ => 0..g.out_degree(src),
        };
        for i in positions {
            let p = g.out_pair_at(src, i);
            if !pair_active(g, p, bounds) {
                continue;
            }
            let v = g.pair(p).1;
            // Injectivity: distinct motif vertices need distinct graph
            // vertices.
            if sm.nodes.iter().zip(assigned.iter()).any(|(&a, &set)| set && a == v) {
                continue;
            }
            sm.nodes[tgt_label] = v;
            assigned[tgt_label] = true;
            sm.pairs.push(p);
            dfs(ctx, step + 1, sm, assigned, visit);
            sm.pairs.pop();
            assigned[tgt_label] = false;
        }
    }
}

/// Collects all structural matches (phase P1 output set `S`).
pub fn find_structural_matches<S: GraphStore>(g: &S, path: &SpanningPath) -> Vec<StructuralMatch> {
    let mut out = Vec::new();
    for_each_structural_match(g, path, &mut |m| out.push(m.clone()));
    out
}

/// Counts structural matches without materializing them.
pub fn count_structural_matches<S: GraphStore>(g: &S, path: &SpanningPath) -> u64 {
    let mut n = 0u64;
    for_each_structural_match(g, path, &mut |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use flowmotif_graph::{GraphBuilder, TimeSeriesGraph};

    /// The time-series graph of paper Fig. 5(b).
    fn fig5() -> TimeSeriesGraph {
        let mut b = GraphBuilder::new();
        b.extend_interactions([
            (0u32, 1u32, 13i64, 5.0),
            (0, 1, 15, 7.0),
            (2, 0, 10, 10.0),
            (3, 2, 1, 2.0),
            (3, 2, 3, 5.0),
            (3, 0, 11, 10.0),
            (1, 2, 18, 20.0),
            (2, 3, 19, 5.0),
            (2, 3, 21, 4.0),
            (1, 3, 23, 7.0),
        ]);
        b.build_time_series_graph()
    }

    #[test]
    fn m33_has_six_matches_in_fig5_graph() {
        // Paper Fig. 6: six structural matches of M(3,3) in the Fig. 5
        // graph (each of the two directed triangles in three rotations).
        let g = fig5();
        let m33 = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        let matches = find_structural_matches(&g, m33.path());
        assert_eq!(matches.len(), 6);
        // Every match is a closed triangle.
        for m in &matches {
            let walk = m.walk_nodes(&g);
            assert_eq!(walk.len(), 4);
            assert_eq!(walk[0], walk[3]);
            assert_eq!(walk.iter().take(3).collect::<std::collections::HashSet<_>>().len(), 3);
        }
    }

    #[test]
    fn m32_matches_are_paths_of_three_distinct_nodes() {
        let g = fig5();
        let m32 = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let matches = find_structural_matches(&g, m32.path());
        // Enumerate by brute force for the fixture.
        let mut expected = 0;
        for &(u, v) in g.pairs() {
            for (_, w) in g.out_pairs(v) {
                if w != u && w != v {
                    expected += 1;
                }
            }
        }
        assert_eq!(matches.len(), expected);
        for m in &matches {
            let walk = m.walk_nodes(&g);
            assert_eq!(walk.iter().collect::<std::collections::HashSet<_>>().len(), 3);
        }
    }

    #[test]
    fn revisit_requires_edge_existence() {
        // 0 -> 1 -> 2 with no closing edge: no M(3,3) matches.
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 1i64, 1.0), (1, 2, 2, 1.0)]);
        let g = b.build_time_series_graph();
        let m33 = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        assert_eq!(count_structural_matches(&g, m33.path()), 0);
        let m32 = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        assert_eq!(count_structural_matches(&g, m32.path()), 1);
    }

    #[test]
    fn injectivity_prevents_vertex_reuse() {
        // 0 <-> 1: the walk 0-1-0 is M(3,2)'s 0-1-2 only if the third
        // vertex is distinct, so no M(3,2) match exists.
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 1i64, 1.0), (1, 0, 2, 1.0)]);
        let g = b.build_time_series_graph();
        let m32 = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        assert_eq!(count_structural_matches(&g, m32.path()), 0);
        // But the 2-cycle walk 0-1-0 is a valid custom motif.
        let two_cycle = catalog::parse_motif("0-1-0", 10, 0.0).unwrap();
        assert_eq!(count_structural_matches(&g, two_cycle.path()), 2);
    }

    #[test]
    fn matches_are_deterministic_and_sorted() {
        let g = fig5();
        let m32 = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let a = find_structural_matches(&g, m32.path());
        let b = find_structural_matches(&g, m32.path());
        assert_eq!(a, b);
        let walks: Vec<_> = a.iter().map(|m| m.walk_nodes(&g)).collect();
        let mut sorted = walks.clone();
        sorted.sort();
        assert_eq!(walks, sorted);
    }

    #[test]
    fn bounded_matching_prunes_inactive_pairs() {
        let g = fig5();
        let m33 = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        // Unbounded bounds reproduce plain P1 exactly.
        let mut all = Vec::new();
        for_each_structural_match_bounded(
            &g,
            m33.path(),
            TimeWindow::new(i64::MIN, i64::MAX),
            0..g.num_nodes() as NodeId,
            &mut |m| all.push(m.clone()),
        );
        assert_eq!(all, find_structural_matches(&g, m33.path()));
        // Only the 10..23 window is active for the (2,0)/(0,1)/(1,2)
        // triangle; restricting to [0, 9] leaves no active triangle edge
        // sets at all.
        let mut count = 0;
        for_each_structural_match_bounded(
            &g,
            m33.path(),
            TimeWindow::new(0, 9),
            0..g.num_nodes() as NodeId,
            &mut |_| count += 1,
        );
        assert_eq!(count, 0, "every triangle needs an edge active before t=10");
        // [10, 23] keeps both directed triangles (3 rotations each).
        let mut count = 0;
        for_each_structural_match_bounded(
            &g,
            m33.path(),
            TimeWindow::new(10, 23),
            0..g.num_nodes() as NodeId,
            &mut |_| count += 1,
        );
        assert_eq!(count, 6);
        // A window touching only the (3,2) pair prunes down to walks over
        // active pairs: M(3,2) paths need both hops active in [1, 3].
        let m32 = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let mut walks = Vec::new();
        for_each_structural_match_bounded(
            &g,
            m32.path(),
            TimeWindow::new(1, 3),
            0..g.num_nodes() as NodeId,
            &mut |m| walks.push(m.walk_nodes(&g)),
        );
        assert!(walks.is_empty(), "only one pair is active: no 2-hop walk, got {walks:?}");
    }

    #[test]
    fn indexed_and_unindexed_bounded_matching_agree() {
        let g = fig5();
        for name in ["M(3,2)", "M(3,3)"] {
            let motif = catalog::by_name(name, 10, 0.0).unwrap();
            for (a, b) in [(0, 9), (10, 15), (10, 23), (1, 3), (16, 30), (i64::MIN, i64::MAX)] {
                let mut with_index = Vec::new();
                let mut without = Vec::new();
                let w = TimeWindow { start: a, end: b };
                for (use_index, out) in [(true, &mut with_index), (false, &mut without)] {
                    for_each_structural_match_bounded_with(
                        &g,
                        motif.path(),
                        w,
                        0..g.num_nodes() as NodeId,
                        use_index,
                        &mut |m| out.push(m.clone()),
                    );
                }
                assert_eq!(with_index, without, "{name} window [{a}, {b}]");
            }
        }
    }

    #[test]
    fn first_pair_ranges_partition_an_origins_matches() {
        // Hub splitting: enumerating an origin pair-chunk by pair-chunk
        // must reproduce the whole-origin enumeration exactly (same
        // matches, same order), bounded or not, indexed or not.
        let g = fig5();
        for name in ["M(3,2)", "M(3,3)"] {
            let motif = catalog::by_name(name, 10, 0.0).unwrap();
            for use_index in [true, false] {
                for w in [TimeWindow::new(i64::MIN, i64::MAX), TimeWindow::new(10, 23)] {
                    for origin in 0..g.num_nodes() as NodeId {
                        let mut whole = Vec::new();
                        for_each_structural_match_bounded_with(
                            &g,
                            motif.path(),
                            w,
                            origin..origin + 1,
                            use_index,
                            &mut |m| whole.push(m.clone()),
                        );
                        let mut split = Vec::new();
                        let mut scratch = MatchScratch::default();
                        for i in 0..g.out_degree(origin) as u32 {
                            for_each_structural_match_from_origin(
                                &g,
                                motif.path(),
                                w,
                                origin,
                                i..i + 1,
                                use_index,
                                &mut scratch,
                                &mut |m| split.push(m.clone()),
                            );
                        }
                        assert_eq!(split, whole, "{name} origin={origin} index={use_index}");
                    }
                }
            }
        }
    }

    #[test]
    fn empty_graph_has_no_matches() {
        let g = GraphBuilder::new().build_time_series_graph();
        let m = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        assert_eq!(count_structural_matches(&g, m.path()), 0);
    }

    #[test]
    fn five_cycle_matches() {
        let mut b = GraphBuilder::new();
        for i in 0..5u32 {
            b.add_interaction(i, (i + 1) % 5, i as i64, 1.0);
        }
        let g = b.build_time_series_graph();
        let m55a = catalog::by_name("M(5,5)A", 10, 0.0).unwrap();
        // One 5-cycle, five rotations.
        assert_eq!(count_structural_matches(&g, m55a.path()), 5);
        let m54 = catalog::by_name("M(5,4)", 10, 0.0).unwrap();
        assert_eq!(count_structural_matches(&g, m54.path()), 5);
    }
}
