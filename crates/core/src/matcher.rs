//! Phase P1: structural matching (paper §4, Fig. 6).
//!
//! Finds every subgraph of `G_T` that matches the motif graph structure,
//! disregarding timestamps and flows. Because motif edges form a spanning
//! path, matching is a depth-first walk enumeration: map every graph vertex
//! to the walk origin, then extend edge by edge, re-using the mapped vertex
//! when the motif walk revisits a label (cycles) and enforcing injectivity
//! between distinct motif vertices (the bijection µ of Def. 3.2).
//!
//! # The match driver
//!
//! [`P1Driver`] is the single entry point: a builder selecting the origin
//! set (all origins, a node range, or one origin's first-pair positions),
//! the window bound, the activity-index toggle, an optional trace sink
//! and the [`ExtensionOrder`]. The six `for_each_structural_match*`
//! free functions that predate it remain as thin deprecated shims.
//!
//! # Worst-case-optimal extension
//!
//! Under [`ExtensionOrder::Fixed`], each DFS step extends along its walk
//! edge: candidates are the out-neighbors of the already-bound source,
//! and every other motif edge incident to the fresh vertex is only
//! checked when the walk revisits it. A hub of degree `d` therefore
//! fans out `d` candidates even when a later edge would admit two —
//! quadratic blow-up on skewed graphs.
//!
//! [`ExtensionOrder::Cardinality`] (the default) applies the
//! worst-case-optimal join discipline per fresh vertex instead:
//!
//! ```text
//!   count    every motif edge between the fresh vertex and a bound one
//!            is a candidate list — the bound endpoint's out-targets
//!            (forward edge) or in-sources (reverse edge), both
//!            ascending node-id columns;
//!   propose  the smallest list streams its candidates;
//!   intersect each candidate must appear in every other list, checked
//!            by galloping binary search ([`crate::gallop`]) with
//!            monotone cursors.
//! ```
//!
//! Candidates survive exactly when every incident edge exists, which is
//! what the fixed walk would eventually have checked — both orders emit
//! the *same matches in the same lexicographic order*; only the work to
//! find them changes. Intersections touch the stores' id-only SoA
//! columns (`out_target_at`/`in_source_at`), never the event payloads.

use crate::gallop::gallop_seek_by;
use crate::instance::StructuralMatch;
use crate::motif::SpanningPath;
use crate::trace::{TraceSink, TraceStage};
use flowmotif_graph::{GraphStore, NodeId, PairId, TimeWindow};

/// Strategy for choosing which motif edge extends each P1 prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExtensionOrder {
    /// Extend along the walk edge of each step (the paper's order);
    /// other edges incident to the fresh vertex are checked at their
    /// later walk revisits.
    Fixed,
    /// Worst-case-optimal: all motif edges between the fresh vertex and
    /// bound vertices constrain the step; the smallest candidate list
    /// proposes and the rest intersect by galloping binary search.
    /// Identical match stream to `Fixed`, never asymptotically slower,
    /// near-linear where `Fixed` is quadratic (hub-heavy graphs).
    #[default]
    Cardinality,
}

impl ExtensionOrder {
    /// Stable lowercase name (`fixed` / `cardinality`), the CLI and
    /// serve-protocol token.
    pub fn label(self) -> &'static str {
        match self {
            ExtensionOrder::Fixed => "fixed",
            ExtensionOrder::Cardinality => "cardinality",
        }
    }
}

impl std::str::FromStr for ExtensionOrder {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fixed" => Ok(ExtensionOrder::Fixed),
            "cardinality" => Ok(ExtensionOrder::Cardinality),
            other => Err(format!("unknown extension order '{other}' (fixed|cardinality)")),
        }
    }
}

impl std::fmt::Display for ExtensionOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One motif edge constraining a fresh-vertex bind: the graph vertex of
/// `anchor` (a walk label bound before the step) supplies the candidate
/// list — its out-targets when the edge runs `anchor -> fresh`
/// (`forward`), its in-sources when it runs `fresh -> anchor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Constraint {
    anchor: u8,
    forward: bool,
}

/// Reusable phase-P1 buffers: the match under construction (whose fields
/// are mutated in place; the visitor gets a shared reference at each
/// leaf), the injectivity bitmap, the candidate-origin pull buffer of
/// the indexed path, and the per-step constraint table + gallop cursors
/// of the worst-case-optimal extension. One `MatchScratch` threaded
/// through many enumerations (see [`crate::SearchScratch`]) makes the
/// steady-state P1 loop allocation-free; the buffers re-size themselves
/// to each motif.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    sm: StructuralMatch,
    assigned: Vec<bool>,
    origins: Vec<NodeId>,
    /// Flattened constraint table: step `s` owns
    /// `cons[cons_start[s]..cons_start[s + 1]]`, primary walk-edge
    /// constraint first. Steps that revisit a bound label own an empty
    /// range. Rebuilt (without allocating, once warm) per enumeration.
    cons: Vec<Constraint>,
    cons_start: Vec<u32>,
    /// Per-constraint gallop cursors, index-aligned with `cons`; each
    /// DFS frame resets and owns its step's sub-range.
    cursors: Vec<u32>,
}

impl MatchScratch {
    /// Sizes the match/assignment buffers for `path` (contents reset)
    /// and derives the constraint table from the walk: for the step
    /// binding fresh label `f = walk[s + 1]`, every walk edge with one
    /// endpoint `f` and the other already bound by step `s` contributes
    /// one (deduplicated) [`Constraint`]. O(walk²), walks are tiny.
    fn prepare(&mut self, path: &SpanningPath) {
        let n = path.num_nodes();
        self.sm.nodes.clear();
        self.sm.nodes.resize(n, 0);
        self.sm.pairs.clear();
        self.sm.pairs.reserve(path.num_edges());
        self.assigned.clear();
        self.assigned.resize(n, false);

        let walk = path.walk();
        self.cons.clear();
        self.cons_start.clear();
        for s in 0..walk.len() - 1 {
            let start = self.cons.len();
            self.cons_start.push(start as u32);
            let fresh = walk[s + 1];
            if walk[..=s].contains(&fresh) {
                continue; // revisit step: no fresh vertex to constrain
            }
            self.cons.push(Constraint { anchor: walk[s], forward: true });
            for j in s + 1..walk.len() - 1 {
                let (a, b) = (walk[j], walk[j + 1]);
                let c = if b == fresh && walk[..=s].contains(&a) {
                    Constraint { anchor: a, forward: true }
                } else if a == fresh && walk[..=s].contains(&b) {
                    Constraint { anchor: b, forward: false }
                } else {
                    continue;
                };
                if !self.cons[start..].contains(&c) {
                    self.cons.push(c);
                }
            }
        }
        self.cons_start.push(self.cons.len() as u32);
        self.cursors.clear();
        self.cursors.resize(self.cons.len(), 0);
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

/// Which origins a [`P1Driver`] seeds the walk from.
#[derive(Debug, Clone)]
enum OriginSet {
    /// All origins in a node-id range (the whole graph by default);
    /// disjoint ranges partition the match set.
    Range(std::ops::Range<NodeId>),
    /// One origin, restricted to first-step pairs at these *positions*
    /// of its sorted out-list; disjoint position ranges partition the
    /// origin's matches (hub splitting).
    FirstPairs(NodeId, std::ops::Range<u32>),
}

/// The phase-P1 match driver: one builder for every way the codebase
/// runs structural matching.
///
/// Defaults: all origins, unbounded window, activity index on,
/// [`ExtensionOrder::Cardinality`], no trace. Matches stream to the
/// visitor in lexicographic order of their vertex walk — deterministic,
/// identical across [`GraphStore`] backends holding the same graph, and
/// identical across extension orders.
///
/// ```
/// use flowmotif_core::{catalog, P1Driver};
/// use flowmotif_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// b.extend_interactions([(0u32, 1u32, 1i64, 1.0), (1, 2, 2, 1.0)]);
/// let g = b.build_time_series_graph();
/// let m32 = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
/// assert_eq!(P1Driver::new(m32.path()).count(&g), 1);
/// ```
#[derive(Clone)]
pub struct P1Driver<'a> {
    path: &'a SpanningPath,
    bounds: TimeWindow,
    origins: OriginSet,
    use_index: bool,
    order: ExtensionOrder,
    trace: Option<&'static dyn TraceSink>,
}

impl std::fmt::Debug for P1Driver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("P1Driver")
            .field("bounds", &self.bounds)
            .field("origins", &self.origins)
            .field("use_index", &self.use_index)
            .field("order", &self.order)
            .field("trace", &self.trace.is_some())
            .finish_non_exhaustive()
    }
}

impl<'a> P1Driver<'a> {
    /// A driver over every origin, unbounded, indexed,
    /// cardinality-ordered, untraced.
    pub fn new(path: &'a SpanningPath) -> Self {
        Self {
            path,
            bounds: TimeWindow::new(i64::MIN, i64::MAX),
            origins: OriginSet::Range(0..NodeId::MAX),
            use_index: true,
            order: ExtensionOrder::default(),
            trace: None,
        }
    }

    /// Restricts matches to those that can host an instance inside the
    /// closed window `bounds`: walks through pairs carrying no in-window
    /// interaction are pruned mid-DFS. Cost then scales with the
    /// structure *active* in the window, not with everything retained.
    pub fn bounds(mut self, bounds: TimeWindow) -> Self {
        self.bounds = bounds;
        self
    }

    /// Seeds only walk origins in this node-id range. Disjoint ranges
    /// partition the match set — how the parallel drivers shard P1+P2
    /// without materialising matches.
    pub fn origins(mut self, range: std::ops::Range<NodeId>) -> Self {
        self.origins = OriginSet::Range(range);
        self
    }

    /// Seeds one origin, restricted to first-step pairs at positions
    /// `first_pairs` of its sorted out-list (a sub-range of
    /// `0..out_degree(origin)`). Disjoint position ranges partition the
    /// origin's match set — how the parallel scheduler splits a heavy
    /// hub across workers. Positions (not pair ids) keep the split
    /// well-defined on composite stores whose out-lists are not
    /// contiguous in id space.
    pub fn from_origin(mut self, origin: NodeId, first_pairs: std::ops::Range<u32>) -> Self {
        self.origins = OriginSet::FirstPairs(origin, first_pairs);
        self
    }

    /// Pull candidate origins of a bounded run from the store's
    /// active-time index (`true`, the default) instead of sweeping every
    /// origin and probing each pair. Same matches, same order, either
    /// way; `false` exists for ablation A/Bs. Ignored when unbounded.
    pub fn use_index(mut self, use_index: bool) -> Self {
        self.use_index = use_index;
        self
    }

    /// Selects the [`ExtensionOrder`]. The match stream is identical for
    /// both; `Fixed` exists for A/B runs against the paper's order.
    pub fn extension_order(mut self, order: ExtensionOrder) -> Self {
        self.order = order;
        self
    }

    /// Records the run into a stage-level [`TraceSink`] (elapsed nanos
    /// and match count under [`TraceStage::P1`]). `None` — the default —
    /// costs nothing.
    pub fn trace(mut self, trace: Option<&'static dyn TraceSink>) -> Self {
        self.trace = trace;
        self
    }

    /// Streams every selected structural match to `visit` out of
    /// caller-provided scratch — the allocation-free form every
    /// steady-state caller (sequential, parallel, streaming) uses.
    pub fn run<S, F>(&self, g: &S, scratch: &mut MatchScratch, visit: &mut F)
    where
        S: GraphStore,
        F: FnMut(&StructuralMatch),
    {
        match self.trace {
            None => self.run_untraced(g, scratch, visit),
            Some(trace) => {
                let t0 = std::time::Instant::now();
                let mut n = 0u64;
                self.run_untraced(g, scratch, &mut |sm| {
                    n += 1;
                    visit(sm);
                });
                trace.record(TraceStage::P1, t0.elapsed().as_nanos() as u64, n);
            }
        }
    }

    /// [`P1Driver::run`] with driver-owned scratch (allocates once).
    pub fn for_each<S, F>(&self, g: &S, visit: &mut F)
    where
        S: GraphStore,
        F: FnMut(&StructuralMatch),
    {
        self.run(g, &mut MatchScratch::default(), visit);
    }

    /// Collects the selected matches (phase P1 output set `S`).
    pub fn collect<S: GraphStore>(&self, g: &S) -> Vec<StructuralMatch> {
        let mut out = Vec::new();
        self.for_each(g, &mut |m| out.push(m.clone()));
        out
    }

    /// Counts the selected matches without materializing them.
    pub fn count<S: GraphStore>(&self, g: &S) -> u64 {
        let mut n = 0u64;
        self.for_each(g, &mut |_| n += 1);
        n
    }

    fn run_untraced<S, F>(&self, g: &S, scratch: &mut MatchScratch, visit: &mut F)
    where
        S: GraphStore,
        F: FnMut(&StructuralMatch),
    {
        let walk = self.path.walk();
        scratch.prepare(self.path);
        let MatchScratch { sm, assigned, origins: cands, cons, cons_start, cursors } = scratch;
        let bounds = self.bounds;
        let bounded = bounds.start > i64::MIN || bounds.end < i64::MAX;
        let mut ctx = DfsCtx {
            g,
            walk,
            bounds: bounded.then_some(bounds),
            prune_spans: self.use_index,
            first_pairs: None,
            order: self.order,
            cons,
            cons_start,
        };

        let mut seed = |ctx: &DfsCtx<'_, S>,
                        u: NodeId,
                        sm: &mut StructuralMatch,
                        assigned: &mut Vec<bool>,
                        cursors: &mut [u32]| {
            let w0 = walk[0] as usize;
            sm.nodes[w0] = u;
            assigned[w0] = true;
            dfs(ctx, 0, sm, assigned, cursors, visit);
            assigned[w0] = false;
        };
        match &self.origins {
            OriginSet::FirstPairs(origin, first_pairs) => {
                let origin = *origin;
                if (origin as usize) >= g.num_nodes() || first_pairs.is_empty() {
                    return;
                }
                debug_assert!(
                    first_pairs.end <= g.out_degree(origin),
                    "first_pairs {first_pairs:?} must lie inside origin {origin}'s out-list \
                     (degree {})",
                    g.out_degree(origin)
                );
                if bounded && self.use_index && !g.origin_active_in(origin, bounds) {
                    return;
                }
                ctx.first_pairs = Some((first_pairs.start, first_pairs.end));
                seed(&ctx, origin, sm, assigned, cursors);
            }
            OriginSet::Range(origins) => {
                let end = origins.end.min(g.num_nodes() as NodeId);
                if bounded && self.use_index {
                    // Index-assisted P1: only origins with in-window
                    // out-activity are even considered (ascending ids keep
                    // the emission order). The pull is already restricted
                    // to this call's origin range, so a parallel shard
                    // never materialises the window's full candidate list.
                    g.active_origins_in_range(bounds, origins.start..end, cands);
                    for &u in cands.iter() {
                        if g.out_degree(u) > 0 {
                            seed(&ctx, u, sm, assigned, cursors);
                        }
                    }
                } else {
                    for u in origins.start..end {
                        if g.out_degree(u) > 0 {
                            seed(&ctx, u, sm, assigned, cursors);
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Deprecated free-function shims (pre-P1Driver surface)
// ---------------------------------------------------------------------

/// Streams every structural match of `path` in `g` to `visit`.
#[deprecated(note = "use `P1Driver::new(path).for_each(g, visit)`")]
pub fn for_each_structural_match<S, F>(g: &S, path: &SpanningPath, visit: &mut F)
where
    S: GraphStore,
    F: FnMut(&StructuralMatch),
{
    P1Driver::new(path).for_each(g, visit);
}

/// Streams the structural matches whose *walk origin* lies in `origins`.
#[deprecated(note = "use `P1Driver::new(path).origins(origins)`")]
pub fn for_each_structural_match_in_node_range<S, F>(
    g: &S,
    path: &SpanningPath,
    origins: std::ops::Range<NodeId>,
    visit: &mut F,
) where
    S: GraphStore,
    F: FnMut(&StructuralMatch),
{
    P1Driver::new(path).origins(origins).for_each(g, visit);
}

/// Streams the structural matches that can host an instance inside the
/// closed time window `bounds`.
#[deprecated(note = "use `P1Driver::new(path).bounds(bounds).origins(origins)`")]
pub fn for_each_structural_match_bounded<S, F>(
    g: &S,
    path: &SpanningPath,
    bounds: TimeWindow,
    origins: std::ops::Range<NodeId>,
    visit: &mut F,
) where
    S: GraphStore,
    F: FnMut(&StructuralMatch),
{
    P1Driver::new(path).bounds(bounds).origins(origins).for_each(g, visit);
}

/// [`for_each_structural_match_bounded`] with an explicit `use_index`
/// switch.
#[deprecated(note = "use `P1Driver` with `.use_index(..)`")]
pub fn for_each_structural_match_bounded_with<S, F>(
    g: &S,
    path: &SpanningPath,
    bounds: TimeWindow,
    origins: std::ops::Range<NodeId>,
    use_index: bool,
    visit: &mut F,
) where
    S: GraphStore,
    F: FnMut(&StructuralMatch),
{
    P1Driver::new(path).bounds(bounds).origins(origins).use_index(use_index).for_each(g, visit);
}

/// [`for_each_structural_match_bounded_with`] running out of
/// caller-provided scratch buffers.
#[deprecated(note = "use `P1Driver` with `.run(g, scratch, visit)`")]
pub fn for_each_structural_match_bounded_scratch<S, F>(
    g: &S,
    path: &SpanningPath,
    bounds: TimeWindow,
    origins: std::ops::Range<NodeId>,
    use_index: bool,
    scratch: &mut MatchScratch,
    visit: &mut F,
) where
    S: GraphStore,
    F: FnMut(&StructuralMatch),
{
    P1Driver::new(path).bounds(bounds).origins(origins).use_index(use_index).run(g, scratch, visit);
}

/// Streams the structural matches of one walk origin whose *first-step
/// pair* sits at a position in `first_pairs`.
#[deprecated(note = "use `P1Driver` with `.from_origin(origin, first_pairs)`")]
#[allow(clippy::too_many_arguments)] // mirrors the bounded_scratch surface + the pair range
pub fn for_each_structural_match_from_origin<S, F>(
    g: &S,
    path: &SpanningPath,
    bounds: TimeWindow,
    origin: NodeId,
    first_pairs: std::ops::Range<u32>,
    use_index: bool,
    scratch: &mut MatchScratch,
    visit: &mut F,
) where
    S: GraphStore,
    F: FnMut(&StructuralMatch),
{
    P1Driver::new(path)
        .bounds(bounds)
        .from_origin(origin, first_pairs)
        .use_index(use_index)
        .run(g, scratch, visit);
}

// ---------------------------------------------------------------------
// DFS
// ---------------------------------------------------------------------

/// Whether pair `p` carries at least one interaction inside `bounds`
/// (`None` = unbounded, always true). A pair failing this cannot host any
/// motif-edge set of an in-window instance.
#[inline]
fn pair_active<S: GraphStore>(g: &S, p: PairId, bounds: Option<TimeWindow>) -> bool {
    match bounds {
        None => true,
        Some(w) => g.series(p).active_in(w.start, w.end),
    }
}

/// Immutable per-enumeration state shared by every DFS frame.
struct DfsCtx<'a, S> {
    g: &'a S,
    walk: &'a [u8],
    bounds: Option<TimeWindow>,
    /// Consult the per-origin active intervals before iterating a node's
    /// out-pairs (on for the indexed path, off for the A/B baseline).
    prune_spans: bool,
    /// When set, step 0 iterates only this `(start, end)` position range
    /// of the origin's out-list — hub tasks partition an origin's matches
    /// by first-step pair. Deeper steps are unaffected.
    first_pairs: Option<(u32, u32)>,
    order: ExtensionOrder,
    /// The scratch-owned constraint table (see [`MatchScratch`]).
    cons: &'a [Constraint],
    cons_start: &'a [u32],
}

/// Length of a constraint's candidate list at runtime.
#[inline]
fn clist_len<S: GraphStore>(g: &S, anchor_node: NodeId, forward: bool) -> u32 {
    if forward {
        g.out_degree(anchor_node)
    } else {
        g.in_degree(anchor_node)
    }
}

/// Candidate at position `i` of a constraint's list — an id-only SoA
/// column read on every backend, ascending in `i`.
#[inline]
fn clist_at<S: GraphStore>(g: &S, anchor_node: NodeId, forward: bool, i: u32) -> NodeId {
    if forward {
        g.out_target_at(anchor_node, i)
    } else {
        g.in_source_at(anchor_node, i)
    }
}

fn dfs<S, F>(
    ctx: &DfsCtx<'_, S>,
    step: usize,
    sm: &mut StructuralMatch,
    assigned: &mut Vec<bool>,
    cursors: &mut [u32],
    visit: &mut F,
) where
    S: GraphStore,
    F: FnMut(&StructuralMatch),
{
    let (g, walk, bounds) = (ctx.g, ctx.walk, ctx.bounds);
    if step + 1 == walk.len() {
        visit(sm);
        return;
    }
    let src = sm.nodes[walk[step] as usize];
    let tgt_label = walk[step + 1] as usize;
    if assigned[tgt_label] {
        // Revisited motif vertex: the graph vertex is fixed; the edge must
        // exist (e.g. the cycle-closing check of M(3,3), paper §4 P1).
        if let Some(p) = g.pair_id(src, sm.nodes[tgt_label]) {
            if !pair_active(g, p, bounds) {
                return;
            }
            sm.pairs.push(p);
            dfs(ctx, step + 1, sm, assigned, cursors, visit);
            sm.pairs.pop();
        }
    } else {
        // Span pre-check: if none of `src`'s out-interactions fall inside
        // the bounds, no out-pair can be active — skip the whole slice.
        if ctx.prune_spans {
            if let Some(w) = bounds {
                if !g.origin_active_in(src, w) {
                    return;
                }
            }
        }
        let first_pairs = match (step, ctx.first_pairs) {
            (0, Some((s, e))) => Some(s..e),
            _ => None,
        };
        let cons = ctx.cons_start[step] as usize..ctx.cons_start[step + 1] as usize;
        if ctx.order == ExtensionOrder::Cardinality && cons.len() > 1 {
            wco_extend(ctx, step, cons, first_pairs, sm, assigned, cursors, visit);
            return;
        }
        for i in first_pairs.unwrap_or(0..g.out_degree(src)) {
            let p = g.out_pair_at(src, i);
            if !pair_active(g, p, bounds) {
                continue;
            }
            let v = g.out_target_at(src, i);
            // Injectivity: distinct motif vertices need distinct graph
            // vertices.
            if sm.nodes.iter().zip(assigned.iter()).any(|(&a, &set)| set && a == v) {
                continue;
            }
            sm.nodes[tgt_label] = v;
            assigned[tgt_label] = true;
            sm.pairs.push(p);
            dfs(ctx, step + 1, sm, assigned, cursors, visit);
            sm.pairs.pop();
            assigned[tgt_label] = false;
        }
    }
}

/// The count/propose/intersect bind of one fresh vertex (see the module
/// docs). `cons` indexes this step's constraint sub-table; constraint 0
/// is always the primary walk edge, whose matched position also yields
/// the walk pair id without a `pair_id` lookup.
#[allow(clippy::too_many_arguments)] // one DFS frame's worth of state
fn wco_extend<S, F>(
    ctx: &DfsCtx<'_, S>,
    step: usize,
    cons: std::ops::Range<usize>,
    first_pairs: Option<std::ops::Range<u32>>,
    sm: &mut StructuralMatch,
    assigned: &mut Vec<bool>,
    cursors: &mut [u32],
    visit: &mut F,
) where
    S: GraphStore,
    F: FnMut(&StructuralMatch),
{
    let g = ctx.g;
    let src = sm.nodes[ctx.walk[step] as usize];
    let tgt_label = ctx.walk[step + 1] as usize;
    let cset = &ctx.cons[cons.clone()];

    // Count + propose: the smallest candidate list streams (ties keep
    // the lowest constraint index — deterministic). A pinned first-pair
    // range forces the primary walk edge to propose: position ranges
    // partition *its* list, so re-proposing would break hub splitting.
    let prop = match first_pairs {
        Some(_) => 0,
        None => (0..cset.len())
            .min_by_key(|&k| clist_len(g, sm.nodes[cset[k].anchor as usize], cset[k].forward))
            .unwrap(),
    };
    let (pn, pf) = (sm.nodes[cset[prop].anchor as usize], cset[prop].forward);
    let positions = first_pairs.unwrap_or(0..clist_len(g, pn, pf));

    // This frame owns its step's cursor sub-range; candidates ascend, so
    // every gallop resumes where the last one stopped.
    for cur in &mut cursors[cons.clone()] {
        *cur = 0;
    }
    'cands: for i in positions {
        let v = clist_at(g, pn, pf, i);
        // Intersect: v must appear in every other list. Probes touch
        // only id columns; a miss costs O(log distance-advanced).
        let mut prim_idx = i; // position of v in the primary list
        for k in 0..cset.len() {
            if k == prop {
                continue;
            }
            let (n, f) = (sm.nodes[cset[k].anchor as usize], cset[k].forward);
            let len = clist_len(g, n, f);
            let cur = &mut cursors[cons.start + k];
            let pos = gallop_seek_by(|x| clist_at(g, n, f, x), len, *cur, v);
            *cur = pos;
            if pos >= len || clist_at(g, n, f, pos) != v {
                continue 'cands;
            }
            if k == 0 {
                prim_idx = pos;
            }
        }
        let p = g.out_pair_at(src, prim_idx);
        if !pair_active(g, p, ctx.bounds) {
            continue;
        }
        if sm.nodes.iter().zip(assigned.iter()).any(|(&a, &set)| set && a == v) {
            continue;
        }
        sm.nodes[tgt_label] = v;
        assigned[tgt_label] = true;
        sm.pairs.push(p);
        dfs(ctx, step + 1, sm, assigned, cursors, visit);
        sm.pairs.pop();
        assigned[tgt_label] = false;
    }
}

/// Collects all structural matches (phase P1 output set `S`).
pub fn find_structural_matches<S: GraphStore>(g: &S, path: &SpanningPath) -> Vec<StructuralMatch> {
    P1Driver::new(path).collect(g)
}

/// Counts structural matches without materializing them.
pub fn count_structural_matches<S: GraphStore>(g: &S, path: &SpanningPath) -> u64 {
    P1Driver::new(path).count(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use flowmotif_graph::{GraphBuilder, TimeSeriesGraph};

    /// The time-series graph of paper Fig. 5(b).
    fn fig5() -> TimeSeriesGraph {
        let mut b = GraphBuilder::new();
        b.extend_interactions([
            (0u32, 1u32, 13i64, 5.0),
            (0, 1, 15, 7.0),
            (2, 0, 10, 10.0),
            (3, 2, 1, 2.0),
            (3, 2, 3, 5.0),
            (3, 0, 11, 10.0),
            (1, 2, 18, 20.0),
            (2, 3, 19, 5.0),
            (2, 3, 21, 4.0),
            (1, 3, 23, 7.0),
        ]);
        b.build_time_series_graph()
    }

    #[test]
    fn m33_has_six_matches_in_fig5_graph() {
        // Paper Fig. 6: six structural matches of M(3,3) in the Fig. 5
        // graph (each of the two directed triangles in three rotations).
        let g = fig5();
        let m33 = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        let matches = find_structural_matches(&g, m33.path());
        assert_eq!(matches.len(), 6);
        // Every match is a closed triangle.
        for m in &matches {
            let walk = m.walk_nodes(&g);
            assert_eq!(walk.len(), 4);
            assert_eq!(walk[0], walk[3]);
            assert_eq!(walk.iter().take(3).collect::<std::collections::HashSet<_>>().len(), 3);
        }
    }

    #[test]
    fn m32_matches_are_paths_of_three_distinct_nodes() {
        let g = fig5();
        let m32 = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let matches = find_structural_matches(&g, m32.path());
        // Enumerate by brute force for the fixture.
        let mut expected = 0;
        for &(u, v) in g.pairs() {
            for (_, w) in g.out_pairs(v) {
                if w != u && w != v {
                    expected += 1;
                }
            }
        }
        assert_eq!(matches.len(), expected);
        for m in &matches {
            let walk = m.walk_nodes(&g);
            assert_eq!(walk.iter().collect::<std::collections::HashSet<_>>().len(), 3);
        }
    }

    #[test]
    fn revisit_requires_edge_existence() {
        // 0 -> 1 -> 2 with no closing edge: no M(3,3) matches.
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 1i64, 1.0), (1, 2, 2, 1.0)]);
        let g = b.build_time_series_graph();
        let m33 = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        assert_eq!(count_structural_matches(&g, m33.path()), 0);
        let m32 = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        assert_eq!(count_structural_matches(&g, m32.path()), 1);
    }

    #[test]
    fn injectivity_prevents_vertex_reuse() {
        // 0 <-> 1: the walk 0-1-0 is M(3,2)'s 0-1-2 only if the third
        // vertex is distinct, so no M(3,2) match exists.
        let mut b = GraphBuilder::new();
        b.extend_interactions([(0u32, 1u32, 1i64, 1.0), (1, 0, 2, 1.0)]);
        let g = b.build_time_series_graph();
        let m32 = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        assert_eq!(count_structural_matches(&g, m32.path()), 0);
        // But the 2-cycle walk 0-1-0 is a valid custom motif.
        let two_cycle = catalog::parse_motif("0-1-0", 10, 0.0).unwrap();
        assert_eq!(count_structural_matches(&g, two_cycle.path()), 2);
    }

    #[test]
    fn matches_are_deterministic_and_sorted() {
        let g = fig5();
        let m32 = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let a = find_structural_matches(&g, m32.path());
        let b = find_structural_matches(&g, m32.path());
        assert_eq!(a, b);
        let walks: Vec<_> = a.iter().map(|m| m.walk_nodes(&g)).collect();
        let mut sorted = walks.clone();
        sorted.sort();
        assert_eq!(walks, sorted);
    }

    #[test]
    fn extension_orders_emit_identical_match_streams() {
        // Same matches, same lexicographic order — WCO only changes the
        // work to find them. Cycles (M(3,3), M(5,5)A, 0-1-0) exercise
        // multi-constraint steps; paths fall back to single-constraint.
        let g = fig5();
        for name in ["M(3,2)", "M(3,3)", "M(4,4)B", "M(4,4)C", "M(5,5)A"] {
            let motif = catalog::by_name(name, 10, 0.0).unwrap();
            for w in [TimeWindow::new(i64::MIN, i64::MAX), TimeWindow::new(10, 23)] {
                let run = |order: ExtensionOrder| {
                    P1Driver::new(motif.path()).bounds(w).extension_order(order).collect(&g)
                };
                assert_eq!(
                    run(ExtensionOrder::Fixed),
                    run(ExtensionOrder::Cardinality),
                    "{name} {w:?}"
                );
            }
        }
    }

    #[test]
    fn bounded_matching_prunes_inactive_pairs() {
        let g = fig5();
        let m33 = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        // Unbounded bounds reproduce plain P1 exactly.
        let all = P1Driver::new(m33.path()).collect(&g);
        assert_eq!(all, find_structural_matches(&g, m33.path()));
        // Only the 10..23 window is active for the (2,0)/(0,1)/(1,2)
        // triangle; restricting to [0, 9] leaves no active triangle edge
        // sets at all.
        let count = P1Driver::new(m33.path()).bounds(TimeWindow::new(0, 9)).count(&g);
        assert_eq!(count, 0, "every triangle needs an edge active before t=10");
        // [10, 23] keeps both directed triangles (3 rotations each).
        assert_eq!(P1Driver::new(m33.path()).bounds(TimeWindow::new(10, 23)).count(&g), 6);
        // A window touching only the (3,2) pair prunes down to walks over
        // active pairs: M(3,2) paths need both hops active in [1, 3].
        let m32 = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let mut walks = Vec::new();
        P1Driver::new(m32.path())
            .bounds(TimeWindow::new(1, 3))
            .for_each(&g, &mut |m| walks.push(m.walk_nodes(&g)));
        assert!(walks.is_empty(), "only one pair is active: no 2-hop walk, got {walks:?}");
    }

    #[test]
    fn indexed_and_unindexed_bounded_matching_agree() {
        let g = fig5();
        for name in ["M(3,2)", "M(3,3)"] {
            let motif = catalog::by_name(name, 10, 0.0).unwrap();
            for (a, b) in [(0, 9), (10, 15), (10, 23), (1, 3), (16, 30), (i64::MIN, i64::MAX)] {
                let w = TimeWindow { start: a, end: b };
                let run = |use_index: bool| {
                    P1Driver::new(motif.path()).bounds(w).use_index(use_index).collect(&g)
                };
                assert_eq!(run(true), run(false), "{name} window [{a}, {b}]");
            }
        }
    }

    #[test]
    fn first_pair_ranges_partition_an_origins_matches() {
        // Hub splitting: enumerating an origin pair-chunk by pair-chunk
        // must reproduce the whole-origin enumeration exactly (same
        // matches, same order), bounded or not, indexed or not, in both
        // extension orders.
        let g = fig5();
        for name in ["M(3,2)", "M(3,3)"] {
            let motif = catalog::by_name(name, 10, 0.0).unwrap();
            for use_index in [true, false] {
                for order in [ExtensionOrder::Fixed, ExtensionOrder::Cardinality] {
                    for w in [TimeWindow::new(i64::MIN, i64::MAX), TimeWindow::new(10, 23)] {
                        let base = P1Driver::new(motif.path())
                            .bounds(w)
                            .use_index(use_index)
                            .extension_order(order);
                        for origin in 0..g.num_nodes() as NodeId {
                            let whole = base.clone().origins(origin..origin + 1).collect(&g);
                            let mut split = Vec::new();
                            let mut scratch = MatchScratch::default();
                            for i in 0..g.out_degree(origin) as u32 {
                                base.clone().from_origin(origin, i..i + 1).run(
                                    &g,
                                    &mut scratch,
                                    &mut |m| split.push(m.clone()),
                                );
                            }
                            assert_eq!(
                                split, whole,
                                "{name} origin={origin} index={use_index} order={order}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn driver_trace_records_p1_counts() {
        use crate::trace::AtomicTrace;
        let g = fig5();
        let m33 = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
        let trace: &'static AtomicTrace = Box::leak(Box::new(AtomicTrace::new()));
        let n = P1Driver::new(m33.path()).trace(Some(trace)).count(&g);
        assert_eq!(n, 6);
        assert_eq!(trace.count(TraceStage::P1), 6);
    }

    #[test]
    fn empty_graph_has_no_matches() {
        let g = GraphBuilder::new().build_time_series_graph();
        let m = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        assert_eq!(count_structural_matches(&g, m.path()), 0);
    }

    #[test]
    fn five_cycle_matches() {
        let mut b = GraphBuilder::new();
        for i in 0..5u32 {
            b.add_interaction(i, (i + 1) % 5, i as i64, 1.0);
        }
        let g = b.build_time_series_graph();
        let m55a = catalog::by_name("M(5,5)A", 10, 0.0).unwrap();
        // One 5-cycle, five rotations.
        assert_eq!(count_structural_matches(&g, m55a.path()), 5);
        let m54 = catalog::by_name("M(5,4)", 10, 0.0).unwrap();
        assert_eq!(count_structural_matches(&g, m54.path()), 5);
    }

    /// The deprecated pre-`P1Driver` shims must keep compiling (under
    /// `-D warnings`, via this allow) and keep emitting exactly what the
    /// driver emits, until they are removed.
    #[allow(deprecated)]
    mod shims {
        use super::*;

        #[test]
        fn every_shim_matches_its_driver_equivalent() {
            let g = fig5();
            let m33 = catalog::by_name("M(3,3)", 10, 0.0).unwrap();
            let path = m33.path();
            let n = g.num_nodes() as NodeId;
            let w = TimeWindow::new(10, 23);
            let want = P1Driver::new(path).collect(&g);
            let mut got = Vec::new();
            for_each_structural_match(&g, path, &mut |m| got.push(m.clone()));
            assert_eq!(got, want);
            got.clear();
            for_each_structural_match_in_node_range(&g, path, 0..n, &mut |m| got.push(m.clone()));
            assert_eq!(got, want);

            let want_w = P1Driver::new(path).bounds(w).collect(&g);
            got.clear();
            for_each_structural_match_bounded(&g, path, w, 0..n, &mut |m| got.push(m.clone()));
            assert_eq!(got, want_w);
            got.clear();
            for_each_structural_match_bounded_with(&g, path, w, 0..n, false, &mut |m| {
                got.push(m.clone());
            });
            assert_eq!(got, want_w);
            let mut scratch = MatchScratch::default();
            got.clear();
            for_each_structural_match_bounded_scratch(
                &g,
                path,
                w,
                0..n,
                true,
                &mut scratch,
                &mut |m| got.push(m.clone()),
            );
            assert_eq!(got, want_w);

            let deg = g.out_degree(2) as u32;
            let want_o = P1Driver::new(path).bounds(w).from_origin(2, 0..deg).collect(&g);
            got.clear();
            for_each_structural_match_from_origin(
                &g,
                path,
                w,
                2,
                0..deg,
                true,
                &mut scratch,
                &mut |m| got.push(m.clone()),
            );
            assert_eq!(got, want_o);
        }
    }
}
