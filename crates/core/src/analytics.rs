//! Analysis helpers built on the search primitives — the extensibility
//! use-cases the paper sketches:
//!
//! * §5.1: "find the top-1 instance for each structural match … to
//!   compare the sets of entities based on their max-flow interactions";
//! * §5.1: "find the top-1 instance for each position of the sliding
//!   time window … to compare the volume of interactions at different
//!   periods of time";
//! * §7 future work: "group the motif instances per structural match, in
//!   order to identify the structural matches with the largest activity
//!   and how this activity is spread along the timeline".

use crate::dp::{dp_table, DpStats};
use crate::enumerate::{
    enumerate_in_match_reusing, CollectSink, EnumerationScratch, SearchOptions, SearchStats,
};
use crate::instance::StructuralMatch;
use crate::matcher::P1Driver;
use crate::motif::Motif;
use flowmotif_graph::{Flow, GraphStore, SeriesRef, TimeWindow, Timestamp};

/// Activity summary of one structural match (one row of the "which
/// vertex groups are most active" analysis).
#[derive(Debug, Clone, PartialEq)]
pub struct MatchActivity {
    /// The match (vertex group) itself.
    pub structural_match: StructuralMatch,
    /// Number of maximal instances inside this match.
    pub instances: u64,
    /// Maximum instance flow (`0` when no instances exist).
    pub max_flow: Flow,
    /// Sum of instance flows — a volume indicator.
    pub total_flow: Flow,
    /// Time of the earliest instance start, if any.
    pub first_activity: Option<Timestamp>,
    /// Time of the latest instance end, if any.
    pub last_activity: Option<Timestamp>,
}

flowmotif_util::impl_to_json!(MatchActivity {
    structural_match,
    instances,
    max_flow,
    total_flow,
    first_activity,
    last_activity,
});

/// Groups all maximal instances per structural match and summarises each
/// group, sorted by instance count (most active first). Matches without
/// instances are omitted.
pub fn per_match_activity<G: GraphStore>(g: &G, motif: &Motif) -> Vec<MatchActivity> {
    let mut out: Vec<MatchActivity> = Vec::new();
    let mut stats = SearchStats::default();
    let mut scratch = EnumerationScratch::default();
    P1Driver::new(motif.path()).for_each(g, &mut |sm| {
        let mut sink = CollectSink::default();
        enumerate_in_match_reusing(
            g,
            motif,
            sm,
            SearchOptions::default(),
            &mut sink,
            &mut stats,
            &mut scratch,
        );
        let Some((_, insts)) = sink.groups.pop() else { return };
        let mut a = MatchActivity {
            structural_match: sm.clone(),
            instances: insts.len() as u64,
            max_flow: 0.0,
            total_flow: 0.0,
            first_activity: None,
            last_activity: None,
        };
        for i in &insts {
            a.max_flow = a.max_flow.max(i.flow);
            a.total_flow += i.flow;
            a.first_activity =
                Some(a.first_activity.map_or(i.first_time, |t: Timestamp| t.min(i.first_time)));
            a.last_activity =
                Some(a.last_activity.map_or(i.last_time, |t: Timestamp| t.max(i.last_time)));
        }
        out.push(a);
    });
    out.sort_by(|a, b| {
        b.instances.cmp(&a.instances).then_with(|| b.total_flow.total_cmp(&a.total_flow))
    });
    out
}

/// One point of the per-window top-1 series: the best instance flow of
/// any window anchored in `[bucket_start, bucket_start + bucket)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowActivity {
    /// Start of the time bucket.
    pub bucket_start: Timestamp,
    /// Best top-1 flow across the match's windows anchored in the bucket
    /// (`0` when no instance exists there).
    pub max_flow: Flow,
    /// Number of windows evaluated in the bucket.
    pub windows: u32,
}

flowmotif_util::impl_to_json!(WindowActivity { bucket_start, max_flow, windows });

/// The "top-1 per sliding-window position" analysis for one structural
/// match, aggregated into time buckets of width `bucket` for plotting.
/// Uses the DP module per window (Algorithm 2).
pub fn window_top1_series<G: GraphStore>(
    g: &G,
    motif: &Motif,
    sm: &StructuralMatch,
    bucket: Timestamp,
) -> Vec<WindowActivity> {
    assert!(bucket > 0, "bucket width must be positive");
    let series: Vec<SeriesRef<'_>> = sm.pairs.iter().map(|&p| g.series(p)).collect();
    if series.iter().any(|s| s.is_empty()) {
        return Vec::new();
    }
    let e1 = series[0];
    let mut stats = DpStats::default();
    let mut out: Vec<WindowActivity> = Vec::new();
    for a_idx in 0..e1.len() {
        let anchor = e1.time(a_idx);
        let w = TimeWindow::anchored(anchor, motif.delta());
        let table = dp_table(&series, w, &mut stats);
        let flow = table.top_flow();
        let bucket_start = anchor.div_euclid(bucket) * bucket;
        match out.last_mut() {
            Some(last) if last.bucket_start == bucket_start => {
                last.max_flow = last.max_flow.max(flow);
                last.windows += 1;
            }
            _ => out.push(WindowActivity { bucket_start, max_flow: flow, windows: 1 }),
        }
    }
    out
}

/// §5.1's per-match top-1 comparison: the best instance flow of every
/// structural match, sorted descending (matches without instances report
/// flow 0 and are omitted).
pub fn per_match_top1<G: GraphStore>(g: &G, motif: &Motif) -> Vec<(StructuralMatch, Flow)> {
    let mut stats = DpStats::default();
    let mut out = Vec::new();
    P1Driver::new(motif.path()).for_each(g, &mut |sm| {
        if let Some(inst) = crate::dp::dp_top1_in_match(g, motif, sm, &mut stats) {
            out.push((sm.clone(), inst.flow));
        }
    });
    out.sort_by(|a, b| b.1.total_cmp(&a.1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::enumerate::count_instances;
    use flowmotif_graph::{GraphBuilder, TimeSeriesGraph};

    /// Two chains: a "hot" one with three bursts and a "cold" one with a
    /// single burst.
    fn two_chain_graph() -> TimeSeriesGraph {
        let mut b = GraphBuilder::new();
        for t0 in [0i64, 100, 200] {
            b.add_interaction(0, 1, t0, 5.0);
            b.add_interaction(1, 2, t0 + 2, 6.0);
        }
        b.add_interaction(10, 11, 50, 9.0);
        b.add_interaction(11, 12, 53, 4.0);
        b.build_time_series_graph()
    }

    #[test]
    fn activity_ranks_hot_match_first() {
        let g = two_chain_graph();
        let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let acts = per_match_activity(&g, &motif);
        assert_eq!(acts.len(), 2);
        assert_eq!(acts[0].structural_match.walk_nodes(&g), vec![0, 1, 2]);
        assert_eq!(acts[0].instances, 3);
        assert_eq!(acts[0].max_flow, 5.0);
        assert_eq!(acts[0].total_flow, 15.0);
        assert_eq!(acts[0].first_activity, Some(0));
        assert_eq!(acts[0].last_activity, Some(202));
        assert_eq!(acts[1].instances, 1);
        assert_eq!(acts[1].max_flow, 4.0);
    }

    #[test]
    fn activity_counts_match_global_count() {
        let g = two_chain_graph();
        let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let total: u64 = per_match_activity(&g, &motif).iter().map(|a| a.instances).sum();
        assert_eq!(total, count_instances(&g, &motif).0);
    }

    #[test]
    fn window_series_shows_bursts() {
        let g = two_chain_graph();
        let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let sm = StructuralMatch {
            nodes: vec![0, 1, 2],
            pairs: vec![g.pair_id(0, 1).unwrap(), g.pair_id(1, 2).unwrap()],
        };
        let series = window_top1_series(&g, &motif, &sm, 100);
        assert_eq!(series.len(), 3, "one bucket per burst");
        assert!(series.iter().all(|w| w.max_flow == 5.0));
        assert_eq!(series[0].bucket_start, 0);
        assert_eq!(series[2].bucket_start, 200);
    }

    #[test]
    fn per_match_top1_sorted() {
        let g = two_chain_graph();
        let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let tops = per_match_top1(&g, &motif);
        assert_eq!(tops.len(), 2);
        assert!(tops[0].1 >= tops[1].1);
        assert_eq!(tops[0].1, 5.0);
        assert_eq!(tops[1].1, 4.0);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_panics() {
        let g = two_chain_graph();
        let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
        let sm = StructuralMatch {
            nodes: vec![0, 1, 2],
            pairs: vec![g.pair_id(0, 1).unwrap(), g.pair_id(1, 2).unwrap()],
        };
        window_top1_series(&g, &motif, &sm, 0);
    }
}
