//! Seeded smoke suite for the exploratory DAG-motif engine
//! (`flowmotif_core::dag`): on chain-shaped DAGs its semantics coincide
//! with the paper's path motifs, so the optimized two-phase algorithm is
//! an exact oracle. Every assertion here runs the generalized
//! (exponential, reference) DAG enumeration against that oracle over
//! randomized graphs — the first step toward the ROADMAP DAG item.

use flowmotif_core::dag::{dag_count, dag_enumerate, DagMotif};
use flowmotif_core::enumerate::{count_instances, enumerate_all};
use flowmotif_core::{catalog, MotifInstance, StructuralMatch};
use flowmotif_graph::{GraphBuilder, TimeSeriesGraph};
use flowmotif_util::{RngExt, SeedableRng, StdRng};

/// The chain-shaped catalog motifs (simple directed paths, no revisits).
const CHAINS: [&str; 3] = ["M(3,2)", "M(4,3)", "M(5,4)"];

fn random_graph(nodes: u32, edges: usize, seed: u64) -> TimeSeriesGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    for _ in 0..edges {
        let u = rng.random_range(0..nodes);
        let mut v = rng.random_range(0..nodes);
        while v == u {
            v = rng.random_range(0..nodes);
        }
        b.add_interaction(u, v, rng.random_range(0..60i64), rng.random_range(1..8u32) as f64);
    }
    b.build_time_series_graph()
}

/// Order-independent rendering of grouped instances, down to the exact
/// edge-set brackets (`Debug` on `EdgeSet` is `pair`/`start`/`end`).
fn canon(groups: &[(StructuralMatch, Vec<MotifInstance>)]) -> Vec<String> {
    let mut v: Vec<String> = groups
        .iter()
        .flat_map(|(sm, insts)| {
            insts.iter().map(move |i| {
                format!(
                    "{:?}|{:?}|{}|{}..{}",
                    sm.pairs, i.edge_sets, i.flow, i.first_time, i.last_time
                )
            })
        })
        .collect();
    v.sort();
    v
}

#[test]
fn chain_dag_from_path_has_chain_order_structure() {
    for name in CHAINS {
        let motif = catalog::by_name(name, 10, 0.0).unwrap();
        let dag = DagMotif::from_path(motif.path(), 10, 0.0).unwrap();
        assert_eq!(dag.num_edges(), motif.num_edges());
        assert_eq!(dag.num_nodes(), motif.num_nodes());
        assert_eq!(dag.delta(), 10);
        assert_eq!(dag.phi(), 0.0);
        // A chain's only order constraints are consecutive: edge k is
        // preceded exactly by edge k-1.
        assert_eq!(dag.predecessors(0), &[] as &[usize]);
        for k in 1..dag.num_edges() {
            assert_eq!(dag.predecessors(k), &[k - 1], "{name} edge {k}");
        }
    }
}

#[test]
fn chain_dag_counts_match_path_algorithm_across_seeds() {
    for seed in 0..12u64 {
        let g = random_graph(7, 40, 0xDA6_0000 + seed);
        for name in CHAINS {
            for (delta, phi) in [(15i64, 0.0), (30, 3.0)] {
                let motif = catalog::by_name(name, delta, phi).unwrap();
                let dag = DagMotif::from_path(motif.path(), delta, phi).unwrap();
                let (want, _) = count_instances(&g, &motif);
                assert_eq!(dag_count(&g, &dag), want, "seed {seed} {name} δ={delta} ϕ={phi}");
            }
        }
    }
}

#[test]
fn chain_dag_instances_match_path_algorithm_exactly() {
    // Stronger than counts: the very same structural matches, edge-set
    // brackets, flows and spans, across seeded random graphs.
    for seed in 0..6u64 {
        let g = random_graph(6, 35, 0xDA6_1000 + seed);
        for name in CHAINS {
            for (delta, phi) in [(20i64, 0.0), (40, 2.0)] {
                let motif = catalog::by_name(name, delta, phi).unwrap();
                let dag = DagMotif::from_path(motif.path(), delta, phi).unwrap();
                let (groups, _) = enumerate_all(&g, &motif);
                assert_eq!(
                    canon(&dag_enumerate(&g, &dag)),
                    canon(&groups),
                    "seed {seed} {name} δ={delta} ϕ={phi}"
                );
            }
        }
    }
}

#[test]
fn chain_dag_aggregates_multi_edges_like_the_paper() {
    // A single 2-hop chain whose first hop has two interactions inside
    // the window: the edge-set aggregates them (flow 2+3), exactly as
    // the path algorithm's Fig. 4 semantics prescribe.
    let mut b = GraphBuilder::new();
    b.extend_interactions([(0u32, 1u32, 1i64, 2.0), (0, 1, 2, 3.0), (1, 2, 4, 4.0)]);
    let g = b.build_time_series_graph();
    let motif = catalog::by_name("M(3,2)", 10, 0.0).unwrap();
    let dag = DagMotif::from_path(motif.path(), 10, 0.0).unwrap();

    let dag_groups = dag_enumerate(&g, &dag);
    let (path_groups, _) = enumerate_all(&g, &motif);
    assert_eq!(canon(&dag_groups), canon(&path_groups));
    assert_eq!(dag_count(&g, &dag), 1);
    let inst = &dag_groups[0].1[0];
    assert_eq!(inst.flow, 4.0, "min(2+3, 4)");
    assert_eq!(inst.first_time, 1);
    assert_eq!(inst.last_time, 4);

    // ϕ above the weakest aggregated edge kills the instance in both
    // engines alike.
    let strict = catalog::by_name("M(3,2)", 10, 4.5).unwrap();
    let strict_dag = DagMotif::from_path(strict.path(), 10, 4.5).unwrap();
    let (want, _) = count_instances(&g, &strict);
    assert_eq!(dag_count(&g, &strict_dag), want);
    assert_eq!(want, 0);
}
